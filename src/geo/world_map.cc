#include "geo/world_map.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

namespace {

// Synthetic continental rectangles. They are deliberately disjoint so that
// every point maps to at most one continent; the gaps are "ocean".
struct ContinentSpec {
  const char* name;
  BoundingBox bounds;
  std::vector<std::string> countries;
};

std::vector<ContinentSpec> MakeContinentSpecs() {
  std::vector<ContinentSpec> specs;
  specs.push_back(ContinentSpec{
      "North America",
      BoundingBox{15.0, -170.0, 75.0, -50.0},
      {"United States", "Canada", "Mexico", "Guatemala", "Cuba", "Haiti",
       "Dominican Republic", "Honduras", "Nicaragua", "El Salvador",
       "Costa Rica", "Panama", "Jamaica", "Trinidad and Tobago", "Bahamas",
       "Belize", "Barbados", "Saint Lucia", "Grenada", "Dominica",
       "Antigua and Barbuda", "Saint Vincent", "Saint Kitts and Nevis",
       "Greenland", "Puerto Rico", "Bermuda", "Cayman Islands", "Aruba",
       "Curacao"}});
  specs.push_back(ContinentSpec{
      "South America",
      BoundingBox{-56.0, -82.0, 13.0, -34.0},
      {"Brazil", "Colombia", "Argentina", "Peru", "Venezuela", "Chile",
       "Ecuador", "Bolivia", "Paraguay", "Uruguay", "Guyana", "Suriname",
       "French Guiana", "Falkland Islands"}});
  specs.push_back(ContinentSpec{
      "Europe",
      BoundingBox{36.0, -25.0, 71.0, 40.0},
      {"Germany", "France", "United Kingdom", "Italy", "Spain", "Poland",
       "Ukraine", "Romania", "Netherlands", "Belgium", "Czech Republic",
       "Greece", "Portugal", "Sweden", "Hungary", "Belarus", "Austria",
       "Serbia", "Switzerland", "Bulgaria", "Denmark", "Finland", "Slovakia",
       "Norway", "Ireland", "Croatia", "Moldova", "Bosnia and Herzegovina",
       "Albania", "Lithuania", "North Macedonia", "Slovenia", "Latvia",
       "Estonia", "Montenegro", "Luxembourg", "Malta", "Iceland", "Andorra",
       "Monaco", "Liechtenstein", "San Marino", "Vatican City", "Kosovo",
       "Faroe Islands", "Gibraltar", "Isle of Man", "Jersey", "Guernsey"}});
  specs.push_back(ContinentSpec{
      "Africa",
      BoundingBox{-35.0, -18.0, 35.9, 40.0},
      {"Nigeria", "Ethiopia", "Egypt", "DR Congo", "Tanzania", "South Africa",
       "Kenya", "Uganda", "Algeria", "Sudan", "Morocco", "Angola",
       "Mozambique", "Ghana", "Madagascar", "Cameroon", "Ivory Coast",
       "Niger", "Burkina Faso", "Mali", "Malawi", "Zambia", "Senegal",
       "Chad", "Somalia", "Zimbabwe", "Guinea", "Rwanda", "Benin", "Burundi",
       "Tunisia", "South Sudan", "Togo", "Sierra Leone", "Libya", "Congo",
       "Liberia", "Central African Republic", "Mauritania", "Eritrea",
       "Namibia", "Gambia", "Botswana", "Gabon", "Lesotho", "Guinea-Bissau",
       "Equatorial Guinea", "Mauritius", "Eswatini", "Djibouti", "Comoros",
       "Cape Verde", "Sao Tome and Principe", "Seychelles", "Western Sahara",
       "Reunion", "Mayotte"}});
  specs.push_back(ContinentSpec{
      "Asia",
      BoundingBox{0.0, 40.1, 75.0, 180.0},
      {"China", "India", "Indonesia", "Pakistan", "Bangladesh", "Japan",
       "Philippines", "Vietnam", "Turkey", "Iran", "Thailand", "Myanmar",
       "South Korea", "Iraq", "Afghanistan", "Saudi Arabia", "Uzbekistan",
       "Malaysia", "Yemen", "Nepal", "North Korea", "Sri Lanka",
       "Kazakhstan", "Syria", "Cambodia", "Jordan", "Azerbaijan",
       "United Arab Emirates", "Tajikistan", "Israel", "Laos", "Lebanon",
       "Kyrgyzstan", "Turkmenistan", "Singapore", "Oman", "Palestine",
       "Kuwait", "Georgia", "Mongolia", "Armenia", "Qatar", "Bahrain",
       "Timor-Leste", "Cyprus", "Bhutan", "Maldives", "Brunei", "Taiwan",
       "Hong Kong", "Macau"}});
  specs.push_back(ContinentSpec{
      "Oceania",
      BoundingBox{-48.0, 110.0, -1.0, 180.0},
      {"Australia", "Papua New Guinea", "New Zealand", "Fiji",
       "Solomon Islands", "Vanuatu", "Samoa", "Kiribati", "Micronesia",
       "Tonga", "Marshall Islands", "Palau", "Nauru", "Tuvalu",
       "New Caledonia", "French Polynesia", "Guam", "Cook Islands"}});
  return specs;
}

const char* const kUsStates[50] = {
    "Alabama",        "Alaska",       "Arizona",       "Arkansas",
    "California",     "Colorado",     "Connecticut",   "Delaware",
    "Florida",        "Georgia (US)", "Hawaii",        "Idaho",
    "Illinois",       "Indiana",      "Iowa",          "Kansas",
    "Kentucky",       "Louisiana",    "Maine",         "Maryland",
    "Massachusetts",  "Michigan",     "Minnesota",     "Mississippi",
    "Missouri",       "Montana",      "Nebraska",      "Nevada",
    "New Hampshire",  "New Jersey",   "New Mexico",    "New York",
    "North Carolina", "North Dakota", "Ohio",          "Oklahoma",
    "Oregon",         "Pennsylvania", "Rhode Island",  "South Carolina",
    "South Dakota",   "Tennessee",    "Texas",         "Utah",
    "Vermont",        "Virginia",     "Washington",    "West Virginia",
    "Wisconsin",      "Wyoming"};

// The padded synthetic regions live in an Antarctic band disjoint from all
// continents.
const BoundingBox kPaddingBand{-89.0, -180.0, -60.0, 180.0};

}  // namespace

WorldMap::WorldMap(size_t target_zone_count) {
  // Zone 0 is the unknown bucket.
  AddZone("(unknown)", ZoneKind::kUnknown, BoundingBox::Empty(),
          kZoneUnknown);

  std::vector<ContinentSpec> specs = MakeContinentSpecs();
  size_t total_countries = 0;
  for (const ContinentSpec& spec : specs) {
    total_countries += spec.countries.size();
  }
  const size_t reserved = 1 + specs.size();  // unknown + continent zones
  RASED_CHECK(target_zone_count >= reserved + specs.size())
      << "zone target " << target_zone_count << " too small";

  // Decide whether the 50 US-state zones of interest fit.
  bool with_states =
      target_zone_count >= reserved + total_countries + 50;
  size_t country_budget =
      target_zone_count - reserved - (with_states ? 50 : 0);

  if (country_budget < total_countries) {
    // Scaled-down map: keep a proportional prefix of every continent's
    // country list (largest-remainder apportionment, at least one each).
    size_t assigned = 0;
    std::vector<size_t> take(specs.size());
    std::vector<std::pair<double, size_t>> remainders;
    for (size_t i = 0; i < specs.size(); ++i) {
      double exact = static_cast<double>(country_budget) *
                     specs[i].countries.size() / total_countries;
      take[i] = std::max<size_t>(1, static_cast<size_t>(exact));
      take[i] = std::min(take[i], specs[i].countries.size());
      assigned += take[i];
      remainders.emplace_back(exact - static_cast<double>(take[i]), i);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (auto& [frac, i] : remainders) {
      if (assigned >= country_budget) break;
      if (take[i] < specs[i].countries.size()) {
        ++take[i];
        ++assigned;
      }
    }
    // If still over budget (due to the at-least-one floors), trim from the
    // largest allocations.
    while (assigned > country_budget) {
      size_t largest = 0;
      for (size_t i = 1; i < specs.size(); ++i) {
        if (take[i] > take[largest]) largest = i;
      }
      RASED_CHECK(take[largest] > 1) << "cannot satisfy zone budget";
      --take[largest];
      --assigned;
    }
    for (size_t i = 0; i < specs.size(); ++i) {
      specs[i].countries.resize(take[i]);
    }
  }

  for (const ContinentSpec& spec : specs) {
    LayoutContinent(spec.name, spec.bounds, spec.countries);
  }
  if (with_states) LayoutStates();

  // Pad with synthetic regions until the requested dimension size.
  if (zones_.size() < target_zone_count) {
    size_t missing = target_zone_count - zones_.size();
    // The band counts as one continent zone, so lay out missing-1 regions.
    std::vector<std::string> names;
    names.reserve(missing - 1);
    for (size_t i = 0; i + 1 < missing; ++i) {
      names.push_back(StrFormat("Region %03zu", i + 1));
    }
    LayoutContinent("Antarctic Regions", kPaddingBand, names);
  }
  RASED_CHECK(zones_.size() == target_zone_count)
      << "built " << zones_.size() << " zones, wanted " << target_zone_count;
}

ZoneId WorldMap::AddZone(std::string name, ZoneKind kind, BoundingBox bounds,
                         ZoneId parent) {
  RASED_CHECK(zones_.size() < 65535) << "zone id space exhausted";
  ZoneId id = static_cast<ZoneId>(zones_.size());
  Zone z;
  z.id = id;
  z.name = std::move(name);
  z.kind = kind;
  z.bounds = bounds;
  z.parent = parent;
  by_name_.emplace(z.name, id);
  zones_.push_back(std::move(z));
  return id;
}

void WorldMap::LayoutContinent(const std::string& name,
                               const BoundingBox& bounds,
                               const std::vector<std::string>& countries) {
  ZoneId continent = AddZone(name, ZoneKind::kContinent, bounds,
                             kZoneUnknown);
  ContinentLayout layout;
  layout.continent_id = continent;
  layout.bounds = bounds;
  int n = static_cast<int>(countries.size());
  if (n == 0) {
    layouts_.push_back(std::move(layout));
    return;
  }
  layout.cols = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  layout.rows = (n + layout.cols - 1) / layout.cols;
  double lat_step = (bounds.max_lat - bounds.min_lat) / layout.rows;
  double lon_step = (bounds.max_lon - bounds.min_lon) / layout.cols;
  for (int i = 0; i < n; ++i) {
    int r = i / layout.cols;
    int c = i % layout.cols;
    BoundingBox cell{bounds.min_lat + r * lat_step,
                     bounds.min_lon + c * lon_step,
                     bounds.min_lat + (r + 1) * lat_step,
                     bounds.min_lon + (c + 1) * lon_step};
    ZoneId id = AddZone(countries[i], ZoneKind::kCountry, cell, continent);
    layout.cells.push_back(id);
    country_ids_.push_back(id);
    if (countries[i] == "United States") usa_id_ = id;
  }
  layouts_.push_back(std::move(layout));
}

void WorldMap::LayoutStates() {
  RASED_CHECK(usa_id_ != kZoneUnknown) << "United States zone missing";
  // Copy, not reference: the AddZone calls below grow zones_, and a
  // reallocation would invalidate any reference into it.
  const BoundingBox usa = zones_[usa_id_].bounds;
  state_cols_ = 10;
  state_rows_ = 5;
  double lat_step = (usa.max_lat - usa.min_lat) / state_rows_;
  double lon_step = (usa.max_lon - usa.min_lon) / state_cols_;
  for (int i = 0; i < 50; ++i) {
    int r = i / state_cols_;
    int c = i % state_cols_;
    BoundingBox cell{usa.min_lat + r * lat_step, usa.min_lon + c * lon_step,
                     usa.min_lat + (r + 1) * lat_step,
                     usa.min_lon + (c + 1) * lon_step};
    state_cells_.push_back(AddZone(kUsStates[i], ZoneKind::kState, cell,
                                   usa_id_));
  }
}

const Zone& WorldMap::zone(ZoneId id) const {
  RASED_CHECK(id < zones_.size()) << "zone id " << id << " out of range";
  return zones_[id];
}

Result<ZoneId> WorldMap::FindByName(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("no zone named '" + std::string(name) + "'");
  }
  return it->second;
}

const WorldMap::ContinentLayout* WorldMap::LayoutContaining(
    const LatLon& point) const {
  for (const ContinentLayout& layout : layouts_) {
    if (layout.bounds.Contains(point)) return &layout;
  }
  return nullptr;
}

ZoneId WorldMap::CountryAt(const LatLon& point) const {
  const ContinentLayout* layout = LayoutContaining(point);
  if (layout == nullptr || layout->cells.empty()) return kZoneUnknown;
  const BoundingBox& b = layout->bounds;
  double lat_step = (b.max_lat - b.min_lat) / layout->rows;
  double lon_step = (b.max_lon - b.min_lon) / layout->cols;
  int r = std::min(layout->rows - 1,
                   static_cast<int>((point.lat - b.min_lat) / lat_step));
  int c = std::min(layout->cols - 1,
                   static_cast<int>((point.lon - b.min_lon) / lon_step));
  size_t idx = static_cast<size_t>(r) * layout->cols + c;
  if (idx >= layout->cells.size()) return kZoneUnknown;  // empty grid tail
  return layout->cells[idx];
}

WorldMap::ZoneSet WorldMap::ZonesAt(const LatLon& point) const {
  return ZonesForCountry(CountryAt(point), point);
}

WorldMap::ZoneSet WorldMap::ZonesForCountry(ZoneId country,
                                            const LatLon& point) const {
  ZoneSet set;
  if (country == kZoneUnknown || country >= zones_.size()) return set;
  set.ids[set.count++] = country;
  ZoneId continent = zones_[country].parent;
  if (continent != kZoneUnknown) set.ids[set.count++] = continent;
  if (country == usa_id_ && !state_cells_.empty() &&
      zones_[usa_id_].bounds.Contains(point)) {
    const BoundingBox& usa = zones_[usa_id_].bounds;
    double lat_step = (usa.max_lat - usa.min_lat) / state_rows_;
    double lon_step = (usa.max_lon - usa.min_lon) / state_cols_;
    int r = std::min(state_rows_ - 1,
                     static_cast<int>((point.lat - usa.min_lat) / lat_step));
    int c = std::min(state_cols_ - 1,
                     static_cast<int>((point.lon - usa.min_lon) / lon_step));
    set.ids[set.count++] =
        state_cells_[static_cast<size_t>(r) * state_cols_ + c];
  }
  return set;
}

LatLon WorldMap::RandomPointIn(ZoneId id, Rng& rng) const {
  const Zone& z = zone(id);
  RASED_CHECK(z.bounds.IsValid()) << "zone " << z.name << " has no bounds";
  // Shrink marginally so points never land exactly on a cell edge shared
  // with a neighbour.
  double lat_span = z.bounds.max_lat - z.bounds.min_lat;
  double lon_span = z.bounds.max_lon - z.bounds.min_lon;
  LatLon p;
  p.lat = z.bounds.min_lat + (0.001 + 0.998 * rng.NextDouble()) * lat_span;
  p.lon = z.bounds.min_lon + (0.001 + 0.998 * rng.NextDouble()) * lon_span;
  return p;
}

void WorldMap::SetRoadNetworkSize(ZoneId id, uint64_t size) {
  Zone& z = zones_[id];
  RASED_CHECK(z.kind == ZoneKind::kCountry)
      << "road sizes are set on countries; " << z.name << " is not one";
  uint64_t old = z.road_network_size;
  z.road_network_size = size;
  // Continent aggregates track their members.
  if (z.parent != kZoneUnknown) {
    Zone& parent = zones_[z.parent];
    parent.road_network_size = parent.road_network_size - old + size;
  }
  // US states share the national network evenly (synthetic approximation).
  if (id == usa_id_) {
    for (ZoneId s : state_cells_) {
      zones_[s].road_network_size = size / state_cells_.size();
    }
  }
}

}  // namespace rased
