#ifndef RASED_GEO_WORLD_MAP_H_
#define RASED_GEO_WORLD_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/latlon.h"
#include "util/random.h"
#include "util/result.h"

namespace rased {

/// Dense id of one value of the cube's Country dimension. Id 0 is the
/// "(unknown)" bucket for updates that cannot be located.
using ZoneId = uint16_t;
inline constexpr ZoneId kZoneUnknown = 0;

enum class ZoneKind : uint8_t {
  kUnknown = 0,
  kCountry = 1,    ///< countries and country-level territories
  kContinent = 2,  ///< zone-of-interest aggregates
  kState = 3,      ///< US states (zones of interest per Section VI-A)
};

/// One value of the Country dimension.
struct Zone {
  ZoneId id = kZoneUnknown;
  std::string name;
  ZoneKind kind = ZoneKind::kUnknown;
  /// Rectangular footprint on the synthetic world grid.
  BoundingBox bounds;
  /// Containing zone: continent for countries, country for states.
  ZoneId parent = kZoneUnknown;
  /// Total road segments of the zone's network; the denominator of the
  /// paper's Percentage(*) analysis queries. Set by the planet model.
  uint64_t road_network_size = 0;
};

/// WorldMap is the substitute for real-world country polygons (see
/// DESIGN.md): 300+ zones — countries with real names, the six populated
/// continents, and the 50 US states — laid out as rectangles on a world
/// grid. Countries tile their continent's rectangle; states tile the United
/// States' rectangle; padded synthetic regions tile an Antarctic band when
/// `target_zone_count` exceeds the named inventory.
///
/// Point-to-zone lookup is O(1) grid arithmetic, which matters because the
/// crawlers locate every one of millions of daily updates.
class WorldMap {
 public:
  /// Builds the map with exactly this many zones; the default matches the
  /// paper's "300+ values" Country dimension. Larger targets pad with
  /// synthetic Antarctic regions; smaller targets (scaled benchmark
  /// schemas) keep a proportional prefix of each continent's country list
  /// and drop the US states when the budget is too tight for them. The
  /// zone count must equal the cube schema's num_countries so zone ids are
  /// valid cube coordinates.
  explicit WorldMap(size_t target_zone_count = 305);

  size_t num_zones() const { return zones_.size(); }
  const Zone& zone(ZoneId id) const;
  const std::vector<Zone>& zones() const { return zones_; }

  /// Looks a zone up by exact name. NotFound when absent.
  Result<ZoneId> FindByName(std::string_view name) const;

  /// Country (or padded region) containing the point, kZoneUnknown if the
  /// point falls in open ocean / gaps between continents.
  ZoneId CountryAt(const LatLon& point) const;

  /// All Country-dimension values an update at `point` contributes to:
  /// the country, its continent, and — inside the United States — the
  /// state. A cube ingest increments every returned cell, which is how the
  /// zone-of-interest aggregates stay consistent with their members.
  struct ZoneSet {
    ZoneId ids[3];
    int count = 0;
  };
  ZoneSet ZonesAt(const LatLon& point) const;

  /// Like ZonesAt, but trusts an already-resolved country (the crawler
  /// stored it in the UpdateRecord) and only uses `point` to pick the US
  /// state. Returns an empty set for kZoneUnknown. This is the cube-ingest
  /// path: records whose location could not be resolved must not be
  /// re-guessed from their (0,0) placeholder coordinates.
  ZoneSet ZonesForCountry(ZoneId country, const LatLon& point) const;

  /// Country for a changeset bounding box: the paper maps the box to the
  /// country containing its centre point.
  ZoneId CountryForBBox(const BoundingBox& box) const {
    return CountryAt(box.Center());
  }

  /// Uniform random point inside the zone's rectangle. Used by the
  /// synthetic planet to place updates.
  LatLon RandomPointIn(ZoneId id, Rng& rng) const;

  /// Sets a country's road-network size; continent sizes are the sum of
  /// their member countries and are updated incrementally.
  void SetRoadNetworkSize(ZoneId id, uint64_t size);

  /// All country-kind zone ids (excludes unknown/continents/states).
  const std::vector<ZoneId>& country_ids() const { return country_ids_; }

 private:
  struct ContinentLayout {
    ZoneId continent_id;
    BoundingBox bounds;
    int rows = 0;
    int cols = 0;
    std::vector<ZoneId> cells;  // row-major country ids; may trail empty
  };

  ZoneId AddZone(std::string name, ZoneKind kind, BoundingBox bounds,
                 ZoneId parent);
  void LayoutContinent(const std::string& name, const BoundingBox& bounds,
                       const std::vector<std::string>& countries);
  void LayoutStates();
  const ContinentLayout* LayoutContaining(const LatLon& point) const;

  std::vector<Zone> zones_;
  std::vector<ContinentLayout> layouts_;
  std::vector<ZoneId> country_ids_;
  std::unordered_map<std::string, ZoneId> by_name_;
  ZoneId usa_id_ = kZoneUnknown;
  // State grid inside the USA cell.
  int state_rows_ = 0;
  int state_cols_ = 0;
  std::vector<ZoneId> state_cells_;
};

}  // namespace rased

#endif  // RASED_GEO_WORLD_MAP_H_
