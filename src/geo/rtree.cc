#include "geo/rtree.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace rased {

struct RTree::Entry {
  BoundingBox box;
  uint64_t id = 0;                // leaf entries
  std::unique_ptr<Node> child;    // internal entries
};

struct RTree::Node {
  bool leaf = true;
  std::vector<Entry> entries;

  BoundingBox Bounds() const {
    BoundingBox b = BoundingBox::Empty();
    for (const Entry& e : entries) b = b.Union(e.box);
    return b;
  }
};

RTree::RTree(size_t max_entries) : max_entries_(max_entries) {
  RASED_CHECK(max_entries_ >= 4) << "R-tree fan-out must be at least 4";
  root_ = std::make_unique<Node>();
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

namespace {

double Enlargement(const BoundingBox& box, const BoundingBox& add) {
  return box.Union(add).Area() - box.Area();
}

}  // namespace

void RTree::Insert(const BoundingBox& box, uint64_t id) {
  RASED_CHECK(box.IsValid()) << "inserting invalid box";
  Entry entry;
  entry.box = box;
  entry.id = id;
  std::unique_ptr<Node> sibling = InsertRec(root_.get(), std::move(entry));
  if (sibling != nullptr) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    Entry left;
    left.box = root_->Bounds();
    left.child = std::move(root_);
    Entry right;
    right.box = sibling->Bounds();
    right.child = std::move(sibling);
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
  }
  ++size_;
}

std::unique_ptr<RTree::Node> RTree::InsertRec(Node* node, Entry&& entry) {
  if (node->leaf) {
    node->entries.push_back(std::move(entry));
    if (node->entries.size() > max_entries_) return SplitNode(node);
    return nullptr;
  }
  // Choose the subtree needing the least enlargement (ties: smaller area).
  size_t best = 0;
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->entries.size(); ++i) {
    double enl = Enlargement(node->entries[i].box, entry.box);
    double area = node->entries[i].box.Area();
    if (enl < best_enlargement ||
        (enl == best_enlargement && area < best_area)) {
      best = i;
      best_enlargement = enl;
      best_area = area;
    }
  }
  Node* child = node->entries[best].child.get();
  std::unique_ptr<Node> split = InsertRec(child, std::move(entry));
  node->entries[best].box = child->Bounds();
  if (split != nullptr) {
    Entry e;
    e.box = split->Bounds();
    e.child = std::move(split);
    node->entries.push_back(std::move(e));
    if (node->entries.size() > max_entries_) return SplitNode(node);
  }
  return nullptr;
}

std::unique_ptr<RTree::Node> RTree::SplitNode(Node* node) {
  // Quadratic split: pick the two entries that would waste the most area
  // together as seeds, then assign the rest greedily.
  std::vector<Entry> entries = std::move(node->entries);
  node->entries.clear();

  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      double waste = entries[i].box.Union(entries[j].box).Area() -
                     entries[i].box.Area() - entries[j].box.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  BoundingBox box_a = entries[seed_a].box;
  BoundingBox box_b = entries[seed_b].box;
  node->entries.push_back(std::move(entries[seed_a]));
  sibling->entries.push_back(std::move(entries[seed_b]));

  size_t min_fill = max_entries_ / 2;
  size_t remaining = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i != seed_a && i != seed_b) ++remaining;
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i == seed_a || i == seed_b) continue;
    Entry& e = entries[i];
    // Force assignment when one side must take all remaining entries to
    // reach minimum fill.
    if (node->entries.size() + remaining <= min_fill) {
      box_a = box_a.Union(e.box);
      node->entries.push_back(std::move(e));
    } else if (sibling->entries.size() + remaining <= min_fill) {
      box_b = box_b.Union(e.box);
      sibling->entries.push_back(std::move(e));
    } else {
      double enl_a = Enlargement(box_a, e.box);
      double enl_b = Enlargement(box_b, e.box);
      if (enl_a < enl_b || (enl_a == enl_b && box_a.Area() <= box_b.Area())) {
        box_a = box_a.Union(e.box);
        node->entries.push_back(std::move(e));
      } else {
        box_b = box_b.Union(e.box);
        sibling->entries.push_back(std::move(e));
      }
    }
    --remaining;
  }
  return sibling;
}

void RTree::Search(
    const BoundingBox& query,
    const std::function<bool(uint64_t, const BoundingBox&)>& visit) const {
  // Iterative DFS; a stack avoids deep recursion on degenerate data.
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries) {
      if (!query.Intersects(e.box)) continue;
      if (node->leaf) {
        if (!visit(e.id, e.box)) return;
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
}

std::vector<uint64_t> RTree::SearchIds(const BoundingBox& query,
                                       size_t limit) const {
  std::vector<uint64_t> out;
  Search(query, [&out, limit](uint64_t id, const BoundingBox&) {
    out.push_back(id);
    return limit == 0 || out.size() < limit;
  });
  return out;
}

int RTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    ++h;
    node = node->entries.front().child.get();
  }
  return h;
}

BoundingBox RTree::bounds() const { return root_->Bounds(); }

namespace {

struct CheckResult {
  bool ok = true;
  int depth = 0;
  size_t count = 0;
};

}  // namespace

bool RTree::CheckInvariants() const {
  // Recursive check of: parent boxes contain children, uniform leaf depth,
  // node occupancy (root exempt), and total entry count.
  struct Checker {
    size_t max_entries;
    CheckResult Run(const Node* node, bool is_root) {
      CheckResult r;
      if (!is_root && node->entries.empty()) {
        r.ok = false;
        return r;
      }
      if (node->entries.size() > max_entries) {
        r.ok = false;
        return r;
      }
      if (node->leaf) {
        r.depth = 1;
        r.count = node->entries.size();
        return r;
      }
      int child_depth = -1;
      for (const Entry& e : node->entries) {
        if (e.child == nullptr) {
          r.ok = false;
          return r;
        }
        if (!(e.box == e.child->Bounds())) {
          r.ok = false;
          return r;
        }
        CheckResult cr = Run(e.child.get(), false);
        if (!cr.ok) return cr;
        if (child_depth == -1) child_depth = cr.depth;
        if (cr.depth != child_depth) {
          r.ok = false;
          return r;
        }
        r.count += cr.count;
      }
      r.depth = child_depth + 1;
      return r;
    }
  };
  Checker checker{max_entries_};
  CheckResult r = checker.Run(root_.get(), /*is_root=*/true);
  return r.ok && r.count == size_;
}

}  // namespace rased
