#include "geo/latlon.h"

#include <algorithm>

#include "util/str_util.h"

namespace rased {

std::string LatLon::ToString() const {
  return StrFormat("(%.7f, %.7f)", lat, lon);
}

BoundingBox BoundingBox::Union(const BoundingBox& other) const {
  if (!IsValid()) return other;
  if (!other.IsValid()) return *this;
  return BoundingBox{std::min(min_lat, other.min_lat),
                     std::min(min_lon, other.min_lon),
                     std::max(max_lat, other.max_lat),
                     std::max(max_lon, other.max_lon)};
}

void BoundingBox::Extend(const LatLon& p) {
  if (!IsValid()) {
    *this = FromPoint(p);
    return;
  }
  min_lat = std::min(min_lat, p.lat);
  max_lat = std::max(max_lat, p.lat);
  min_lon = std::min(min_lon, p.lon);
  max_lon = std::max(max_lon, p.lon);
}

std::string BoundingBox::ToString() const {
  return StrFormat("[%.5f,%.5f .. %.5f,%.5f]", min_lat, min_lon, max_lat,
                   max_lon);
}

}  // namespace rased
