#ifndef RASED_GEO_RTREE_H_
#define RASED_GEO_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geo/latlon.h"

namespace rased {

/// Dynamic R-tree over bounding boxes with quadratic split (Guttman 1984).
///
/// The warehouse uses it as the spatial index over the (Latitude,
/// Longitude) of every UpdateList row (Section VI-B) to answer sample
/// update queries for a map viewport. Entries are (box, opaque 64-bit id);
/// point data is stored as degenerate boxes.
class RTree {
 public:
  /// `max_entries` is the node fan-out M; min fill is M/2.
  explicit RTree(size_t max_entries = 16);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  void Insert(const BoundingBox& box, uint64_t id);
  void Insert(const LatLon& point, uint64_t id) {
    Insert(BoundingBox::FromPoint(point), id);
  }

  /// Visits every entry whose box intersects `query`. The visitor returns
  /// false to stop early (e.g. after collecting N samples).
  void Search(const BoundingBox& query,
              const std::function<bool(uint64_t id, const BoundingBox& box)>&
                  visit) const;

  /// Collects up to `limit` intersecting ids (0 = unlimited).
  std::vector<uint64_t> SearchIds(const BoundingBox& query,
                                  size_t limit = 0) const;

  size_t size() const { return size_; }
  int height() const;
  BoundingBox bounds() const;

  /// Validates structural invariants (entry counts, tight parent boxes,
  /// uniform leaf depth). Exposed for property-based tests.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct Entry;

  /// Recursive insert; returns a freshly split-off sibling of `node` when
  /// the insertion overflowed it, nullptr otherwise.
  std::unique_ptr<Node> InsertRec(Node* node, Entry&& entry);
  std::unique_ptr<Node> SplitNode(Node* node);

  std::unique_ptr<Node> root_;
  size_t max_entries_;
  size_t size_ = 0;
};

}  // namespace rased

#endif  // RASED_GEO_RTREE_H_
