#ifndef RASED_GEO_LATLON_H_
#define RASED_GEO_LATLON_H_

#include <string>

namespace rased {

/// A WGS84-style coordinate. RASED never needs geodesy — only containment
/// tests against axis-aligned boxes — so latitude/longitude are treated as
/// plain planar coordinates in [-90,90] x [-180,180].
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  bool IsValid() const {
    return lat >= -90.0 && lat <= 90.0 && lon >= -180.0 && lon <= 180.0;
  }

  std::string ToString() const;

  friend bool operator==(const LatLon& a, const LatLon& b) {
    return a.lat == b.lat && a.lon == b.lon;
  }
};

/// Axis-aligned geographic bounding box (closed on all sides).
struct BoundingBox {
  double min_lat = 0.0;
  double min_lon = 0.0;
  double max_lat = 0.0;
  double max_lon = 0.0;

  static BoundingBox FromPoint(const LatLon& p) {
    return BoundingBox{p.lat, p.lon, p.lat, p.lon};
  }

  /// An explicitly empty (invalid) box; Extend/Union treat it as identity.
  static BoundingBox Empty() { return BoundingBox{1.0, 1.0, -1.0, -1.0}; }

  bool IsValid() const { return min_lat <= max_lat && min_lon <= max_lon; }

  bool Contains(const LatLon& p) const {
    return p.lat >= min_lat && p.lat <= max_lat && p.lon >= min_lon &&
           p.lon <= max_lon;
  }

  bool Contains(const BoundingBox& other) const {
    return other.min_lat >= min_lat && other.max_lat <= max_lat &&
           other.min_lon >= min_lon && other.max_lon <= max_lon;
  }

  bool Intersects(const BoundingBox& other) const {
    return min_lat <= other.max_lat && other.min_lat <= max_lat &&
           min_lon <= other.max_lon && other.min_lon <= max_lon;
  }

  LatLon Center() const {
    return LatLon{(min_lat + max_lat) / 2.0, (min_lon + max_lon) / 2.0};
  }

  /// Degenerate "area" in squared degrees, used by the R-tree heuristics.
  double Area() const {
    return IsValid() ? (max_lat - min_lat) * (max_lon - min_lon) : 0.0;
  }

  /// Smallest box containing both boxes.
  BoundingBox Union(const BoundingBox& other) const;

  /// Grows the box to include the point.
  void Extend(const LatLon& p);

  std::string ToString() const;

  friend bool operator==(const BoundingBox& a, const BoundingBox& b) {
    return a.min_lat == b.min_lat && a.min_lon == b.min_lon &&
           a.max_lat == b.max_lat && a.max_lon == b.max_lon;
  }
};

}  // namespace rased

#endif  // RASED_GEO_LATLON_H_
