#ifndef RASED_IO_PAGE_FILE_H_
#define RASED_IO_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace rased {

/// Identifier of a page inside a PageFile. Page 0 is the file header; user
/// pages start at 1. kInvalidPageId marks "no page".
using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = 0;

/// PageFile stores fixed-size pages in a single on-disk file, the substrate
/// beneath both the cube index and the warehouse/baseline heap files.
///
/// Layout: page 0 holds the header (magic, version, page size, page count);
/// every subsequent page is <payload..., crc32c (4 bytes)>. Page payload
/// capacity is therefore page_size - 4. The checksum is validated on every
/// read, surfacing torn or corrupted pages as Status::Corruption.
///
/// Threading contract: ReadPage is a positional pread of an
/// already-allocated page and is safe from any number of threads
/// concurrently (num_pages_ is atomic, so the bounds check never races an
/// allocation). AllocatePage/WritePage/Sync mutate the file and require
/// external serialization — against each other and against readers of the
/// page being (re)written; the Pager's callers provide it.
class PageFile {
 public:
  static constexpr uint32_t kMagic = 0x52415345;  // "RASE"
  /// Format version written to new files. v2 marks files whose cube pages
  /// may hold multi-page encoded blobs (cube/cube_codec.h); the page
  /// layout itself is unchanged, so Open() accepts v1 (seed-format) files
  /// transparently.
  static constexpr uint32_t kVersion = 2;
  static constexpr uint32_t kMinSupportedVersion = 1;
  static constexpr size_t kChecksumBytes = 4;

  /// Creates a new page file (fails if it already exists).
  static Result<std::unique_ptr<PageFile>> Create(const std::string& path,
                                                  size_t page_size);

  /// Opens an existing page file; the stored page size is recovered from
  /// the header.
  static Result<std::unique_ptr<PageFile>> Open(const std::string& path);

  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Appends a zeroed page and returns its id (>= 1).
  Result<PageId> AllocatePage();

  /// Appends `count` zeroed pages with consecutive ids and returns the
  /// first (the run is [first, first + count)). Requires count >= 1.
  Result<PageId> AllocatePages(size_t count);

  /// Writes `payload` (must be <= payload_size()) into the page; the rest
  /// of the page is zero-filled and the checksum updated.
  Status WritePage(PageId id, const void* payload, size_t n);

  /// Reads and checksum-validates the page payload (payload_size() bytes).
  Status ReadPage(PageId id, void* payload) const;

  /// Reads `count` physically adjacent pages [first, first+count) with one
  /// positional pread and checksum-validates each. `pages` receives the
  /// raw page images (count * page_size() bytes, checksum trailers
  /// included) — callers extract the payloads themselves. Like ReadPage,
  /// safe from any number of threads concurrently.
  Status ReadPages(PageId first, size_t count, unsigned char* pages) const;

  size_t page_size() const { return page_size_; }
  /// Usable bytes per page (page_size minus the checksum trailer).
  size_t payload_size() const { return page_size_ - kChecksumBytes; }
  /// Number of allocated user pages (safe to read from any thread).
  uint64_t num_pages() const {
    return num_pages_.load(std::memory_order_acquire);
  }
  const std::string& path() const { return path_; }

  /// Flushes and persists the header. Called automatically on destruction.
  Status Sync();

 private:
  PageFile(std::string path, int fd, size_t page_size, uint64_t num_pages);

  Status WriteHeader();

  std::string path_;
  int fd_;
  size_t page_size_;
  /// Atomic so concurrent readers can bounds-check against a stable count
  /// while (externally serialized) allocations grow the file. release on
  /// publish / acquire on read orders the zero-fill write of a fresh page
  /// before any reader can address it.
  std::atomic<uint64_t> num_pages_;
};

}  // namespace rased

#endif  // RASED_IO_PAGE_FILE_H_
