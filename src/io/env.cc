#include "io/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/logging.h"
#include "util/str_util.h"

namespace rased {
namespace env {

namespace fs = std::filesystem;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path + " for reading");
  std::string out;
  in.seekg(0, std::ios::end);
  out.resize(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(out.data(), static_cast<std::streamsize>(out.size()));
  if (!in) return Status::IOError("short read from " + path);
  return out;
}

Status WriteFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) return Status::IOError("short write to " + tmp);
  }
  // Durability before the rename: fsync the temp file.
  int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status AppendFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("cannot open " + path + " for appending");
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::IOError("short append to " + path);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::NotFound("file_size(" + path + "): " + ec.message());
  return size;
}

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir -p " + path + ": " + ec.message());
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  std::error_code ec;
  std::vector<std::string> names;
  for (auto it = fs::directory_iterator(path, ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    names.push_back(it->path().filename().string());
  }
  if (ec) return Status::IOError("listdir " + path + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("rm -rf " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return Status::IOError("rm " + path + ": " +
                           (ec ? ec.message() : "no such file"));
  }
  return Status::OK();
}

Result<std::string> MakeTempDir(const std::string& prefix) {
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) return Status::IOError("temp_directory_path: " + ec.message());
  for (int attempt = 0; attempt < 100; ++attempt) {
    fs::path candidate =
        base / StrFormat("%s-%d-%d", prefix.c_str(), ::getpid(), attempt);
    if (fs::create_directory(candidate, ec)) return candidate.string();
  }
  return Status::IOError("cannot create unique temp dir with prefix " +
                         prefix);
}

std::string JoinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  bool a_slash = a.back() == '/';
  bool b_slash = b.front() == '/';
  if (a_slash && b_slash) return a + b.substr(1);
  if (!a_slash && !b_slash) return a + "/" + b;
  return a + b;
}

}  // namespace env

TempDir::TempDir(const std::string& prefix) {
  auto dir = env::MakeTempDir(prefix);
  if (dir.ok()) {
    path_ = std::move(dir).value();
  } else {
    RASED_LOG(Error) << "TempDir: " << dir.status().ToString();
  }
}

TempDir::~TempDir() {
  if (!path_.empty()) {
    Status s = env::RemoveAll(path_);
    if (!s.ok()) RASED_LOG(Warning) << "TempDir cleanup: " << s.ToString();
  }
}

}  // namespace rased
