#include "io/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "io/crc32c.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

namespace {

constexpr size_t kHeaderBytes = 32;
constexpr size_t kMinPageSize = 64;

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

// Full-length pread/pwrite wrappers (retry on partial transfers / EINTR).
Status PreadAll(int fd, void* buf, size_t n, uint64_t off,
                const std::string& path) {
  auto* p = static_cast<char*>(buf);
  while (n > 0) {
    ssize_t r = ::pread(fd, p, n, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", path);
    }
    if (r == 0) return Status::IOError("short read from " + path);
    p += r;
    n -= static_cast<size_t>(r);
    off += static_cast<uint64_t>(r);
  }
  return Status::OK();
}

Status PwriteAll(int fd, const void* buf, size_t n, uint64_t off,
                 const std::string& path) {
  const auto* p = static_cast<const char*>(buf);
  while (n > 0) {
    ssize_t r = ::pwrite(fd, p, n, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite", path);
    }
    p += r;
    n -= static_cast<size_t>(r);
    off += static_cast<uint64_t>(r);
  }
  return Status::OK();
}

}  // namespace

PageFile::PageFile(std::string path, int fd, size_t page_size,
                   uint64_t num_pages)
    : path_(std::move(path)),
      fd_(fd),
      page_size_(page_size),
      num_pages_(num_pages) {}

PageFile::~PageFile() {
  Status s = Sync();
  if (!s.ok()) RASED_LOG(Warning) << "PageFile close: " << s.ToString();
  ::close(fd_);
}

Result<std::unique_ptr<PageFile>> PageFile::Create(const std::string& path,
                                                   size_t page_size) {
  if (page_size < kMinPageSize) {
    return Status::InvalidArgument(
        StrFormat("page_size %zu below minimum %zu", page_size, kMinPageSize));
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return ErrnoStatus("create", path);
  auto file = std::unique_ptr<PageFile>(new PageFile(path, fd, page_size, 0));
  Status s = file->WriteHeader();
  if (!s.ok()) return s;
  return file;
}

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return ErrnoStatus("open", path);
  unsigned char header[kHeaderBytes];
  Status s = PreadAll(fd, header, sizeof(header), 0, path);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  uint32_t magic, version, crc;
  uint64_t page_size, num_pages;
  std::memcpy(&magic, header + 0, 4);
  std::memcpy(&version, header + 4, 4);
  std::memcpy(&page_size, header + 8, 8);
  std::memcpy(&num_pages, header + 16, 8);
  std::memcpy(&crc, header + 24, 4);
  if (magic != kMagic || version < kMinSupportedVersion ||
      version > kVersion) {
    ::close(fd);
    return Status::Corruption("bad page file header in " + path);
  }
  if (crc != Crc32c(header, 24)) {
    ::close(fd);
    return Status::Corruption("page file header checksum mismatch in " + path);
  }
  return std::unique_ptr<PageFile>(
      new PageFile(path, fd, static_cast<size_t>(page_size), num_pages));
}

Status PageFile::WriteHeader() {
  unsigned char header[kHeaderBytes] = {0};
  uint32_t magic = kMagic, version = kVersion;
  uint64_t page_size = page_size_, pages = num_pages();
  std::memcpy(header + 0, &magic, 4);
  std::memcpy(header + 4, &version, 4);
  std::memcpy(header + 8, &page_size, 8);
  std::memcpy(header + 16, &pages, 8);
  uint32_t crc = Crc32c(header, 24);
  std::memcpy(header + 24, &crc, 4);
  return PwriteAll(fd_, header, sizeof(header), 0, path_);
}

Result<PageId> PageFile::AllocatePage() { return AllocatePages(1); }

Result<PageId> PageFile::AllocatePages(size_t count) {
  if (count == 0) {
    return Status::InvalidArgument("AllocatePages requires count >= 1");
  }
  PageId first = num_pages() + 1;  // page ids are 1-based; 0 is the header
  std::vector<unsigned char> zero(count * page_size_, 0);
  uint32_t crc = Crc32c(zero.data(), payload_size());
  for (size_t k = 0; k < count; ++k) {
    std::memcpy(zero.data() + k * page_size_ + payload_size(), &crc, 4);
  }
  RASED_RETURN_IF_ERROR(
      PwriteAll(fd_, zero.data(), zero.size(), first * page_size_, path_));
  num_pages_.store(first + count - 1, std::memory_order_release);
  return first;
}

Status PageFile::WritePage(PageId id, const void* payload, size_t n) {
  if (id == kInvalidPageId || id > num_pages()) {
    return Status::OutOfRange(
        StrFormat("page %llu out of range (have %llu)",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(num_pages())));
  }
  if (n > payload_size()) {
    return Status::InvalidArgument(
        StrFormat("payload %zu exceeds page payload %zu", n, payload_size()));
  }
  std::vector<unsigned char> buf(page_size_, 0);
  std::memcpy(buf.data(), payload, n);
  uint32_t crc = Crc32c(buf.data(), payload_size());
  std::memcpy(buf.data() + payload_size(), &crc, 4);
  return PwriteAll(fd_, buf.data(), page_size_, id * page_size_, path_);
}

Status PageFile::ReadPage(PageId id, void* payload) const {
  if (id == kInvalidPageId || id > num_pages()) {
    return Status::OutOfRange(
        StrFormat("page %llu out of range (have %llu)",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(num_pages())));
  }
  std::vector<unsigned char> buf(page_size_);
  RASED_RETURN_IF_ERROR(
      PreadAll(fd_, buf.data(), page_size_, id * page_size_, path_));
  uint32_t stored;
  std::memcpy(&stored, buf.data() + payload_size(), 4);
  if (stored != Crc32c(buf.data(), payload_size())) {
    return Status::Corruption(
        StrFormat("checksum mismatch on page %llu of %s",
                  static_cast<unsigned long long>(id), path_.c_str()));
  }
  std::memcpy(payload, buf.data(), payload_size());
  return Status::OK();
}

Status PageFile::ReadPages(PageId first, size_t count,
                           unsigned char* pages) const {
  if (count == 0) return Status::OK();
  PageId last = first + count - 1;
  if (first == kInvalidPageId || last < first || last > num_pages()) {
    return Status::OutOfRange(
        StrFormat("page run [%llu, %llu] out of range (have %llu)",
                  static_cast<unsigned long long>(first),
                  static_cast<unsigned long long>(last),
                  static_cast<unsigned long long>(num_pages())));
  }
  RASED_RETURN_IF_ERROR(PreadAll(fd_, pages, count * page_size_,
                                 first * page_size_, path_));
  for (size_t i = 0; i < count; ++i) {
    const unsigned char* page = pages + i * page_size_;
    uint32_t stored;
    std::memcpy(&stored, page + payload_size(), 4);
    if (stored != Crc32c(page, payload_size())) {
      return Status::Corruption(
          StrFormat("checksum mismatch on page %llu of %s",
                    static_cast<unsigned long long>(first + i),
                    path_.c_str()));
    }
  }
  return Status::OK();
}

Status PageFile::Sync() {
  RASED_RETURN_IF_ERROR(WriteHeader());
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

}  // namespace rased
