#ifndef RASED_IO_CRC32C_H_
#define RASED_IO_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace rased {

/// Software CRC-32C (Castagnoli) used as the page checksum in PageFile.
/// Table-driven, one byte per step — plenty for 4 KiB..4 MiB pages off the
/// hot path.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace rased

#endif  // RASED_IO_CRC32C_H_
