#include "io/pager.h"

namespace rased {

Result<std::unique_ptr<Pager>> Pager::Create(const std::string& path,
                                             size_t page_size,
                                             const DeviceModel& device) {
  auto file = PageFile::Create(path, page_size);
  if (!file.ok()) return file.status();
  return std::unique_ptr<Pager>(new Pager(std::move(file).value(), device));
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           const DeviceModel& device) {
  auto file = PageFile::Open(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<Pager>(new Pager(std::move(file).value(), device));
}

Result<PageId> Pager::AllocatePage(IoStats* io) {
  auto id = file_->AllocatePage();
  if (id.ok()) ChargeWrite(page_size(), io);
  return id;
}

Status Pager::WritePage(PageId id, const void* payload, size_t n,
                        IoStats* io) {
  RASED_RETURN_IF_ERROR(file_->WritePage(id, payload, n));
  ChargeWrite(page_size(), io);
  return Status::OK();
}

Status Pager::ReadPage(PageId id, void* payload, IoStats* io) const {
  RASED_RETURN_IF_ERROR(file_->ReadPage(id, payload));
  ChargeRead(page_size(), io);
  return Status::OK();
}

IoStats Pager::stats() const {
  IoStats s;
  s.page_reads = page_reads_.load(std::memory_order_relaxed);
  s.page_writes = page_writes_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.simulated_device_micros =
      simulated_device_micros_.load(std::memory_order_relaxed);
  return s;
}

void Pager::ResetStats() {
  page_reads_.store(0, std::memory_order_relaxed);
  page_writes_.store(0, std::memory_order_relaxed);
  bytes_read_.store(0, std::memory_order_relaxed);
  bytes_written_.store(0, std::memory_order_relaxed);
  simulated_device_micros_.store(0, std::memory_order_relaxed);
}

void Pager::ChargeRead(size_t bytes, IoStats* io) const {
  int64_t micros =
      device_.read_latency_us +
      static_cast<int64_t>(device_.per_byte_us * static_cast<double>(bytes));
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  simulated_device_micros_.fetch_add(micros, std::memory_order_relaxed);
  if (io != nullptr) {
    ++io->page_reads;
    io->bytes_read += bytes;
    io->simulated_device_micros += micros;
  }
}

void Pager::ChargeWrite(size_t bytes, IoStats* io) {
  int64_t micros =
      device_.write_latency_us +
      static_cast<int64_t>(device_.per_byte_us * static_cast<double>(bytes));
  page_writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  simulated_device_micros_.fetch_add(micros, std::memory_order_relaxed);
  if (io != nullptr) {
    ++io->page_writes;
    io->bytes_written += bytes;
    io->simulated_device_micros += micros;
  }
}

}  // namespace rased
