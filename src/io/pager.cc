#include "io/pager.h"

namespace rased {

Result<std::unique_ptr<Pager>> Pager::Create(const std::string& path,
                                             size_t page_size,
                                             const DeviceModel& device) {
  auto file = PageFile::Create(path, page_size);
  if (!file.ok()) return file.status();
  return std::unique_ptr<Pager>(new Pager(std::move(file).value(), device));
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           const DeviceModel& device) {
  auto file = PageFile::Open(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<Pager>(new Pager(std::move(file).value(), device));
}

Result<PageId> Pager::AllocatePage() {
  auto id = file_->AllocatePage();
  if (id.ok()) ChargeWrite(page_size());
  return id;
}

Status Pager::WritePage(PageId id, const void* payload, size_t n) {
  RASED_RETURN_IF_ERROR(file_->WritePage(id, payload, n));
  ChargeWrite(page_size());
  return Status::OK();
}

Status Pager::ReadPage(PageId id, void* payload) {
  RASED_RETURN_IF_ERROR(file_->ReadPage(id, payload));
  ChargeRead(page_size());
  return Status::OK();
}

void Pager::ChargeRead(size_t bytes) {
  ++stats_.page_reads;
  stats_.bytes_read += bytes;
  stats_.simulated_device_micros +=
      device_.read_latency_us +
      static_cast<int64_t>(device_.per_byte_us * static_cast<double>(bytes));
}

void Pager::ChargeWrite(size_t bytes) {
  ++stats_.page_writes;
  stats_.bytes_written += bytes;
  stats_.simulated_device_micros +=
      device_.write_latency_us +
      static_cast<int64_t>(device_.per_byte_us * static_cast<double>(bytes));
}

}  // namespace rased
