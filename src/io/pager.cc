#include "io/pager.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <optional>
#include <vector>

namespace rased {

Result<std::unique_ptr<Pager>> Pager::Create(const std::string& path,
                                             size_t page_size,
                                             const DeviceModel& device) {
  auto file = PageFile::Create(path, page_size);
  if (!file.ok()) return file.status();
  return std::unique_ptr<Pager>(new Pager(std::move(file).value(), device));
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           const DeviceModel& device) {
  auto file = PageFile::Open(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<Pager>(new Pager(std::move(file).value(), device));
}

Result<PageId> Pager::AllocatePage(IoStats* io) {
  std::optional<PageId> reused;
  {
    MutexLock lock(&free_mu_);
    if (!free_pool_.empty()) {
      reused = free_pool_.back();
      free_pool_.pop_back();
    }
  }
  if (reused.has_value()) {
    // Same charge as a fresh allocation: reuse changes placement, not the
    // device model's accounting.
    ChargeWrite(page_size(), io);
    return *reused;
  }
  auto id = file_->AllocatePage();
  if (id.ok()) ChargeWrite(page_size(), io);
  return id;
}

Result<PageId> Pager::AllocateRun(size_t count, IoStats* io) {
  if (count == 0) {
    return Status::InvalidArgument("AllocateRun requires count >= 1");
  }
  if (count == 1) return AllocatePage(io);
  std::optional<PageId> reused;
  {
    MutexLock lock(&free_mu_);
    if (free_pool_.size() >= count) {
      // Sorting is fine here: the pool is order-free (reuse order only
      // affects placement, never accounting).
      std::sort(free_pool_.begin(), free_pool_.end());
      size_t run_start = 0;
      for (size_t i = 1; i < free_pool_.size() && !reused.has_value(); ++i) {
        if (free_pool_[i] != free_pool_[i - 1] + 1) run_start = i;
        if (i - run_start + 1 == count) {
          reused = free_pool_[run_start];
          free_pool_.erase(
              free_pool_.begin() + static_cast<ptrdiff_t>(run_start),
              free_pool_.begin() + static_cast<ptrdiff_t>(i + 1));
        }
      }
    }
  }
  if (reused.has_value()) {
    for (size_t k = 0; k < count; ++k) ChargeWrite(page_size(), io);
    return *reused;
  }
  auto first = file_->AllocatePages(count);
  if (first.ok()) {
    for (size_t k = 0; k < count; ++k) ChargeWrite(page_size(), io);
  }
  return first;
}

void Pager::ReleasePages(std::span<const PageId> ids) {
  if (ids.empty()) return;
  MutexLock lock(&free_mu_);
  free_pool_.insert(free_pool_.end(), ids.begin(), ids.end());
}

size_t Pager::free_pages() const {
  MutexLock lock(&free_mu_);
  return free_pool_.size();
}

Status Pager::WritePage(PageId id, const void* payload, size_t n,
                        IoStats* io) {
  RASED_RETURN_IF_ERROR(file_->WritePage(id, payload, n));
  ChargeWrite(page_size(), io);
  return Status::OK();
}

Status Pager::ReadPage(PageId id, void* payload, IoStats* io) const {
  RASED_RETURN_IF_ERROR(file_->ReadPage(id, payload));
  ChargeReadRun(1, page_size(), io);
  return Status::OK();
}

Status Pager::ReadPages(std::span<const PageId> ids, unsigned char* payloads,
                        IoStats* io) const {
  const size_t n = ids.size();
  if (n == 0) return Status::OK();
  // Sort *positions* by page id so physically adjacent pages coalesce into
  // single preads while each payload still lands in its input-order slot.
  // Ties (duplicate ids) keep input order, making the whole pass a pure
  // function of the id sequence.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&ids](size_t a, size_t b) {
    if (ids[a] != ids[b]) return ids[a] < ids[b];
    return a < b;
  });

  const size_t psize = page_size();
  const size_t payload = payload_size();
  std::vector<unsigned char> run_buf;
  size_t start = 0;
  while (start < n) {
    size_t len = 1;
    while (start + len < n &&
           ids[order[start + len]] == ids[order[start + len - 1]] + 1) {
      ++len;
    }
    run_buf.resize(len * psize);
    RASED_RETURN_IF_ERROR(
        file_->ReadPages(ids[order[start]], len, run_buf.data()));
    for (size_t k = 0; k < len; ++k) {
      std::memcpy(payloads + order[start + k] * payload,
                  run_buf.data() + k * psize, payload);
    }
    ChargeReadRun(len, len * psize, io);
    start += len;
  }
  return Status::OK();
}

IoStats Pager::stats() const {
  IoStats s;
  s.page_reads = page_reads_.load(std::memory_order_relaxed);
  s.page_writes = page_writes_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.read_ops = read_ops_.load(std::memory_order_relaxed);
  s.write_ops = write_ops_.load(std::memory_order_relaxed);
  s.simulated_device_micros =
      simulated_device_micros_.load(std::memory_order_relaxed);
  return s;
}

void Pager::ResetStats() {
  page_reads_.store(0, std::memory_order_relaxed);
  page_writes_.store(0, std::memory_order_relaxed);
  bytes_read_.store(0, std::memory_order_relaxed);
  bytes_written_.store(0, std::memory_order_relaxed);
  read_ops_.store(0, std::memory_order_relaxed);
  write_ops_.store(0, std::memory_order_relaxed);
  simulated_device_micros_.store(0, std::memory_order_relaxed);
}

void Pager::ChargeReadRun(size_t pages, size_t bytes, IoStats* io) const {
  int64_t micros =
      device_.read_latency_us +
      static_cast<int64_t>(device_.per_byte_us * static_cast<double>(bytes));
  page_reads_.fetch_add(pages, std::memory_order_relaxed);
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  read_ops_.fetch_add(1, std::memory_order_relaxed);
  simulated_device_micros_.fetch_add(micros, std::memory_order_relaxed);
  if (io != nullptr) {
    io->page_reads += pages;
    io->bytes_read += bytes;
    io->read_ops += 1;
    io->simulated_device_micros += micros;
  }
  if (metrics_.page_reads != nullptr) {
    metrics_.page_reads->Increment(pages);
    metrics_.bytes_read->Increment(bytes);
    metrics_.read_ops->Increment();
    if (pages > 1) metrics_.coalesced_pages->Increment(pages);
    metrics_.device_micros->Increment(static_cast<uint64_t>(micros));
  }
}

void Pager::ChargeWrite(size_t bytes, IoStats* io) {
  int64_t micros =
      device_.write_latency_us +
      static_cast<int64_t>(device_.per_byte_us * static_cast<double>(bytes));
  page_writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  write_ops_.fetch_add(1, std::memory_order_relaxed);
  simulated_device_micros_.fetch_add(micros, std::memory_order_relaxed);
  if (io != nullptr) {
    ++io->page_writes;
    io->bytes_written += bytes;
    io->write_ops += 1;
    io->simulated_device_micros += micros;
  }
  if (metrics_.page_writes != nullptr) {
    metrics_.page_writes->Increment();
    metrics_.bytes_written->Increment(bytes);
    metrics_.write_ops->Increment();
    metrics_.device_micros->Increment(static_cast<uint64_t>(micros));
  }
}

void Pager::RegisterMetrics(MetricsRegistry* registry,
                            std::string_view file_label) {
  if (registry == nullptr) return;
  MetricLabels labels{{"file", std::string(file_label)}};
  metrics_.page_reads = registry->GetCounter(
      "rased_pager_page_reads_total", "Pages transferred from disk", labels);
  metrics_.page_writes = registry->GetCounter(
      "rased_pager_page_writes_total", "Pages transferred to disk", labels);
  metrics_.bytes_read = registry->GetCounter("rased_pager_bytes_read_total",
                                             "Bytes read from disk", labels);
  metrics_.bytes_written = registry->GetCounter(
      "rased_pager_bytes_written_total", "Bytes written to disk", labels);
  metrics_.read_ops = registry->GetCounter(
      "rased_pager_read_ops_total",
      "Device read operations (one per coalesced run of adjacent pages)",
      labels);
  metrics_.write_ops = registry->GetCounter("rased_pager_write_ops_total",
                                            "Device write operations", labels);
  metrics_.coalesced_pages = registry->GetCounter(
      "rased_pager_coalesced_pages_total",
      "Pages read as part of multi-page coalesced runs", labels);
  metrics_.device_micros = registry->GetCounter(
      "rased_pager_device_micros_total",
      "Simulated device-model time charged for transfers (microseconds)",
      labels);
}

}  // namespace rased
