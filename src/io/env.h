#ifndef RASED_IO_ENV_H_
#define RASED_IO_ENV_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace rased {

/// Thin filesystem helpers shared by every on-disk component. All paths are
/// plain POSIX paths; no global state.
namespace env {

/// Reads the entire file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes (truncating) the whole buffer to the file.
Status WriteFile(const std::string& path, std::string_view contents);

/// Crash-safe replacement: writes to a temp file in the same directory,
/// fsyncs, then atomically renames over `path`. Readers never observe a
/// torn file. Used for index catalogs and other metadata.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Appends the buffer to the file, creating it when absent.
Status AppendFile(const std::string& path, std::string_view contents);

bool FileExists(const std::string& path);

/// Size in bytes, NotFound when missing.
Result<uint64_t> FileSize(const std::string& path);

/// mkdir -p.
Status CreateDirs(const std::string& path);

/// Non-recursive directory listing (file and subdirectory names, sorted).
Result<std::vector<std::string>> ListDir(const std::string& path);

/// rm -rf; OK when the path does not exist.
Status RemoveAll(const std::string& path);

Status RemoveFile(const std::string& path);

/// Creates a fresh unique directory under the system temp dir with the
/// given prefix and returns its path.
Result<std::string> MakeTempDir(const std::string& prefix);

/// Joins two path fragments with exactly one '/'.
std::string JoinPath(const std::string& a, const std::string& b);

}  // namespace env

/// RAII temp directory: created on construction, recursively removed on
/// destruction. Aborts construction failure via valid()==false.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "rased");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  bool valid() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace rased

#endif  // RASED_IO_ENV_H_
