#ifndef RASED_IO_PAGER_H_
#define RASED_IO_PAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "io/page_file.h"
#include "obs/metrics_registry.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rased {

/// Cost model for the storage device beneath a Pager.
///
/// RASED's experiments (Figures 7, 9, 10 of the paper) are fundamentally
/// I/O-count stories: the hierarchy + optimizer shrink the number of cube
/// pages fetched, and the cache turns the survivors into memory hits. To
/// make the reproduced curves deterministic and independent of whatever SSD
/// or page cache this host has, the Pager *counts* real page transfers and
/// charges each one a fixed virtual device cost. Wall-clock numbers reported
/// by QueryStats are cpu time + simulated device time.
///
/// Setting all fields to zero gives a pure pass-through pager.
struct DeviceModel {
  /// Charged per page read (default models a ~2 ms random read).
  int64_t read_latency_us = 2000;
  /// Charged per page write.
  int64_t write_latency_us = 2000;
  /// Additional throughput term, charged per byte transferred.
  /// Default models ~500 MB/s sequential bandwidth.
  double per_byte_us = 1.0 / 500.0 / 1.048576;  // us per byte at 500 MiB/s

  static DeviceModel None() { return DeviceModel{0, 0, 0.0}; }
};

/// I/O statistics: either the running totals of a Pager or the per-call
/// accounting of one query/maintenance pass (a plain value, so each query
/// carries its own instance with no shared state).
///
/// `page_reads`/`bytes_read` count *transfers* and are identical between
/// the serial and batched read paths; `read_ops` counts *device
/// operations* (seeks) — a coalesced run of adjacent pages is one op, so
/// batched reads show read_ops <= page_reads.
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  /// Device operations issued (one per coalesced run of adjacent pages on
  /// the batched path; equal to page_reads/page_writes on serial paths).
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  /// Total virtual device time charged by the DeviceModel.
  int64_t simulated_device_micros = 0;

  IoStats& operator+=(const IoStats& o) {
    page_reads += o.page_reads;
    page_writes += o.page_writes;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    read_ops += o.read_ops;
    write_ops += o.write_ops;
    simulated_device_micros += o.simulated_device_micros;
    return *this;
  }
  friend IoStats operator-(IoStats a, const IoStats& b) {
    a.page_reads -= b.page_reads;
    a.page_writes -= b.page_writes;
    a.bytes_read -= b.bytes_read;
    a.bytes_written -= b.bytes_written;
    a.read_ops -= b.read_ops;
    a.write_ops -= b.write_ops;
    a.simulated_device_micros -= b.simulated_device_micros;
    return a;
  }
  friend bool operator==(const IoStats& a, const IoStats& b) {
    return a.page_reads == b.page_reads && a.page_writes == b.page_writes &&
           a.bytes_read == b.bytes_read &&
           a.bytes_written == b.bytes_written && a.read_ops == b.read_ops &&
           a.write_ops == b.write_ops &&
           a.simulated_device_micros == b.simulated_device_micros;
  }
};

/// Pager mediates all page traffic to one PageFile, accounting every
/// transfer against the DeviceModel. Higher layers (index storage, the
/// warehouse heap, the baseline DBMS buffer pool) never touch PageFile
/// directly, so every experiment's I/O counts come from one place.
///
/// Threading contract: the global counters behind stats() are atomics, so
/// any number of threads may read pages (and account transfers)
/// concurrently — concurrent ReadPage calls are positional preads and do
/// not interfere. Each call additionally charges the transfer to the
/// caller-supplied per-call `IoStats* io` (when non-null), which is how a
/// query accumulates *its own* I/O with no cross-thread bleed-through.
/// AllocatePage/WritePage grow and mutate the file and require external
/// serialization against each other and against readers of the same pages
/// (in RASED, ingestion is serialized by the index's maintenance mutex);
/// the free-page pool itself is internally synchronized.
class Pager {
 public:
  /// Creates a new page file at `path`.
  static Result<std::unique_ptr<Pager>> Create(const std::string& path,
                                               size_t page_size,
                                               const DeviceModel& device);

  /// Opens an existing page file.
  static Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                             const DeviceModel& device);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Every transfer is charged to the global (atomic) counters, and — when
  /// `io` is non-null — to the caller's per-call accounting too.
  ///
  /// Allocation prefers the free-page pool (pages retired by MVCC catalog
  /// reclamation, see ReleasePages) before extending the file; either way
  /// the charge is one page write, so device accounting is identical
  /// whether a page is fresh or reused.
  Result<PageId> AllocatePage(IoStats* io = nullptr);

  /// Allocates `count` pages with physically consecutive ids (a multi-page
  /// encoded cube blob must land contiguous so one pread fetches it; see
  /// cube/cube_codec.h) and returns the first id. A consecutive run inside
  /// the free pool is reused when one exists; otherwise the file is
  /// extended. Charges one page write per page, exactly like `count`
  /// AllocatePage calls.
  Result<PageId> AllocateRun(size_t count, IoStats* io = nullptr);

  Status WritePage(PageId id, const void* payload, size_t n,
                   IoStats* io = nullptr);
  Status ReadPage(PageId id, void* payload, IoStats* io = nullptr) const;

  /// Batched read. Sorts the batch by page id, coalesces runs of
  /// physically adjacent pages, and issues one large pread per run.
  ///
  /// `payloads` receives payload_size() bytes per page, laid out at
  /// payload_size() stride in the *input* order of `ids` (the sort is
  /// internal), so callers get a dense, order-preserving result buffer.
  ///
  /// Device accounting is deterministic and strictly comparable to the
  /// serial path: each coalesced run charges one seek (read_latency_us)
  /// plus the per-byte transfer term for every page in the run, so
  /// page_reads/bytes_read equal the serial path's exactly while read_ops
  /// and simulated_device_micros shrink with coalescing. Duplicate ids are
  /// re-read (a duplicate breaks a run), keeping the charge a pure
  /// function of the id multiset. Like ReadPage, const and safe from any
  /// number of threads concurrently.
  Status ReadPages(std::span<const PageId> ids, unsigned char* payloads,
                   IoStats* io = nullptr) const;

  /// Returns retired pages to the free pool for reuse by later
  /// AllocatePage calls. No I/O is charged: the pages stay allocated in
  /// the file; only their ownership moves. Callers must guarantee no
  /// reader can still resolve these ids (in RASED, the index's
  /// epoch-based reclamation releases a version's dropped pages only
  /// after the last snapshot pinning that version drains). Duplicate or
  /// repeated releases of a live page corrupt the file; the pool itself
  /// is safe to call from any thread.
  void ReleasePages(std::span<const PageId> ids) RASED_EXCLUDES(free_mu_);

  /// Pages currently in the free pool (diagnostics / tests).
  size_t free_pages() const RASED_EXCLUDES(free_mu_);

  size_t page_size() const { return file_->page_size(); }
  size_t payload_size() const { return file_->payload_size(); }
  uint64_t num_pages() const { return file_->num_pages(); }

  /// Consistent-enough snapshot of the running totals (each field is read
  /// atomically; fields of a snapshot taken during concurrent traffic may
  /// be from slightly different instants).
  IoStats stats() const;
  void ResetStats();

  const DeviceModel& device() const { return device_; }
  void set_device(const DeviceModel& device) { device_ = device; }

  /// Registers this pager's transfer counters in `registry` as the
  /// rased_pager_* families labeled {file=<file_label>} ("index",
  /// "warehouse", ...). Call once, before concurrent traffic (right after
  /// Create/Open); the live counters mirror every subsequent charge and,
  /// unlike stats(), are never reset by ResetStats(). Passing nullptr is a
  /// no-op, leaving the pager unmetered.
  void RegisterMetrics(MetricsRegistry* registry, std::string_view file_label);

  Status Sync() { return file_->Sync(); }

 private:
  Pager(std::unique_ptr<PageFile> file, const DeviceModel& device)
      : file_(std::move(file)), device_(device) {}

  /// One device read op transferring `pages` adjacent pages (`bytes`
  /// total): one seek + per-byte transfer. The serial ReadPage path is
  /// the pages == 1 case.
  void ChargeReadRun(size_t pages, size_t bytes, IoStats* io) const;
  void ChargeWrite(size_t bytes, IoStats* io);

  std::unique_ptr<PageFile> file_ RASED_CONST_AFTER_INIT;
  DeviceModel device_ RASED_CONST_AFTER_INIT;

  /// Free pool: page ids retired by catalog reclamation, reused LIFO by
  /// AllocatePage. Kept sorted-free (plain stack) — reuse order only
  /// affects physical placement, never accounting.
  mutable Mutex free_mu_;
  std::vector<PageId> free_pool_ RASED_GUARDED_BY(free_mu_);

  /// Registry handles (all set together by RegisterMetrics, else all
  /// null). Updated with relaxed atomics inside the Charge functions, so
  /// metering adds no locking to the read path.
  struct PagerMetrics {
    Counter* page_reads = nullptr;
    Counter* page_writes = nullptr;
    Counter* bytes_read = nullptr;
    Counter* bytes_written = nullptr;
    Counter* read_ops = nullptr;
    Counter* write_ops = nullptr;
    Counter* coalesced_pages = nullptr;
    Counter* device_micros = nullptr;
  };
  /// Set once by RegisterMetrics before any concurrent use.
  PagerMetrics metrics_ RASED_CONST_AFTER_INIT;

  // Global running totals. Relaxed ordering: the counters are monotonic
  // telemetry, never used to synchronize data.
  mutable std::atomic<uint64_t> page_reads_{0};
  std::atomic<uint64_t> page_writes_{0};
  mutable std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  mutable std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> write_ops_{0};
  mutable std::atomic<int64_t> simulated_device_micros_{0};
};

}  // namespace rased

#endif  // RASED_IO_PAGER_H_
