#ifndef RASED_DASHBOARD_DASHBOARD_SERVICE_H_
#define RASED_DASHBOARD_DASHBOARD_SERVICE_H_

#include <memory>
#include <string>

#include "core/rased.h"
#include "dashboard/http_server.h"
#include "dashboard/render.h"
#include "util/thread_annotations.h"

namespace rased {

/// The RASED web dashboard: a REST API plus a self-contained HTML page,
/// backed by one Rased instance. Endpoints:
///
///   GET /                  interactive HTML dashboard
///   GET /api/query         analysis query
///       ?from=2021-01-01&to=2021-12-31
///       &countries=Germany,Qatar          (names; empty = all)
///       &element_types=node,way,relation
///       &road_types=residential,service
///       &update_types=new,delete,geometry,metadata
///       &group=country,element_type,date,road_type,update_type
///       &percentage=1
///       &format=json|table|bar|timeseries|choropleth|pivot
///   GET /api/sql           the same analysis queries in the paper's SQL
///       ?q=SELECT Country, COUNT(*) FROM UpdateList ... GROUP BY Country
///       &format=...        (same formats as /api/query)
///   GET /api/sample        sample update queries (Section IV-B)
///       ?changeset=<id>  |  ?min_lat=..&min_lon=..&max_lat=..&max_lon=..&n=100
///   GET /api/zones         the Country dimension (id, name, kind, size)
///   GET /api/stats         index/cache/storage statistics
class DashboardService {
 public:
  /// `rased` must outlive the service.
  explicit DashboardService(Rased* rased);

  /// Starts serving on 127.0.0.1:`port` (0 = ephemeral).
  Status Start(int port);
  void Stop() { server_.Stop(); }
  int port() const { return server_.port(); }

  /// Parses /api/query parameters into an AnalysisQuery (exposed for
  /// tests). Unknown names return InvalidArgument. Reads index coverage
  /// and resolves names through the Rased instance, hence the lock.
  Result<AnalysisQuery> ParseQueryParams(const HttpRequest& request) const
      RASED_EXCLUDES(rased_mu_) {
    MutexLock lock(&rased_mu_);
    return ParseQueryParamsLocked(request);
  }

 private:
  Result<AnalysisQuery> ParseQueryParamsLocked(const HttpRequest& request)
      const RASED_REQUIRES(rased_mu_);

  void HandleIndex(const HttpRequest& request, HttpResponse* response);
  void HandleQuery(const HttpRequest& request, HttpResponse* response)
      RASED_EXCLUDES(rased_mu_);
  void HandleSql(const HttpRequest& request, HttpResponse* response)
      RASED_EXCLUDES(rased_mu_);
  /// Executes a parsed query and renders it per the `format` param;
  /// callers hold rased_mu_.
  void ExecuteAndRender(const AnalysisQuery& query,
                        const HttpRequest& request, HttpResponse* response)
      RASED_REQUIRES(rased_mu_);
  void HandleSample(const HttpRequest& request, HttpResponse* response)
      RASED_EXCLUDES(rased_mu_);
  void HandleZones(const HttpRequest& request, HttpResponse* response)
      RASED_EXCLUDES(rased_mu_);
  void HandleStats(const HttpRequest& request, HttpResponse* response)
      RASED_EXCLUDES(rased_mu_);

  /// The HTTP workers run handlers concurrently, but a Rased instance is
  /// single-threaded by contract (queries mutate pager statistics and
  /// drive the non-thread-safe pager); rased_mu_ serializes every access
  /// to it. The annotation is on the pointee: the pointer itself is set
  /// once in the constructor and never reassigned.
  mutable Mutex rased_mu_;
  Rased* const rased_ RASED_PT_GUARDED_BY(rased_mu_);
  RenderContext ctx_;
  HttpServer server_;
};

}  // namespace rased

#endif  // RASED_DASHBOARD_DASHBOARD_SERVICE_H_
