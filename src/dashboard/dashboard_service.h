#ifndef RASED_DASHBOARD_DASHBOARD_SERVICE_H_
#define RASED_DASHBOARD_DASHBOARD_SERVICE_H_

#include <memory>
#include <string>

#include "core/rased.h"
#include "dashboard/http_server.h"
#include "dashboard/render.h"
#include "util/thread_annotations.h"

namespace rased {

/// The RASED web dashboard: a REST API plus a self-contained HTML page,
/// backed by one Rased instance. Endpoints:
///
///   GET /                  interactive HTML dashboard
///   GET /api/query         analysis query
///       ?from=2021-01-01&to=2021-12-31
///       &countries=Germany,Qatar          (names; empty = all)
///       &element_types=node,way,relation
///       &road_types=residential,service
///       &update_types=new,delete,geometry,metadata
///       &group=country,element_type,date,road_type,update_type
///       &percentage=1
///       &format=json|table|bar|timeseries|choropleth|pivot
///   GET /api/sql           the same analysis queries in the paper's SQL
///       ?q=SELECT Country, COUNT(*) FROM UpdateList ... GROUP BY Country
///       &format=...        (same formats as /api/query)
///   GET /api/sample        sample update queries (Section IV-B)
///       ?changeset=<id>  |  ?min_lat=..&min_lon=..&max_lat=..&max_lon=..&n=100
///   GET /api/zones         the Country dimension (id, name, kind, size)
///   GET /api/stats         index/cache/storage statistics
///   GET /api/trace         recent query traces (per-span wall + device time)
///   GET /metrics           Prometheus text exposition of every registered
///                          metric (content type text/plain; version=0.0.4)
///
/// All endpoints are GET-only; a known path with another method is 405.
class DashboardService {
 public:
  /// `rased` must outlive the service.
  explicit DashboardService(Rased* rased);

  /// Starts serving on 127.0.0.1:`port` (0 = ephemeral) with a pool of
  /// `num_workers` HTTP threads handling requests concurrently.
  Status Start(int port, int num_workers = 8);
  void Stop() { server_.Stop(); }
  int port() const { return server_.port(); }

  /// Parses /api/query parameters into an AnalysisQuery (exposed for
  /// tests). Unknown names return InvalidArgument. Reads index coverage
  /// and resolves names through the Rased instance's const read path.
  Result<AnalysisQuery> ParseQueryParams(const HttpRequest& request) const;

 private:
  void HandleIndex(const HttpRequest& request, HttpResponse* response);
  void HandleQuery(const HttpRequest& request, HttpResponse* response);
  void HandleSql(const HttpRequest& request, HttpResponse* response);
  /// Executes a parsed query and renders it per the `format` param.
  void ExecuteAndRender(const AnalysisQuery& query,
                        const HttpRequest& request, HttpResponse* response);
  void HandleSample(const HttpRequest& request, HttpResponse* response);
  void HandleZones(const HttpRequest& request, HttpResponse* response);
  void HandleStats(const HttpRequest& request, HttpResponse* response);
  void HandleTrace(const HttpRequest& request, HttpResponse* response);
  void HandleMetrics(const HttpRequest& request, HttpResponse* response);

  /// The HTTP workers run handlers concurrently against the Rased
  /// instance directly: its query family is const and internally guarded
  /// by a reader-writer lock, the index catalog and cube cache are
  /// internally synchronized, and every query accumulates I/O into its
  /// own QueryStats. The service itself holds no lock — the days of the
  /// big rased_mu_ serializing every endpoint are over.
  Rased* const rased_;
  RenderContext ctx_;
  HttpServer server_;

  /// /api/stats is served off the instance registry (the same numbers
  /// /metrics exports) — handles resolved once in the ctor. Counters are
  /// cumulative since boot; gauges track the live component state.
  struct StatsHandles {
    Gauge* cubes_per_level[kNumLevels] = {nullptr, nullptr, nullptr, nullptr};
    Gauge* file_bytes = nullptr;
    Gauge* cache_budget_bytes = nullptr;
    Gauge* cache_resident = nullptr;
    Gauge* cache_resident_bytes = nullptr;
    Counter* cache_hits = nullptr;
    Counter* cache_misses = nullptr;
  };
  StatsHandles stats_;
};

}  // namespace rased

#endif  // RASED_DASHBOARD_DASHBOARD_SERVICE_H_
