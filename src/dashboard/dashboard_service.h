#ifndef RASED_DASHBOARD_DASHBOARD_SERVICE_H_
#define RASED_DASHBOARD_DASHBOARD_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/rased.h"
#include "dashboard/http_server.h"
#include "dashboard/render.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "util/thread_annotations.h"

namespace rased {

/// Self-monitoring knobs (DESIGN.md §12). Defaults suit a serving
/// instance; tests disable the background sampler and drive
/// history()->SampleOnce() under a FakeClock for determinism.
struct DashboardOptions {
  MetricsHistoryOptions selfstats;
  SloOptions slo;
  /// Readiness: ingest counts as wedged when rased_ingest_lag_sequences
  /// is nonzero and the last CatchUp progress stamp
  /// (rased_ingest_last_progress_micros) is older than this.
  int64_t max_ingest_idle_micros = 15 * 60 * 1000000LL;
  /// Start() launches the background selfstats sampler.
  bool start_sampler = true;
  /// Always-on CPU profiler (obs/profiler.h): Start() joins the
  /// process-wide profiler with these options (refcounted, so several
  /// services share one profiler) and registers its rased_profiler_*
  /// series plus a sample drop-rate SLO objective. Tests that want a
  /// signal-free process set start_profiler = false.
  ProfilerOptions profiler;
  bool start_profiler = true;
};

/// The RASED web dashboard: a REST API plus a self-contained HTML page,
/// backed by one Rased instance. Endpoints:
///
///   GET /                  interactive HTML dashboard
///   GET /api/query         analysis query
///       ?from=2021-01-01&to=2021-12-31
///       &countries=Germany,Qatar          (names; empty = all)
///       &element_types=node,way,relation
///       &road_types=residential,service
///       &update_types=new,delete,geometry,metadata
///       &group=country,element_type,date,road_type,update_type
///       &percentage=1
///       &format=json|table|bar|timeseries|choropleth|pivot
///   GET /api/sql           the same analysis queries in the paper's SQL
///       ?q=SELECT Country, COUNT(*) FROM UpdateList ... GROUP BY Country
///       &format=...        (same formats as /api/query)
///   GET /api/sample        sample update queries (Section IV-B)
///       ?changeset=<id>  |  ?min_lat=..&min_lon=..&max_lat=..&max_lon=..&n=100
///   GET /api/zones         the Country dimension (id, name, kind, size)
///   GET /api/stats         index/cache/storage statistics
///   GET /api/trace         recent query traces (per-span wall + device time,
///                          exact per-query heap attribution)
///       ?worst=1           instead: worst trace id per latency bucket since
///                          the last drain (histogram exemplars)
///   GET /api/profile       CPU profile, folded stacks or JSON
///       ?seconds=5         on-demand capture of the next N seconds (<=30)
///       ?window=60         instead: merge retained always-on windows
///                          covering the trailing N seconds
///       &format=folded|json
///   GET /api/selfstats     retained metric history (obs/timeseries.h)
///       ?family=rased_queries_total      (empty = all series)
///       &window=3600                     (seconds back from now; 0 = all)
///       &format=json|tsv                 (tsv feeds `rased top`)
///   GET /healthz           liveness: 200 "ok" whenever the server runs
///   GET /readyz            readiness: 200/503 + per-check JSON (catalog
///                          published, ingest not wedged, SLO not burning)
///   GET /metrics           Prometheus text exposition of every registered
///                          metric (content type text/plain; version=0.0.4)
///
/// All endpoints are GET-only; a known path with another method is 405.
/// Every response carries X-Rased-Trace-Id (obs/request_context.h).
class DashboardService {
 public:
  /// `rased` must outlive the service.
  explicit DashboardService(Rased* rased,
                            const DashboardOptions& options = {});

  /// Starts serving on 127.0.0.1:`port` (0 = ephemeral) with a pool of
  /// `num_workers` HTTP threads handling requests concurrently, and (per
  /// options) the background selfstats sampler.
  Status Start(int port, int num_workers = 8);
  void Stop();
  int port() const { return server_.port(); }

  /// Self-monitoring internals (exposed for tests and `rased top`).
  MetricsHistory* history() { return &history_; }
  SloTracker* slo() { return &slo_; }

  /// Parses /api/query parameters into an AnalysisQuery (exposed for
  /// tests). Unknown names return InvalidArgument. Reads index coverage
  /// and resolves names through the Rased instance's const read path.
  Result<AnalysisQuery> ParseQueryParams(const HttpRequest& request) const;

 private:
  void HandleIndex(const HttpRequest& request, HttpResponse* response);
  void HandleQuery(const HttpRequest& request, HttpResponse* response);
  void HandleSql(const HttpRequest& request, HttpResponse* response);
  /// Executes a parsed query and renders it per the `format` param.
  void ExecuteAndRender(const AnalysisQuery& query,
                        const HttpRequest& request, HttpResponse* response);
  void HandleSample(const HttpRequest& request, HttpResponse* response);
  void HandleZones(const HttpRequest& request, HttpResponse* response);
  void HandleStats(const HttpRequest& request, HttpResponse* response);
  void HandleTrace(const HttpRequest& request, HttpResponse* response);
  void HandleWorstTraces(HttpResponse* response);
  void HandleProfile(const HttpRequest& request, HttpResponse* response);
  void HandleMetrics(const HttpRequest& request, HttpResponse* response);
  void HandleSelfstats(const HttpRequest& request, HttpResponse* response);
  void HandleHealthz(const HttpRequest& request, HttpResponse* response);
  void HandleReadyz(const HttpRequest& request, HttpResponse* response);

  /// The HTTP workers run handlers concurrently against the Rased
  /// instance directly: its query family is const and internally guarded
  /// by a reader-writer lock, the index catalog and cube cache are
  /// internally synchronized, and every query accumulates I/O into its
  /// own QueryStats. The service itself holds no lock — the days of the
  /// big rased_mu_ serializing every endpoint are over.
  Rased* const rased_;
  const DashboardOptions options_;
  RenderContext ctx_;
  HttpServer server_;

  /// Self-monitoring: the history samples the instance registry; the SLO
  /// tracker re-evaluates after every sample (post-sample hook) and on
  /// every /readyz probe.
  MetricsHistory history_;
  SloTracker slo_;
  /// Whether Start() joined the process profiler (so Stop() leaves it).
  bool profiler_started_ = false;

  /// Readiness handles (registered here if the ingestor has not yet):
  /// lag in sequences and the NowMicros stamp of the last CatchUp.
  Gauge* ingest_lag_sequences_;
  Gauge* ingest_last_progress_;

  /// /api/stats is served off the instance registry (the same numbers
  /// /metrics exports) — handles resolved once in the ctor. Counters are
  /// cumulative since boot; gauges track the live component state.
  struct StatsHandles {
    Gauge* cubes_per_level[kNumLevels] = {nullptr, nullptr, nullptr, nullptr};
    Gauge* file_bytes = nullptr;
    Gauge* cache_budget_bytes = nullptr;
    Gauge* cache_resident = nullptr;
    Gauge* cache_resident_bytes = nullptr;
    Counter* cache_hits = nullptr;
    Counter* cache_misses = nullptr;
  };
  StatsHandles stats_;
};

}  // namespace rased

#endif  // RASED_DASHBOARD_DASHBOARD_SERVICE_H_
