#include "dashboard/json_writer.h"

#include <cmath>

#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; no comma
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_.push_back(',');
    has_value_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  has_value_.push_back(false);
}

void JsonWriter::EndObject() {
  RASED_CHECK(!has_value_.empty());
  has_value_.pop_back();
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  has_value_.push_back(false);
}

void JsonWriter::EndArray() {
  RASED_CHECK(!has_value_.empty());
  has_value_.pop_back();
  out_.push_back(']');
}

void JsonWriter::Key(std::string_view key) {
  RASED_CHECK(!pending_key_) << "two keys in a row";
  MaybeComma();
  out_.push_back('"');
  AppendEscaped(key);
  out_.append("\":");
  pending_key_ = true;
}

void JsonWriter::Value(std::string_view value) {
  MaybeComma();
  out_.push_back('"');
  AppendEscaped(value);
  out_.push_back('"');
}

void JsonWriter::Value(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
}

void JsonWriter::Value(uint64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
}

void JsonWriter::Value(double value) {
  MaybeComma();
  if (std::isfinite(value)) {
    out_ += StrFormat("%.6g", value);
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
}

void JsonWriter::Value(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

std::string JsonWriter::Finish() && {
  RASED_CHECK(has_value_.empty()) << "unbalanced JSON writer";
  return std::move(out_);
}

void JsonWriter::AppendEscaped(std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += StrFormat("\\u%04x", c);
        } else {
          out_.push_back(c);
        }
    }
  }
}

}  // namespace rased
