#include "dashboard/render.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "dashboard/json_writer.h"
#include "util/str_util.h"

namespace rased {

std::string RenderContext::CountryName(int32_t id) const {
  if (id < 0) return "*";
  if (world == nullptr || static_cast<size_t>(id) >= world->num_zones()) {
    return StrFormat("zone-%d", id);
  }
  return world->zone(static_cast<ZoneId>(id)).name;
}

std::string RenderContext::RoadTypeName(int32_t id) const {
  if (id < 0) return "*";
  if (road_types == nullptr ||
      static_cast<size_t>(id) >= road_types->size()) {
    return StrFormat("road-%d", id);
  }
  return road_types->Name(static_cast<RoadTypeId>(id));
}

std::string RenderContext::LabelFor(const ResultRow& row,
                                    const AnalysisQuery& query) const {
  std::vector<std::string> parts;
  if (query.group_country) parts.push_back(CountryName(row.country));
  if (query.group_date && row.has_date) parts.push_back(row.date.ToString());
  if (query.group_element_type && row.element_type >= 0) {
    parts.push_back(std::string(
        ElementTypeName(static_cast<ElementType>(row.element_type))));
  }
  if (query.group_road_type) parts.push_back(RoadTypeName(row.road_type));
  if (query.group_update_type && row.update_type >= 0) {
    parts.push_back(std::string(
        UpdateTypeName(static_cast<UpdateType>(row.update_type))));
  }
  if (parts.empty()) parts.push_back("(all)");
  return Join(parts, " / ");
}

namespace {

std::vector<const ResultRow*> SortedRows(const QueryResult& result,
                                         const AnalysisQuery& query,
                                         const RenderContext& ctx,
                                         TableSort sort) {
  std::vector<const ResultRow*> rows;
  rows.reserve(result.rows.size());
  for (const ResultRow& r : result.rows) rows.push_back(&r);
  switch (sort) {
    case TableSort::kCount:
      std::stable_sort(rows.begin(), rows.end(),
                       [](const ResultRow* a, const ResultRow* b) {
                         return a->count > b->count;
                       });
      break;
    case TableSort::kPercentage:
      std::stable_sort(rows.begin(), rows.end(),
                       [](const ResultRow* a, const ResultRow* b) {
                         return a->percentage > b->percentage;
                       });
      break;
    case TableSort::kLabel:
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const ResultRow* a, const ResultRow* b) {
                         return ctx.LabelFor(*a, query) <
                                ctx.LabelFor(*b, query);
                       });
      break;
  }
  return rows;
}

}  // namespace

std::string RenderTable(const QueryResult& result, const AnalysisQuery& query,
                        const RenderContext& ctx, TableSort sort,
                        size_t max_rows) {
  auto rows = SortedRows(result, query, ctx, sort);
  size_t label_width = 10;
  for (const ResultRow* r : rows) {
    label_width = std::max(label_width, ctx.LabelFor(*r, query).size());
  }
  std::string out;
  out += StrFormat("%-*s  %15s", static_cast<int>(label_width), "group",
                   "count");
  if (query.percentage) out += StrFormat("  %10s", "percent");
  out += "\n";
  out += std::string(label_width + 17 + (query.percentage ? 12 : 0), '-');
  out += "\n";
  size_t shown = 0;
  for (const ResultRow* r : rows) {
    if (shown++ >= max_rows) {
      out += StrFormat("... (%zu more rows)\n", rows.size() - max_rows);
      break;
    }
    out += StrFormat("%-*s  %15s", static_cast<int>(label_width),
                     ctx.LabelFor(*r, query).c_str(),
                     WithThousandsSep(r->count).c_str());
    if (query.percentage) out += StrFormat("  %9.4f%%", r->percentage);
    out += "\n";
  }
  return out;
}

std::string RenderCountryElementPivot(const QueryResult& result,
                                      const RenderContext& ctx,
                                      size_t max_rows) {
  // Columns: All | Ways Cr | Ways Mod | Relations Cr | Relations Mod |
  // Nodes Cr | Nodes Mod. "Modified" folds geometry+metadata (and deletes
  // count as modifications of the network state for this view's purpose —
  // matching the paper's New/Update daily classification).
  struct PivotRow {
    uint64_t all = 0;
    uint64_t cells[3][2] = {{0, 0}, {0, 0}, {0, 0}};  // [element][cr|mod]
  };
  std::map<int32_t, PivotRow> pivot;
  for (const ResultRow& r : result.rows) {
    if (r.country < 0 || r.element_type < 0 || r.update_type < 0) continue;
    PivotRow& p = pivot[r.country];
    int mod = r.update_type == static_cast<int32_t>(UpdateType::kNew) ? 0 : 1;
    p.cells[r.element_type][mod] += r.count;
    p.all += r.count;
  }
  std::vector<std::pair<int32_t, const PivotRow*>> ordered;
  for (const auto& [country, row] : pivot) ordered.emplace_back(country, &row);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              return a.second->all > b.second->all;
            });

  std::string out;
  out += StrFormat("%-24s %14s %14s %14s %12s %12s %12s %12s\n", "country",
                   "All", "Ways Created", "Ways Modified", "Rels Cr",
                   "Rels Mod", "Nodes Cr", "Nodes Mod");
  out += std::string(24 + 15 * 3 + 13 * 4, '-') + "\n";
  size_t shown = 0;
  for (const auto& [country, row] : ordered) {
    if (shown++ >= max_rows) break;
    const int way = static_cast<int>(ElementType::kWay);
    const int rel = static_cast<int>(ElementType::kRelation);
    const int node = static_cast<int>(ElementType::kNode);
    out += StrFormat("%-24s %14s %14s %14s %12s %12s %12s %12s\n",
                     ctx.CountryName(country).c_str(),
                     WithThousandsSep(row->all).c_str(),
                     WithThousandsSep(row->cells[way][0]).c_str(),
                     WithThousandsSep(row->cells[way][1]).c_str(),
                     WithThousandsSep(row->cells[rel][0]).c_str(),
                     WithThousandsSep(row->cells[rel][1]).c_str(),
                     WithThousandsSep(row->cells[node][0]).c_str(),
                     WithThousandsSep(row->cells[node][1]).c_str());
  }
  return out;
}

std::string RenderBarChart(const QueryResult& result,
                           const AnalysisQuery& query,
                           const RenderContext& ctx, int width,
                           size_t max_bars) {
  auto rows = SortedRows(result, query, ctx, TableSort::kCount);
  if (rows.size() > max_bars) rows.resize(max_bars);
  uint64_t max_count = 1;
  size_t label_width = 8;
  for (const ResultRow* r : rows) {
    max_count = std::max(max_count, r->count);
    label_width = std::max(label_width, ctx.LabelFor(*r, query).size());
  }
  std::string out;
  for (const ResultRow* r : rows) {
    int len = static_cast<int>(
        std::llround(static_cast<double>(r->count) * width / max_count));
    out += StrFormat("%-*s |%s %s\n", static_cast<int>(label_width),
                     ctx.LabelFor(*r, query).c_str(),
                     std::string(static_cast<size_t>(len), '#').c_str(),
                     WithThousandsSep(r->count).c_str());
  }
  return out;
}

std::string RenderTimeSeries(const QueryResult& result,
                             const AnalysisQuery& query,
                             const RenderContext& ctx, int width,
                             int height) {
  if (!query.group_date) return "(time series requires grouping by date)\n";
  // Series split by country when grouped, otherwise a single series.
  std::map<int32_t, std::map<int32_t, double>> series;  // country -> day -> v
  int32_t min_day = INT32_MAX, max_day = INT32_MIN;
  double max_value = 0.0;
  for (const ResultRow& r : result.rows) {
    if (!r.has_date) continue;
    double v = query.percentage ? r.percentage
                                : static_cast<double>(r.count);
    series[r.country][r.date.days_since_epoch()] += v;
    min_day = std::min(min_day, r.date.days_since_epoch());
    max_day = std::max(max_day, r.date.days_since_epoch());
  }
  if (series.empty()) return "(no data)\n";

  int days = max_day - min_day + 1;
  int bucket = std::max(1, (days + width - 1) / width);
  int cols = (days + bucket - 1) / bucket;

  // Bucketize: average within buckets.
  std::map<int32_t, std::vector<double>> bucketed;
  for (const auto& [country, points] : series) {
    std::vector<double> sums(static_cast<size_t>(cols), 0.0);
    std::vector<int> counts(static_cast<size_t>(cols), 0);
    for (const auto& [day, v] : points) {
      int b = (day - min_day) / bucket;
      sums[b] += v;
      ++counts[b];
    }
    for (int b = 0; b < cols; ++b) {
      if (counts[b] > 0) sums[b] /= counts[b];
      max_value = std::max(max_value, sums[b]);
    }
    bucketed[country] = std::move(sums);
  }
  if (max_value <= 0.0) max_value = 1.0;

  static const char kSymbols[] = "*o+x#@%&";
  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(cols), ' '));
  int series_idx = 0;
  std::string legend;
  for (const auto& [country, values] : bucketed) {
    char sym = kSymbols[series_idx % (sizeof(kSymbols) - 1)];
    legend += StrFormat("  %c = %s\n", sym, ctx.CountryName(country).c_str());
    for (int b = 0; b < cols; ++b) {
      int row = static_cast<int>(
          std::llround(values[b] / max_value * (height - 1)));
      grid[static_cast<size_t>(height - 1 - row)][static_cast<size_t>(b)] =
          sym;
    }
    ++series_idx;
  }

  std::string out;
  std::string unit = query.percentage ? "%" : "";
  out += StrFormat("max %.4g%s\n", max_value, unit.c_str());
  for (const std::string& line : grid) out += "|" + line + "\n";
  out += "+" + std::string(static_cast<size_t>(cols), '-') + "\n";
  out += StrFormat(" %s .. %s (%d-day buckets)\n",
                   Date::FromDays(min_day).ToString().c_str(),
                   Date::FromDays(max_day).ToString().c_str(), bucket);
  out += legend;
  return out;
}

namespace {

std::string ChoroplethFrame(const std::map<int32_t, double>& values,
                            const RenderContext& ctx, int cols, int rows,
                            double max_value) {
  static const char kShades[] = " .:-=+*#%@";
  const int num_shades = static_cast<int>(sizeof(kShades)) - 2;
  std::string out;
  for (int r = 0; r < rows; ++r) {
    double lat = 90.0 - (r + 0.5) * 180.0 / rows;
    for (int c = 0; c < cols; ++c) {
      double lon = -180.0 + (c + 0.5) * 360.0 / cols;
      ZoneId zone = ctx.world->CountryAt(LatLon{lat, lon});
      if (zone == kZoneUnknown) {
        out.push_back('~');  // ocean / unmapped
        continue;
      }
      auto it = values.find(zone);
      double v = it == values.end() ? 0.0 : it->second;
      int shade = max_value > 0
                      ? static_cast<int>(std::log1p(v) /
                                         std::log1p(max_value) * num_shades)
                      : 0;
      shade = std::clamp(shade, 0, num_shades);
      out.push_back(kShades[shade]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace

std::string RenderChoropleth(const QueryResult& result,
                             const RenderContext& ctx, int cols, int rows) {
  std::map<int32_t, double> values;
  double max_value = 0.0;
  for (const ResultRow& r : result.rows) {
    if (r.country < 0) continue;
    values[r.country] += static_cast<double>(r.count);
    max_value = std::max(max_value, values[r.country]);
  }
  return ChoroplethFrame(values, ctx, cols, rows, max_value);
}

std::vector<std::string> RenderTimelapse(const QueryResult& result,
                                         const RenderContext& ctx, int cols,
                                         int rows) {
  // One frame per month; values accumulate within the month.
  std::map<int32_t, std::map<int32_t, double>> by_month;  // month-start->zone
  double max_value = 0.0;
  for (const ResultRow& r : result.rows) {
    if (!r.has_date || r.country < 0) continue;
    int32_t month = r.date.month_start().days_since_epoch();
    double& v = by_month[month][r.country];
    v += static_cast<double>(r.count);
    max_value = std::max(max_value, v);
  }
  std::vector<std::string> frames;
  for (const auto& [month, values] : by_month) {
    std::string frame =
        StrFormat("=== %s ===\n", Date::FromDays(month).ToString().c_str());
    frame += ChoroplethFrame(values, ctx, cols, rows, max_value);
    frames.push_back(std::move(frame));
  }
  return frames;
}

namespace {

void AppendCsvField(std::string* out, std::string_view field) {
  bool needs_quoting = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

std::string RenderCsv(const QueryResult& result, const AnalysisQuery& query,
                      const RenderContext& ctx) {
  std::string out;
  std::vector<std::string> header;
  if (query.group_country) header.push_back("country");
  if (query.group_date) header.push_back("date");
  if (query.group_element_type) header.push_back("element_type");
  if (query.group_road_type) header.push_back("road_type");
  if (query.group_update_type) header.push_back("update_type");
  header.push_back("count");
  if (query.percentage) header.push_back("percentage");
  for (size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendCsvField(&out, header[i]);
  }
  out.push_back('\n');

  for (const ResultRow& r : result.rows) {
    std::vector<std::string> cells;
    if (query.group_country) cells.push_back(ctx.CountryName(r.country));
    if (query.group_date) {
      cells.push_back(r.has_date ? r.date.ToString() : "");
    }
    if (query.group_element_type) {
      cells.push_back(r.element_type >= 0
                          ? std::string(ElementTypeName(
                                static_cast<ElementType>(r.element_type)))
                          : "");
    }
    if (query.group_road_type) cells.push_back(ctx.RoadTypeName(r.road_type));
    if (query.group_update_type) {
      cells.push_back(r.update_type >= 0
                          ? std::string(UpdateTypeName(
                                static_cast<UpdateType>(r.update_type)))
                          : "");
    }
    cells.push_back(std::to_string(r.count));
    if (query.percentage) cells.push_back(StrFormat("%.6f", r.percentage));
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendCsvField(&out, cells[i]);
    }
    out.push_back('\n');
  }
  return out;
}

std::string RenderJson(const QueryResult& result, const AnalysisQuery& query,
                       const RenderContext& ctx) {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows");
  w.BeginArray();
  for (const ResultRow& r : result.rows) {
    w.BeginObject();
    if (query.group_country) {
      w.KV("country", std::string_view(ctx.CountryName(r.country)));
    }
    if (query.group_date && r.has_date) {
      w.KV("date", std::string_view(r.date.ToString()));
    }
    if (query.group_element_type && r.element_type >= 0) {
      w.KV("element_type",
           ElementTypeName(static_cast<ElementType>(r.element_type)));
    }
    if (query.group_road_type) {
      w.KV("road_type", std::string_view(ctx.RoadTypeName(r.road_type)));
    }
    if (query.group_update_type && r.update_type >= 0) {
      w.KV("update_type",
           UpdateTypeName(static_cast<UpdateType>(r.update_type)));
    }
    w.KV("count", r.count);
    if (query.percentage) w.KV("percentage", r.percentage);
    w.EndObject();
  }
  w.EndArray();
  w.Key("stats");
  w.BeginObject();
  w.KV("cubes_total", result.stats.cubes_total);
  w.KV("cubes_from_cache", result.stats.cubes_from_cache);
  w.KV("cubes_from_disk", result.stats.cubes_from_disk);
  w.KV("page_reads", result.stats.io.page_reads);
  w.KV("cpu_micros", result.stats.cpu_micros);
  w.KV("total_micros", result.stats.total_micros());
  w.EndObject();
  w.EndObject();
  return std::move(w).Finish();
}

}  // namespace rased
