#ifndef RASED_DASHBOARD_JSON_WRITER_H_
#define RASED_DASHBOARD_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rased {

/// Minimal streaming JSON writer for the dashboard's REST responses.
/// Handles escaping and comma placement; nesting is tracked with a stack.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("rows");
///   w.BeginArray();
///   ...
///   w.EndArray();
///   w.EndObject();
///   std::string body = std::move(w).Finish();
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object key; must be followed by a value or container.
  void Key(std::string_view key);

  void Value(std::string_view value);
  void Value(const char* value) { Value(std::string_view(value)); }
  void Value(int64_t value);
  void Value(uint64_t value);
  void Value(int value) { Value(static_cast<int64_t>(value)); }
  void Value(double value);
  void Value(bool value);
  void Null();

  /// Shorthand for Key + Value.
  template <typename T>
  void KV(std::string_view key, T value) {
    Key(key);
    Value(value);
  }

  /// Returns the completed document; the writer must be balanced.
  std::string Finish() &&;

 private:
  void MaybeComma();
  void AppendEscaped(std::string_view text);

  std::string out_;
  /// true = a value was already emitted at this nesting level.
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

}  // namespace rased

#endif  // RASED_DASHBOARD_JSON_WRITER_H_
