#include "dashboard/dashboard_service.h"

#include <algorithm>

#include "cube/agg_kernels.h"
#include "dashboard/json_writer.h"
#include "obs/build_info.h"
#include "obs/request_context.h"
#include "query/sql_parser.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

namespace {

const char kIndexHtml[] = R"html(<!doctype html>
<html><head><meta charset="utf-8"><title>RASED</title>
<style>
 body{font-family:system-ui,sans-serif;margin:2rem;max-width:70rem}
 h1{font-size:1.4rem} label{margin-right:.75rem}
 input,select{margin:.15rem .5rem .15rem 0}
 pre{background:#f4f4f4;padding:1rem;overflow:auto}
 table{border-collapse:collapse} td,th{border:1px solid #999;padding:.2rem .6rem;text-align:right}
 th:first-child,td:first-child{text-align:left}
</style></head>
<body>
<h1>RASED &mdash; Road network updates in OSM</h1>
<p>Aggregate analysis over the hierarchical temporal cube index.</p>
<form id="f">
 <label>from <input name="from" value="2021-01-01"></label>
 <label>to <input name="to" value="2021-12-31"></label>
 <label>countries <input name="countries" placeholder="Germany,Qatar"></label>
 <label>group <input name="group" value="country"></label>
 <label>update types <input name="update_types" placeholder="new,geometry"></label>
 <label><input type="checkbox" name="percentage">percentage</label>
 <button>Run</button>
</form>
<h2>Rows</h2><div id="rows"></div>
<h2>Stats</h2><pre id="stats"></pre>
<script>
const f=document.getElementById('f');
f.addEventListener('submit',async e=>{
  e.preventDefault();
  const p=new URLSearchParams();
  for(const el of f.elements){
    if(!el.name)continue;
    if(el.type==='checkbox'){if(el.checked)p.set(el.name,'1');}
    else if(el.value)p.set(el.name,el.value);
  }
  const r=await fetch('/api/query?'+p.toString());
  const j=await r.json();
  const rows=j.rows||[];
  let html='<table><tr>';
  const cols=rows.length?Object.keys(rows[0]):[];
  for(const c of cols)html+='<th>'+c+'</th>';
  html+='</tr>';
  for(const row of rows.slice(0,200)){
    html+='<tr>';
    for(const c of cols)html+='<td>'+row[c]+'</td>';
    html+='</tr>';
  }
  html+='</table>';
  document.getElementById('rows').innerHTML=html;
  document.getElementById('stats').textContent=JSON.stringify(j.stats,null,2);
});
</script>
</body></html>
)html";

std::vector<std::string> SplitParam(const std::string& value) {
  std::vector<std::string> out;
  if (value.empty()) return out;
  for (const std::string& part : Split(value, ',')) {
    std::string_view trimmed = Trim(part);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

void WriteError(const Status& status, HttpResponse* response) {
  // Client mistakes (bad parameter values, unknown names) are 400s.
  response->status =
      status.IsInvalidArgument() || status.IsNotFound() ? 400 : 500;
  JsonWriter w;
  w.BeginObject();
  w.KV("error", std::string_view(status.ToString()));
  w.EndObject();
  response->body = std::move(w).Finish();
}

/// The SLO set actually tracked: the configured objectives (or the
/// defaults) plus, when the profiler runs, a sample drop-rate objective —
/// the profiler is SLO-gated like any serving path: if it drops more than
/// 1% of its samples it shows up in /readyz before anyone trusts a
/// profile from it.
SloOptions SloWithProfilerObjective(const DashboardOptions& options) {
  SloOptions slo = options.slo;
  if (!options.start_profiler) return slo;
  if (slo.objectives.empty()) {
    slo.objectives = SloTracker::DefaultObjectives();
  }
  SloObjective drops;
  drops.name = "profiler_drops";
  drops.kind = SloObjective::Kind::kRatio;
  drops.family = "rased_profiler_samples_total";
  drops.bad_family = "rased_profiler_samples_dropped_total";
  drops.target = 0.99;
  slo.objectives.push_back(drops);
  return slo;
}

}  // namespace

DashboardService::DashboardService(Rased* rased,
                                   const DashboardOptions& options)
    : rased_(rased),
      options_(options),
      history_(rased->metrics(), options.selfstats),
      slo_(&history_, rased->metrics(), SloWithProfilerObjective(options)) {
  // Keep the SLO gauges fresh without a dedicated thread: re-evaluate
  // right after every selfstats sample, so the next sample (and any
  // /metrics scrape) sees current burn rates.
  history_.SetPostSampleHook(
      [this](int64_t now_micros) { slo_.Evaluate(now_micros); });
  ctx_.world = &rased_->world();
  ctx_.road_types = rased_->road_types();
  server_.Route("/", [this](const HttpRequest& q, HttpResponse* r) {
    HandleIndex(q, r);
  });
  server_.Route("/api/query", [this](const HttpRequest& q, HttpResponse* r) {
    HandleQuery(q, r);
  });
  server_.Route("/api/sql", [this](const HttpRequest& q, HttpResponse* r) {
    HandleSql(q, r);
  });
  server_.Route("/api/sample", [this](const HttpRequest& q, HttpResponse* r) {
    HandleSample(q, r);
  });
  server_.Route("/api/zones", [this](const HttpRequest& q, HttpResponse* r) {
    HandleZones(q, r);
  });
  server_.Route("/api/stats", [this](const HttpRequest& q, HttpResponse* r) {
    HandleStats(q, r);
  });
  server_.Route("/api/trace", [this](const HttpRequest& q, HttpResponse* r) {
    HandleTrace(q, r);
  });
  server_.Route("/api/profile", [this](const HttpRequest& q, HttpResponse* r) {
    HandleProfile(q, r);
  });
  server_.Route("/metrics", [this](const HttpRequest& q, HttpResponse* r) {
    HandleMetrics(q, r);
  });
  server_.Route("/api/selfstats",
                [this](const HttpRequest& q, HttpResponse* r) {
                  HandleSelfstats(q, r);
                });
  server_.Route("/healthz", [this](const HttpRequest& q, HttpResponse* r) {
    HandleHealthz(q, r);
  });
  server_.Route("/readyz", [this](const HttpRequest& q, HttpResponse* r) {
    HandleReadyz(q, r);
  });
  server_.set_metrics(rased_->metrics());

  // /api/stats handles: the same series the components registered (handle
  // lookups are idempotent, so registration order does not matter).
  MetricsRegistry* metrics = rased_->metrics();
  static constexpr const char* kLevels[kNumLevels] = {"daily", "weekly",
                                                      "monthly", "yearly"};
  for (int level = 0; level < kNumLevels; ++level) {
    // NOLINT-RASED(metric-in-loop): one-time registration over kNumLevels
    stats_.cubes_per_level[level] = metrics->GetGauge(
        "rased_index_cubes", "Cubes stored, by level",
        MetricLabels{{"level", kLevels[level]}});
  }
  stats_.file_bytes =
      metrics->GetGauge("rased_index_file_bytes", "Index file size in bytes");
  stats_.cache_budget_bytes =
      metrics->GetGauge("rased_cache_budget_bytes", "Cache byte budget");
  stats_.cache_resident =
      metrics->GetGauge("rased_cache_resident_cubes", "Cubes resident");
  stats_.cache_resident_bytes = metrics->GetGauge(
      "rased_cache_resident_bytes", "Encoded bytes resident");
  stats_.cache_hits =
      metrics->GetCounter("rased_cache_hits_total", "Cube cache hits");
  stats_.cache_misses =
      metrics->GetCounter("rased_cache_misses_total", "Cube cache misses");

  // Readiness handles. The ingestor registers the same series when it
  // exists; on a serve-only instance they stay 0 (= not wedged).
  ingest_lag_sequences_ = metrics->GetGauge(
      "rased_ingest_lag_sequences",
      "Replication sequences in the feed not yet applied (ingest lag)");
  ingest_last_progress_ = metrics->GetGauge(
      "rased_ingest_last_progress_micros",
      "util/clock.h NowMicros stamp of the last replication CatchUp");
}

Status DashboardService::Start(int port, int num_workers) {
  RASED_RETURN_IF_ERROR(server_.Start(port, num_workers));
  if (options_.start_sampler) history_.StartSampler();
  if (options_.start_profiler) {
    ProfilerOptions popts = options_.profiler;
    if (popts.metrics == nullptr) popts.metrics = rased_->metrics();
    Status status = Profiler::Global()->Start(popts);
    if (status.ok()) {
      profiler_started_ = true;
    } else {
      // Profiling is observability, not serving: degrade, don't fail.
      RASED_LOG(Warning) << "continuous profiler unavailable: "
                         << status.ToString();
    }
  }
  return Status::OK();
}

void DashboardService::Stop() {
  history_.StopSampler();
  server_.Stop();
  if (profiler_started_) {
    Profiler::Global()->Stop();
    profiler_started_ = false;
  }
}

Result<AnalysisQuery> DashboardService::ParseQueryParams(
    const HttpRequest& request) const {
  AnalysisQuery query;

  // Dates; default to the whole index coverage.
  DateRange coverage = rased_->index()->coverage();
  query.range = coverage;
  if (request.HasParam("from")) {
    RASED_ASSIGN_OR_RETURN(query.range.first,
                           Date::Parse(request.Param("from")));
  }
  if (request.HasParam("to")) {
    RASED_ASSIGN_OR_RETURN(query.range.last, Date::Parse(request.Param("to")));
  }

  for (const std::string& name : SplitParam(request.Param("countries"))) {
    RASED_ASSIGN_OR_RETURN(ZoneId id, rased_->CountryId(name));
    query.countries.push_back(id);
  }
  for (const std::string& name : SplitParam(request.Param("element_types"))) {
    RASED_ASSIGN_OR_RETURN(ElementType t, ParseElementType(name));
    query.element_types.push_back(t);
  }
  for (const std::string& name : SplitParam(request.Param("road_types"))) {
    query.road_types.push_back(rased_->road_types()->Lookup(name));
  }
  for (const std::string& name : SplitParam(request.Param("update_types"))) {
    if (name == "new") {
      query.update_types.push_back(UpdateType::kNew);
    } else if (name == "delete") {
      query.update_types.push_back(UpdateType::kDelete);
    } else if (name == "geometry") {
      query.update_types.push_back(UpdateType::kGeometry);
    } else if (name == "metadata") {
      query.update_types.push_back(UpdateType::kMetadata);
    } else {
      return Status::InvalidArgument("unknown update type '" + name + "'");
    }
  }
  for (const std::string& name : SplitParam(request.Param("group"))) {
    if (name == "country") {
      query.group_country = true;
    } else if (name == "date") {
      query.group_date = true;
    } else if (name == "element_type") {
      query.group_element_type = true;
    } else if (name == "road_type") {
      query.group_road_type = true;
    } else if (name == "update_type") {
      query.group_update_type = true;
    } else {
      return Status::InvalidArgument("unknown group dimension '" + name + "'");
    }
  }
  query.percentage = request.Param("percentage") == "1";
  if (query.percentage) query.group_country = true;
  return query;
}

void DashboardService::HandleIndex(const HttpRequest&,
                                   HttpResponse* response) {
  response->content_type = "text/html; charset=utf-8";
  response->body = kIndexHtml;
}

void DashboardService::HandleQuery(const HttpRequest& request,
                                   HttpResponse* response) {
  auto query = ParseQueryParams(request);
  if (!query.ok()) {
    WriteError(query.status(), response);
    return;
  }
  ExecuteAndRender(query.value(), request, response);
}

void DashboardService::HandleSql(const HttpRequest& request,
                                 HttpResponse* response) {
  std::string sql = request.Param("q");
  if (sql.empty()) {
    WriteError(Status::InvalidArgument("missing ?q=<SQL>"), response);
    return;
  }
  SqlParser parser(&rased_->world(), rased_->road_types());
  auto query = parser.Parse(sql);
  if (!query.ok()) {
    WriteError(query.status(), response);
    return;
  }
  ExecuteAndRender(query.value(), request, response);
}

void DashboardService::ExecuteAndRender(const AnalysisQuery& query,
                                        const HttpRequest& request,
                                        HttpResponse* response) {
  auto result = rased_->Query(query);
  if (!result.ok()) {
    WriteError(result.status(), response);
    return;
  }
  const QueryResult& value = result.value();

  const int64_t t_render = NowMicros();
  std::string format = request.Param("format");
  if (format.empty() || format == "json") {
    response->body = RenderJson(value, query, ctx_);
  } else if (format == "csv") {
    response->content_type = "text/csv; charset=utf-8";
    response->body = RenderCsv(value, query, ctx_);
  } else if (format == "table") {
    response->content_type = "text/plain; charset=utf-8";
    response->body = RenderTable(value, query, ctx_);
  } else if (format == "bar") {
    response->content_type = "text/plain; charset=utf-8";
    response->body = RenderBarChart(value, query, ctx_);
  } else if (format == "timeseries") {
    response->content_type = "text/plain; charset=utf-8";
    response->body = RenderTimeSeries(value, query, ctx_);
  } else if (format == "choropleth") {
    response->content_type = "text/plain; charset=utf-8";
    response->body = RenderChoropleth(value, ctx_);
  } else if (format == "pivot") {
    response->content_type = "text/plain; charset=utf-8";
    response->body = RenderCountryElementPivot(value, ctx_);
  } else {
    WriteError(Status::InvalidArgument("unknown format '" + format + "'"),
               response);
  }

  // Record the trace even on a bad-format response — the query itself ran.
  // The executor's spans partition its wall time; the service adds the
  // render span on top, so trace wall = executor cpu + render time.
  const int64_t render_micros = NowMicros() - t_render;
  QueryTrace trace;
  trace.trace_id = CurrentTraceId();
  trace.summary = query.ToString();
  trace.wall_micros = value.stats.cpu_micros + render_micros;
  trace.device_micros = value.stats.io.simulated_device_micros;
  trace.cubes_total = value.stats.cubes_total;
  trace.cubes_from_cache = value.stats.cubes_from_cache;
  trace.cubes_from_disk = value.stats.cubes_from_disk;
  trace.page_reads = value.stats.io.page_reads;
  trace.read_ops = value.stats.io.read_ops;
  trace.bytes_read = value.stats.io.bytes_read;
  trace.epoch = value.stats.epoch;
  trace.alloc_bytes = value.stats.alloc_bytes;
  trace.alloc_ops = value.stats.alloc_ops;
  trace.peak_alloc_bytes = value.stats.peak_alloc_bytes;
  trace.spans = value.spans;
  trace.spans.push_back({"render", render_micros, 0});
  rased_->traces()->Record(std::move(trace));
}

void DashboardService::HandleSample(const HttpRequest& request,
                                    HttpResponse* response) {
  Result<std::vector<UpdateRecord>> samples =
      std::vector<UpdateRecord>{};
  if (request.HasParam("changeset")) {
    auto id = ParseUint(request.Param("changeset"));
    if (!id.ok()) {
      WriteError(id.status(), response);
      return;
    }
    samples = rased_->SampleByChangeset(id.value());
  } else if (request.HasParam("min_lat")) {
    BoundingBox box;
    auto parse = [&request](const char* key) {
      return ParseDouble(request.Param(key));
    };
    auto min_lat = parse("min_lat"), min_lon = parse("min_lon"),
         max_lat = parse("max_lat"), max_lon = parse("max_lon");
    if (!min_lat.ok() || !min_lon.ok() || !max_lat.ok() || !max_lon.ok()) {
      WriteError(Status::InvalidArgument("bad bounding box"), response);
      return;
    }
    box = BoundingBox{min_lat.value(), min_lon.value(), max_lat.value(),
                      max_lon.value()};
    size_t n = 100;
    if (request.HasParam("n")) {
      auto parsed = ParseUint(request.Param("n"));
      if (parsed.ok()) n = static_cast<size_t>(parsed.value());
    }
    samples = rased_->SampleInBox(box, n);
  } else {
    WriteError(Status::InvalidArgument(
                   "expected ?changeset=<id> or a bounding box"),
               response);
    return;
  }
  if (!samples.ok()) {
    WriteError(samples.status(), response);
    return;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("samples");
  w.BeginArray();
  for (const UpdateRecord& r : samples.value()) {
    w.BeginObject();
    w.KV("element_type", ElementTypeName(r.element_type));
    w.KV("date", std::string_view(r.date.ToString()));
    w.KV("country", std::string_view(ctx_.CountryName(r.country)));
    w.KV("lat", r.lat);
    w.KV("lon", r.lon);
    w.KV("road_type", std::string_view(ctx_.RoadTypeName(r.road_type)));
    w.KV("update_type", UpdateTypeName(r.update_type));
    w.KV("changeset", r.changeset_id);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  response->body = std::move(w).Finish();
}

void DashboardService::HandleZones(const HttpRequest&,
                                   HttpResponse* response) {
  JsonWriter w;
  w.BeginObject();
  w.Key("zones");
  w.BeginArray();
  for (const Zone& z : rased_->world().zones()) {
    w.BeginObject();
    w.KV("id", static_cast<uint64_t>(z.id));
    w.KV("name", std::string_view(z.name));
    const char* kind = z.kind == ZoneKind::kCountry     ? "country"
                       : z.kind == ZoneKind::kContinent ? "continent"
                       : z.kind == ZoneKind::kState     ? "state"
                                                        : "unknown";
    w.KV("kind", kind);
    w.KV("road_network_size", z.road_network_size);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  response->body = std::move(w).Finish();
}

void DashboardService::HandleStats(const HttpRequest&,
                                   HttpResponse* response) {
  // Served off the registry handles resolved in the ctor: the numbers here
  // are by construction the same series /metrics exports.
  auto gauge = [](const Gauge* g) { return static_cast<uint64_t>(g->value()); };
  uint64_t total_cubes = 0;
  for (const Gauge* g : stats_.cubes_per_level) total_cubes += gauge(g);
  JsonWriter w;
  w.BeginObject();
  w.Key("index");
  w.BeginObject();
  w.KV("coverage", std::string_view(rased_->index()->coverage().ToString()));
  w.KV("daily_cubes", gauge(stats_.cubes_per_level[0]));
  w.KV("weekly_cubes", gauge(stats_.cubes_per_level[1]));
  w.KV("monthly_cubes", gauge(stats_.cubes_per_level[2]));
  w.KV("yearly_cubes", gauge(stats_.cubes_per_level[3]));
  w.KV("total_cubes", total_cubes);
  w.KV("file_bytes", gauge(stats_.file_bytes));
  w.EndObject();
  w.Key("cache");
  w.BeginObject();
  w.KV("budget_bytes", gauge(stats_.cache_budget_bytes));
  w.KV("resident", gauge(stats_.cache_resident));
  w.KV("resident_bytes", gauge(stats_.cache_resident_bytes));
  w.KV("hits", stats_.cache_hits->value());
  w.KV("misses", stats_.cache_misses->value());
  w.EndObject();
  w.Key("http");
  w.BeginObject();
  w.KV("requests_served", server_.requests_served());
  w.EndObject();
  w.KV("metric_series", static_cast<uint64_t>(rased_->metrics()->num_series()));
  w.EndObject();
  response->body = std::move(w).Finish();
}

void DashboardService::HandleTrace(const HttpRequest& request,
                                   HttpResponse* response) {
  if (request.Param("worst") == "1") {
    HandleWorstTraces(response);
    return;
  }
  TraceRecorder* recorder = rased_->traces();
  std::vector<QueryTrace> traces = recorder->Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.KV("total_recorded", recorder->total_recorded());
  w.KV("capacity", static_cast<uint64_t>(recorder->options().capacity));
  w.Key("traces");
  w.BeginArray();
  for (const QueryTrace& t : traces) {
    w.BeginObject();
    w.KV("id", t.id);
    const std::string trace_hex =
        t.trace_id == 0 ? std::string() : FormatTraceId(t.trace_id);
    w.KV("trace_id", std::string_view(trace_hex));
    w.KV("query", std::string_view(t.summary));
    w.KV("wall_micros", t.wall_micros);
    w.KV("device_micros", t.device_micros);
    w.KV("total_micros", t.total_micros());
    w.KV("cubes_total", t.cubes_total);
    w.KV("cubes_from_cache", t.cubes_from_cache);
    w.KV("cubes_from_disk", t.cubes_from_disk);
    w.KV("page_reads", t.page_reads);
    w.KV("read_ops", t.read_ops);
    w.KV("bytes_read", t.bytes_read);
    w.KV("epoch", t.epoch);
    w.KV("alloc_bytes", t.alloc_bytes);
    w.KV("alloc_ops", t.alloc_ops);
    w.KV("peak_alloc_bytes", t.peak_alloc_bytes);
    w.Key("spans");
    w.BeginArray();
    for (const TraceSpan& span : t.spans) {
      w.BeginObject();
      w.KV("name", std::string_view(span.name));
      w.KV("wall_micros", span.wall_micros);
      w.KV("device_micros", span.device_micros);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  response->body = std::move(w).Finish();
}

void DashboardService::HandleWorstTraces(HttpResponse* response) {
  // The executor's latency histogram remembers the worst observation (and
  // its trace id) per bucket; draining resets the slots, so each response
  // covers "since the last ?worst=1 drain".
  Histogram* latency = rased_->metrics()->GetHistogram(
      "rased_query_cpu_micros",
      "Per-query wall time of planning + aggregation (microseconds)");
  std::vector<HistogramExemplar> exemplars = latency->DrainExemplars();
  JsonWriter w;
  w.BeginObject();
  w.KV("histogram", "rased_query_cpu_micros");
  w.KV("tracks_exemplars", latency->tracks_exemplars());
  w.Key("worst");
  w.BeginArray();
  for (const HistogramExemplar& e : exemplars) {
    w.BeginObject();
    w.KV("bucket", static_cast<int64_t>(e.bucket));
    const std::string le = e.bound < 0 ? "+Inf" : std::to_string(e.bound);
    w.KV("le", std::string_view(le));
    w.KV("worst_micros", e.value);
    const std::string trace_hex =
        e.trace_id == 0 ? std::string() : FormatTraceId(e.trace_id);
    w.KV("trace_id", std::string_view(trace_hex));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  response->body = std::move(w).Finish();
}

void DashboardService::HandleProfile(const HttpRequest& request,
                                     HttpResponse* response) {
  Profiler* profiler = Profiler::Global();
  if (!profiler->running()) {
    WriteError(Status::FailedPrecondition(
                   "profiler is not running on this instance"),
               response);
    return;
  }
  const std::string format = request.Param("format");
  if (!format.empty() && format != "folded" && format != "json") {
    WriteError(Status::InvalidArgument("unknown format '" + format + "'"),
               response);
    return;
  }

  Result<ProfileReport> report = Status::Internal("unreachable");
  if (request.HasParam("window")) {
    auto seconds = ParseUint(request.Param("window"));
    if (!seconds.ok()) {
      WriteError(Status::InvalidArgument("bad window= (want seconds)"),
                 response);
      return;
    }
    report = profiler->RetainedReport(static_cast<int64_t>(seconds.value()) *
                                      1000000);
  } else {
    // On-demand capture of the next N seconds (default 5, capped at 30 so
    // a typo cannot pin an HTTP worker for minutes).
    int64_t seconds = 5;
    if (request.HasParam("seconds")) {
      auto parsed = ParseUint(request.Param("seconds"));
      if (!parsed.ok() || parsed.value() == 0) {
        WriteError(Status::InvalidArgument("bad seconds= (want 1..30)"),
                   response);
        return;
      }
      seconds = std::min<int64_t>(static_cast<int64_t>(parsed.value()), 30);
    }
    report = profiler->CollectFor(seconds * 1000000);
  }
  if (!report.ok()) {
    WriteError(report.status(), response);
    return;
  }
  const ProfileReport& value = report.value();

  if (format == "json") {
    JsonWriter w;
    w.BeginObject();
    w.KV("duration_micros", value.duration_micros);
    w.KV("samples", value.samples);
    w.KV("dropped", value.dropped);
    w.Key("stacks");
    w.BeginArray();
    for (const auto& [stack, count] : value.folded) {
      w.BeginObject();
      w.KV("stack", std::string_view(stack));
      w.KV("count", count);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    response->body = std::move(w).Finish();
    return;
  }
  // Default: folded stacks, ready for flamegraph.pl / speedscope.
  response->content_type = "text/plain; charset=utf-8";
  response->body = RenderFolded(value.folded);
}

void DashboardService::HandleMetrics(const HttpRequest&,
                                     HttpResponse* response) {
  response->content_type = "text/plain; version=0.0.4; charset=utf-8";
  response->body = rased_->metrics()->RenderPrometheus();
}

namespace {

const char* SeriesKindName(SampledSeries::Kind kind) {
  switch (kind) {
    case SampledSeries::Kind::kCounter:
      return "counter";
    case SampledSeries::Kind::kGauge:
      return "gauge";
    case SampledSeries::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

/// The `rased top` wire format: one meta line, then one tab-separated line
/// per series: name, labels, type, comma-joined bounds, space-separated
/// points as t:v0,v1,...
std::string RenderSelfstatsTsv(const MetricsHistory& history,
                               const std::vector<MetricsHistory::Series>& all,
                               int64_t now_micros, int64_t window_micros) {
  std::string out = StrFormat(
      "#selfstats now=%lld window_micros=%lld interval_micros=%lld "
      "samples=%zu samples_total=%llu resident_bytes=%llu byte_budget=%llu "
      "cost_micros_total=%llu\n",
      static_cast<long long>(now_micros),
      static_cast<long long>(window_micros),
      static_cast<long long>(history.sample_interval_micros()),
      history.num_samples(),
      static_cast<unsigned long long>(history.samples_taken()),
      static_cast<unsigned long long>(history.resident_bytes()),
      static_cast<unsigned long long>(history.ring_byte_budget()),
      static_cast<unsigned long long>(history.sample_cost_micros_total()));
  for (const MetricsHistory::Series& series : all) {
    out += series.name;
    out += '\t';
    out += series.labels;
    out += '\t';
    out += SeriesKindName(series.kind);
    out += '\t';
    for (size_t i = 0; i < series.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += StrFormat("%lld", static_cast<long long>(series.bounds[i]));
    }
    out += '\t';
    for (size_t p = 0; p < series.points.size(); ++p) {
      const MetricsHistory::Point& point = series.points[p];
      if (p > 0) out += ' ';
      out += StrFormat("%lld:", static_cast<long long>(point.t_micros));
      for (size_t v = 0; v < point.values.size(); ++v) {
        if (v > 0) out += ',';
        out += StrFormat("%llu",
                         static_cast<unsigned long long>(point.values[v]));
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace

void DashboardService::HandleSelfstats(const HttpRequest& request,
                                       HttpResponse* response) {
  int64_t window_micros = 0;
  if (request.HasParam("window")) {
    auto seconds = ParseUint(request.Param("window"));
    if (!seconds.ok()) {
      WriteError(Status::InvalidArgument("bad window= (want seconds)"),
                 response);
      return;
    }
    window_micros = static_cast<int64_t>(seconds.value()) * 1000000;
  }
  const std::string family = request.Param("family");
  const std::string format = request.Param("format");
  const int64_t now = NowMicros();
  const std::vector<MetricsHistory::Series> series =
      history_.Query(family, window_micros, now);

  if (format == "tsv") {
    response->content_type = "text/tab-separated-values; charset=utf-8";
    response->body = RenderSelfstatsTsv(history_, series, now, window_micros);
    return;
  }
  if (!format.empty() && format != "json") {
    WriteError(Status::InvalidArgument("unknown format '" + format + "'"),
               response);
    return;
  }

  JsonWriter w;
  w.BeginObject();
  w.KV("now_micros", now);
  w.KV("window_micros", window_micros);
  w.KV("interval_micros", history_.sample_interval_micros());
  w.KV("samples_retained", static_cast<uint64_t>(history_.num_samples()));
  w.KV("samples_total", history_.samples_taken());
  w.KV("resident_bytes", history_.resident_bytes());
  w.KV("byte_budget", history_.ring_byte_budget());
  w.KV("sample_cost_micros_total", history_.sample_cost_micros_total());
  w.Key("series");
  w.BeginArray();
  for (const MetricsHistory::Series& s : series) {
    w.BeginObject();
    w.KV("name", std::string_view(s.name));
    w.KV("labels", std::string_view(s.labels));
    w.KV("type", SeriesKindName(s.kind));
    if (s.kind == SampledSeries::Kind::kHistogram) {
      w.Key("bounds");
      w.BeginArray();
      for (int64_t bound : s.bounds) w.Value(bound);
      w.EndArray();
    }
    w.Key("points");
    w.BeginArray();
    for (const MetricsHistory::Point& point : s.points) {
      w.BeginObject();
      w.KV("t", point.t_micros);
      w.Key("v");
      w.BeginArray();
      for (uint64_t value : point.values) w.Value(value);
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  response->body = std::move(w).Finish();
}

void DashboardService::HandleHealthz(const HttpRequest&,
                                     HttpResponse* response) {
  // Liveness only: reachable and able to run a handler. Readiness (can
  // this instance usefully serve?) is /readyz below.
  response->content_type = "text/plain; charset=utf-8";
  response->body = "ok\n";
}

void DashboardService::HandleReadyz(const HttpRequest&,
                                    HttpResponse* response) {
  const int64_t now = NowMicros();

  // Catalog published: the MVCC index has at least one visible version.
  const uint64_t epoch = rased_->index()->epoch();
  const bool catalog_published = epoch > 0;

  // Ingest not wedged: either fully caught up, or it has made progress
  // recently enough. Serve-only instances keep both gauges 0 (= healthy).
  const int64_t lag = ingest_lag_sequences_->value();
  const int64_t last_progress = ingest_last_progress_->value();
  const bool ingest_not_wedged =
      lag <= 0 || last_progress <= 0 ||
      now - last_progress <= options_.max_ingest_idle_micros;

  // SLO not burning: re-evaluate now rather than trusting the last
  // sampler tick, so a probe sees current burn rates.
  const std::vector<SloTracker::ObjectiveState> slo_states =
      slo_.Evaluate(now);
  const bool slo_not_burning = slo_.WorstStatus() != SloStatus::kBurning;

  const bool ready = catalog_published && ingest_not_wedged && slo_not_burning;
  response->status = ready ? 200 : 503;

  JsonWriter w;
  w.BeginObject();
  w.KV("ready", ready);
  w.Key("checks");
  w.BeginObject();
  w.KV("catalog_published", catalog_published);
  w.KV("ingest_not_wedged", ingest_not_wedged);
  w.KV("slo_not_burning", slo_not_burning);
  w.EndObject();
  w.KV("epoch", epoch);
  w.KV("ingest_lag_sequences", lag);
  // Build identity detail: which exact binary (and kernel dispatch state)
  // answered this probe — the same labels as the rased_build_info gauge.
  const BuildInfo build =
      MakeBuildInfo(
          Avx2DispatchLabel(kernels::Avx2CompiledIn(), kernels::Avx2Active()));
  w.Key("build");
  w.BeginObject();
  w.KV("version", std::string_view(build.version));
  w.KV("git_sha", std::string_view(build.git_sha));
  w.KV("compiler", std::string_view(build.compiler));
  w.KV("avx2", std::string_view(build.avx2));
  w.EndObject();
  w.Key("slo");
  w.BeginArray();
  for (const SloTracker::ObjectiveState& state : slo_states) {
    w.BeginObject();
    w.KV("objective", std::string_view(state.name));
    w.KV("status", SloStatusName(state.status));
    w.KV("burn_short_milli",
         static_cast<int64_t>(state.short_window.burn_rate * 1000.0));
    w.KV("burn_long_milli",
         static_cast<int64_t>(state.long_window.burn_rate * 1000.0));
    w.KV("short_events", state.short_window.total_events);
    w.KV("long_events", state.long_window.total_events);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  response->body = std::move(w).Finish();
}

}  // namespace rased

