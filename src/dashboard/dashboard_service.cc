#include "dashboard/dashboard_service.h"

#include "dashboard/json_writer.h"
#include "query/sql_parser.h"
#include "util/str_util.h"

namespace rased {

namespace {

const char kIndexHtml[] = R"html(<!doctype html>
<html><head><meta charset="utf-8"><title>RASED</title>
<style>
 body{font-family:system-ui,sans-serif;margin:2rem;max-width:70rem}
 h1{font-size:1.4rem} label{margin-right:.75rem}
 input,select{margin:.15rem .5rem .15rem 0}
 pre{background:#f4f4f4;padding:1rem;overflow:auto}
 table{border-collapse:collapse} td,th{border:1px solid #999;padding:.2rem .6rem;text-align:right}
 th:first-child,td:first-child{text-align:left}
</style></head>
<body>
<h1>RASED &mdash; Road network updates in OSM</h1>
<p>Aggregate analysis over the hierarchical temporal cube index.</p>
<form id="f">
 <label>from <input name="from" value="2021-01-01"></label>
 <label>to <input name="to" value="2021-12-31"></label>
 <label>countries <input name="countries" placeholder="Germany,Qatar"></label>
 <label>group <input name="group" value="country"></label>
 <label>update types <input name="update_types" placeholder="new,geometry"></label>
 <label><input type="checkbox" name="percentage">percentage</label>
 <button>Run</button>
</form>
<h2>Rows</h2><div id="rows"></div>
<h2>Stats</h2><pre id="stats"></pre>
<script>
const f=document.getElementById('f');
f.addEventListener('submit',async e=>{
  e.preventDefault();
  const p=new URLSearchParams();
  for(const el of f.elements){
    if(!el.name)continue;
    if(el.type==='checkbox'){if(el.checked)p.set(el.name,'1');}
    else if(el.value)p.set(el.name,el.value);
  }
  const r=await fetch('/api/query?'+p.toString());
  const j=await r.json();
  const rows=j.rows||[];
  let html='<table><tr>';
  const cols=rows.length?Object.keys(rows[0]):[];
  for(const c of cols)html+='<th>'+c+'</th>';
  html+='</tr>';
  for(const row of rows.slice(0,200)){
    html+='<tr>';
    for(const c of cols)html+='<td>'+row[c]+'</td>';
    html+='</tr>';
  }
  html+='</table>';
  document.getElementById('rows').innerHTML=html;
  document.getElementById('stats').textContent=JSON.stringify(j.stats,null,2);
});
</script>
</body></html>
)html";

std::vector<std::string> SplitParam(const std::string& value) {
  std::vector<std::string> out;
  if (value.empty()) return out;
  for (const std::string& part : Split(value, ',')) {
    std::string_view trimmed = Trim(part);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

void WriteError(const Status& status, HttpResponse* response) {
  // Client mistakes (bad parameter values, unknown names) are 400s.
  response->status =
      status.IsInvalidArgument() || status.IsNotFound() ? 400 : 500;
  JsonWriter w;
  w.BeginObject();
  w.KV("error", std::string_view(status.ToString()));
  w.EndObject();
  response->body = std::move(w).Finish();
}

}  // namespace

DashboardService::DashboardService(Rased* rased) : rased_(rased) {
  ctx_.world = &rased_->world();
  ctx_.road_types = rased_->road_types();
  server_.Route("/", [this](const HttpRequest& q, HttpResponse* r) {
    HandleIndex(q, r);
  });
  server_.Route("/api/query", [this](const HttpRequest& q, HttpResponse* r) {
    HandleQuery(q, r);
  });
  server_.Route("/api/sql", [this](const HttpRequest& q, HttpResponse* r) {
    HandleSql(q, r);
  });
  server_.Route("/api/sample", [this](const HttpRequest& q, HttpResponse* r) {
    HandleSample(q, r);
  });
  server_.Route("/api/zones", [this](const HttpRequest& q, HttpResponse* r) {
    HandleZones(q, r);
  });
  server_.Route("/api/stats", [this](const HttpRequest& q, HttpResponse* r) {
    HandleStats(q, r);
  });
}

Status DashboardService::Start(int port, int num_workers) {
  return server_.Start(port, num_workers);
}

Result<AnalysisQuery> DashboardService::ParseQueryParams(
    const HttpRequest& request) const {
  AnalysisQuery query;

  // Dates; default to the whole index coverage.
  DateRange coverage = rased_->index()->coverage();
  query.range = coverage;
  if (request.HasParam("from")) {
    RASED_ASSIGN_OR_RETURN(query.range.first,
                           Date::Parse(request.Param("from")));
  }
  if (request.HasParam("to")) {
    RASED_ASSIGN_OR_RETURN(query.range.last, Date::Parse(request.Param("to")));
  }

  for (const std::string& name : SplitParam(request.Param("countries"))) {
    RASED_ASSIGN_OR_RETURN(ZoneId id, rased_->CountryId(name));
    query.countries.push_back(id);
  }
  for (const std::string& name : SplitParam(request.Param("element_types"))) {
    RASED_ASSIGN_OR_RETURN(ElementType t, ParseElementType(name));
    query.element_types.push_back(t);
  }
  for (const std::string& name : SplitParam(request.Param("road_types"))) {
    query.road_types.push_back(rased_->road_types()->Lookup(name));
  }
  for (const std::string& name : SplitParam(request.Param("update_types"))) {
    if (name == "new") {
      query.update_types.push_back(UpdateType::kNew);
    } else if (name == "delete") {
      query.update_types.push_back(UpdateType::kDelete);
    } else if (name == "geometry") {
      query.update_types.push_back(UpdateType::kGeometry);
    } else if (name == "metadata") {
      query.update_types.push_back(UpdateType::kMetadata);
    } else {
      return Status::InvalidArgument("unknown update type '" + name + "'");
    }
  }
  for (const std::string& name : SplitParam(request.Param("group"))) {
    if (name == "country") {
      query.group_country = true;
    } else if (name == "date") {
      query.group_date = true;
    } else if (name == "element_type") {
      query.group_element_type = true;
    } else if (name == "road_type") {
      query.group_road_type = true;
    } else if (name == "update_type") {
      query.group_update_type = true;
    } else {
      return Status::InvalidArgument("unknown group dimension '" + name + "'");
    }
  }
  query.percentage = request.Param("percentage") == "1";
  if (query.percentage) query.group_country = true;
  return query;
}

void DashboardService::HandleIndex(const HttpRequest&,
                                   HttpResponse* response) {
  response->content_type = "text/html; charset=utf-8";
  response->body = kIndexHtml;
}

void DashboardService::HandleQuery(const HttpRequest& request,
                                   HttpResponse* response) {
  auto query = ParseQueryParams(request);
  if (!query.ok()) {
    WriteError(query.status(), response);
    return;
  }
  ExecuteAndRender(query.value(), request, response);
}

void DashboardService::HandleSql(const HttpRequest& request,
                                 HttpResponse* response) {
  std::string sql = request.Param("q");
  if (sql.empty()) {
    WriteError(Status::InvalidArgument("missing ?q=<SQL>"), response);
    return;
  }
  SqlParser parser(&rased_->world(), rased_->road_types());
  auto query = parser.Parse(sql);
  if (!query.ok()) {
    WriteError(query.status(), response);
    return;
  }
  ExecuteAndRender(query.value(), request, response);
}

void DashboardService::ExecuteAndRender(const AnalysisQuery& query,
                                        const HttpRequest& request,
                                        HttpResponse* response) {
  auto result = rased_->Query(query);
  if (!result.ok()) {
    WriteError(result.status(), response);
    return;
  }
  std::string format = request.Param("format");
  if (format.empty() || format == "json") {
    response->body = RenderJson(result.value(), query, ctx_);
    return;
  }
  if (format == "csv") {
    response->content_type = "text/csv; charset=utf-8";
    response->body = RenderCsv(result.value(), query, ctx_);
    return;
  }
  response->content_type = "text/plain; charset=utf-8";
  if (format == "table") {
    response->body = RenderTable(result.value(), query, ctx_);
  } else if (format == "bar") {
    response->body = RenderBarChart(result.value(), query, ctx_);
  } else if (format == "timeseries") {
    response->body = RenderTimeSeries(result.value(), query, ctx_);
  } else if (format == "choropleth") {
    response->body = RenderChoropleth(result.value(), ctx_);
  } else if (format == "pivot") {
    response->body = RenderCountryElementPivot(result.value(), ctx_);
  } else {
    WriteError(Status::InvalidArgument("unknown format '" + format + "'"),
               response);
  }
}

void DashboardService::HandleSample(const HttpRequest& request,
                                    HttpResponse* response) {
  Result<std::vector<UpdateRecord>> samples =
      std::vector<UpdateRecord>{};
  if (request.HasParam("changeset")) {
    auto id = ParseUint(request.Param("changeset"));
    if (!id.ok()) {
      WriteError(id.status(), response);
      return;
    }
    samples = rased_->SampleByChangeset(id.value());
  } else if (request.HasParam("min_lat")) {
    BoundingBox box;
    auto parse = [&request](const char* key) {
      return ParseDouble(request.Param(key));
    };
    auto min_lat = parse("min_lat"), min_lon = parse("min_lon"),
         max_lat = parse("max_lat"), max_lon = parse("max_lon");
    if (!min_lat.ok() || !min_lon.ok() || !max_lat.ok() || !max_lon.ok()) {
      WriteError(Status::InvalidArgument("bad bounding box"), response);
      return;
    }
    box = BoundingBox{min_lat.value(), min_lon.value(), max_lat.value(),
                      max_lon.value()};
    size_t n = 100;
    if (request.HasParam("n")) {
      auto parsed = ParseUint(request.Param("n"));
      if (parsed.ok()) n = static_cast<size_t>(parsed.value());
    }
    samples = rased_->SampleInBox(box, n);
  } else {
    WriteError(Status::InvalidArgument(
                   "expected ?changeset=<id> or a bounding box"),
               response);
    return;
  }
  if (!samples.ok()) {
    WriteError(samples.status(), response);
    return;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("samples");
  w.BeginArray();
  for (const UpdateRecord& r : samples.value()) {
    w.BeginObject();
    w.KV("element_type", ElementTypeName(r.element_type));
    w.KV("date", std::string_view(r.date.ToString()));
    w.KV("country", std::string_view(ctx_.CountryName(r.country)));
    w.KV("lat", r.lat);
    w.KV("lon", r.lon);
    w.KV("road_type", std::string_view(ctx_.RoadTypeName(r.road_type)));
    w.KV("update_type", UpdateTypeName(r.update_type));
    w.KV("changeset", r.changeset_id);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  response->body = std::move(w).Finish();
}

void DashboardService::HandleZones(const HttpRequest&,
                                   HttpResponse* response) {
  JsonWriter w;
  w.BeginObject();
  w.Key("zones");
  w.BeginArray();
  for (const Zone& z : rased_->world().zones()) {
    w.BeginObject();
    w.KV("id", static_cast<uint64_t>(z.id));
    w.KV("name", std::string_view(z.name));
    const char* kind = z.kind == ZoneKind::kCountry     ? "country"
                       : z.kind == ZoneKind::kContinent ? "continent"
                       : z.kind == ZoneKind::kState     ? "state"
                                                        : "unknown";
    w.KV("kind", kind);
    w.KV("road_network_size", z.road_network_size);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  response->body = std::move(w).Finish();
}

void DashboardService::HandleStats(const HttpRequest&,
                                   HttpResponse* response) {
  IndexStorageStats storage = rased_->index()->StorageStats();
  CacheStats cache = rased_->cache()->stats();
  JsonWriter w;
  w.BeginObject();
  w.Key("index");
  w.BeginObject();
  w.KV("coverage", std::string_view(rased_->index()->coverage().ToString()));
  w.KV("daily_cubes", storage.cubes_per_level[0]);
  w.KV("weekly_cubes", storage.cubes_per_level[1]);
  w.KV("monthly_cubes", storage.cubes_per_level[2]);
  w.KV("yearly_cubes", storage.cubes_per_level[3]);
  w.KV("total_cubes", storage.total_cubes);
  w.KV("file_bytes", storage.file_bytes);
  w.EndObject();
  w.Key("cache");
  w.BeginObject();
  w.KV("slots", static_cast<uint64_t>(rased_->cache()->capacity()));
  w.KV("resident", static_cast<uint64_t>(rased_->cache()->size()));
  w.KV("hits", cache.hits);
  w.KV("misses", cache.misses);
  w.EndObject();
  w.EndObject();
  response->body = std::move(w).Finish();
}

}  // namespace rased
