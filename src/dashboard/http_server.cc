#include "dashboard/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "obs/profiler.h"
#include "obs/request_context.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

namespace {

/// Parses the header lines between the request line and the blank line
/// into lower-cased-name/trimmed-value pairs. Tolerant: malformed lines
/// are skipped (headers are advisory for this server).
std::map<std::string, std::string> ParseHeaderLines(
    const std::string& request, size_t headers_begin) {
  std::map<std::string, std::string> headers;
  size_t pos = headers_begin;
  while (pos < request.size()) {
    size_t eol = request.find("\r\n", pos);
    if (eol == std::string::npos || eol == pos) break;  // blank line = end
    std::string_view line(request.data() + pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) continue;
    std::string name(line.substr(0, colon));
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t' ||
                              value.back() == '\r')) {
      value.remove_suffix(1);
    }
    headers[name] = std::string(value);
  }
  return headers;
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& path, Handler handler) {
  RASED_CHECK(!running_.load()) << "Route() after Start()";
  MutexLock lock(&mu_);
  routes_[path] = std::move(handler);
}

Status HttpServer::Start(int port, int num_threads) {
  if (num_threads < 1) num_threads = 1;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int on = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError(StrFormat("bind(%d): %s", port,
                                     std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  {
    MutexLock lock(&mu_);
    InitMetricsLocked();
  }
  listen_fd_.store(fd);
  running_.store(true);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { AcceptLoop(); });
  }
  return Status::OK();
}

void HttpServer::InitMetricsLocked() {
  if (metrics_ == nullptr) return;
  malformed_counter_ =
      metrics_->GetCounter("rased_http_malformed_requests_total",
                           "Requests whose request line failed to parse");
  std::vector<std::string> endpoints;
  endpoints.reserve(routes_.size() + 1);
  for (const auto& [path, handler] : routes_) endpoints.push_back(path);
  // Requests for unregistered paths share one label value so arbitrary
  // client input never mints new series.
  endpoints.push_back("(unmatched)");
  for (const std::string& endpoint : endpoints) {
    EndpointMetrics em;
    MetricLabels labels{{"endpoint", endpoint}};
    // NOLINT-RASED(metric-in-loop): registration runs once per endpoint in
    em.requests = metrics_->GetCounter("rased_http_requests_total",
                                       "HTTP requests served", labels);
    // NOLINT-RASED(metric-in-loop): Start, before any worker serves traffic
    em.latency = metrics_->GetHistogram("rased_http_request_micros",
                                        "Request handling wall time "
                                        "(microseconds, excludes socket I/O)",
                                        HistogramOptions{}, labels);
    auto status_counter = [&](const char* status_class) {
      MetricLabels l = labels;
      l.emplace_back("class", status_class);
      // NOLINT-RASED(metric-in-loop): one-time registration per status class
      return metrics_->GetCounter("rased_http_responses_total",
                                  "HTTP responses by status class", l);
    };
    em.status_2xx = status_counter("2xx");
    em.status_4xx = status_counter("4xx");
    em.status_5xx = status_counter("5xx");
    endpoint_metrics_[endpoint] = em;
  }
}

void HttpServer::RecordRequestMetrics(const std::string& endpoint, int status,
                                      int64_t wall_micros) {
  if (metrics_ == nullptr) return;
  auto it = endpoint_metrics_.find(endpoint);
  if (it == endpoint_metrics_.end()) {
    it = endpoint_metrics_.find("(unmatched)");
    if (it == endpoint_metrics_.end()) return;  // no registry attached
  }
  const EndpointMetrics& em = it->second;
  em.requests->Increment();
  em.latency->Observe(wall_micros);
  Counter* status_counter = status >= 500   ? em.status_5xx
                            : status >= 400 ? em.status_4xx
                            : status >= 200 && status < 300 ? em.status_2xx
                                                            : nullptr;
  if (status_counter != nullptr) status_counter->Increment();
}

void HttpServer::Stop() {
  if (running_.exchange(false)) {
    // Shutting the listen socket down unblocks every accept(). The fd is
    // swapped out atomically first so no worker can observe a reused fd.
    int fd = listen_fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void HttpServer::AcceptLoop() {
  // HTTP workers are where queries burn CPU, so they are the threads the
  // continuous profiler samples (no-op while the profiler is stopped).
  ProfilerThreadScope profiler_scope("http-worker");
  // Several workers accept() on the same listening socket; the kernel
  // hands each incoming connection to exactly one of them.
  while (running_.load()) {
    int listen_fd = listen_fd_.load();
    if (listen_fd < 0) break;  // Stop() already retired the socket
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      if (errno == EINTR) continue;
      RASED_LOG(Warning) << "accept: " << std::strerror(errno);
      break;
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

std::string HttpServer::UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < text.size() &&
               std::isxdigit(static_cast<unsigned char>(text[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(text[i + 2]))) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        return h - 'A' + 10;
      };
      out.push_back(static_cast<char>(hex(text[i + 1]) * 16 +
                                      hex(text[i + 2])));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::map<std::string, std::string> HttpServer::ParseQuery(
    std::string_view qs) {
  std::map<std::string, std::string> params;
  size_t start = 0;
  while (start <= qs.size()) {
    size_t amp = qs.find('&', start);
    if (amp == std::string_view::npos) amp = qs.size();
    std::string_view pair = qs.substr(start, amp - start);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        params[UrlDecode(pair)] = "";
      } else {
        params[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    start = amp + 1;
  }
  return params;
}

void HttpServer::HandleConnection(int fd) {
  // Read until the end of the header block (requests here are GETs with no
  // body) or a sanity cap.
  std::string request;
  char buf[4096];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 64 * 1024) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  const int64_t t_start = NowMicros();
  HttpResponse response;
  HttpRequest parsed;
  bool matched = false;
  size_t line_end = request.find("\r\n");
  std::string first_line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  if (line_end != std::string::npos) {
    parsed.headers = ParseHeaderLines(request, line_end + 2);
  }

  // Adopt a well-formed inbound trace id (scatter-gather propagation) or
  // mint a fresh one; either way the id scopes every log line below, is
  // visible to handlers via CurrentTraceId(), and is echoed in the
  // response so clients and logs join on one key.
  uint64_t trace_id = 0;
  if (auto inbound = parsed.headers.find("x-rased-trace-id");
      inbound != parsed.headers.end()) {
    Result<uint64_t> parsed_id = ParseTraceId(inbound->second);
    if (parsed_id.ok()) trace_id = parsed_id.value();
  }
  if (trace_id == 0) trace_id = MintTraceId();
  ScopedRequestContext request_scope(trace_id);

  std::vector<std::string> parts = Split(first_line, ' ');
  if (parts.size() < 2) {
    response.status = 400;
    response.content_type = "text/plain";
    response.body = "bad request";
    if (malformed_counter_ != nullptr) malformed_counter_->Increment();
  } else {
    parsed.method = parts[0];
    std::string target = parts[1];
    size_t qmark = target.find('?');
    if (qmark != std::string::npos) {
      parsed.params = ParseQuery(std::string_view(target).substr(qmark + 1));
      parsed.path = target.substr(0, qmark);
    } else {
      parsed.path = target;
    }
    Handler* handler = nullptr;
    {
      MutexLock lock(&mu_);
      auto it = routes_.find(parsed.path);
      // Handlers are registered before Start and never removed, so the
      // pointer stays valid after the lock is dropped; the handler itself
      // must not run under mu_ or one slow query would serialize the pool.
      if (it != routes_.end()) handler = &it->second;
    }
    if (handler == nullptr) {
      response.status = 404;
      response.content_type = "text/plain";
      response.body = "not found: " + parsed.path;
    } else if (parsed.method != "GET" && parsed.method != "HEAD") {
      // The dashboard API is read-only; a known path with a writing verb
      // is a method error, not a missing resource.
      matched = true;
      response.status = 405;
      response.content_type = "text/plain";
      response.body = "method not allowed: " + parsed.method;
    } else {
      matched = true;
      (*handler)(parsed, &response);
    }
  }

  const int64_t wall_micros = NowMicros() - t_start;
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  RecordRequestMetrics(matched ? parsed.path : "(unmatched)", response.status,
                       wall_micros);
  // Access log, correlated with the response via the trace= prefix field.
  RASED_LOG(Debug) << parsed.method << " " << parsed.path << " -> "
                   << response.status << " (" << response.body.size()
                   << " bytes, " << wall_micros << "us)";
  const char* status_text = response.status == 200   ? "OK"
                            : response.status == 400 ? "Bad Request"
                            : response.status == 404 ? "Not Found"
                            : response.status == 405 ? "Method Not Allowed"
                            : response.status == 500 ? "Internal Server Error"
                            : response.status == 503 ? "Service Unavailable"
                                                     : "Error";
  std::string extra_headers;
  for (const auto& [name, value] : response.headers) {
    extra_headers += name + ": " + value + "\r\n";
  }
  extra_headers += "X-Rased-Trace-Id: " + FormatTraceId(trace_id) + "\r\n";
  std::string out = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n%sContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, status_text, response.content_type.c_str(),
      extra_headers.c_str(), response.body.size());
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace rased
