#include "dashboard/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& path, Handler handler) {
  RASED_CHECK(!running_.load()) << "Route() after Start()";
  MutexLock lock(&mu_);
  routes_[path] = std::move(handler);
}

Status HttpServer::Start(int port, int num_threads) {
  if (num_threads < 1) num_threads = 1;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int on = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError(StrFormat("bind(%d): %s", port,
                                     std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  listen_fd_.store(fd);
  running_.store(true);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { AcceptLoop(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (running_.exchange(false)) {
    // Shutting the listen socket down unblocks every accept(). The fd is
    // swapped out atomically first so no worker can observe a reused fd.
    int fd = listen_fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void HttpServer::AcceptLoop() {
  // Several workers accept() on the same listening socket; the kernel
  // hands each incoming connection to exactly one of them.
  while (running_.load()) {
    int listen_fd = listen_fd_.load();
    if (listen_fd < 0) break;  // Stop() already retired the socket
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      if (errno == EINTR) continue;
      RASED_LOG(Warning) << "accept: " << std::strerror(errno);
      break;
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

std::string HttpServer::UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < text.size() &&
               std::isxdigit(static_cast<unsigned char>(text[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(text[i + 2]))) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        return h - 'A' + 10;
      };
      out.push_back(static_cast<char>(hex(text[i + 1]) * 16 +
                                      hex(text[i + 2])));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::map<std::string, std::string> HttpServer::ParseQuery(
    std::string_view qs) {
  std::map<std::string, std::string> params;
  size_t start = 0;
  while (start <= qs.size()) {
    size_t amp = qs.find('&', start);
    if (amp == std::string_view::npos) amp = qs.size();
    std::string_view pair = qs.substr(start, amp - start);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        params[UrlDecode(pair)] = "";
      } else {
        params[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    start = amp + 1;
  }
  return params;
}

void HttpServer::HandleConnection(int fd) {
  // Read until the end of the header block (requests here are GETs with no
  // body) or a sanity cap.
  std::string request;
  char buf[4096];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 64 * 1024) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  HttpResponse response;
  HttpRequest parsed;
  size_t line_end = request.find("\r\n");
  std::string first_line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  std::vector<std::string> parts = Split(first_line, ' ');
  if (parts.size() < 2) {
    response.status = 400;
    response.content_type = "text/plain";
    response.body = "bad request";
  } else {
    parsed.method = parts[0];
    std::string target = parts[1];
    size_t qmark = target.find('?');
    if (qmark != std::string::npos) {
      parsed.params = ParseQuery(std::string_view(target).substr(qmark + 1));
      parsed.path = target.substr(0, qmark);
    } else {
      parsed.path = target;
    }
    Handler* handler = nullptr;
    {
      MutexLock lock(&mu_);
      auto it = routes_.find(parsed.path);
      // Handlers are registered before Start and never removed, so the
      // pointer stays valid after the lock is dropped; the handler itself
      // must not run under mu_ or one slow query would serialize the pool.
      if (it != routes_.end()) handler = &it->second;
    }
    if (handler == nullptr) {
      response.status = 404;
      response.content_type = "text/plain";
      response.body = "not found: " + parsed.path;
    } else {
      (*handler)(parsed, &response);
    }
  }

  requests_served_.fetch_add(1, std::memory_order_relaxed);
  const char* status_text = response.status == 200   ? "OK"
                            : response.status == 400 ? "Bad Request"
                            : response.status == 404 ? "Not Found"
                                                     : "Error";
  std::string out = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, status_text, response.content_type.c_str(),
      response.body.size());
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace rased
