#ifndef RASED_DASHBOARD_RENDER_H_
#define RASED_DASHBOARD_RENDER_H_

#include <string>
#include <vector>

#include "geo/world_map.h"
#include "osm/road_types.h"
#include "query/analysis_query.h"

namespace rased {

/// Name resolution for rendering query results.
struct RenderContext {
  const WorldMap* world = nullptr;
  const RoadTypeTable* road_types = nullptr;

  std::string LabelFor(const ResultRow& row, const AnalysisQuery& query) const;
  std::string CountryName(int32_t id) const;
  std::string RoadTypeName(int32_t id) const;
};

/// RASED visualizes analysis-query answers as tables, charts, a choropleth
/// map, or a timelapse (Section IV-A). These renderers produce the
/// terminal/text versions; RenderJson feeds the web dashboard.

/// Generic result table sorted by count descending (the paper's tabular
/// format, sortable on any column — pass `sort_column`).
enum class TableSort { kCount = 0, kLabel = 1, kPercentage = 2 };
std::string RenderTable(const QueryResult& result, const AnalysisQuery& query,
                        const RenderContext& ctx,
                        TableSort sort = TableSort::kCount,
                        size_t max_rows = 50);

/// The paper's Figure 3 pivot: one row per country, columns for every
/// (element type x created/modified) combination plus an "All" total.
/// Requires group_country && group_element_type && group_update_type.
std::string RenderCountryElementPivot(const QueryResult& result,
                                      const RenderContext& ctx,
                                      size_t max_rows = 20);

/// Horizontal ASCII bar chart of the top `max_bars` groups (Figures 2/4).
std::string RenderBarChart(const QueryResult& result,
                           const AnalysisQuery& query,
                           const RenderContext& ctx, int width = 60,
                           size_t max_bars = 20);

/// Multi-series time chart for date-grouped results (Figure 5): one symbol
/// per series (country), days bucketed to fit `width` columns.
std::string RenderTimeSeries(const QueryResult& result,
                             const AnalysisQuery& query,
                             const RenderContext& ctx, int width = 80,
                             int height = 16);

/// ASCII world choropleth for country-grouped results: the synthetic world
/// grid shaded by each zone's value.
std::string RenderChoropleth(const QueryResult& result,
                             const RenderContext& ctx, int cols = 90,
                             int rows = 30);

/// Timelapse: one choropleth frame per month of a (date, country)-grouped
/// result — the terminal version of RASED's road-evolution video.
std::vector<std::string> RenderTimelapse(const QueryResult& result,
                                         const RenderContext& ctx,
                                         int cols = 90, int rows = 30);

/// JSON encoding of a result (rows + execution stats).
std::string RenderJson(const QueryResult& result, const AnalysisQuery& query,
                       const RenderContext& ctx);

/// CSV export (header + one line per row; RFC-4180-style quoting). The
/// format map analysts feed into spreadsheets and notebooks.
std::string RenderCsv(const QueryResult& result, const AnalysisQuery& query,
                      const RenderContext& ctx);

}  // namespace rased

#endif  // RASED_DASHBOARD_RENDER_H_
