#ifndef RASED_DASHBOARD_HTTP_SERVER_H_
#define RASED_DASHBOARD_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics_registry.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace rased {

/// A parsed HTTP request (method, path, decoded query parameters, headers).
struct HttpRequest {
  std::string method;
  std::string path;  // without the query string
  std::map<std::string, std::string> params;
  /// Request headers, names lower-cased, values whitespace-trimmed.
  std::map<std::string, std::string> headers;

  /// Parameter value or empty string.
  std::string Param(const std::string& key) const {
    auto it = params.find(key);
    return it == params.end() ? std::string() : it->second;
  }
  bool HasParam(const std::string& key) const {
    return params.find(key) != params.end();
  }
  /// Header value (by lower-case name) or empty string.
  std::string Header(const std::string& name) const {
    auto it = headers.find(name);
    return it == headers.end() ? std::string() : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers, emitted verbatim after Content-Type. The
  /// server itself appends X-Rased-Trace-Id to every response.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Minimal blocking HTTP/1.1 server for the RASED dashboard: an accept
/// loop on a background thread, one short-lived connection per request
/// (Connection: close). Localhost tooling, not an internet-facing server.
///
/// Threading contract: Route/Start/Stop are driver-thread operations
/// (Route before Start; Start/Stop never concurrently with themselves).
/// Everything the worker threads touch is either immutable after Start
/// (routes_, guarded against late registration by mu_), atomic
/// (running_, listen_fd_), or thread-local to the connection.
class HttpServer {
 public:
  using Handler = std::function<void(const HttpRequest&, HttpResponse*)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact path. Must be called before Start.
  void Route(const std::string& path, Handler handler) RASED_EXCLUDES(mu_);

  /// Points the server at a metrics registry. Must be called before Start;
  /// Start then registers one rased_http_* series set per routed path plus
  /// an "(unmatched)" endpoint, so the full family is visible from boot and
  /// the per-request path is a pointer lookup with no registry lock.
  void set_metrics(MetricsRegistry* registry) {
    RASED_CHECK(!running_.load()) << "set_metrics() after Start()";
    metrics_ = registry;
  }

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts
  /// `num_threads` accept workers; each handles one connection at a time,
  /// so handlers run concurrently and must synchronize shared state
  /// themselves (DashboardService serializes access to its Rased
  /// instance).
  Status Start(int port, int num_threads = 4);

  /// Stops the accept loop and joins the thread. Safe to call twice.
  void Stop();

  /// The bound port (valid after Start succeeds).
  int port() const { return port_; }
  bool running() const { return running_.load(); }

  /// Number of requests fully served since Start (exposed for tests and
  /// /api/stats; safe to read from any thread).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Percent-decodes a URL component (exposed for tests).
  static std::string UrlDecode(std::string_view text);

  /// Parses "k1=v1&k2=v2" into decoded pairs (exposed for tests).
  static std::map<std::string, std::string> ParseQuery(std::string_view qs);

 private:
  /// Metric handles for one endpoint label value (a routed path or
  /// "(unmatched)"). Built in Start, immutable afterwards — worker threads
  /// read them lock-free; the handles themselves are atomic.
  struct EndpointMetrics {
    Counter* requests = nullptr;       // rased_http_requests_total
    Histogram* latency = nullptr;      // rased_http_request_micros
    Counter* status_2xx = nullptr;     // rased_http_responses_total{class=}
    Counter* status_4xx = nullptr;
    Counter* status_5xx = nullptr;
  };

  void AcceptLoop();
  void HandleConnection(int fd) RASED_EXCLUDES(mu_);
  void InitMetricsLocked() RASED_REQUIRES(mu_);
  void RecordRequestMetrics(const std::string& endpoint, int status,
                            int64_t wall_micros);

  /// Guards route registration against lookup. Lookups happen on worker
  /// threads; registration is rejected once running_, so in practice the
  /// lock is uncontended after Start.
  mutable Mutex mu_;
  std::map<std::string, Handler> routes_ RASED_GUARDED_BY(mu_);

  /// Written by Start/Stop, read by every accept worker — atomic, because
  /// Stop closes the socket while workers sit in accept() on it.
  std::atomic<int> listen_fd_{-1};
  /// Written in Start before the workers are spawned (and threads_ again
  /// in Stop, after they are joined) — single-threaded lifecycle phases.
  int port_ RASED_CONST_AFTER_INIT = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::vector<std::thread> threads_ RASED_CONST_AFTER_INIT;

  /// Observability (all null / empty when no registry was attached).
  /// endpoint_metrics_ is written once in Start before workers exist and
  /// read-only afterwards, so workers look endpoints up without mu_.
  MetricsRegistry* metrics_ RASED_CONST_AFTER_INIT = nullptr;
  std::map<std::string, EndpointMetrics> endpoint_metrics_
      RASED_CONST_AFTER_INIT;
  Counter* malformed_counter_ RASED_CONST_AFTER_INIT = nullptr;
};

}  // namespace rased

#endif  // RASED_DASHBOARD_HTTP_SERVER_H_
