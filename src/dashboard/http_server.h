#ifndef RASED_DASHBOARD_HTTP_SERVER_H_
#define RASED_DASHBOARD_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/result.h"

namespace rased {

/// A parsed HTTP request (method, path, decoded query parameters).
struct HttpRequest {
  std::string method;
  std::string path;  // without the query string
  std::map<std::string, std::string> params;

  /// Parameter value or empty string.
  std::string Param(const std::string& key) const {
    auto it = params.find(key);
    return it == params.end() ? std::string() : it->second;
  }
  bool HasParam(const std::string& key) const {
    return params.find(key) != params.end();
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Minimal blocking HTTP/1.1 server for the RASED dashboard: an accept
/// loop on a background thread, one short-lived connection per request
/// (Connection: close). Localhost tooling, not an internet-facing server.
class HttpServer {
 public:
  using Handler = std::function<void(const HttpRequest&, HttpResponse*)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact path. Must be called before Start.
  void Route(const std::string& path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts
  /// `num_threads` accept workers; each handles one connection at a time,
  /// so handlers run concurrently and must synchronize shared state
  /// themselves (DashboardService serializes access to its Rased
  /// instance).
  Status Start(int port, int num_threads = 4);

  /// Stops the accept loop and joins the thread. Safe to call twice.
  void Stop();

  /// The bound port (valid after Start succeeds).
  int port() const { return port_; }
  bool running() const { return running_.load(); }

  /// Percent-decodes a URL component (exposed for tests).
  static std::string UrlDecode(std::string_view text);

  /// Parses "k1=v1&k2=v2" into decoded pairs (exposed for tests).
  static std::map<std::string, std::string> ParseQuery(std::string_view qs);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  std::map<std::string, Handler> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::vector<std::thread> threads_;
};

}  // namespace rased

#endif  // RASED_DASHBOARD_HTTP_SERVER_H_
