#ifndef RASED_SYNTH_CUBE_SYNTHESIZER_H_
#define RASED_SYNTH_CUBE_SYNTHESIZER_H_

#include "cube/data_cube.h"
#include "geo/world_map.h"
#include "synth/activity_model.h"
#include "synth/synth_options.h"

namespace rased {

/// Fast path for building multi-year indexes: synthesizes a day's data cube
/// directly from the activity model, skipping record materialization and
/// XML entirely.
///
/// Statistically this is the same process as generating records and
/// ingesting them with CubeBuilder: a country's day total is Poisson, and a
/// Poisson total split multinomially over (ElementType, RoadType,
/// UpdateType) cells is exactly a set of independent per-cell Poissons
/// (Poisson thinning). Continent cells are the sums of their member
/// countries' draws, and the US states partition the United States' draw,
/// preserving the zone-of-interest consistency invariant.
class CubeSynthesizer {
 public:
  /// schema.num_countries must equal world->num_zones().
  CubeSynthesizer(const SynthOptions& options, const WorldMap* world,
                  const CubeSchema& schema);

  /// Deterministic in (options.seed, day).
  DataCube DayCube(Date day) const;

  const ActivityModel& activity() const { return activity_; }
  const CubeSchema& schema() const { return schema_; }

 private:
  SynthOptions options_;
  const WorldMap* world_;
  CubeSchema schema_;
  ActivityModel activity_;
};

}  // namespace rased

#endif  // RASED_SYNTH_CUBE_SYNTHESIZER_H_
