#include "synth/activity_model.h"

#include <cmath>
#include <string>
#include <unordered_map>

#include "osm/road_types.h"
#include "util/logging.h"
#include "util/random.h"

namespace rased {

namespace {

/// Countries leading the synthetic activity ranking, mirroring the country
/// ordering visible in the paper's Figure 3 (United States, India, Germany,
/// Brazil, Mexico, France, Vietnam, ...).
const char* const kCuratedRanking[] = {
    "United States", "India",          "Germany", "Brazil",
    "Mexico",        "France",         "Vietnam", "Canada",
    "United Kingdom","Italy",          "Spain",   "Poland",
    "Indonesia",     "China",          "Japan",   "Netherlands",
    "Australia",     "Philippines",    "Turkey",  "Ukraine",
};

/// Deterministic per-(seed, zone, day) coin for mapathon bursts; a fresh
/// tiny RNG keeps burst decisions independent of generation order.
bool BurstOn(uint64_t seed, ZoneId zone, Date day, double rate) {
  uint64_t mix = seed;
  mix = mix * 0x9e3779b97f4a7c15ull + zone;
  mix = mix * 0x9e3779b97f4a7c15ull +
        static_cast<uint64_t>(static_cast<int64_t>(day.days_since_epoch()));
  Rng rng(mix);
  return rng.Bernoulli(rate);
}

}  // namespace

ActivityModel::ActivityModel(const SynthOptions& options,
                             const WorldMap* world, uint32_t num_road_types)
    : options_(options), world_(world) {
  // --- country weights: curated leaders first, then map order ---
  std::unordered_map<std::string, size_t> curated;
  for (size_t i = 0; i < std::size(kCuratedRanking); ++i) {
    curated.emplace(kCuratedRanking[i], i);
  }
  const auto& ids = world->country_ids();
  // rank[i] -> zone: curated countries get their curated position (when
  // present in this map); the rest follow in inventory order.
  std::vector<ZoneId> by_rank;
  by_rank.reserve(ids.size());
  std::vector<ZoneId> leaders(std::size(kCuratedRanking), kZoneUnknown);
  std::vector<ZoneId> rest;
  for (ZoneId id : ids) {
    auto it = curated.find(world->zone(id).name);
    if (it != curated.end()) {
      leaders[it->second] = id;
    } else {
      rest.push_back(id);
    }
  }
  for (ZoneId id : leaders) {
    if (id != kZoneUnknown) by_rank.push_back(id);
  }
  for (ZoneId id : rest) by_rank.push_back(id);

  weights_.assign(world->num_zones(), 0.0);
  double total = 0.0;
  for (size_t rank = 0; rank < by_rank.size(); ++rank) {
    double w = 1.0 / std::pow(static_cast<double>(rank + 1),
                              options_.zipf_theta);
    weights_[by_rank[rank]] = w;
    total += w;
  }
  for (double& w : weights_) w /= total;

  // --- per-zone seasonal phase ---
  phases_.assign(world->num_zones(), 0.0);
  Rng rng(options_.seed ^ 0x5ea50a11ull);
  for (ZoneId id : ids) phases_[id] = rng.NextDouble() * 6.283185307179586;

  // --- element mix ---
  element_mix_ = {options_.p_node, options_.p_way, options_.p_relation};
  double esum = element_mix_[0] + element_mix_[1] + element_mix_[2];
  for (double& p : element_mix_) p /= esum;

  // --- update mix ---
  update_mix_ = {options_.p_new, options_.p_delete, options_.p_geometry,
                 options_.p_metadata};
  double usum = 0.0;
  for (double p : update_mix_) usum += p;
  for (double& p : update_mix_) p /= usum;

  // --- road-type mix ---
  // Build over the canonical table layout: slot 0 "(none)", slot 1
  // "other", then the canonical highway taxonomy. A handful of frequent
  // classes get boosted to resemble real OSM edit volumes.
  RoadTypeTable table(num_road_types);
  road_mix_.assign(num_road_types, 0.0);
  const std::unordered_map<std::string, double> boosts = {
      {"residential", 8.0}, {"service", 5.0}, {"footway", 3.0},
      {"path", 2.0},        {"track", 2.5},   {"unclassified", 2.0},
      {"primary", 1.8},     {"secondary", 1.8}, {"tertiary", 1.8},
      {"crossing", 1.5},    {"bus_stop", 1.5},
  };
  road_mix_[kRoadTypeNone] = 6.0;  // POI/intersection node updates
  double rsum = road_mix_[kRoadTypeNone];
  for (uint32_t i = 1; i < table.size() && i < num_road_types; ++i) {
    double w = 1.0 / (i + 2.0);
    auto it = boosts.find(table.Name(static_cast<RoadTypeId>(i)));
    if (it != boosts.end()) w *= it->second * 10.0;
    road_mix_[i] = w;
    rsum += w;
  }
  for (double& p : road_mix_) p /= rsum;
}

double ActivityModel::CountryWeight(ZoneId country) const {
  RASED_CHECK(country < weights_.size());
  return weights_[country];
}

double ActivityModel::CountryIntensity(ZoneId country, Date day) const {
  RASED_CHECK(country < weights_.size());
  double w = weights_[country];
  if (w == 0.0) return 0.0;
  double years = static_cast<double>(day - options_.period.first) / 365.25;
  double growth = std::pow(1.0 + options_.growth_per_year, years);
  double doy_angle = 6.283185307179586 *
                     static_cast<double>(day - day.year_start()) / 365.25;
  double season =
      1.0 + options_.seasonality * std::sin(doy_angle + phases_[country]);
  double burst = BurstOn(options_.seed, country, day, options_.mapathon_rate)
                     ? options_.mapathon_multiplier
                     : 1.0;
  return options_.base_updates_per_day * w * growth * season * burst;
}

void ActivityModel::InitRoadNetworkSizes(WorldMap* world) const {
  for (ZoneId id : world->country_ids()) {
    world->SetRoadNetworkSize(
        id, static_cast<uint64_t>(options_.road_network_total * weights_[id]));
  }
}

}  // namespace rased
