#ifndef RASED_SYNTH_UPDATE_GENERATOR_H_
#define RASED_SYNTH_UPDATE_GENERATOR_H_

#include <string>
#include <vector>

#include "collect/update_record.h"
#include "geo/world_map.h"
#include "osm/road_types.h"
#include "synth/activity_model.h"
#include "synth/synth_options.h"

namespace rased {

/// One day's crawler input files, in the real OSM formats.
struct DayArtifacts {
  std::string osc_xml;         ///< the day's diff (osmChange)
  std::string changesets_xml;  ///< the day's changeset metadata
};

/// One month's monthly-crawler input.
struct MonthArtifacts {
  std::string history_xml;     ///< full-history fragment for the month
  std::string changesets_xml;  ///< all changesets of the month
};

/// Generates the synthetic editing history. Two mutually consistent paths:
///
///  * GenerateDayRecords — UpdateList tuples directly (the fast path used
///    to bulk load 16 years of cubes). Tuples carry the final four-way
///    UpdateType classification.
///  * GenerateDayArtifacts / GenerateMonthArtifacts — real OSC diff,
///    changeset, and full-history XML derived from the same per-day record
///    stream, exercising the crawlers end-to-end. A daily crawl of the
///    artifacts yields the same tuples with the provisional UpdateType;
///    a monthly crawl recovers the full classification.
///
/// Everything is deterministic in (options.seed, date).
class UpdateGenerator {
 public:
  /// The world map must have num_zones() matching the intended cube
  /// schema; `road_types` is shared with the crawlers so ids agree.
  UpdateGenerator(const SynthOptions& options, const WorldMap* world,
                  RoadTypeTable* road_types);

  const ActivityModel& activity() const { return activity_; }

  /// UpdateList tuples for one day, grouped into synthetic changesets
  /// (records of one changeset are consecutive and share changeset_id).
  std::vector<UpdateRecord> GenerateDayRecords(Date day) const;

  /// Diff + changeset files for one day (derived from GenerateDayRecords).
  DayArtifacts GenerateDayArtifacts(Date day) const;

  /// Full-history + changeset files covering one month.
  MonthArtifacts GenerateMonthArtifacts(Date month_start) const;

 private:
  /// Stable changeset id for a (day, sequence) pair.
  static uint64_t ChangesetIdFor(Date day, uint32_t seq);

  SynthOptions options_;
  const WorldMap* world_;
  RoadTypeTable* road_types_;
  ActivityModel activity_;
};

}  // namespace rased

#endif  // RASED_SYNTH_UPDATE_GENERATOR_H_
