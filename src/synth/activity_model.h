#ifndef RASED_SYNTH_ACTIVITY_MODEL_H_
#define RASED_SYNTH_ACTIVITY_MODEL_H_

#include <vector>

#include "geo/world_map.h"
#include "synth/synth_options.h"
#include "util/date.h"

namespace rased {

/// Deterministic per-country, per-day editing intensity plus the categorical
/// mixes shared by the record generator and the cube synthesizer. Both
/// generation paths draw from the same means, so bulk-loading cubes directly
/// is statistically indistinguishable from crawling generated files.
class ActivityModel {
 public:
  /// `num_road_types` is the RoadType dimension size (schema and road-type
  /// table capacity must agree with it).
  ActivityModel(const SynthOptions& options, const WorldMap* world,
                uint32_t num_road_types);

  /// Mean number of updates for one country on one day, including growth,
  /// seasonality, and any mapathon burst.
  double CountryIntensity(ZoneId country, Date day) const;

  /// Normalized activity weight of a country (sums to 1 over countries).
  double CountryWeight(ZoneId country) const;

  /// Probability vectors over the cube dimensions (each sums to 1).
  const std::vector<double>& element_mix() const { return element_mix_; }
  const std::vector<double>& road_mix() const { return road_mix_; }
  const std::vector<double>& update_mix() const { return update_mix_; }

  /// Writes road-network sizes into the world map: country size =
  /// road_network_total x weight.
  void InitRoadNetworkSizes(WorldMap* world) const;

  const SynthOptions& options() const { return options_; }

 private:
  SynthOptions options_;
  const WorldMap* world_;
  std::vector<double> weights_;  // indexed by ZoneId; 0 for non-countries
  std::vector<double> phases_;   // per-zone seasonal phase
  std::vector<double> element_mix_;
  std::vector<double> road_mix_;
  std::vector<double> update_mix_;
};

}  // namespace rased

#endif  // RASED_SYNTH_ACTIVITY_MODEL_H_
