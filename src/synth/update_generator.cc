#include "synth/update_generator.h"

#include <algorithm>

#include "geo/latlon.h"
#include "osm/changeset.h"
#include "osm/history.h"
#include "osm/osc.h"
#include "util/logging.h"
#include "util/random.h"

namespace rased {

namespace {

/// Cumulative distribution for O(log n) categorical sampling.
class Categorical {
 public:
  explicit Categorical(const std::vector<double>& probs) {
    cumulative_.reserve(probs.size());
    double sum = 0.0;
    for (double p : probs) {
      sum += p;
      cumulative_.push_back(sum);
    }
  }

  uint32_t Sample(Rng& rng) const {
    double u = rng.NextDouble() * cumulative_.back();
    auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    if (it == cumulative_.end()) --it;
    return static_cast<uint32_t>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

uint64_t DaySeed(uint64_t seed, Date day) {
  uint64_t mix = seed * 0x9e3779b97f4a7c15ull +
                 static_cast<uint64_t>(
                     static_cast<int64_t>(day.days_since_epoch()));
  return mix ^ (mix >> 29);
}

OsmTimestamp TimestampFor(Date day, size_t idx, size_t total) {
  OsmTimestamp ts;
  ts.date = day;
  ts.sec_of_day =
      total > 1 ? static_cast<int32_t>((idx * 86399) / (total - 1)) : 43200;
  return ts;
}

}  // namespace

UpdateGenerator::UpdateGenerator(const SynthOptions& options,
                                 const WorldMap* world,
                                 RoadTypeTable* road_types)
    : options_(options),
      world_(world),
      road_types_(road_types),
      activity_(options, world,
                static_cast<uint32_t>(road_types->capacity())) {}

uint64_t UpdateGenerator::ChangesetIdFor(Date day, uint32_t seq) {
  return static_cast<uint64_t>(
             static_cast<int64_t>(day.days_since_epoch())) *
             1000000ull +
         seq;
}

std::vector<UpdateRecord> UpdateGenerator::GenerateDayRecords(
    Date day) const {
  Rng rng(DaySeed(options_.seed, day));
  Categorical element_dist(activity_.element_mix());
  Categorical road_dist(activity_.road_mix());
  Categorical update_dist(activity_.update_mix());

  std::vector<UpdateRecord> records;
  uint32_t changeset_seq = 0;
  for (ZoneId country : world_->country_ids()) {
    uint64_t n = rng.Poisson(activity_.CountryIntensity(country, day));
    uint64_t emitted = 0;
    while (emitted < n) {
      uint64_t cs_size = std::min<uint64_t>(
          n - emitted, 1 + rng.Poisson(options_.changeset_mean_size - 1.0));
      uint64_t cs_id = ChangesetIdFor(day, changeset_seq++);
      for (uint64_t i = 0; i < cs_size; ++i) {
        UpdateRecord r;
        r.element_type = static_cast<ElementType>(element_dist.Sample(rng));
        r.date = day;
        r.country = country;
        LatLon p = world_->RandomPointIn(country, rng);
        r.lat = p.lat;
        r.lon = p.lon;
        r.road_type = static_cast<RoadTypeId>(road_dist.Sample(rng));
        r.update_type = static_cast<UpdateType>(update_dist.Sample(rng));
        r.changeset_id = cs_id;
        records.push_back(r);
      }
      emitted += cs_size;
    }
  }
  return records;
}

namespace {

/// Synthesizes the element after-image for one record. `uniq` must be
/// unique per record so element ids never collide across the history.
Element MakeElement(const UpdateRecord& record, const RoadTypeTable& roads,
                    int64_t uniq, const OsmTimestamp& ts, int32_t version,
                    bool visible) {
  Element e;
  e.type = record.element_type;
  e.meta.id = uniq;
  e.meta.version = version;
  e.meta.timestamp = ts;
  e.meta.changeset = record.changeset_id;
  e.meta.uid = 1000 + static_cast<uint64_t>(uniq % 997);
  e.meta.user = "mapper" + std::to_string(e.meta.uid);
  e.meta.visible = visible;
  switch (e.type) {
    case ElementType::kNode:
      e.lat = record.lat;
      e.lon = record.lon;
      break;
    case ElementType::kWay:
      for (int k = 0; k < 4; ++k) e.node_refs.push_back(uniq * 10 + k);
      break;
    case ElementType::kRelation: {
      RelationMember m;
      m.type = ElementType::kWay;
      m.ref = uniq * 10;
      m.role = "outer";
      e.members.push_back(m);
      break;
    }
  }
  if (record.road_type != kRoadTypeNone) {
    e.tags.push_back(Tag{"highway", roads.Name(record.road_type)});
  }
  return e;
}

/// Emits the changeset metadata for consecutive records sharing an id.
void EmitChangesets(const std::vector<UpdateRecord>& records, Date day,
                    ChangesetWriter* writer) {
  size_t i = 0;
  while (i < records.size()) {
    size_t j = i;
    BoundingBox box = BoundingBox::Empty();
    while (j < records.size() &&
           records[j].changeset_id == records[i].changeset_id) {
      box.Extend(LatLon{records[j].lat, records[j].lon});
      ++j;
    }
    Changeset cs;
    cs.id = records[i].changeset_id;
    cs.created_at = OsmTimestamp{day, 0};
    cs.closed_at = OsmTimestamp{day, 86399};
    cs.open = false;
    cs.uid = 1000 + cs.id % 997;
    cs.user = "mapper" + std::to_string(cs.uid);
    cs.num_changes = static_cast<uint32_t>(j - i);
    if (box.IsValid()) {
      cs.has_bbox = true;
      cs.min_lat = box.min_lat;
      cs.min_lon = box.min_lon;
      cs.max_lat = box.max_lat;
      cs.max_lon = box.max_lon;
    }
    writer->Add(cs);
    i = j;
  }
}

int64_t UniqueElementId(Date day, size_t idx) {
  return static_cast<int64_t>(day.days_since_epoch()) * 1000000000ll +
         static_cast<int64_t>(idx) + 1;
}

}  // namespace

DayArtifacts UpdateGenerator::GenerateDayArtifacts(Date day) const {
  std::vector<UpdateRecord> records = GenerateDayRecords(day);
  DayArtifacts artifacts;

  OscWriter osc;
  for (size_t i = 0; i < records.size(); ++i) {
    const UpdateRecord& r = records[i];
    OsmTimestamp ts = TimestampFor(day, i, records.size());
    int32_t version = r.update_type == UpdateType::kNew ? 1 : 2;
    Element e = MakeElement(r, *road_types_, UniqueElementId(day, i), ts,
                            version, /*visible=*/true);
    ChangeAction action;
    switch (r.update_type) {
      case UpdateType::kNew:
        action = ChangeAction::kCreate;
        break;
      case UpdateType::kDelete:
        action = ChangeAction::kDelete;
        break;
      default:
        action = ChangeAction::kModify;
    }
    osc.Add(action, e);
  }
  artifacts.osc_xml = osc.Finish();

  ChangesetWriter cs_writer;
  EmitChangesets(records, day, &cs_writer);
  artifacts.changesets_xml = cs_writer.Finish();
  return artifacts;
}

MonthArtifacts UpdateGenerator::GenerateMonthArtifacts(
    Date month_start) const {
  RASED_CHECK(month_start.is_month_start());
  MonthArtifacts artifacts;
  HistoryWriter history;
  ChangesetWriter cs_writer;
  // A timestamp safely before the month, so the prior versions synthesized
  // below fall outside any window covering this month.
  const Date before = month_start.prev();
  const OsmTimestamp before_ts{before, 43200};

  Date month_end = month_start.month_end();
  for (Date day = month_start; day <= month_end; day = day.next()) {
    std::vector<UpdateRecord> records = GenerateDayRecords(day);
    for (size_t i = 0; i < records.size(); ++i) {
      const UpdateRecord& r = records[i];
      OsmTimestamp ts = TimestampFor(day, i, records.size());
      int64_t uniq = UniqueElementId(day, i);
      switch (r.update_type) {
        case UpdateType::kNew:
          history.Add(MakeElement(r, *road_types_, uniq, ts, 1, true));
          break;
        case UpdateType::kDelete: {
          history.Add(MakeElement(r, *road_types_, uniq, before_ts, 1, true));
          Element gone = MakeElement(r, *road_types_, uniq, ts, 2, false);
          gone.node_refs.clear();
          gone.members.clear();
          gone.tags.clear();
          history.Add(gone);
          break;
        }
        case UpdateType::kGeometry: {
          Element v1 = MakeElement(r, *road_types_, uniq, before_ts, 1, true);
          Element v2 = MakeElement(r, *road_types_, uniq, ts, 2, true);
          switch (v2.type) {
            case ElementType::kNode:
              v2.lat = v2.lat > 0 ? v2.lat - 0.0001 : v2.lat + 0.0001;
              break;
            case ElementType::kWay:
              v2.node_refs.push_back(uniq * 10 + 9);
              break;
            case ElementType::kRelation:
              v2.members.push_back(
                  RelationMember{ElementType::kNode, uniq * 10 + 9, "via"});
              break;
          }
          history.Add(v1);
          history.Add(v2);
          break;
        }
        case UpdateType::kMetadata: {
          Element v1 = MakeElement(r, *road_types_, uniq, before_ts, 1, true);
          Element v2 = MakeElement(r, *road_types_, uniq, ts, 2, true);
          v2.tags.push_back(Tag{"name", "Synthetic " + std::to_string(uniq)});
          history.Add(v1);
          history.Add(v2);
          break;
        }
      }
    }
    EmitChangesets(records, day, &cs_writer);
  }
  artifacts.history_xml = history.Finish();
  artifacts.changesets_xml = cs_writer.Finish();
  return artifacts;
}

}  // namespace rased
