#include "synth/cube_synthesizer.h"

#include <tuple>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace rased {

CubeSynthesizer::CubeSynthesizer(const SynthOptions& options,
                                 const WorldMap* world,
                                 const CubeSchema& schema)
    : options_(options),
      world_(world),
      schema_(schema),
      activity_(options, world, schema.num_road_types) {
  RASED_CHECK(world_->num_zones() == schema_.num_countries)
      << "world zones (" << world_->num_zones()
      << ") must match schema countries (" << schema_.num_countries << ")";
}

DataCube CubeSynthesizer::DayCube(Date day) const {
  uint64_t mix = options_.seed * 0x9e3779b97f4a7c15ull +
                 static_cast<uint64_t>(
                     static_cast<int64_t>(day.days_since_epoch()));
  Rng rng(mix ^ (mix >> 29) ^ 0xc0bef00dull);

  DataCube cube(schema_);
  const auto& emix = activity_.element_mix();
  const auto& rmix = activity_.road_mix();
  const auto& umix = activity_.update_mix();

  for (ZoneId country : world_->country_ids()) {
    double intensity = activity_.CountryIntensity(country, day);
    if (intensity <= 0.0) continue;
    const Zone& zone = world_->zone(country);
    for (uint32_t et = 0; et < schema_.num_element_types && et < emix.size();
         ++et) {
      double e_mean = intensity * emix[et];
      if (e_mean <= 0.0) continue;
      for (uint32_t rt = 0; rt < schema_.num_road_types && rt < rmix.size();
           ++rt) {
        double r_mean = e_mean * rmix[rt];
        if (r_mean <= 0.0) continue;
        for (uint32_t ut = 0;
             ut < schema_.num_update_types && ut < umix.size(); ++ut) {
          uint64_t n = rng.Poisson(r_mean * umix[ut]);
          if (n == 0) continue;
          cube.Add(et, country, rt, ut, n);
          if (zone.parent != kZoneUnknown) {
            cube.Add(et, zone.parent, rt, ut, n);
          }
        }
      }
    }
  }

  // Split the United States' counts across its state zones (points are
  // uniform over the USA rectangle, so states are an even 50-way split).
  auto usa = world_->FindByName("United States");
  if (usa.ok()) {
    std::vector<ZoneId> states;
    for (const Zone& z : world_->zones()) {
      if (z.kind == ZoneKind::kState) states.push_back(z.id);
    }
    if (!states.empty()) {
      CubeSlice usa_only;
      usa_only.countries.push_back(usa.value());
      std::vector<std::tuple<uint32_t, uint32_t, uint32_t, uint64_t>> cells;
      cube.ForEachCell(usa_only,
                       [&cells](uint32_t et, uint32_t, uint32_t rt,
                                uint32_t ut, uint64_t count) {
                         cells.emplace_back(et, rt, ut, count);
                       });
      for (const auto& [et, rt, ut, count] : cells) {
        // Multinomial split via sequential binomial-ish sampling; for the
        // synthetic workload a simple uniform assignment of the remainder
        // is statistically adequate.
        uint64_t base = count / states.size();
        uint64_t rem = count % states.size();
        for (size_t s = 0; s < states.size(); ++s) {
          uint64_t n = base;
          if (rem > 0 && rng.Uniform(states.size() - s) < rem) {
            ++n;
            --rem;
          }
          if (n > 0) cube.Add(et, states[s], rt, ut, n);
        }
      }
    }
  }
  return cube;
}

}  // namespace rased
