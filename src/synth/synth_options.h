#ifndef RASED_SYNTH_SYNTH_OPTIONS_H_
#define RASED_SYNTH_SYNTH_OPTIONS_H_

#include <cstdint>

#include "util/date.h"

namespace rased {

/// Parameters of the synthetic OSM editing-activity model (the stand-in
/// for the real planet history; see DESIGN.md). Every stochastic choice is
/// derived deterministically from `seed`, so two runs with the same options
/// produce bit-identical histories.
struct SynthOptions {
  uint64_t seed = 42;

  /// Covered history; the default matches the paper's ~16 years of OSM
  /// updates evaluated in Section VIII.
  DateRange period{Date::FromYmd(2006, 1, 1), Date::FromYmd(2021, 12, 31)};

  /// World mean updates per day at the period start. Activity grows
  /// exponentially (OSM's community growth) and is skewed across countries
  /// by a Zipf law over a curated activity ranking (US, India, Germany, …
  /// lead, matching the ordering of the paper's Figure 3).
  double base_updates_per_day = 1000.0;
  double growth_per_year = 0.22;
  double zipf_theta = 0.85;

  /// Yearly seasonality amplitude (mapping activity peaks in summer) with
  /// a per-country phase.
  double seasonality = 0.3;

  /// Mapathon / corporate-editing bursts: each country-day has this
  /// probability of a burst multiplying its intensity.
  double mapathon_rate = 0.005;
  double mapathon_multiplier = 15.0;

  /// Element-type mix. Road-network editing is way-dominated (the paper's
  /// Figure 3 shows ways outnumbering nodes by ~100x and relations by
  /// ~10000x among road updates).
  double p_node = 0.035;
  double p_way = 0.9645;
  double p_relation = 0.0005;

  /// UpdateType mix of the *final* (monthly-crawler) classification.
  double p_new = 0.35;
  double p_delete = 0.04;
  double p_geometry = 0.37;
  double p_metadata = 0.24;

  /// Total road segments worldwide, apportioned to countries by activity
  /// weight; the denominator pool of Percentage(*) queries. The paper
  /// quotes 180M+ road segments in OSM.
  double road_network_total = 1.8e8;

  /// Mean updates per changeset when grouping a day's records into
  /// synthetic changesets.
  double changeset_mean_size = 8.0;
};

}  // namespace rased

#endif  // RASED_SYNTH_SYNTH_OPTIONS_H_
