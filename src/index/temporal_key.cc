#include "index/temporal_key.h"

#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

std::string_view LevelName(Level level) {
  switch (level) {
    case Level::kDaily:
      return "daily";
    case Level::kWeekly:
      return "weekly";
    case Level::kMonthly:
      return "monthly";
    case Level::kYearly:
      return "yearly";
  }
  return "?";
}

CubeKey CubeKey::Weekly(Date day) {
  RASED_CHECK(day.week_of_month() >= 0)
      << "straggler day " << day.ToString() << " belongs to no week";
  return CubeKey{Level::kWeekly, day.week_start()};
}

DateRange CubeKey::range() const {
  switch (level) {
    case Level::kDaily:
      return DateRange(start, start);
    case Level::kWeekly:
      return DateRange(start, start.AddDays(6));
    case Level::kMonthly:
      return DateRange(start, start.month_end());
    case Level::kYearly:
      return DateRange(start, start.year_end());
  }
  return DateRange();
}

std::vector<CubeKey> CubeKey::Children() const {
  std::vector<CubeKey> children;
  switch (level) {
    case Level::kDaily:
      break;
    case Level::kWeekly:
      for (int i = 0; i < 7; ++i) {
        children.push_back(Daily(start.AddDays(i)));
      }
      break;
    case Level::kMonthly: {
      for (int w = 0; w < 4; ++w) {
        children.push_back(CubeKey{Level::kWeekly, start.AddDays(7 * w)});
      }
      int dim = start.days_in_month();
      for (int d = 29; d <= dim; ++d) {
        children.push_back(Daily(start.AddDays(d - 1)));
      }
      break;
    }
    case Level::kYearly:
      for (int m = 0; m < 12; ++m) {
        children.push_back(CubeKey{Level::kMonthly, start.AddMonths(m)});
      }
      break;
  }
  return children;
}

std::string CubeKey::ToString() const {
  return StrFormat("%s:%s", std::string(LevelName(level)).c_str(),
                   start.ToString().c_str());
}

std::vector<CubeKey> KeysCoveredBy(Level level, const DateRange& range) {
  std::vector<CubeKey> keys;
  if (range.empty()) return keys;
  switch (level) {
    case Level::kDaily:
      for (Date d = range.first; d <= range.last; d = d.next()) {
        keys.push_back(CubeKey::Daily(d));
      }
      break;
    case Level::kWeekly: {
      // Walk week starts: days 1, 8, 15, 22 of each month.
      Date d = range.first.month_start();
      while (d <= range.last) {
        for (int w = 0; w < 4; ++w) {
          CubeKey key{Level::kWeekly, d.AddDays(7 * w)};
          if (range.Contains(key.range())) keys.push_back(key);
        }
        d = d.AddMonths(1);
      }
      break;
    }
    case Level::kMonthly: {
      Date d = range.first.month_start();
      while (d <= range.last) {
        CubeKey key{Level::kMonthly, d};
        if (range.Contains(key.range())) keys.push_back(key);
        d = d.AddMonths(1);
      }
      break;
    }
    case Level::kYearly: {
      Date d = range.first.year_start();
      while (d <= range.last) {
        CubeKey key{Level::kYearly, d};
        if (range.Contains(key.range())) keys.push_back(key);
        d = d.AddYears(1);
      }
      break;
    }
  }
  return keys;
}

}  // namespace rased
