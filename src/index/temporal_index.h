#ifndef RASED_INDEX_TEMPORAL_INDEX_H_
#define RASED_INDEX_TEMPORAL_INDEX_H_

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cube/data_cube.h"
#include "index/temporal_key.h"
#include "io/pager.h"
#include "obs/metrics_registry.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace rased {

/// Configuration of a TemporalIndex.
struct TemporalIndexOptions {
  CubeSchema schema;

  /// Number of hierarchy levels kept: 1 = flat daily-only index (the
  /// RASED-F baseline of Figure 9), 2 = +weekly, 3 = +monthly,
  /// 4 = +yearly (full RASED, Figure 8's chosen configuration).
  int num_levels = 4;

  /// Directory holding the page file and catalog; created if missing.
  std::string dir;

  /// Device cost model applied to every cube page transfer.
  DeviceModel device;

  /// When non-null, the index registers live rased_index_* metrics here
  /// (cube reads/appends, per-level cube gauges, file bytes) and wires its
  /// pager's rased_pager_*{file="index"} counters. Must outlive the index.
  MetricsRegistry* metrics = nullptr;
};

/// Per-level node counts and storage, for the paper's Section VI-A index
/// size accounting and Figure 8.
struct IndexStorageStats {
  uint64_t cubes_per_level[kNumLevels] = {0, 0, 0, 0};
  uint64_t total_cubes = 0;
  uint64_t file_bytes = 0;
};

/// The hierarchical temporal index (Section VI-A, Figure 6): daily cubes
/// chained under weekly, monthly, and yearly aggregate cubes, all stored as
/// fixed-size pages behind a Pager. The index stores *precomputed
/// statistics* (data cubes), never raw updates.
///
/// Maintenance follows the paper:
///  * AppendDay writes the day's cube; on week/month/year boundaries the
///    parent cubes are built by reading the children back from disk and
///    summing them (their I/O cost is therefore visible in pager stats).
///  * RebuildMonth re-derives a whole month's daily/weekly/monthly (and,
///    if closed, yearly) cubes from monthly-crawler data that carries the
///    full four-way UpdateType classification.
///
/// Threading contract: const means thread-safe. Every const member —
/// Contains, ReadCube, ExistingKeys, LatestKeys, coverage, StorageStats —
/// may be called from any number of threads concurrently: the catalog is
/// guarded by an internal reader-writer lock (readers share it, appends
/// take it exclusively), and the cube page read itself is a positional
/// pread charged to the caller's per-call IoStats, so concurrent queries
/// never contend on or corrupt each other's accounting. Maintenance
/// (AppendDay, RebuildMonth, Sync) and direct pager() mutation require
/// external serialization against each other AND against concurrent
/// readers of the cubes being rewritten — in-process that serializer is
/// the Rased facade's reader-writer lock (queries shared, ingestion
/// exclusive). The one internal concession to lock-free readers:
/// WriteCube publishes a brand-new cube in the catalog only after its
/// page hits the file, so a racing reader either misses the key or reads
/// a fully written page.
class TemporalIndex {
 public:
  /// Creates a fresh index in options.dir (fails if one already exists).
  static Result<std::unique_ptr<TemporalIndex>> Create(
      const TemporalIndexOptions& options);

  /// Opens an existing index; options.schema/num_levels must match what
  /// the catalog records.
  static Result<std::unique_ptr<TemporalIndex>> Open(
      const TemporalIndexOptions& options);

  TemporalIndex(const TemporalIndex&) = delete;
  TemporalIndex& operator=(const TemporalIndex&) = delete;

  ~TemporalIndex();

  // ---- maintenance ----

  /// Appends one day's cube. Days must arrive in strictly increasing
  /// consecutive order starting from the first day ever appended; gaps are
  /// InvalidArgument (RASED crawls every day).
  Status AppendDay(Date day, const DataCube& cube) RASED_EXCLUDES(mu_);

  /// Replaces the daily cubes of `month` (the cubes vector holds one cube
  /// per day of the month, in order) and rebuilds every affected ancestor,
  /// mirroring the monthly-crawler maintenance path (Section VI-A).
  Status RebuildMonth(Date month_start, const std::vector<DataCube>& cubes)
      RASED_EXCLUDES(mu_);

  // ---- lookup ----

  bool Contains(const CubeKey& key) const RASED_EXCLUDES(mu_);

  /// Reads one cube from disk through the pager. The transfer is charged
  /// to the pager's global counters and, when `io` is non-null, to the
  /// caller's per-call accounting (how each query accumulates its own
  /// deterministic I/O cost under concurrency).
  Result<DataCube> ReadCube(const CubeKey& key, IoStats* io = nullptr) const
      RASED_EXCLUDES(mu_);

  /// Batched read: fetches all of `keys` in one Pager::ReadPages call,
  /// which sorts by page id and coalesces runs of physically adjacent
  /// pages (consecutive daily cubes land on consecutive pages) into single
  /// large device reads. The returned batch holds the cubes in *key input
  /// order* with zero-copy views. Fails NotFound if any key is missing
  /// (resolved before any I/O is issued).
  ///
  /// Accounting matches the serial path transfer-for-transfer — identical
  /// page_reads/bytes_read — while read_ops and simulated device time
  /// shrink with coalescing (see Pager::ReadPages). Const and thread-safe
  /// like ReadCube.
  Result<CubeBatch> ReadCubes(std::span<const CubeKey> keys,
                              IoStats* io = nullptr) const RASED_EXCLUDES(mu_);

  /// Keys of `level` fully inside `range` that actually exist.
  std::vector<CubeKey> ExistingKeys(Level level, const DateRange& range) const
      RASED_EXCLUDES(mu_);

  /// The most recent `n` keys of a level (newest last), for cache warmup.
  std::vector<CubeKey> LatestKeys(Level level, size_t n) const
      RASED_EXCLUDES(mu_);

  // ---- accounting ----

  /// Days covered so far ([first appended, last appended]).
  DateRange coverage() const RASED_EXCLUDES(mu_);

  IndexStorageStats StorageStats() const RASED_EXCLUDES(mu_);

  const TemporalIndexOptions& options() const { return options_; }
  Pager* pager() { return pager_.get(); }
  const Pager* pager() const { return pager_.get(); }

  /// Persists the catalog; called automatically on destruction.
  Status Sync();

 private:
  TemporalIndex(TemporalIndexOptions options, std::unique_ptr<Pager> pager);

  bool LevelEnabled(Level level) const {
    return static_cast<int>(level) < options_.num_levels;
  }

  Status WriteCube(const CubeKey& key, const DataCube& cube)
      RASED_EXCLUDES(mu_);

  /// Builds a parent cube by reading each existing child from disk and
  /// merging. `skip` (optional) supplies one child already in memory so the
  /// paper's "read the six previous cubes" I/O pattern is preserved.
  Result<DataCube> BuildFromChildren(const CubeKey& parent,
                                     const CubeKey* in_memory_key,
                                     const DataCube* in_memory_cube) const;

  Status SaveCatalog() RASED_EXCLUDES(mu_);
  static std::string CatalogPath(const std::string& dir);
  static std::string PagesPath(const std::string& dir);

  /// Refreshes the per-level cube gauges and the file-bytes gauge from the
  /// catalog. No-op when options_.metrics is null.
  void UpdateStorageMetrics() const RASED_EXCLUDES(mu_);
  void UpdateStorageMetricsLocked() const RASED_REQUIRES_SHARED(mu_);

  TemporalIndexOptions options_ RASED_CONST_AFTER_INIT;

  /// Registry handles (all set together in the constructor when
  /// options_.metrics is non-null, else all null).
  struct IndexMetrics {
    Counter* cube_reads = nullptr;      // cubes fetched from disk
    Counter* days_appended = nullptr;   // AppendDay completions
    Counter* month_rebuilds = nullptr;  // RebuildMonth completions
    Gauge* cubes_per_level[kNumLevels] = {nullptr, nullptr, nullptr, nullptr};
    Gauge* file_bytes = nullptr;
  };
  IndexMetrics metrics_ RASED_CONST_AFTER_INIT;

  // Page reads are pager-internal-atomic-safe from any thread; writes are
  // externally serialized (see the threading contract above). mu_ never
  // spans a page read/write, so metadata lookups stay cheap even while a
  // maintenance pass is streaming cubes to disk.
  std::unique_ptr<Pager> pager_ RASED_CONST_AFTER_INIT;

  /// Reader-writer lock over the catalog metadata below: lookups on the
  /// query path hold it shared, appends/rebuilds hold it exclusively.
  mutable SharedMutex mu_;
  // Catalog: node -> page. std::map keeps keys chronologically ordered,
  // which ExistingKeys/LatestKeys rely on.
  std::map<CubeKey, PageId> catalog_ RASED_GUARDED_BY(mu_);
  std::optional<Date> first_day_ RASED_GUARDED_BY(mu_);
  std::optional<Date> last_day_ RASED_GUARDED_BY(mu_);
};

}  // namespace rased

#endif  // RASED_INDEX_TEMPORAL_INDEX_H_
