#ifndef RASED_INDEX_TEMPORAL_INDEX_H_
#define RASED_INDEX_TEMPORAL_INDEX_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cube/cube_codec.h"
#include "cube/data_cube.h"
#include "index/temporal_key.h"
#include "io/pager.h"
#include "obs/metrics_registry.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace rased {

/// Configuration of a TemporalIndex.
struct TemporalIndexOptions {
  CubeSchema schema;

  /// Number of hierarchy levels kept: 1 = flat daily-only index (the
  /// RASED-F baseline of Figure 9), 2 = +weekly, 3 = +monthly,
  /// 4 = +yearly (full RASED, Figure 8's chosen configuration).
  int num_levels = 4;

  /// Directory holding the page file and catalog; created if missing.
  std::string dir;

  /// Device cost model applied to every cube page transfer.
  DeviceModel device;

  /// When non-null, the index registers live rased_index_* metrics here
  /// (cube reads/appends, per-level cube gauges, file bytes, epoch and
  /// retired-version gauges) and wires its pager's
  /// rased_pager_*{file="index"} counters. Must outlive the index.
  MetricsRegistry* metrics = nullptr;

  /// Write-time cube encoding selection (cube/cube_codec.h). kAdaptive
  /// (default) picks per cube by density and stores blobs across small
  /// fixed-size pages; kForceDense stores every cube dense under the same
  /// page geometry — the like-for-like baseline bench_cube_compression
  /// measures against. Applies only to Create(); Open() reads whatever
  /// geometry the file has, and per-cube encodings are always honored
  /// from the catalog.
  CubeEncodingPolicy encoding = CubeEncodingPolicy::kAdaptive;
};

/// Per-level node counts and storage, for the paper's Section VI-A index
/// size accounting and Figure 8.
struct IndexStorageStats {
  uint64_t cubes_per_level[kNumLevels] = {0, 0, 0, 0};
  uint64_t total_cubes = 0;
  uint64_t file_bytes = 0;
  /// Sum of the exact serialized cube blob lengths recorded in the
  /// catalog — the compressed payload size, excluding page padding.
  uint64_t encoded_bytes = 0;
};

/// Physical location and encoding metadata of one stored cube, the value
/// type of the catalog's per-level maps. A cube blob occupies `num_pages`
/// physically consecutive pages starting at `first_page`; `blob_bytes` is
/// its exact serialized length (RCUB header + body for encoded cubes, the
/// raw dense image for legacy seed-format entries, which predate the blob
/// header — `legacy` marks those so readers skip header parsing).
struct CubeLoc {
  PageId first_page = kInvalidPageId;
  uint32_t num_pages = 1;
  CubeEncoding encoding = CubeEncoding::kDenseRaw;
  uint64_t blob_bytes = 0;
  bool legacy = false;
};

/// One immutable published catalog version (MVCC). A version maps cube
/// keys to pages via one chronologically ordered map per level; untouched
/// levels share their map with the previous version (copy-on-write), so a
/// publication copies only the levels it changed. Once published, a
/// CatalogVersion is never mutated — readers pin it by shared_ptr and the
/// last release makes it reclaimable.
struct CatalogVersion {
  using LevelMap = std::map<Date, CubeLoc>;

  /// Monotonic publication counter, starting at 1 for the empty catalog a
  /// fresh index publishes on Create. Every AppendDay/RebuildMonth
  /// publishes exactly one new version (all of its rollups in one swap).
  uint64_t epoch = 0;

  /// Per-level key -> page maps; null entries behave as empty.
  std::shared_ptr<const LevelMap> levels[kNumLevels];

  /// Days covered by this version ([first appended, last appended]).
  std::optional<Date> first_day;
  std::optional<Date> last_day;
};

/// A pinned, consistent view of the catalog: the version the reader
/// started on, held alive by refcount. All lookups against a snapshot are
/// pure reads of immutable data — no locks, no coordination with writers.
///
/// Keep snapshots stack-scoped (a local pinned for one query/warm pass).
/// Storing one in a member field keeps the whole version — and every page
/// it references — unreclaimable for the holder's lifetime; rased-lint
/// RL012 flags that.
class CatalogSnapshot {
 public:
  /// Unpinned snapshot: epoch 0, empty catalog. Real snapshots come from
  /// TemporalIndex::Snapshot().
  CatalogSnapshot() = default;

  explicit CatalogSnapshot(std::shared_ptr<const CatalogVersion> version)
      : version_(std::move(version)) {}

  uint64_t epoch() const { return version_ == nullptr ? 0 : version_->epoch; }

  bool Contains(const CubeKey& key) const {
    return PageOf(key).has_value();
  }

  /// Full location (pages, encoding, exact length) of `key`'s cube in
  /// this version, if present.
  std::optional<CubeLoc> LocOf(const CubeKey& key) const;

  /// First page holding `key`'s cube in this version, if present. Also
  /// the cache's page-validation token: a key re-staged by maintenance
  /// lands on a different first page, so stale entries never match.
  std::optional<PageId> PageOf(const CubeKey& key) const;

  /// Exact serialized length of `key`'s cube (what a byte-budgeted cache
  /// charges for it), if present.
  std::optional<uint64_t> EncodedBytesOf(const CubeKey& key) const;

  /// Keys of `level` fully inside `range` that exist in this version.
  std::vector<CubeKey> ExistingKeys(Level level, const DateRange& range) const;

  /// The most recent `n` keys of a level (newest last), for cache warmup.
  std::vector<CubeKey> LatestKeys(Level level, size_t n) const;

  /// Days covered by this version ([first appended, last appended]).
  DateRange coverage() const;

  /// Per-level cube counts and encoded byte totals of this version
  /// (file_bytes left 0; the index fills it in from its pager).
  IndexStorageStats StorageStats() const;

 private:
  std::shared_ptr<const CatalogVersion> version_;
};

/// The hierarchical temporal index (Section VI-A, Figure 6): daily cubes
/// chained under weekly, monthly, and yearly aggregate cubes, all stored as
/// fixed-size pages behind a Pager. The index stores *precomputed
/// statistics* (data cubes), never raw updates.
///
/// Maintenance follows the paper:
///  * AppendDay writes the day's cube; on week/month/year boundaries the
///    parent cubes are built by reading the children back from disk and
///    summing them (their I/O cost is therefore visible in pager stats).
///  * RebuildMonth re-derives a whole month's daily/weekly/monthly (and,
///    if closed, yearly) cubes from monthly-crawler data that carries the
///    full four-way UpdateType classification.
///
/// Threading contract (MVCC): const means thread-safe AND wait-free with
/// respect to writers. The catalog is published as immutable versions
/// behind one atomic pointer; Snapshot() pins the current version and
/// every read (Contains, ReadCube(s), ExistingKeys, LatestKeys, coverage,
/// StorageStats) resolves against a pinned version, so readers never block
/// on — or observe a torn state from — maintenance. Maintenance
/// (AppendDay, RebuildMonth) is serialized internally by a maintenance
/// mutex: it stages new cube pages off to the side (fresh pages only —
/// pages reachable from any published version are never overwritten), then
/// publishes a single new version covering the day AND all of its rollups
/// in one pointer swap. Versions displaced by a publication are retired in
/// order; once the last snapshot pinning a retired version drains
/// (refcount), its dropped pages return to the pager's free pool for
/// reuse. No external serialization is needed for any combination of
/// readers and writers; direct pager() page mutation remains outside the
/// contract.
class TemporalIndex {
 public:
  /// Creates a fresh index in options.dir (fails if one already exists).
  static Result<std::unique_ptr<TemporalIndex>> Create(
      const TemporalIndexOptions& options);

  /// Opens an existing index; options.schema/num_levels must match what
  /// the catalog records.
  static Result<std::unique_ptr<TemporalIndex>> Open(
      const TemporalIndexOptions& options);

  TemporalIndex(const TemporalIndex&) = delete;
  TemporalIndex& operator=(const TemporalIndex&) = delete;

  ~TemporalIndex();

  // ---- maintenance ----

  /// Appends one day's cube. Days must arrive in strictly increasing
  /// consecutive order starting from the first day ever appended; gaps are
  /// InvalidArgument (RASED crawls every day). Publishes exactly one new
  /// catalog version covering the day and its boundary rollups.
  Status AppendDay(Date day, const DataCube& cube)
      RASED_EXCLUDES(maint_mu_);

  /// Replaces the daily cubes of `month` (the cubes vector holds one cube
  /// per day of the month, in order) and rebuilds every affected ancestor,
  /// mirroring the monthly-crawler maintenance path (Section VI-A). The
  /// whole rebuild lands in one published version; readers pinned to the
  /// old version keep reading the old pages.
  Status RebuildMonth(Date month_start, const std::vector<DataCube>& cubes)
      RASED_EXCLUDES(maint_mu_);

  // ---- snapshots ----

  /// Pins the currently published catalog version. O(1), wait-free with
  /// respect to maintenance. The snapshot stays valid (and its pages
  /// unreclaimed) until the last copy is destroyed — keep it stack-scoped.
  CatalogSnapshot Snapshot() const;

  /// Epoch of the currently published version.
  uint64_t epoch() const { return Snapshot().epoch(); }

  /// Retired versions not yet reclaimed (still pinned by some snapshot,
  /// or queued behind one that is).
  size_t retired_versions() const RASED_EXCLUDES(maint_mu_);

  // ---- lookup ----

  /// Reads one cube of `snapshot`'s version from disk through the pager.
  /// The transfer is charged to the pager's global counters and, when `io`
  /// is non-null, to the caller's per-call accounting (how each query
  /// accumulates its own deterministic I/O cost under concurrency).
  Result<DataCube> ReadCube(const CatalogSnapshot& snapshot,
                            const CubeKey& key, IoStats* io = nullptr) const;

  /// Batched read against `snapshot`: fetches the page runs of all of
  /// `keys` in one Pager::ReadPages call, which sorts by page id and
  /// coalesces runs of physically adjacent pages (a cube's own pages are
  /// consecutive by construction, and consecutive daily cubes land on
  /// adjacent runs) into single large device reads. The returned batch
  /// holds the *encoded* cubes in key input order; aggregation streams
  /// them into the packed accumulator without dense materialization
  /// (EncodedCubeBatch::AccumulateSlice). Fails NotFound if any key is
  /// missing (resolved before any I/O is issued).
  ///
  /// Accounting matches the serial path transfer-for-transfer — identical
  /// page_reads/bytes_read — while read_ops and simulated device time
  /// shrink with coalescing (see Pager::ReadPages).
  Result<EncodedCubeBatch> ReadCubes(const CatalogSnapshot& snapshot,
                                     std::span<const CubeKey> keys,
                                     IoStats* io = nullptr) const;

  // Conveniences that pin the current version for one call. Multi-step
  // callers (plan, then probe, then fetch) must pin one Snapshot() and
  // pass it to every step, or the steps may observe different epochs.
  bool Contains(const CubeKey& key) const {
    return Snapshot().Contains(key);
  }
  Result<DataCube> ReadCube(const CubeKey& key, IoStats* io = nullptr) const {
    return ReadCube(Snapshot(), key, io);
  }
  Result<EncodedCubeBatch> ReadCubes(std::span<const CubeKey> keys,
                                     IoStats* io = nullptr) const {
    return ReadCubes(Snapshot(), keys, io);
  }
  std::vector<CubeKey> ExistingKeys(Level level, const DateRange& range) const {
    return Snapshot().ExistingKeys(level, range);
  }
  std::vector<CubeKey> LatestKeys(Level level, size_t n) const {
    return Snapshot().LatestKeys(level, n);
  }

  // ---- accounting ----

  /// Days covered so far ([first appended, last appended]).
  DateRange coverage() const { return Snapshot().coverage(); }

  IndexStorageStats StorageStats() const;

  const TemporalIndexOptions& options() const { return options_; }
  Pager* pager() { return pager_.get(); }
  const Pager* pager() const { return pager_.get(); }

  /// Persists the catalog (current version only; free pages are
  /// reconstructed on Open); called automatically on destruction.
  Status Sync();

 private:
  /// Private staging view of one maintenance pass: new cube pages written
  /// off to the side, invisible to readers until the single publication.
  struct Staging {
    std::shared_ptr<const CatalogVersion> base;
    std::map<CubeKey, CubeLoc> staged;
    /// Base pages (all pages of each replaced cube's run) released to the
    /// pager's free pool once the base version drains.
    std::vector<PageId> dropped;
    std::optional<Date> first_day;
    std::optional<Date> last_day;
  };

  /// One retired version awaiting drain, in retirement order.
  struct RetiredVersion {
    std::shared_ptr<const CatalogVersion> version;
    std::vector<PageId> dropped;
  };

  TemporalIndex(TemporalIndexOptions options, std::unique_ptr<Pager> pager);

  bool LevelEnabled(Level level) const {
    return static_cast<int>(level) < options_.num_levels;
  }

  /// Encodes `cube` (per options_.encoding), writes the blob to a fresh
  /// run of consecutive pages (never overwriting a published page), and
  /// records its CubeLoc in the staging map. If the key shadows a base
  /// cube, all pages of that cube's run join staging.dropped.
  Status StageCube(Staging* staging, const CubeKey& key, const DataCube& cube);

  /// Resolves `key` staged-first, then against the staging's base version.
  std::optional<CubeLoc> StagedLocOf(const Staging& staging,
                                     const CubeKey& key) const;

  /// Builds a parent cube by reading each existing child (staged or base)
  /// from disk and merging. `in_memory_*` (optional) supplies one child
  /// already in memory so the paper's "read the six previous cubes" I/O
  /// pattern is preserved.
  Result<DataCube> BuildFromChildren(const Staging& staging,
                                     const CubeKey& parent,
                                     const CubeKey* in_memory_key,
                                     const DataCube* in_memory_cube) const;

  /// Reads `loc`'s page run in one coalesced pread and decodes the cube
  /// (blob-header path for encoded cubes, raw dense for legacy entries).
  Result<DataCube> ReadCubeAtLoc(const CubeLoc& loc, IoStats* io) const;

  /// Builds the next version from `staging` (copy-on-write per level),
  /// swaps it in, retires the base version, and runs a reclamation sweep.
  void PublishLocked(Staging* staging) RASED_REQUIRES(maint_mu_);

  /// Pops drained versions off the front of the retirement queue,
  /// releasing their dropped pages. Front-gated: a version's pages are
  /// released only after every earlier retired version also drained, so a
  /// page shared backward through history is never freed while any older
  /// pinned version can still reach it.
  void ReclaimRetiredLocked() RASED_REQUIRES(maint_mu_);

  /// Returns staging's freshly written pages to the free pool (failure
  /// path: nothing was published, so nobody can reference them).
  void AbandonStaging(Staging* staging);

  Status SaveCatalog();
  static std::string CatalogPath(const std::string& dir);
  static std::string PagesPath(const std::string& dir);

  /// Refreshes the per-level cube gauges, the file-bytes gauge, and the
  /// epoch gauge from the current version. No-op when options_.metrics is
  /// null.
  void UpdateStorageMetrics() const;

  TemporalIndexOptions options_ RASED_CONST_AFTER_INIT;

  /// Registry handles (all set together in the constructor when
  /// options_.metrics is non-null, else all null).
  struct IndexMetrics {
    Counter* cube_reads = nullptr;      // cubes fetched from disk
    Counter* days_appended = nullptr;   // AppendDay completions
    Counter* month_rebuilds = nullptr;  // RebuildMonth completions
    Counter* publications = nullptr;    // catalog versions published
    Gauge* cubes_per_level[kNumLevels] = {nullptr, nullptr, nullptr, nullptr};
    Gauge* file_bytes = nullptr;
    Gauge* epoch = nullptr;             // current published epoch
    Gauge* retired = nullptr;           // retired versions awaiting drain
  };
  IndexMetrics metrics_ RASED_CONST_AFTER_INIT;

  // Page reads are pager-internal-atomic-safe from any thread; page
  // writes only ever target freshly allocated pages (staging), so they
  // never race a reader of a published page.
  std::unique_ptr<Pager> pager_ RASED_CONST_AFTER_INIT;

  /// The currently published catalog version. Readers load (pin) it
  /// wait-free; only maintenance stores it, under maint_mu_.
  std::atomic<std::shared_ptr<const CatalogVersion>> current_;

  /// Serializes maintenance (stage + publish + reclaim) against itself.
  /// Never taken on the read path.
  mutable Mutex maint_mu_;
  std::deque<RetiredVersion> retired_ RASED_GUARDED_BY(maint_mu_);
};

}  // namespace rased

#endif  // RASED_INDEX_TEMPORAL_INDEX_H_
