#include "index/temporal_index.h"

#include <algorithm>
#include <cstring>

#include "io/env.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

namespace {

constexpr char kCatalogMagic[] = "rased-catalog v1";

constexpr const char* kLevelNames[kNumLevels] = {"daily", "weekly", "monthly",
                                                 "yearly"};

}  // namespace

TemporalIndex::TemporalIndex(TemporalIndexOptions options,
                             std::unique_ptr<Pager> pager)
    : options_(std::move(options)), pager_(std::move(pager)) {
  if (options_.metrics != nullptr) {
    MetricsRegistry* registry = options_.metrics;
    pager_->RegisterMetrics(registry, "index");
    metrics_.cube_reads = registry->GetCounter(
        "rased_index_cube_reads_total", "Cubes fetched from the index pager");
    metrics_.days_appended = registry->GetCounter(
        "rased_index_days_appended_total", "Daily cubes appended");
    metrics_.month_rebuilds =
        registry->GetCounter("rased_index_month_rebuilds_total",
                             "Monthly-crawler rebuild passes applied");
    for (int level = 0; level < kNumLevels; ++level) {
      // NOLINT-RASED(metric-in-loop): one-time registration over kNumLevels
      metrics_.cubes_per_level[level] = registry->GetGauge(
          "rased_index_cubes", "Cubes stored per level",
          {{"level", kLevelNames[level]}});
    }
    metrics_.file_bytes = registry->GetGauge(
        "rased_index_file_bytes", "Bytes of the index page file on disk");
  }
}

void TemporalIndex::UpdateStorageMetricsLocked() const {
  if (metrics_.file_bytes == nullptr) return;
  uint64_t per_level[kNumLevels] = {0, 0, 0, 0};
  for (const auto& [key, page] : catalog_) {
    ++per_level[static_cast<int>(key.level)];
  }
  for (int level = 0; level < kNumLevels; ++level) {
    metrics_.cubes_per_level[level]->Set(
        static_cast<int64_t>(per_level[level]));
  }
  metrics_.file_bytes->Set(
      static_cast<int64_t>((pager_->num_pages() + 1) * pager_->page_size()));
}

void TemporalIndex::UpdateStorageMetrics() const {
  if (metrics_.file_bytes == nullptr) return;
  ReaderMutexLock lock(&mu_);
  UpdateStorageMetricsLocked();
}

TemporalIndex::~TemporalIndex() {
  Status s = Sync();
  if (!s.ok()) RASED_LOG(Warning) << "TemporalIndex close: " << s.ToString();
}

std::string TemporalIndex::CatalogPath(const std::string& dir) {
  return env::JoinPath(dir, "catalog");
}

std::string TemporalIndex::PagesPath(const std::string& dir) {
  return env::JoinPath(dir, "cubes.pages");
}

Result<std::unique_ptr<TemporalIndex>> TemporalIndex::Create(
    const TemporalIndexOptions& options) {
  if (options.num_levels < 1 || options.num_levels > kNumLevels) {
    return Status::InvalidArgument(
        StrFormat("num_levels must be 1..%d, got %d", kNumLevels,
                  options.num_levels));
  }
  RASED_RETURN_IF_ERROR(env::CreateDirs(options.dir));
  if (env::FileExists(PagesPath(options.dir))) {
    return Status::AlreadyExists("index already exists in " + options.dir);
  }
  size_t page_size =
      options.schema.cube_bytes() + PageFile::kChecksumBytes;
  auto pager = Pager::Create(PagesPath(options.dir), page_size,
                             options.device);
  if (!pager.ok()) return pager.status();
  auto index = std::unique_ptr<TemporalIndex>(
      new TemporalIndex(options, std::move(pager).value()));
  RASED_RETURN_IF_ERROR(index->SaveCatalog());
  return index;
}

Result<std::unique_ptr<TemporalIndex>> TemporalIndex::Open(
    const TemporalIndexOptions& options) {
  auto contents = env::ReadFile(CatalogPath(options.dir));
  if (!contents.ok()) return contents.status();

  auto pager = Pager::Open(PagesPath(options.dir), options.device);
  if (!pager.ok()) return pager.status();
  auto index = std::unique_ptr<TemporalIndex>(
      new TemporalIndex(options, std::move(pager).value()));

  // Parse the catalog. The index is not published yet, but the analysis
  // (rightly) doesn't know that, so hold its lock while filling it in.
  WriterMutexLock lock(&index->mu_);
  std::vector<std::string> lines = Split(contents.value(), '\n');
  if (lines.empty() || lines[0] != kCatalogMagic) {
    return Status::Corruption("bad catalog header in " + options.dir);
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = Trim(lines[i]);
    if (line.empty()) continue;
    std::vector<std::string> f = Split(line, ' ');
    if (f[0] == "schema" && f.size() == 5) {
      CubeSchema s;
      RASED_ASSIGN_OR_RETURN(int64_t et, ParseInt(f[1]));
      RASED_ASSIGN_OR_RETURN(int64_t co, ParseInt(f[2]));
      RASED_ASSIGN_OR_RETURN(int64_t rt, ParseInt(f[3]));
      RASED_ASSIGN_OR_RETURN(int64_t ut, ParseInt(f[4]));
      s.num_element_types = static_cast<uint32_t>(et);
      s.num_countries = static_cast<uint32_t>(co);
      s.num_road_types = static_cast<uint32_t>(rt);
      s.num_update_types = static_cast<uint32_t>(ut);
      if (!(s == options.schema)) {
        return Status::InvalidArgument(
            "catalog schema " + s.ToString() +
            " does not match requested " + options.schema.ToString());
      }
    } else if (f[0] == "levels" && f.size() == 2) {
      RASED_ASSIGN_OR_RETURN(int64_t levels, ParseInt(f[1]));
      if (levels != options.num_levels) {
        return Status::InvalidArgument(
            StrFormat("catalog has %d levels, requested %d",
                      static_cast<int>(levels), options.num_levels));
      }
    } else if (f[0] == "first_day" && f.size() == 2) {
      RASED_ASSIGN_OR_RETURN(int64_t days, ParseInt(f[1]));
      index->first_day_ = Date::FromDays(static_cast<int32_t>(days));
    } else if (f[0] == "last_day" && f.size() == 2) {
      RASED_ASSIGN_OR_RETURN(int64_t days, ParseInt(f[1]));
      index->last_day_ = Date::FromDays(static_cast<int32_t>(days));
    } else if (f[0] == "cube" && f.size() == 4) {
      RASED_ASSIGN_OR_RETURN(int64_t level, ParseInt(f[1]));
      RASED_ASSIGN_OR_RETURN(int64_t days, ParseInt(f[2]));
      RASED_ASSIGN_OR_RETURN(uint64_t page, ParseUint(f[3]));
      if (level < 0 || level >= kNumLevels) {
        return Status::Corruption("bad catalog level " + f[1]);
      }
      CubeKey key{static_cast<Level>(level),
                  Date::FromDays(static_cast<int32_t>(days))};
      index->catalog_[key] = page;
    } else {
      return Status::Corruption("bad catalog line: " + std::string(line));
    }
  }
  index->UpdateStorageMetricsLocked();
  return index;
}

Status TemporalIndex::SaveCatalog() {
  std::string out = kCatalogMagic;
  out += "\n";
  out += StrFormat("schema %u %u %u %u\n", options_.schema.num_element_types,
                   options_.schema.num_countries,
                   options_.schema.num_road_types,
                   options_.schema.num_update_types);
  out += StrFormat("levels %d\n", options_.num_levels);
  {
    ReaderMutexLock lock(&mu_);
    if (first_day_.has_value()) {
      out += StrFormat("first_day %d\n", first_day_->days_since_epoch());
    }
    if (last_day_.has_value()) {
      out += StrFormat("last_day %d\n", last_day_->days_since_epoch());
    }
    for (const auto& [key, page] : catalog_) {
      out += StrFormat("cube %d %d %llu\n", static_cast<int>(key.level),
                       key.start.days_since_epoch(),
                       static_cast<unsigned long long>(page));
    }
  }
  // Atomic replace: a crash mid-save must never leave a torn catalog.
  return env::WriteFileAtomic(CatalogPath(options_.dir), out);
}

Status TemporalIndex::Sync() {
  RASED_RETURN_IF_ERROR(SaveCatalog());
  return pager_->Sync();
}

Status TemporalIndex::WriteCube(const CubeKey& key, const DataCube& cube) {
  std::vector<unsigned char> buf(cube.SerializedBytes());
  cube.SerializeTo(buf.data());
  PageId page = kInvalidPageId;
  bool found = false;
  {
    ReaderMutexLock lock(&mu_);
    auto it = catalog_.find(key);
    if (it != catalog_.end()) {
      page = it->second;
      found = true;
    }
  }
  if (found) {
    // Overwrite in place (RebuildMonth). Maintenance holds the facade's
    // exclusive lock, so no reader can be mid-read on this page.
    return pager_->WritePage(page, buf.data(), buf.size());
  }
  // New cube: write the page fully, then publish the key. Writers are
  // externally serialized, so nobody else can register this key in
  // between; readers that race the append either miss the key or see a
  // complete page.
  RASED_ASSIGN_OR_RETURN(page, pager_->AllocatePage());
  RASED_RETURN_IF_ERROR(pager_->WritePage(page, buf.data(), buf.size()));
  WriterMutexLock lock(&mu_);
  catalog_[key] = page;
  return Status::OK();
}

Result<DataCube> TemporalIndex::ReadCube(const CubeKey& key,
                                         IoStats* io) const {
  PageId page = kInvalidPageId;
  {
    ReaderMutexLock lock(&mu_);
    auto it = catalog_.find(key);
    if (it == catalog_.end()) {
      return Status::NotFound("no cube for " + key.ToString());
    }
    page = it->second;
  }
  std::vector<unsigned char> buf(pager_->payload_size());
  RASED_RETURN_IF_ERROR(pager_->ReadPage(page, buf.data(), io));
  if (metrics_.cube_reads != nullptr) metrics_.cube_reads->Increment();
  return DataCube::Deserialize(options_.schema, buf.data(), buf.size());
}

Result<CubeBatch> TemporalIndex::ReadCubes(std::span<const CubeKey> keys,
                                           IoStats* io) const {
  CubeBatch batch(options_.schema, keys.size());
  if (keys.empty()) return batch;

  // Resolve every key up front under one shared-lock pass so a missing
  // cube fails before any device time is charged.
  std::vector<PageId> pages(keys.size(), kInvalidPageId);
  {
    ReaderMutexLock lock(&mu_);
    for (size_t i = 0; i < keys.size(); ++i) {
      auto it = catalog_.find(keys[i]);
      if (it == catalog_.end()) {
        return Status::NotFound("no cube for " + keys[i].ToString());
      }
      pages[i] = it->second;
    }
  }

  const size_t cube_bytes = options_.schema.cube_bytes();
  if (pager_->payload_size() == cube_bytes) {
    // The index sizes its pages so payload_size() == cube_bytes exactly;
    // the batched read scatters payloads at that stride straight into the
    // batch's aligned cell storage — no per-cube deserialize copy.
    RASED_RETURN_IF_ERROR(pager_->ReadPages(pages, batch.raw_bytes(), io));
    if (metrics_.cube_reads != nullptr) {
      metrics_.cube_reads->Increment(keys.size());
    }
    return batch;
  }
  // Defensive fallback for foreign page files with oversized payloads.
  std::vector<unsigned char> buf(pager_->payload_size());
  unsigned char* out = batch.raw_bytes();
  for (size_t i = 0; i < pages.size(); ++i) {
    RASED_RETURN_IF_ERROR(pager_->ReadPage(pages[i], buf.data(), io));
    std::memcpy(out + i * cube_bytes, buf.data(), cube_bytes);
  }
  if (metrics_.cube_reads != nullptr) {
    metrics_.cube_reads->Increment(keys.size());
  }
  return batch;
}

bool TemporalIndex::Contains(const CubeKey& key) const {
  ReaderMutexLock lock(&mu_);
  return catalog_.find(key) != catalog_.end();
}

Result<DataCube> TemporalIndex::BuildFromChildren(
    const CubeKey& parent, const CubeKey* in_memory_key,
    const DataCube* in_memory_cube) const {
  DataCube sum(options_.schema);
  for (const CubeKey& child : parent.Children()) {
    if (in_memory_key != nullptr && child == *in_memory_key) {
      RASED_RETURN_IF_ERROR(sum.Merge(*in_memory_cube));
      continue;
    }
    if (!Contains(child)) continue;  // index may start mid-window
    auto cube = ReadCube(child);
    if (!cube.ok()) return cube.status();
    RASED_RETURN_IF_ERROR(sum.Merge(cube.value()));
  }
  return sum;
}

Status TemporalIndex::AppendDay(Date day, const DataCube& cube) {
  if (!(cube.schema() == options_.schema)) {
    return Status::InvalidArgument("cube schema mismatch");
  }
  {
    ReaderMutexLock lock(&mu_);
    if (last_day_.has_value() && day != last_day_->next()) {
      return Status::InvalidArgument(
          StrFormat("AppendDay(%s) out of order; expected %s",
                    day.ToString().c_str(),
                    last_day_->next().ToString().c_str()));
    }
  }
  RASED_RETURN_IF_ERROR(WriteCube(CubeKey::Daily(day), cube));
  {
    WriterMutexLock lock(&mu_);
    if (!first_day_.has_value()) first_day_ = day;
    last_day_ = day;
  }

  // Rollups at boundaries. `latest` tracks the most recently built cube so
  // each parent reads only the children it does not already hold in
  // memory, matching the paper's I/O counts (Section VI-A).
  CubeKey latest_key = CubeKey::Daily(day);
  DataCube latest = cube;

  if (day.is_week_end() && LevelEnabled(Level::kWeekly)) {
    CubeKey key = CubeKey::Weekly(day);
    RASED_ASSIGN_OR_RETURN(DataCube weekly,
                           BuildFromChildren(key, &latest_key, &latest));
    RASED_RETURN_IF_ERROR(WriteCube(key, weekly));
    latest_key = key;
    latest = std::move(weekly);
  }
  if (day.is_month_end() && LevelEnabled(Level::kMonthly)) {
    CubeKey key = CubeKey::Monthly(day);
    RASED_ASSIGN_OR_RETURN(DataCube monthly,
                           BuildFromChildren(key, &latest_key, &latest));
    RASED_RETURN_IF_ERROR(WriteCube(key, monthly));
    latest_key = key;
    latest = std::move(monthly);
  }
  if (day.is_year_end() && LevelEnabled(Level::kYearly)) {
    CubeKey key = CubeKey::Yearly(day);
    RASED_ASSIGN_OR_RETURN(DataCube yearly,
                           BuildFromChildren(key, &latest_key, &latest));
    RASED_RETURN_IF_ERROR(WriteCube(key, yearly));
  }
  if (metrics_.days_appended != nullptr) metrics_.days_appended->Increment();
  UpdateStorageMetrics();
  return Status::OK();
}

Status TemporalIndex::RebuildMonth(Date month_start,
                                   const std::vector<DataCube>& cubes) {
  if (!month_start.is_month_start()) {
    return Status::InvalidArgument("RebuildMonth expects the month's first day");
  }
  int dim = month_start.days_in_month();
  if (static_cast<int>(cubes.size()) != dim) {
    return Status::InvalidArgument(
        StrFormat("month %s has %d days; got %zu cubes",
                  month_start.ToString().c_str(), dim, cubes.size()));
  }
  // The month must already be covered by daily maintenance.
  Date month_end = month_start.month_end();
  if (!coverage().Contains(DateRange(month_start, month_end))) {
    return Status::InvalidArgument("month not covered by the index yet");
  }

  // Overwrite daily cubes. The monthly UpdateList was scanned upstream;
  // here only the write I/O shows up, as in the paper's offline rebuild.
  for (int d = 0; d < dim; ++d) {
    if (!(cubes[d].schema() == options_.schema)) {
      return Status::InvalidArgument("cube schema mismatch");
    }
    RASED_RETURN_IF_ERROR(
        WriteCube(CubeKey::Daily(month_start.AddDays(d)), cubes[d]));
  }

  // Rebuild weekly cubes in memory from the supplied dailies.
  DataCube monthly(options_.schema);
  if (LevelEnabled(Level::kWeekly)) {
    for (int w = 0; w < 4; ++w) {
      DataCube weekly(options_.schema);
      for (int i = 0; i < 7; ++i) {
        RASED_RETURN_IF_ERROR(weekly.Merge(cubes[7 * w + i]));
      }
      RASED_RETURN_IF_ERROR(
          WriteCube(CubeKey{Level::kWeekly, month_start.AddDays(7 * w)},
                    weekly));
      RASED_RETURN_IF_ERROR(monthly.Merge(weekly));
    }
  } else {
    for (int d = 0; d < 28; ++d) {
      RASED_RETURN_IF_ERROR(monthly.Merge(cubes[d]));
    }
  }
  for (int d = 28; d < dim; ++d) {
    RASED_RETURN_IF_ERROR(monthly.Merge(cubes[d]));
  }
  if (LevelEnabled(Level::kMonthly) &&
      Contains(CubeKey::Monthly(month_start))) {
    RASED_RETURN_IF_ERROR(WriteCube(CubeKey::Monthly(month_start), monthly));
  }

  // If the containing year is closed, refresh the yearly cube from its
  // twelve monthlies.
  CubeKey yearly = CubeKey::Yearly(month_start);
  if (LevelEnabled(Level::kYearly) && Contains(yearly)) {
    RASED_ASSIGN_OR_RETURN(
        DataCube year_cube,
        BuildFromChildren(yearly, nullptr, nullptr));
    RASED_RETURN_IF_ERROR(WriteCube(yearly, year_cube));
  }
  if (metrics_.month_rebuilds != nullptr) metrics_.month_rebuilds->Increment();
  UpdateStorageMetrics();
  return Status::OK();
}

std::vector<CubeKey> TemporalIndex::ExistingKeys(
    Level level, const DateRange& range) const {
  std::vector<CubeKey> keys;
  ReaderMutexLock lock(&mu_);
  for (const CubeKey& key : KeysCoveredBy(level, range)) {
    if (catalog_.find(key) != catalog_.end()) keys.push_back(key);
  }
  return keys;
}

std::vector<CubeKey> TemporalIndex::LatestKeys(Level level, size_t n) const {
  std::vector<CubeKey> keys;
  ReaderMutexLock lock(&mu_);
  for (auto it = catalog_.rbegin(); it != catalog_.rend() && keys.size() < n;
       ++it) {
    if (it->first.level == level) keys.push_back(it->first);
  }
  std::reverse(keys.begin(), keys.end());
  return keys;
}

DateRange TemporalIndex::coverage() const {
  ReaderMutexLock lock(&mu_);
  if (!first_day_.has_value()) return DateRange();
  return DateRange(*first_day_, *last_day_);
}

IndexStorageStats TemporalIndex::StorageStats() const {
  IndexStorageStats stats;
  {
    ReaderMutexLock lock(&mu_);
    for (const auto& [key, page] : catalog_) {
      ++stats.cubes_per_level[static_cast<int>(key.level)];
      ++stats.total_cubes;
    }
  }
  stats.file_bytes =
      (pager_->num_pages() + 1) * pager_->page_size();  // +1 header page
  return stats;
}

}  // namespace rased
