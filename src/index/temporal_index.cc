#include "index/temporal_index.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "io/env.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

namespace {

constexpr char kCatalogMagic[] = "rased-catalog v1";

constexpr const char* kLevelNames[kNumLevels] = {"daily", "weekly", "monthly",
                                                 "yearly"};

const CatalogVersion::LevelMap& LevelMapOf(const CatalogVersion& version,
                                           Level level) {
  static const CatalogVersion::LevelMap kEmpty;
  const auto& map = version.levels[static_cast<int>(level)];
  return map == nullptr ? kEmpty : *map;
}

/// Page payload for adaptive-encoding indexes. Small pages let a sparse
/// daily cube occupy one page instead of a dense-sized one; multi-page
/// blobs land on consecutive pages and are read with one coalesced pread,
/// so large cubes cost the same seeks as before. Capped at the dense blob
/// size so tiny-schema indexes keep one-page dense cubes, floored at the
/// page file minimum, and always a multiple of 8 (cube_bytes is), which
/// keeps batch arena offsets 8-byte aligned.
size_t AdaptivePagePayload(const CubeSchema& schema) {
  constexpr size_t kTargetPayload = 4096;
  const size_t dense_blob = schema.cube_bytes() + CubeBlobHeader::kBytes;
  return std::max<size_t>(64, std::min(kTargetPayload, dense_blob));
}

/// Appends every page of `loc`'s run to `out`.
void AppendRunPages(const CubeLoc& loc, std::vector<PageId>* out) {
  for (uint32_t k = 0; k < loc.num_pages; ++k) {
    out->push_back(loc.first_page + k);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CatalogSnapshot
// ---------------------------------------------------------------------------

std::optional<CubeLoc> CatalogSnapshot::LocOf(const CubeKey& key) const {
  if (version_ == nullptr) return std::nullopt;
  const auto& map = LevelMapOf(*version_, key.level);
  auto it = map.find(key.start);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

std::optional<PageId> CatalogSnapshot::PageOf(const CubeKey& key) const {
  std::optional<CubeLoc> loc = LocOf(key);
  if (!loc.has_value()) return std::nullopt;
  return loc->first_page;
}

std::optional<uint64_t> CatalogSnapshot::EncodedBytesOf(
    const CubeKey& key) const {
  std::optional<CubeLoc> loc = LocOf(key);
  if (!loc.has_value()) return std::nullopt;
  return loc->blob_bytes;
}

std::vector<CubeKey> CatalogSnapshot::ExistingKeys(
    Level level, const DateRange& range) const {
  std::vector<CubeKey> keys;
  if (version_ == nullptr) return keys;
  const auto& map = LevelMapOf(*version_, level);
  for (const CubeKey& key : KeysCoveredBy(level, range)) {
    if (map.find(key.start) != map.end()) keys.push_back(key);
  }
  return keys;
}

std::vector<CubeKey> CatalogSnapshot::LatestKeys(Level level, size_t n) const {
  std::vector<CubeKey> keys;
  if (version_ == nullptr) return keys;
  const auto& map = LevelMapOf(*version_, level);
  for (auto it = map.rbegin(); it != map.rend() && keys.size() < n; ++it) {
    keys.push_back(CubeKey{level, it->first});
  }
  std::reverse(keys.begin(), keys.end());
  return keys;
}

DateRange CatalogSnapshot::coverage() const {
  if (version_ == nullptr || !version_->first_day.has_value()) {
    return DateRange();
  }
  return DateRange(*version_->first_day, *version_->last_day);
}

IndexStorageStats CatalogSnapshot::StorageStats() const {
  IndexStorageStats stats;
  if (version_ == nullptr) return stats;
  for (int level = 0; level < kNumLevels; ++level) {
    const auto& map = LevelMapOf(*version_, static_cast<Level>(level));
    stats.cubes_per_level[level] = map.size();
    stats.total_cubes += map.size();
    for (const auto& [day, loc] : map) stats.encoded_bytes += loc.blob_bytes;
  }
  return stats;
}

// ---------------------------------------------------------------------------
// TemporalIndex
// ---------------------------------------------------------------------------

TemporalIndex::TemporalIndex(TemporalIndexOptions options,
                             std::unique_ptr<Pager> pager)
    : options_(std::move(options)), pager_(std::move(pager)) {
  // The empty catalog is itself a published version: epoch 1, no cubes.
  auto genesis = std::make_shared<CatalogVersion>();
  genesis->epoch = 1;
  current_.store(std::move(genesis), std::memory_order_release);
  if (options_.metrics != nullptr) {
    MetricsRegistry* registry = options_.metrics;
    pager_->RegisterMetrics(registry, "index");
    metrics_.cube_reads = registry->GetCounter(
        "rased_index_cube_reads_total", "Cubes fetched from the index pager");
    metrics_.days_appended = registry->GetCounter(
        "rased_index_days_appended_total", "Daily cubes appended");
    metrics_.month_rebuilds =
        registry->GetCounter("rased_index_month_rebuilds_total",
                             "Monthly-crawler rebuild passes applied");
    metrics_.publications =
        registry->GetCounter("rased_index_publications_total",
                             "Catalog versions published (epoch swaps)");
    for (int level = 0; level < kNumLevels; ++level) {
      // NOLINT-RASED(metric-in-loop): one-time registration over kNumLevels
      metrics_.cubes_per_level[level] = registry->GetGauge(
          "rased_index_cubes", "Cubes stored per level",
          {{"level", kLevelNames[level]}});
    }
    metrics_.file_bytes = registry->GetGauge(
        "rased_index_file_bytes", "Bytes of the index page file on disk");
    metrics_.epoch = registry->GetGauge(
        "rased_index_epoch", "Epoch of the currently published catalog");
    metrics_.retired = registry->GetGauge(
        "rased_index_retired_versions",
        "Retired catalog versions awaiting reader drain");
  }
}

void TemporalIndex::UpdateStorageMetrics() const {
  if (metrics_.file_bytes == nullptr) return;
  CatalogSnapshot snap = Snapshot();
  IndexStorageStats stats = snap.StorageStats();
  for (int level = 0; level < kNumLevels; ++level) {
    metrics_.cubes_per_level[level]->Set(
        static_cast<int64_t>(stats.cubes_per_level[level]));
  }
  metrics_.file_bytes->Set(
      static_cast<int64_t>((pager_->num_pages() + 1) * pager_->page_size()));
  metrics_.epoch->Set(static_cast<int64_t>(snap.epoch()));
}

TemporalIndex::~TemporalIndex() {
  Status s = Sync();
  if (!s.ok()) RASED_LOG(Warning) << "TemporalIndex close: " << s.ToString();
}

std::string TemporalIndex::CatalogPath(const std::string& dir) {
  return env::JoinPath(dir, "catalog");
}

std::string TemporalIndex::PagesPath(const std::string& dir) {
  return env::JoinPath(dir, "cubes.pages");
}

Result<std::unique_ptr<TemporalIndex>> TemporalIndex::Create(
    const TemporalIndexOptions& options) {
  if (options.num_levels < 1 || options.num_levels > kNumLevels) {
    return Status::InvalidArgument(
        StrFormat("num_levels must be 1..%d, got %d", kNumLevels,
                  options.num_levels));
  }
  RASED_RETURN_IF_ERROR(env::CreateDirs(options.dir));
  if (env::FileExists(PagesPath(options.dir))) {
    return Status::AlreadyExists("index already exists in " + options.dir);
  }
  // Page geometry. Adaptive indexes use small pages sized for encoded
  // blobs (AdaptivePagePayload); forced-dense indexes keep them too, so
  // the compression bench compares encodings under identical geometry.
  size_t page_size =
      AdaptivePagePayload(options.schema) + PageFile::kChecksumBytes;
  auto pager = Pager::Create(PagesPath(options.dir), page_size,
                             options.device);
  if (!pager.ok()) return pager.status();
  auto index = std::unique_ptr<TemporalIndex>(
      new TemporalIndex(options, std::move(pager).value()));
  RASED_RETURN_IF_ERROR(index->SaveCatalog());
  index->UpdateStorageMetrics();
  return index;
}

Result<std::unique_ptr<TemporalIndex>> TemporalIndex::Open(
    const TemporalIndexOptions& options) {
  auto contents = env::ReadFile(CatalogPath(options.dir));
  if (!contents.ok()) return contents.status();

  auto pager = Pager::Open(PagesPath(options.dir), options.device);
  if (!pager.ok()) return pager.status();
  auto index = std::unique_ptr<TemporalIndex>(
      new TemporalIndex(options, std::move(pager).value()));

  // Parse the catalog into the version this index will publish as its
  // opening state. The index is not visible to other threads yet.
  auto version = std::make_shared<CatalogVersion>();
  version->epoch = 1;  // pre-epoch catalogs (v1 without an epoch line)
  CatalogVersion::LevelMap maps[kNumLevels];
  std::vector<std::string> lines = Split(contents.value(), '\n');
  if (lines.empty() || lines[0] != kCatalogMagic) {
    return Status::Corruption("bad catalog header in " + options.dir);
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = Trim(lines[i]);
    if (line.empty()) continue;
    std::vector<std::string> f = Split(line, ' ');
    if (f[0] == "schema" && f.size() == 5) {
      CubeSchema s;
      RASED_ASSIGN_OR_RETURN(int64_t et, ParseInt(f[1]));
      RASED_ASSIGN_OR_RETURN(int64_t co, ParseInt(f[2]));
      RASED_ASSIGN_OR_RETURN(int64_t rt, ParseInt(f[3]));
      RASED_ASSIGN_OR_RETURN(int64_t ut, ParseInt(f[4]));
      s.num_element_types = static_cast<uint32_t>(et);
      s.num_countries = static_cast<uint32_t>(co);
      s.num_road_types = static_cast<uint32_t>(rt);
      s.num_update_types = static_cast<uint32_t>(ut);
      if (!(s == options.schema)) {
        return Status::InvalidArgument(
            "catalog schema " + s.ToString() +
            " does not match requested " + options.schema.ToString());
      }
    } else if (f[0] == "levels" && f.size() == 2) {
      RASED_ASSIGN_OR_RETURN(int64_t levels, ParseInt(f[1]));
      if (levels != options.num_levels) {
        return Status::InvalidArgument(
            StrFormat("catalog has %d levels, requested %d",
                      static_cast<int>(levels), options.num_levels));
      }
    } else if (f[0] == "epoch" && f.size() == 2) {
      RASED_ASSIGN_OR_RETURN(uint64_t epoch, ParseUint(f[1]));
      version->epoch = epoch;
    } else if (f[0] == "first_day" && f.size() == 2) {
      RASED_ASSIGN_OR_RETURN(int64_t days, ParseInt(f[1]));
      version->first_day = Date::FromDays(static_cast<int32_t>(days));
    } else if (f[0] == "last_day" && f.size() == 2) {
      RASED_ASSIGN_OR_RETURN(int64_t days, ParseInt(f[1]));
      version->last_day = Date::FromDays(static_cast<int32_t>(days));
    } else if (f[0] == "cube" && (f.size() == 4 || f.size() == 7)) {
      RASED_ASSIGN_OR_RETURN(int64_t level, ParseInt(f[1]));
      RASED_ASSIGN_OR_RETURN(int64_t days, ParseInt(f[2]));
      RASED_ASSIGN_OR_RETURN(uint64_t page, ParseUint(f[3]));
      if (level < 0 || level >= kNumLevels) {
        return Status::Corruption("bad catalog level " + f[1]);
      }
      CubeLoc loc;
      loc.first_page = page;
      if (f.size() == 4) {
        // Seed-format entry: one dense page, no blob header.
        loc.num_pages = 1;
        loc.encoding = CubeEncoding::kDenseRaw;
        loc.blob_bytes = options.schema.cube_bytes();
        loc.legacy = true;
      } else {
        RASED_ASSIGN_OR_RETURN(uint64_t npages, ParseUint(f[4]));
        RASED_ASSIGN_OR_RETURN(int64_t enc, ParseInt(f[5]));
        RASED_ASSIGN_OR_RETURN(uint64_t blob_bytes, ParseUint(f[6]));
        if (npages == 0 || npages > UINT32_MAX) {
          return Status::Corruption("bad catalog page count " + f[4]);
        }
        if (enc < 0 ||
            enc > static_cast<int64_t>(CubeEncoding::kDeltaVarint)) {
          return Status::Corruption("bad catalog cube encoding " + f[5]);
        }
        loc.num_pages = static_cast<uint32_t>(npages);
        loc.encoding = static_cast<CubeEncoding>(enc);
        loc.blob_bytes = blob_bytes;
        loc.legacy = false;
      }
      maps[level][Date::FromDays(static_cast<int32_t>(days))] = loc;
    } else {
      return Status::Corruption("bad catalog line: " + std::string(line));
    }
  }

  // Reconstruct the free-page pool: any page the catalog does not
  // reference (pages orphaned by a crash between staging and publication,
  // or retired before the last save) is reusable.
  // User page ids are 1..num_pages (0 is the file header).
  const PageId num_pages = index->pager_->num_pages();
  const size_t payload = index->pager_->payload_size();
  std::vector<bool> referenced(num_pages + 1, false);
  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& [day, loc] : maps[level]) {
      if (loc.first_page == kInvalidPageId || loc.first_page > num_pages ||
          loc.num_pages > num_pages - loc.first_page + 1) {
        return Status::Corruption(
            StrFormat("catalog page run %llu+%u beyond file end",
                      static_cast<unsigned long long>(loc.first_page),
                      loc.num_pages));
      }
      if (!loc.legacy &&
          (loc.blob_bytes < CubeBlobHeader::kBytes ||
           loc.blob_bytes >
               static_cast<uint64_t>(loc.num_pages) * payload)) {
        return Status::Corruption(
            StrFormat("catalog blob length %llu exceeds its %u-page run",
                      static_cast<unsigned long long>(loc.blob_bytes),
                      loc.num_pages));
      }
      for (uint32_t k = 0; k < loc.num_pages; ++k) {
        referenced[loc.first_page + k] = true;
      }
    }
    version->levels[level] = std::make_shared<const CatalogVersion::LevelMap>(
        std::move(maps[level]));
  }
  std::vector<PageId> free_pages;
  for (PageId page = 1; page <= num_pages; ++page) {
    if (!referenced[page]) free_pages.push_back(page);
  }
  index->pager_->ReleasePages(free_pages);

  index->current_.store(std::move(version), std::memory_order_release);
  index->UpdateStorageMetrics();
  return index;
}

CatalogSnapshot TemporalIndex::Snapshot() const {
  return CatalogSnapshot(current_.load(std::memory_order_acquire));
}

size_t TemporalIndex::retired_versions() const {
  MutexLock lock(&maint_mu_);
  return retired_.size();
}

Status TemporalIndex::SaveCatalog() {
  std::shared_ptr<const CatalogVersion> version =
      current_.load(std::memory_order_acquire);
  std::string out = kCatalogMagic;
  out += "\n";
  out += StrFormat("schema %u %u %u %u\n", options_.schema.num_element_types,
                   options_.schema.num_countries,
                   options_.schema.num_road_types,
                   options_.schema.num_update_types);
  out += StrFormat("levels %d\n", options_.num_levels);
  out += StrFormat("epoch %llu\n",
                   static_cast<unsigned long long>(version->epoch));
  if (version->first_day.has_value()) {
    out += StrFormat("first_day %d\n", version->first_day->days_since_epoch());
  }
  if (version->last_day.has_value()) {
    out += StrFormat("last_day %d\n", version->last_day->days_since_epoch());
  }
  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& [day, loc] :
         LevelMapOf(*version, static_cast<Level>(level))) {
      if (loc.legacy) {
        // Seed-format entries round-trip in their original 4-field form.
        out += StrFormat("cube %d %d %llu\n", level, day.days_since_epoch(),
                         static_cast<unsigned long long>(loc.first_page));
      } else {
        out += StrFormat("cube %d %d %llu %u %d %llu\n", level,
                         day.days_since_epoch(),
                         static_cast<unsigned long long>(loc.first_page),
                         loc.num_pages, static_cast<int>(loc.encoding),
                         static_cast<unsigned long long>(loc.blob_bytes));
      }
    }
  }
  // Atomic replace: a crash mid-save must never leave a torn catalog.
  return env::WriteFileAtomic(CatalogPath(options_.dir), out);
}

Status TemporalIndex::Sync() {
  RASED_RETURN_IF_ERROR(SaveCatalog());
  return pager_->Sync();
}

// ---- staging ----

Status TemporalIndex::StageCube(Staging* staging, const CubeKey& key,
                                const DataCube& cube) {
  EncodedCube encoded = EncodedCube::Encode(cube, options_.encoding);
  const size_t blob_bytes = encoded.SerializedBytes();
  const size_t payload = pager_->payload_size();
  const size_t num_pages = (blob_bytes + payload - 1) / payload;
  std::vector<unsigned char> buf(num_pages * payload, 0);
  encoded.SerializeTo(buf.data());
  // Always fresh pages: pages reachable from any published version are
  // immutable, so a pinned reader can never observe a half-written cube.
  // The run is physically consecutive so one pread fetches the blob.
  RASED_ASSIGN_OR_RETURN(PageId first, pager_->AllocateRun(num_pages));
  CubeLoc loc;
  loc.first_page = first;
  loc.num_pages = static_cast<uint32_t>(num_pages);
  loc.encoding = encoded.encoding();
  loc.blob_bytes = blob_bytes;
  Status write = Status::OK();
  for (size_t k = 0; k < num_pages && write.ok(); ++k) {
    write = pager_->WritePage(first + k, buf.data() + k * payload, payload);
  }
  if (!write.ok()) {
    std::vector<PageId> failed;
    AppendRunPages(loc, &failed);
    pager_->ReleasePages(failed);
    return write;
  }
  auto it = staging->staged.find(key);
  if (it != staging->staged.end()) {
    // Re-staged within this pass; the earlier run was never published,
    // so it is immediately reusable.
    std::vector<PageId> abandoned;
    AppendRunPages(it->second, &abandoned);
    pager_->ReleasePages(abandoned);
    it->second = loc;
    return Status::OK();
  }
  staging->staged[key] = loc;
  std::optional<CubeLoc> shadowed =
      CatalogSnapshot(staging->base).LocOf(key);
  if (shadowed.has_value()) AppendRunPages(*shadowed, &staging->dropped);
  return Status::OK();
}

std::optional<CubeLoc> TemporalIndex::StagedLocOf(const Staging& staging,
                                                  const CubeKey& key) const {
  auto it = staging.staged.find(key);
  if (it != staging.staged.end()) return it->second;
  return CatalogSnapshot(staging.base).LocOf(key);
}

Result<DataCube> TemporalIndex::ReadCubeAtLoc(const CubeLoc& loc,
                                              IoStats* io) const {
  const size_t payload = pager_->payload_size();
  std::vector<PageId> pages;
  pages.reserve(loc.num_pages);
  AppendRunPages(loc, &pages);
  // The run is consecutive, so this is one coalesced pread charged as a
  // single read_op of num_pages page_reads — identical accounting to the
  // batched path.
  std::vector<unsigned char> buf(loc.num_pages * payload);
  RASED_RETURN_IF_ERROR(pager_->ReadPages(pages, buf.data(), io));
  if (metrics_.cube_reads != nullptr) metrics_.cube_reads->Increment();
  if (loc.legacy) {
    if (buf.size() < options_.schema.cube_bytes()) {
      return Status::Corruption("legacy cube page smaller than a dense cube");
    }
    return DataCube::Deserialize(options_.schema, buf.data(),
                                 options_.schema.cube_bytes());
  }
  if (loc.blob_bytes < CubeBlobHeader::kBytes ||
      loc.blob_bytes > buf.size()) {
    return Status::Corruption("catalog blob length exceeds its page run");
  }
  RASED_ASSIGN_OR_RETURN(CubeBlobHeader header,
                         CubeBlobHeader::Parse(buf.data(), buf.size()));
  if (header.body_bytes != loc.blob_bytes - CubeBlobHeader::kBytes) {
    return Status::Corruption("cube blob length disagrees with catalog");
  }
  if (header.encoding != loc.encoding) {
    return Status::Corruption("cube blob encoding disagrees with catalog");
  }
  return DecodeEncodedCube(options_.schema, header.encoding,
                           buf.data() + CubeBlobHeader::kBytes,
                           static_cast<size_t>(header.body_bytes));
}

Result<DataCube> TemporalIndex::BuildFromChildren(
    const Staging& staging, const CubeKey& parent,
    const CubeKey* in_memory_key, const DataCube* in_memory_cube) const {
  DataCube sum(options_.schema);
  for (const CubeKey& child : parent.Children()) {
    if (in_memory_key != nullptr && child == *in_memory_key) {
      RASED_RETURN_IF_ERROR(sum.Merge(*in_memory_cube));
      continue;
    }
    std::optional<CubeLoc> loc = StagedLocOf(staging, child);
    if (!loc.has_value()) continue;  // index may start mid-window
    auto cube = ReadCubeAtLoc(*loc, nullptr);
    if (!cube.ok()) return cube.status();
    RASED_RETURN_IF_ERROR(sum.Merge(cube.value()));
  }
  return sum;
}

void TemporalIndex::PublishLocked(Staging* staging) {
  auto next = std::make_shared<CatalogVersion>();
  next->epoch = staging->base->epoch + 1;
  next->first_day = staging->first_day;
  next->last_day = staging->last_day;

  // Copy-on-write per level: only levels this pass staged into are
  // copied; untouched levels share the base version's map.
  bool touched[kNumLevels] = {false, false, false, false};
  for (const auto& [key, loc] : staging->staged) {
    touched[static_cast<int>(key.level)] = true;
  }
  for (int level = 0; level < kNumLevels; ++level) {
    if (!touched[level]) {
      next->levels[level] = staging->base->levels[level];
      continue;
    }
    auto map = std::make_shared<CatalogVersion::LevelMap>(
        LevelMapOf(*staging->base, static_cast<Level>(level)));
    for (const auto& [key, loc] : staging->staged) {
      if (static_cast<int>(key.level) == level) (*map)[key.start] = loc;
    }
    next->levels[level] = std::move(map);
  }

  // The publication point: one atomic swap makes the day AND all of its
  // rollups visible together. Readers pinned to the base keep using it.
  current_.store(next, std::memory_order_release);
  retired_.push_back(
      RetiredVersion{std::move(staging->base), std::move(staging->dropped)});
  if (metrics_.publications != nullptr) metrics_.publications->Increment();
  ReclaimRetiredLocked();
}

void TemporalIndex::ReclaimRetiredLocked() {
  // Front-gated: versions retire in order, so a page dropped at version
  // V's retirement (present in V, gone in V+1) may still be referenced by
  // versions retired before V. Popping strictly from the front releases
  // V's pages only after every earlier version has also drained.
  while (!retired_.empty() && retired_.front().version.use_count() == 1) {
    pager_->ReleasePages(retired_.front().dropped);
    retired_.pop_front();
  }
  if (metrics_.retired != nullptr) {
    metrics_.retired->Set(static_cast<int64_t>(retired_.size()));
  }
}

void TemporalIndex::AbandonStaging(Staging* staging) {
  std::vector<PageId> pages;
  pages.reserve(staging->staged.size());
  for (const auto& [key, loc] : staging->staged) AppendRunPages(loc, &pages);
  pager_->ReleasePages(pages);
  staging->staged.clear();
  staging->dropped.clear();
}

// ---- lookup ----

Result<DataCube> TemporalIndex::ReadCube(const CatalogSnapshot& snapshot,
                                         const CubeKey& key,
                                         IoStats* io) const {
  std::optional<CubeLoc> loc = snapshot.LocOf(key);
  if (!loc.has_value()) {
    return Status::NotFound("no cube for " + key.ToString());
  }
  return ReadCubeAtLoc(*loc, io);
}

Result<EncodedCubeBatch> TemporalIndex::ReadCubes(
    const CatalogSnapshot& snapshot, std::span<const CubeKey> keys,
    IoStats* io) const {
  // Resolve every key up front against the pinned version so a missing
  // cube fails before any device time is charged.
  std::vector<CubeLoc> locs(keys.size());
  size_t total_pages = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    std::optional<CubeLoc> loc = snapshot.LocOf(keys[i]);
    if (!loc.has_value()) {
      return Status::NotFound("no cube for " + keys[i].ToString());
    }
    locs[i] = *loc;
    total_pages += locs[i].num_pages;
  }

  // Lay the cubes' page runs out back to back in the arena, cube-major:
  // each cube's pages are physically consecutive, so its whole blob lands
  // contiguous at a known offset. Offsets stay 8-byte aligned because the
  // payload is a multiple of 8.
  const size_t payload = pager_->payload_size();
  EncodedCubeBatch batch(options_.schema, keys.size(),
                         total_pages * payload);
  if (keys.empty()) return batch;
  std::vector<PageId> pages;
  pages.reserve(total_pages);
  std::vector<size_t> offsets(keys.size(), 0);
  for (size_t i = 0; i < locs.size(); ++i) {
    offsets[i] = pages.size() * payload;
    AppendRunPages(locs[i], &pages);
  }
  RASED_RETURN_IF_ERROR(pager_->ReadPages(pages, batch.arena(), io));
  for (size_t i = 0; i < locs.size(); ++i) {
    if (locs[i].legacy) {
      RASED_RETURN_IF_ERROR(batch.BindLegacyDense(i, offsets[i]));
    } else {
      RASED_RETURN_IF_ERROR(batch.BindEncoded(
          i, offsets[i], locs[i].blob_bytes, locs[i].encoding));
    }
  }
  if (metrics_.cube_reads != nullptr) {
    metrics_.cube_reads->Increment(keys.size());
  }
  return batch;
}

// ---- maintenance ----

Status TemporalIndex::AppendDay(Date day, const DataCube& cube) {
  if (!(cube.schema() == options_.schema)) {
    return Status::InvalidArgument("cube schema mismatch");
  }
  MutexLock lock(&maint_mu_);
  Staging staging;
  staging.base = current_.load(std::memory_order_acquire);
  if (staging.base->last_day.has_value() &&
      day != staging.base->last_day->next()) {
    return Status::InvalidArgument(
        StrFormat("AppendDay(%s) out of order; expected %s",
                  day.ToString().c_str(),
                  staging.base->last_day->next().ToString().c_str()));
  }
  staging.first_day =
      staging.base->first_day.has_value() ? staging.base->first_day : day;
  staging.last_day = day;

  // Stage the day, then boundary rollups. `latest` tracks the most
  // recently built cube so each parent reads only the children it does
  // not already hold in memory, matching the paper's I/O counts
  // (Section VI-A). Nothing here is visible to readers yet.
  auto stage_all = [&]() -> Status {
    RASED_RETURN_IF_ERROR(StageCube(&staging, CubeKey::Daily(day), cube));
    CubeKey latest_key = CubeKey::Daily(day);
    DataCube latest = cube;

    if (day.is_week_end() && LevelEnabled(Level::kWeekly)) {
      CubeKey key = CubeKey::Weekly(day);
      RASED_ASSIGN_OR_RETURN(
          DataCube weekly,
          BuildFromChildren(staging, key, &latest_key, &latest));
      RASED_RETURN_IF_ERROR(StageCube(&staging, key, weekly));
      latest_key = key;
      latest = std::move(weekly);
    }
    if (day.is_month_end() && LevelEnabled(Level::kMonthly)) {
      CubeKey key = CubeKey::Monthly(day);
      RASED_ASSIGN_OR_RETURN(
          DataCube monthly,
          BuildFromChildren(staging, key, &latest_key, &latest));
      RASED_RETURN_IF_ERROR(StageCube(&staging, key, monthly));
      latest_key = key;
      latest = std::move(monthly);
    }
    if (day.is_year_end() && LevelEnabled(Level::kYearly)) {
      CubeKey key = CubeKey::Yearly(day);
      RASED_ASSIGN_OR_RETURN(
          DataCube yearly,
          BuildFromChildren(staging, key, &latest_key, &latest));
      RASED_RETURN_IF_ERROR(StageCube(&staging, key, yearly));
    }
    return Status::OK();
  };
  Status staged = stage_all();
  if (!staged.ok()) {
    AbandonStaging(&staging);
    return staged;
  }
  PublishLocked(&staging);
  if (metrics_.days_appended != nullptr) metrics_.days_appended->Increment();
  UpdateStorageMetrics();
  return Status::OK();
}

Status TemporalIndex::RebuildMonth(Date month_start,
                                   const std::vector<DataCube>& cubes) {
  if (!month_start.is_month_start()) {
    return Status::InvalidArgument("RebuildMonth expects the month's first day");
  }
  int dim = month_start.days_in_month();
  if (static_cast<int>(cubes.size()) != dim) {
    return Status::InvalidArgument(
        StrFormat("month %s has %d days; got %zu cubes",
                  month_start.ToString().c_str(), dim, cubes.size()));
  }
  for (int d = 0; d < dim; ++d) {
    if (!(cubes[d].schema() == options_.schema)) {
      return Status::InvalidArgument("cube schema mismatch");
    }
  }
  MutexLock lock(&maint_mu_);
  Staging staging;
  staging.base = current_.load(std::memory_order_acquire);
  staging.first_day = staging.base->first_day;
  staging.last_day = staging.base->last_day;

  // The month must already be covered by daily maintenance.
  Date month_end = month_start.month_end();
  if (!CatalogSnapshot(staging.base)
           .coverage()
           .Contains(DateRange(month_start, month_end))) {
    return Status::InvalidArgument("month not covered by the index yet");
  }

  auto stage_all = [&]() -> Status {
    // Replacement daily cubes. The monthly UpdateList was scanned
    // upstream; here only the write I/O shows up, as in the paper's
    // offline rebuild. Readers pinned to the base version keep reading
    // the old pages — replacements go to fresh pages.
    for (int d = 0; d < dim; ++d) {
      RASED_RETURN_IF_ERROR(StageCube(
          &staging, CubeKey::Daily(month_start.AddDays(d)), cubes[d]));
    }

    // Rebuild weekly cubes in memory from the supplied dailies.
    DataCube monthly(options_.schema);
    if (LevelEnabled(Level::kWeekly)) {
      for (int w = 0; w < 4; ++w) {
        DataCube weekly(options_.schema);
        for (int i = 0; i < 7; ++i) {
          RASED_RETURN_IF_ERROR(weekly.Merge(cubes[7 * w + i]));
        }
        RASED_RETURN_IF_ERROR(StageCube(
            &staging, CubeKey{Level::kWeekly, month_start.AddDays(7 * w)},
            weekly));
        RASED_RETURN_IF_ERROR(monthly.Merge(weekly));
      }
    } else {
      for (int d = 0; d < 28; ++d) {
        RASED_RETURN_IF_ERROR(monthly.Merge(cubes[d]));
      }
    }
    for (int d = 28; d < dim; ++d) {
      RASED_RETURN_IF_ERROR(monthly.Merge(cubes[d]));
    }
    CubeKey monthly_key = CubeKey::Monthly(month_start);
    if (LevelEnabled(Level::kMonthly) &&
        StagedLocOf(staging, monthly_key).has_value()) {
      RASED_RETURN_IF_ERROR(StageCube(&staging, monthly_key, monthly));
    }

    // If the containing year is closed, refresh the yearly cube from its
    // twelve monthlies (the staged monthly resolves staged-first).
    CubeKey yearly = CubeKey::Yearly(month_start);
    if (LevelEnabled(Level::kYearly) &&
        StagedLocOf(staging, yearly).has_value()) {
      RASED_ASSIGN_OR_RETURN(
          DataCube year_cube,
          BuildFromChildren(staging, yearly, nullptr, nullptr));
      RASED_RETURN_IF_ERROR(StageCube(&staging, yearly, year_cube));
    }
    return Status::OK();
  };
  Status staged = stage_all();
  if (!staged.ok()) {
    AbandonStaging(&staging);
    return staged;
  }
  PublishLocked(&staging);
  if (metrics_.month_rebuilds != nullptr) metrics_.month_rebuilds->Increment();
  UpdateStorageMetrics();
  return Status::OK();
}

IndexStorageStats TemporalIndex::StorageStats() const {
  IndexStorageStats stats = Snapshot().StorageStats();
  stats.file_bytes =
      (pager_->num_pages() + 1) * pager_->page_size();  // +1 header page
  return stats;
}

}  // namespace rased
