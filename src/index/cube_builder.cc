#include "index/cube_builder.h"

#include "util/logging.h"

namespace rased {

CubeBuilder::CubeBuilder(const CubeSchema& schema, const WorldMap* world)
    : schema_(schema), world_(world) {
  RASED_CHECK(world_->num_zones() == schema_.num_countries)
      << "world map has " << world_->num_zones() << " zones but schema's "
      << "Country dimension is " << schema_.num_countries;
}

void CubeBuilder::AddRecord(const UpdateRecord& record,
                            DataCube* cube) const {
  uint32_t et = static_cast<uint32_t>(record.element_type);
  uint32_t ut = static_cast<uint32_t>(record.update_type);
  // Road types beyond the schema's dimension collapse into the "other"
  // bucket (id 1), mirroring RoadTypeTable's capacity behaviour.
  uint32_t rt = record.road_type < schema_.num_road_types ? record.road_type
                                                          : 1u;
  WorldMap::ZoneSet zones = world_->ZonesForCountry(
      record.country, LatLon{record.lat, record.lon});
  if (zones.count == 0) {
    // Unlocatable update: counted under the (unknown) zone.
    cube->Add(et, kZoneUnknown, rt, ut);
    return;
  }
  for (int i = 0; i < zones.count; ++i) {
    cube->Add(et, zones.ids[i], rt, ut);
  }
}

DataCube CubeBuilder::BuildCube(
    const std::vector<UpdateRecord>& records) const {
  DataCube cube(schema_);
  for (const UpdateRecord& r : records) AddRecord(r, &cube);
  return cube;
}

std::map<Date, DataCube> CubeBuilder::BuildDailyCubes(
    const std::vector<UpdateRecord>& records) const {
  std::map<Date, DataCube> cubes;
  for (const UpdateRecord& r : records) {
    auto it = cubes.find(r.date);
    if (it == cubes.end()) {
      it = cubes.emplace(r.date, DataCube(schema_)).first;
    }
    AddRecord(r, &it->second);
  }
  return cubes;
}

}  // namespace rased
