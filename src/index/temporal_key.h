#ifndef RASED_INDEX_TEMPORAL_KEY_H_
#define RASED_INDEX_TEMPORAL_KEY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/date.h"

namespace rased {

/// The four levels of RASED's hierarchical temporal index (Figure 6).
/// Values are ordered from finest to coarsest.
enum class Level : uint8_t {
  kDaily = 0,
  kWeekly = 1,
  kMonthly = 2,
  kYearly = 3,
};
inline constexpr int kNumLevels = 4;

std::string_view LevelName(Level level);

/// Identity of one index node: a level plus the canonical first day of its
/// window. Weeks follow the paper's month-clipped structure (see
/// util/date.h): week w covers days 7w+1..7w+7 of its month, and the
/// straggler days 29..31 exist only at the daily level.
struct CubeKey {
  Level level = Level::kDaily;
  Date start;

  static CubeKey Daily(Date day) { return CubeKey{Level::kDaily, day}; }
  /// Any non-straggler day selects its containing week.
  static CubeKey Weekly(Date day);
  static CubeKey Monthly(Date day) {
    return CubeKey{Level::kMonthly, day.month_start()};
  }
  static CubeKey Yearly(Date day) {
    return CubeKey{Level::kYearly, day.year_start()};
  }

  /// Closed date window covered by this node.
  DateRange range() const;

  /// Child keys whose windows exactly partition this node's window:
  /// weekly -> 7 dailies; monthly -> 4 weeklies + 0-3 straggler dailies;
  /// yearly -> 12 monthlies. A daily key has no children.
  std::vector<CubeKey> Children() const;

  std::string ToString() const;

  friend bool operator==(const CubeKey& a, const CubeKey& b) {
    return a.level == b.level && a.start == b.start;
  }
  friend bool operator<(const CubeKey& a, const CubeKey& b) {
    if (a.start != b.start) return a.start < b.start;
    return static_cast<int>(a.level) < static_cast<int>(b.level);
  }
};

struct CubeKeyHash {
  size_t operator()(const CubeKey& key) const {
    uint64_t v = (static_cast<uint64_t>(key.start.days_since_epoch()) << 2) |
                 static_cast<uint64_t>(key.level);
    // SplitMix64 finalizer.
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(v ^ (v >> 31));
  }
};

/// Enumerates all keys of `level` whose windows lie entirely inside
/// `range`, in chronological order. This is the building block of the
/// level optimizer's cover computation.
std::vector<CubeKey> KeysCoveredBy(Level level, const DateRange& range);

}  // namespace rased

#endif  // RASED_INDEX_TEMPORAL_KEY_H_
