#ifndef RASED_INDEX_CUBE_BUILDER_H_
#define RASED_INDEX_CUBE_BUILDER_H_

#include <map>
#include <vector>

#include "collect/update_record.h"
#include "cube/data_cube.h"
#include "geo/world_map.h"
#include "util/date.h"
#include "util/result.h"

namespace rased {

/// Turns UpdateList tuples into data-cube increments. One update increments
/// the cell of its country *and* of every zone of interest containing it
/// (continent, US state), so the aggregate zones the paper exposes in the
/// Country dimension stay consistent with their members.
class CubeBuilder {
 public:
  /// The world map's zone count must equal schema.num_countries (zone ids
  /// are used directly as Country-dimension coordinates).
  CubeBuilder(const CubeSchema& schema, const WorldMap* world);

  const CubeSchema& schema() const { return schema_; }

  /// Adds one record to `cube`. The record's date is not checked — callers
  /// route records to the cube of the right day.
  void AddRecord(const UpdateRecord& record, DataCube* cube) const;

  /// Builds one cube from all records (regardless of date) — the daily
  /// maintenance path, where the input is one day's UpdateList.
  DataCube BuildCube(const std::vector<UpdateRecord>& records) const;

  /// Groups records by date into per-day cubes (missing days absent).
  std::map<Date, DataCube> BuildDailyCubes(
      const std::vector<UpdateRecord>& records) const;

 private:
  CubeSchema schema_;
  const WorldMap* world_;
};

}  // namespace rased

#endif  // RASED_INDEX_CUBE_BUILDER_H_
