#include "util/logging.h"

#include <atomic>
#include <cstring>

#include "util/thread_annotations.h"

namespace rased {

namespace {

/// Serializes sink emission: each log line is fully formatted off-lock in
/// a per-message ostringstream, then written to stderr in one guarded
/// call, so lines from concurrent dashboard workers never interleave.
Mutex& SinkMutex() {
  static Mutex* mu = new Mutex;
  return *mu;
}

std::atomic<int> g_log_level{[] {
  const char* env = std::getenv("RASED_LOG_LEVEL");
  if (env != nullptr && *env != '\0') {
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) return v;
  }
  return static_cast<int>(LogLevel::kInfo);
}()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    MutexLock lock(&SinkMutex());
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  {
    MutexLock lock(&SinkMutex());
    std::cerr << stream_.str();
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace rased
