#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <thread>

#include "util/clock.h"
#include "util/thread_annotations.h"

namespace rased {

namespace {

/// Serializes sink emission: each log line is fully formatted off-lock in
/// a per-message ostringstream, then written to stderr in one guarded
/// call, so lines from concurrent dashboard workers never interleave.
Mutex& SinkMutex() {
  static Mutex* mu = new Mutex;
  return *mu;
}

std::atomic<int> g_log_level{[] {
  const char* env = std::getenv("RASED_LOG_LEVEL");
  if (env != nullptr && *env != '\0') {
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) return v;
  }
  return static_cast<int>(LogLevel::kInfo);
}()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

/// The calling thread's request trace id; see SetThreadLogTraceId.
thread_local uint64_t t_log_trace_id = 0;

/// Writes the stable line prefix documented on LogMessage in logging.h:
/// [<ISO-8601 UTC ms Z> <LEVEL> <thread-id> <basename>:<line>[ trace=hex]]
void EmitLinePrefix(std::ostream& os, const char* level_name,
                    const char* file, int line) {
  const int64_t wall = NowWallMicros();
  std::time_t seconds = static_cast<std::time_t>(wall / 1000000);
  int millis = static_cast<int>((wall % 1000000) / 1000);
  if (millis < 0) {  // pre-epoch clocks (paranoia)
    millis += 1000;
    seconds -= 1;
  }
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, millis);
  os << "[" << stamp << " " << level_name << " "
     << std::this_thread::get_id() << " " << Basename(file) << ":" << line;
  if (t_log_trace_id != 0) {
    char trace[32];
    std::snprintf(trace, sizeof(trace), "%016llx",
                  static_cast<unsigned long long>(t_log_trace_id));
    os << " trace=" << trace;
  }
  os << "] ";
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetThreadLogTraceId(uint64_t trace_id) { t_log_trace_id = trace_id; }

uint64_t GetThreadLogTraceId() { return t_log_trace_id; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    EmitLinePrefix(stream_, LevelName(level), file, line);
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    MutexLock lock(&SinkMutex());
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  EmitLinePrefix(stream_, "FATAL", file, line);
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  {
    MutexLock lock(&SinkMutex());
    std::cerr << stream_.str();
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace rased
