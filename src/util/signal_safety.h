#ifndef RASED_UTIL_SIGNAL_SAFETY_H_
#define RASED_UTIL_SIGNAL_SAFETY_H_

#include <cerrno>

/// Marks a function that runs in (or is reachable from) an async signal
/// handler. The marker expands to nothing; its value is the contract it
/// declares and enforces: rased-lint rule RL015 scans the body of every
/// function annotated RASED_SIGNAL_HANDLER and rejects calls that are not
/// async-signal-safe (malloc/free, operator new/delete, stdio, logging,
/// mutex acquisition). Code inside a marked function may only touch
/// plain/atomic thread-local or pre-allocated state and the handful of
/// AS-safe syscalls (clock_gettime, write, ...).
#define RASED_SIGNAL_HANDLER

namespace rased {

/// Saves errno on construction and restores it on destruction. Every
/// signal handler must preserve errno for the interrupted code; this is
/// the first line of each RASED_SIGNAL_HANDLER function.
class ScopedErrnoRestore {
 public:
  ScopedErrnoRestore() : saved_(errno) {}
  ~ScopedErrnoRestore() { errno = saved_; }

  ScopedErrnoRestore(const ScopedErrnoRestore&) = delete;
  ScopedErrnoRestore& operator=(const ScopedErrnoRestore&) = delete;

 private:
  int saved_;
};

}  // namespace rased

#endif  // RASED_UTIL_SIGNAL_SAFETY_H_
