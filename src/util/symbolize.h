#ifndef RASED_UTIL_SYMBOLIZE_H_
#define RASED_UTIL_SYMBOLIZE_H_

#include <cstdint>
#include <string>

namespace rased {

/// Resolves a code address to a human-readable frame name. Uses the
/// dynamic symbol table (dladdr) and demangles C++ names; executables must
/// be linked with exported symbols (CMAKE_ENABLE_EXPORTS) for static
/// binaries to resolve their own functions. Unresolvable addresses render
/// as "0x<hex>" so folded stacks stay parseable. NOT async-signal-safe:
/// call from background symbolization threads only, never from a
/// RASED_SIGNAL_HANDLER context.
std::string SymbolizePc(uintptr_t pc);

}  // namespace rased

#endif  // RASED_UTIL_SYMBOLIZE_H_
