#include "util/deadlock_detector.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace rased {
namespace internal {

namespace {

/// One lock construction site (all mutexes born at file:line share it).
struct Site {
  std::string label;  // "file:line"
};

/// One observed ordering: `from` was held while `to` was acquired. The
/// holder chain at first observation is kept for the abort report.
struct Edge {
  uint32_t from = 0;
  uint32_t to = 0;
  std::vector<uint32_t> held_at_creation;
};

struct Graph {
  // A plain std::mutex, not rased::Mutex: rased::Mutex calls back into
  // this module on every acquisition, so using it here would recurse.
  std::mutex mu;
  std::unordered_map<uint64_t, uint32_t> site_ids;  // (file ptr hash, line)
  std::vector<Site> sites;
  std::unordered_map<uint64_t, size_t> edge_index;  // (from<<32|to) -> pos
  std::vector<Edge> edges;
  std::vector<std::vector<uint32_t>> out;  // adjacency: site -> successors
};

/// Leaked on purpose: mutexes (static ones included) may be acquired during
/// process teardown, after static destructors would have run.
Graph* GlobalGraph() {
  static Graph* graph = new Graph();
  return graph;
}

/// The current thread's held-lock chain, oldest first. Sites repeat when
/// two instances from one construction site are held at once.
thread_local std::vector<uint32_t> tls_held;

uint64_t EdgeKey(uint32_t from, uint32_t to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

/// Depth-first reachability over `graph.out` (caller holds graph.mu).
bool Reaches(const Graph& graph, uint32_t from, uint32_t target,
             std::vector<uint32_t>* path, std::vector<bool>* visited) {
  if (from == target) {
    path->push_back(from);
    return true;
  }
  if ((*visited)[from]) return false;
  (*visited)[from] = true;
  for (uint32_t next : graph.out[from]) {
    if (Reaches(graph, next, target, path, visited)) {
      path->push_back(from);
      return true;
    }
  }
  return false;
}

void PrintChain(const Graph& graph, const std::vector<uint32_t>& chain) {
  for (size_t i = 0; i < chain.size(); ++i) {
    std::fprintf(stderr, "    #%zu %s\n", i,
                 graph.sites[chain[i]].label.c_str());
  }
  if (chain.empty()) std::fprintf(stderr, "    (no other locks held)\n");
}

/// Prints the cycle report and aborts. `path` is the existing-graph path
/// to -> ... -> held whose edges, together with the new held -> to edge,
/// form the cycle. Caller holds graph.mu (never released: we abort).
[[noreturn]] void ReportCycleAndAbort(const Graph& graph, uint32_t to,
                                      const std::vector<uint32_t>& path) {
  std::fprintf(stderr,
               "RASED deadlock detector: lock-order cycle detected\n"
               "  this thread is acquiring lock site %s\n"
               "  while holding (acquisition stack, oldest first):\n",
               graph.sites[to].label.c_str());
  PrintChain(graph, tls_held);
  std::fprintf(stderr, "  conflicting order previously observed:\n");
  // path is to -> ... -> from in reverse (Reaches appends on unwind), so
  // consecutive pairs walking backwards are the established edges.
  for (size_t i = path.size(); i-- > 1;) {
    uint32_t a = path[i];
    uint32_t b = path[i - 1];
    auto it = graph.edge_index.find(EdgeKey(a, b));
    std::fprintf(stderr, "  lock site %s acquired while holding %s\n",
                 graph.sites[b].label.c_str(), graph.sites[a].label.c_str());
    if (it != graph.edge_index.end()) {
      std::fprintf(stderr, "  that thread's acquisition stack was:\n");
      PrintChain(graph, graph.edges[it->second].held_at_creation);
    }
  }
  std::fprintf(stderr,
               "  one of these paths must release its locks before taking "
               "the other's; aborting\n");
  std::abort();
}

}  // namespace

uint32_t InternLockSite(const char* file, uint32_t line) {
  Graph* graph = GlobalGraph();
  std::lock_guard<std::mutex> lock(graph->mu);
  // source_location file names are string literals, so the pointer value
  // identifies the file; hash it together with the line.
  uint64_t key = (reinterpret_cast<uint64_t>(file) << 16) ^ line;
  auto it = graph->site_ids.find(key);
  if (it != graph->site_ids.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(graph->sites.size());
  graph->sites.push_back(Site{std::string(file) + ":" + std::to_string(line)});
  graph->out.emplace_back();
  graph->site_ids.emplace(key, id);
  return id;
}

void LockOrderAcquire(uint32_t site) {
  if (!tls_held.empty()) {
    Graph* graph = GlobalGraph();
    std::lock_guard<std::mutex> lock(graph->mu);
    for (uint32_t held : tls_held) {
      if (held == site) continue;  // same-site instances have no order
      uint64_t key = EdgeKey(held, site);
      if (graph->edge_index.count(key) != 0) continue;  // edge already known
      // New edge: does the reverse direction already have a path? Then
      // held -> site closes a cycle.
      std::vector<uint32_t> path;
      std::vector<bool> visited(graph->sites.size(), false);
      if (Reaches(*graph, site, held, &path, &visited)) {
        ReportCycleAndAbort(*graph, site, path);
      }
      graph->edge_index.emplace(key, graph->edges.size());
      graph->edges.push_back(Edge{held, site, tls_held});
      graph->out[held].push_back(site);
    }
  }
  tls_held.push_back(site);
}

void LockOrderTryAcquire(uint32_t site) { tls_held.push_back(site); }

void LockOrderRelease(uint32_t site) {
  for (size_t i = tls_held.size(); i-- > 0;) {
    if (tls_held[i] == site) {
      tls_held.erase(tls_held.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void LockOrderResetForTesting() {
  Graph* graph = GlobalGraph();
  std::lock_guard<std::mutex> lock(graph->mu);
  graph->edge_index.clear();
  graph->edges.clear();
  for (auto& successors : graph->out) successors.clear();
}

uint64_t LockOrderEdgeCountForTesting() {
  Graph* graph = GlobalGraph();
  std::lock_guard<std::mutex> lock(graph->mu);
  return graph->edges.size();
}

}  // namespace internal
}  // namespace rased
