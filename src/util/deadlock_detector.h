#ifndef RASED_UTIL_DEADLOCK_DETECTOR_H_
#define RASED_UTIL_DEADLOCK_DETECTOR_H_

#include <cstdint>

/// Debug-build lock-order deadlock detector (DESIGN.md §9.4).
///
/// Every rased::Mutex / rased::SharedMutex constructed while
/// RASED_DEADLOCK_DETECTOR is defined interns its *construction site*
/// (file:line, via std::source_location) into a small global table; all
/// mutexes born at the same site share one node in a global lock-order
/// graph. Each blocking acquisition records, for every lock the acquiring
/// thread already holds, a directed edge held-site -> acquired-site. The
/// first edge that closes a cycle aborts the process with both acquisition
/// stacks: the current thread's held-lock chain and the held-lock chain
/// recorded when the conflicting (reverse-direction) edge was first seen.
/// A cycle in the site graph means two code paths acquire the same pair of
/// lock sites in opposite orders — the classic recipe for a deadlock that
/// only fires under production interleavings. The detector turns it into a
/// deterministic abort the first time both orders have merely *executed*,
/// no unlucky timing required.
///
/// Properties and limitations:
///  - try_lock acquisitions push onto the held stack (their holder
///    constrains later blocking locks) but record no edges themselves: a
///    try-lock can fail but never block, so it cannot complete a deadlock.
///  - Self-edges (site -> same site) are ignored: two instances from one
///    construction site (e.g. two caches) have no expressible order.
///  - The graph only grows. Sites and edges persist for process lifetime,
///    so an inversion is caught even when the two orders run sequentially
///    on one thread, minutes apart.
///  - Overhead is a thread-local vector push plus, per *new* edge, a DFS
///    over a graph whose size is the number of distinct lock sites —
///    acceptable for debug/sanitizer builds, which is the only place the
///    hooks are compiled in (see thread_annotations.h).
namespace rased {
namespace internal {

/// Interns a mutex construction site, returning its stable node id.
/// Thread-safe; idempotent per (file, line).
uint32_t InternLockSite(const char* file, uint32_t line);

/// Records a blocking acquisition of `site` by the current thread: adds a
/// held->site edge per held lock, aborts (after printing both acquisition
/// stacks) if an edge closes a cycle, then pushes `site` onto the
/// thread-local held stack.
void LockOrderAcquire(uint32_t site);

/// Records a successful try_lock: pushes the held stack only (no edges —
/// a try-lock never blocks, so it cannot deadlock).
void LockOrderTryAcquire(uint32_t site);

/// Pops the most recent acquisition of `site` from the held stack.
void LockOrderRelease(uint32_t site);

/// Drops every recorded edge (sites stay interned). Tests that
/// deliberately create an inversion use this to avoid poisoning later
/// acquisitions in the same process.
void LockOrderResetForTesting();

/// Number of edges currently in the order graph (test observability).
uint64_t LockOrderEdgeCountForTesting();

}  // namespace internal
}  // namespace rased

#endif  // RASED_UTIL_DEADLOCK_DETECTOR_H_
