#ifndef RASED_UTIL_CLOCK_H_
#define RASED_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace rased {

/// Monotonic wall-clock stopwatch used by query statistics and benchmarks.
class StopWatch {
 public:
  StopWatch() : start_(Now()) {}

  void Reset() { start_ = Now(); }

  /// Elapsed time since construction/Reset in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Now() -
                                                                 start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static Clock::time_point Now() { return Clock::now(); }

  Clock::time_point start_;
};

}  // namespace rased

#endif  // RASED_UTIL_CLOCK_H_
