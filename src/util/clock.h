#ifndef RASED_UTIL_CLOCK_H_
#define RASED_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rased {

/// Overridable time source. All wall-clock reads in the serving path
/// (StopWatch, query/span timings, HTTP latency histograms) go through
/// NowMicros() below, so tests can install a FakeClock and assert
/// wall-clock metrics exactly.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic time in microseconds. The epoch is arbitrary; only
  /// differences are meaningful.
  virtual int64_t NowMicros() = 0;
};

namespace clock_internal {
/// The test override, or nullptr for the real steady clock. Inline so the
/// header stays dependency-free for hot-path users.
inline std::atomic<Clock*>& OverrideSlot() {
  static std::atomic<Clock*> slot{nullptr};
  return slot;
}
}  // namespace clock_internal

/// Current monotonic time in microseconds (steady_clock unless a test
/// clock is installed).
inline int64_t NowMicros() {
  Clock* override_clock =
      clock_internal::OverrideSlot().load(std::memory_order_acquire);
  if (override_clock != nullptr) return override_clock->NowMicros();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Current wall-clock time in microseconds since the Unix epoch — the only
/// sanctioned calendar-time read in the tree (rased-lint RL014 bans raw
/// system_clock/steady_clock use outside this header). Honors
/// SetClockForTesting: with a FakeClock installed the "wall" time is the
/// fake time interpreted as a Unix offset, so log timestamps and other
/// calendar stamps are deterministic in tests too.
inline int64_t NowWallMicros() {
  Clock* override_clock =
      clock_internal::OverrideSlot().load(std::memory_order_acquire);
  if (override_clock != nullptr) return override_clock->NowMicros();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Installs `clock` as the process time source (nullptr restores the real
/// clock). The caller keeps ownership and must keep the clock alive until
/// reset; intended for tests only.
inline void SetClockForTesting(Clock* clock) {
  clock_internal::OverrideSlot().store(clock, std::memory_order_release);
}

/// Manually advanced clock for deterministic wall-time assertions.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t now_micros = 0) : now_(now_micros) {}

  int64_t NowMicros() override {
    return now_.load(std::memory_order_relaxed);
  }
  void Advance(int64_t micros) {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }
  void Set(int64_t now_micros) {
    now_.store(now_micros, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_;
};

/// Monotonic wall-clock stopwatch used by query statistics and benchmarks.
/// Reads through NowMicros(), so it honors SetClockForTesting.
class StopWatch {
 public:
  StopWatch() : start_(NowMicros()) {}

  void Reset() { start_ = NowMicros(); }

  /// Elapsed time since construction/Reset in microseconds.
  int64_t ElapsedMicros() const { return NowMicros() - start_; }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  int64_t start_;
};

}  // namespace rased

#endif  // RASED_UTIL_CLOCK_H_
