#include "util/config.h"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "util/str_util.h"

namespace rased {

Status Config::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open config file " + path);
  std::string line;
  while (std::getline(in, line)) {
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    size_t eq = sv.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("config line missing '=': " + line);
    }
    Set(Trim(sv.substr(0, eq)), Trim(sv.substr(eq + 1)));
  }
  return Status::OK();
}

Status Config::ParseArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("expected key=value, got '" +
                                     std::string(arg) + "'");
    }
    Set(Trim(arg.substr(0, eq)), Trim(arg.substr(eq + 1)));
  }
  return Status::OK();
}

void Config::Set(std::string_view key, std::string_view value) {
  values_[std::string(key)] = std::string(value);
}

const char* Config::EnvFor(std::string_view key, std::string& storage) {
  storage = "RASED_";
  for (char c : key) {
    storage.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return std::getenv(storage.c_str());
}

bool Config::Has(std::string_view key) const {
  std::string scratch;
  if (EnvFor(key, scratch) != nullptr) return true;
  return values_.find(key) != values_.end();
}

std::string Config::GetString(std::string_view key,
                              std::string_view dflt) const {
  auto it = values_.find(key);
  if (it != values_.end()) return it->second;
  std::string scratch;
  if (const char* env = EnvFor(key, scratch)) return env;
  return std::string(dflt);
}

int64_t Config::GetInt(std::string_view key, int64_t dflt) const {
  std::string v = GetString(key, "");
  if (v.empty()) return dflt;
  auto parsed = ParseInt(v);
  return parsed.ok() ? parsed.value() : dflt;
}

double Config::GetDouble(std::string_view key, double dflt) const {
  std::string v = GetString(key, "");
  if (v.empty()) return dflt;
  auto parsed = ParseDouble(v);
  return parsed.ok() ? parsed.value() : dflt;
}

bool Config::GetBool(std::string_view key, bool dflt) const {
  std::string v = AsciiLower(GetString(key, ""));
  if (v.empty()) return dflt;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace rased
