#ifndef RASED_UTIL_CONFIG_H_
#define RASED_UTIL_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/result.h"

namespace rased {

/// Flat key=value configuration used by examples and benchmark harnesses.
/// Values come from (highest precedence first): explicit Set() calls,
/// process environment variables named RASED_<UPPERCASED_KEY>, and a
/// `key=value`-per-line config file.
class Config {
 public:
  Config() = default;

  /// Loads `key=value` lines; '#' starts a comment. Unknown keys are kept.
  Status LoadFile(const std::string& path);

  /// Parses command-line style overrides of the form key=value.
  Status ParseArgs(int argc, const char* const* argv);

  void Set(std::string_view key, std::string_view value);
  bool Has(std::string_view key) const;

  std::string GetString(std::string_view key, std::string_view dflt) const;
  int64_t GetInt(std::string_view key, int64_t dflt) const;
  double GetDouble(std::string_view key, double dflt) const;
  bool GetBool(std::string_view key, bool dflt) const;

 private:
  /// Env var override lookup, RASED_MY_KEY for key "my_key".
  static const char* EnvFor(std::string_view key, std::string& storage);

  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace rased

#endif  // RASED_UTIL_CONFIG_H_
