#ifndef RASED_UTIL_VARINT_H_
#define RASED_UTIL_VARINT_H_

/// LEB128 varints and zigzag transforms, shared by the cube storage
/// encodings (cube/cube_codec.cc, where they originated) and the
/// self-monitoring metric-snapshot ring (obs/timeseries.cc). Header-only so
/// every layer can use them without a new link dependency.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace rased {

/// At most 10 bytes encode a uint64.
inline constexpr size_t kMaxVarintBytes = 10;

inline void PutVarint(std::vector<unsigned char>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<unsigned char>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<unsigned char>(v));
}

/// Reads one varint from [*p, end). Advances *p past it on success;
/// truncated or overlong input yields Corruption and leaves *p unspecified.
inline Status GetVarint(const unsigned char** p, const unsigned char* end,
                        uint64_t* v) {
  uint64_t result = 0;
  unsigned shift = 0;
  const unsigned char* q = *p;
  for (size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (q == end) return Status::Corruption("truncated varint");
    const unsigned char byte = *q++;
    if (shift == 63 && (byte & 0xFE) != 0) {
      return Status::Corruption("varint overflows 64 bits");
    }
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *p = q;
      *v = result;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::Corruption("overlong varint");
}

/// Zigzag maps a mod-2^64 difference to an unsigned value whose varint
/// length tracks the delta's magnitude (small deltas of either sign stay
/// short).
inline uint64_t ZigzagEncode(uint64_t delta) {
  const int64_t s = static_cast<int64_t>(delta);
  return (static_cast<uint64_t>(s) << 1) ^ static_cast<uint64_t>(s >> 63);
}

inline uint64_t ZigzagDecode(uint64_t z) { return (z >> 1) ^ (~(z & 1) + 1); }

}  // namespace rased

#endif  // RASED_UTIL_VARINT_H_
