#include "util/str_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rased {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args2);
    out.resize(static_cast<size_t>(n));
  }
  va_end(args2);
  return out;
}

Result<int64_t> ParseInt(std::string_view text) {
  std::string buf(Trim(text));
  if (buf.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

Result<uint64_t> ParseUint(std::string_view text) {
  std::string buf(Trim(text));
  if (buf.empty() || buf[0] == '-') {
    return Status::InvalidArgument("not an unsigned integer: '" + buf + "'");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an unsigned integer: '" + buf + "'");
  }
  return static_cast<uint64_t>(v);
}

Result<double> ParseDouble(std::string_view text) {
  std::string buf(Trim(text));
  if (buf.empty()) return Status::InvalidArgument("empty double");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return v;
}

std::string WithThousandsSep(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string AsciiLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace rased
