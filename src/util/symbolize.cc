#include "util/symbolize.h"

#include <cstdlib>

#if defined(__linux__) || defined(__APPLE__)
#include <cxxabi.h>
#include <dlfcn.h>
#define RASED_HAVE_DLADDR 1
#endif

#include "util/str_util.h"

namespace rased {

std::string SymbolizePc(uintptr_t pc) {
#if RASED_HAVE_DLADDR
  Dl_info info{};
  // The sample PC is a return address, i.e. one past the call; subtract
  // one byte so calls at the end of a function do not resolve to the
  // function that happens to follow it in the image.
  if (dladdr(reinterpret_cast<void*>(pc - 1), &info) != 0 &&
      info.dli_sname != nullptr) {
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) {
      std::string name(demangled);
      std::free(demangled);
      return name;
    }
    if (demangled != nullptr) std::free(demangled);
    return info.dli_sname;
  }
#endif
  return StrFormat("0x%llx", static_cast<unsigned long long>(pc));
}

}  // namespace rased
