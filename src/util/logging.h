#ifndef RASED_UTIL_LOGGING_H_
#define RASED_UTIL_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rased {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are suppressed.
/// Default is kInfo; override with environment variable RASED_LOG_LEVEL
/// (0=debug .. 3=error) or SetLogLevel().
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Request-scoped trace-id correlation. While a thread's trace id is
/// nonzero, every log line it emits carries a trailing ` trace=<16 hex>`
/// inside the bracketed prefix, so slow-query WARNs, access logs, and the
/// /api/trace ring join on one key. Installed/restored per request by
/// obs/request_context.h ScopedRequestContext (which is the API callers
/// should use); 0 means "no request context". The id lives in a
/// thread-local, so it must be re-installed on any worker thread a request
/// fans out to.
void SetThreadLogTraceId(uint64_t trace_id);
uint64_t GetThreadLogTraceId();

namespace internal_logging {

/// Stream-style log sink that emits one line to stderr on destruction.
///
/// Line format (stable — parsed by log-shipping configs; correlate the
/// thread id with /api/trace span output):
///
///   [<ISO-8601 UTC, ms precision, Z suffix> <LEVEL> <thread-id>
///    <basename>:<line>[ trace=<16-hex>]] <message>
///                                       (one line; wrapped here for width)
///
/// e.g. [2026-08-07T09:14:03.218Z WARN 139637242332736 pager.cc:87
///       trace=00f1d2c3b4a59687] ...
/// LEVEL is one of DEBUG/INFO/WARN/ERROR (FATAL for aborting checks);
/// <thread-id> is the platform thread id as printed by std::thread::id.
/// The ` trace=` field appears only when the emitting thread has a nonzero
/// trace id installed (SetThreadLogTraceId above). The timestamp reads
/// util/clock.h NowWallMicros, so a FakeClock makes it deterministic.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }
  bool enabled() const { return enabled_; }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting the message.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Swallows a stream expression in the ternary log macros below, making
/// them expression-shaped (no dangling-else hazard at call sites).
struct Voidify {
  template <typename T>
  void operator&(T&&) {}
};

}  // namespace internal_logging

#define RASED_LOG(level)                                                 \
  (::rased::LogLevel::k##level < ::rased::GetLogLevel())                 \
      ? (void)0                                                          \
      : ::rased::internal_logging::Voidify() &                           \
            ::rased::internal_logging::LogMessage(                       \
                ::rased::LogLevel::k##level, __FILE__, __LINE__)         \
                .stream()

/// RASED_CHECK(cond) aborts with a diagnostic when `cond` is false.
/// Used for programmer-error invariants, never for recoverable conditions.
#define RASED_CHECK(cond)                                                \
  (cond) ? (void)0                                                       \
         : ::rased::internal_logging::Voidify() &                        \
               ::rased::internal_logging::FatalLogMessage(__FILE__,      \
                                                          __LINE__)      \
                       .stream()                                         \
                   << "Check failed: " #cond " "

#ifndef NDEBUG
#define RASED_DCHECK(cond) RASED_CHECK(cond)
#else
#define RASED_DCHECK(cond)                          \
  true ? (void)0                                    \
       : ::rased::internal_logging::Voidify() &     \
             ::rased::internal_logging::NullStream() << !(cond)
#endif

}  // namespace rased

#endif  // RASED_UTIL_LOGGING_H_
