#ifndef RASED_UTIL_RANDOM_H_
#define RASED_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rased {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). All stochastic behaviour in RASED — the synthetic planet,
/// workload generators, and benchmark query mixes — flows through this class
/// so that every experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedu);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Poisson-distributed count with the given mean (mean >= 0).
  /// Uses Knuth's method for small means and a normal approximation above
  /// 64 to stay O(1) for the large per-day update volumes.
  uint64_t Poisson(double mean);

  /// Standard normal variate (Box–Muller).
  double Gaussian();

  /// Zipf-like rank in [0, n): rank r is drawn with probability
  /// proportional to 1/(r+1)^theta. Used to skew update volume toward a few
  /// very active countries, matching the shape of OSM editing activity.
  uint64_t Zipf(uint64_t n, double theta);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace rased

#endif  // RASED_UTIL_RANDOM_H_
