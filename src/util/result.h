#ifndef RASED_UTIL_RESULT_H_
#define RASED_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace rased {

/// Result<T> carries either a value of type T or a non-OK Status.
///
/// Usage:
///   Result<DataCube> r = LoadCube(id);
///   if (!r.ok()) return r.status();
///   DataCube cube = std::move(r).value();
///
/// Result is [[nodiscard]] like Status: ignoring a returned Result (and
/// thus its error) is a compile warning, an error under RASED_WERROR.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK Status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if this Result is an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of an expression returning Result<T> to `lhs`, or
/// returns the error Status from the enclosing function. `lhs` may be a
/// declaration (RASED_ASSIGN_OR_RETURN(int64_t v, ParseInt(s))), so the
/// macro expands to a statement sequence rather than a do/while block.
#define RASED_ASSIGN_OR_RETURN(lhs, expr) \
  RASED_ASSIGN_OR_RETURN_IMPL_(           \
      RASED_MACRO_CONCAT_(_rased_result_, __LINE__), lhs, expr)

#define RASED_ASSIGN_OR_RETURN_IMPL_(res, lhs, expr) \
  auto res = (expr);                                 \
  if (!res.ok()) return res.status();                \
  lhs = std::move(res).value()

#define RASED_MACRO_CONCAT_(a, b) RASED_MACRO_CONCAT_INNER_(a, b)
#define RASED_MACRO_CONCAT_INNER_(a, b) a##b

}  // namespace rased

#endif  // RASED_UTIL_RESULT_H_
