#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace rased {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  RASED_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  RASED_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth: multiply uniforms until falling below e^-mean.
    double l = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation, adequate for workload volumes.
  double v = mean + std::sqrt(mean) * Gaussian();
  return v <= 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = NextDouble();
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586;
  spare_gaussian_ = mag * std::sin(kTwoPi * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(kTwoPi * u2);
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  RASED_DCHECK(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF on the harmonic-like weights via bisection over a cached-free
  // closed-form approximation: draw u, solve sum_{r<k} 1/(r+1)^theta ~ u*H_n.
  // For workload generation precision is unimportant; we use the standard
  // approximation with the continuous integral of x^-theta.
  double u = NextDouble();
  if (theta == 1.0) theta = 1.0001;  // avoid the log special case
  double one_minus = 1.0 - theta;
  double hn = (std::pow(static_cast<double>(n), one_minus) - 1.0) / one_minus;
  // x lands in [1, n]; item ranks are 0-based.
  double x = std::pow(u * hn * one_minus + 1.0, 1.0 / one_minus);
  if (x < 1.0) x = 1.0;
  uint64_t r = static_cast<uint64_t>(x - 1.0);
  if (r >= n) r = n - 1;
  return r;
}

}  // namespace rased
