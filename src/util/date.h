#ifndef RASED_UTIL_DATE_H_
#define RASED_UTIL_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace rased {

/// A civil (proleptic Gregorian) calendar date, stored as days since the
/// Unix epoch 1970-01-01. Dates are the unit of RASED's temporal index:
/// every daily cube is keyed by one Date, and the week/month/year rollup
/// boundaries are derived from it.
///
/// RASED's "weeks" follow the paper's structure (Section VI-A): a month is
/// the aggregate of exactly four weekly cubes plus zero to three daily
/// stragglers. Week w (0..3) of a month covers days 7w+1 .. 7w+7; days
/// 29..31 belong to the month directly and never to a week.
class Date {
 public:
  /// Constructs the epoch date 1970-01-01.
  Date() : days_(0) {}

  /// Constructs from a days-since-epoch count (may be negative).
  static Date FromDays(int32_t days) { return Date(days); }

  /// Constructs from civil year/month/day. Aborts if the field values do
  /// not form a valid date; use Parse() for untrusted input.
  static Date FromYmd(int year, int month, int day);

  /// Parses "YYYY-MM-DD". Returns InvalidArgument on malformed input.
  static Result<Date> Parse(std::string_view text);

  int32_t days_since_epoch() const { return days_; }

  int year() const;
  int month() const;  // 1..12
  int day() const;    // 1..31

  /// Day of week, 0 = Monday .. 6 = Sunday.
  int weekday() const;

  /// Number of days in this date's month (28..31).
  int days_in_month() const;

  bool is_month_start() const { return day() == 1; }
  bool is_month_end() const { return day() == days_in_month(); }
  bool is_year_start() const { return month() == 1 && day() == 1; }
  bool is_year_end() const { return month() == 12 && day() == 31; }

  /// Index of this date's week within its month: 0..3 for days 1..28,
  /// or -1 for the straggler days 29..31 which belong to no week.
  int week_of_month() const {
    int d = day();
    return d <= 28 ? (d - 1) / 7 : -1;
  }

  /// True when this is the last day of a paper-style week (day 7/14/21/28).
  bool is_week_end() const {
    int d = day();
    return d == 7 || d == 14 || d == 21 || d == 28;
  }

  /// First/last day of the week containing this date. Aborts if this date
  /// is a straggler day (week_of_month() == -1).
  Date week_start() const;
  Date week_end() const;

  Date month_start() const { return FromYmd(year(), month(), 1); }
  Date month_end() const { return FromYmd(year(), month(), days_in_month()); }
  Date year_start() const { return FromYmd(year(), 1, 1); }
  Date year_end() const { return FromYmd(year(), 12, 31); }

  /// Date shifted by `n` days (n may be negative).
  Date AddDays(int n) const { return Date(days_ + n); }
  Date AddMonths(int n) const;
  Date AddYears(int n) const;

  Date next() const { return AddDays(1); }
  Date prev() const { return AddDays(-1); }

  /// "YYYY-MM-DD".
  std::string ToString() const;

  friend bool operator==(Date a, Date b) { return a.days_ == b.days_; }
  friend bool operator!=(Date a, Date b) { return a.days_ != b.days_; }
  friend bool operator<(Date a, Date b) { return a.days_ < b.days_; }
  friend bool operator<=(Date a, Date b) { return a.days_ <= b.days_; }
  friend bool operator>(Date a, Date b) { return a.days_ > b.days_; }
  friend bool operator>=(Date a, Date b) { return a.days_ >= b.days_; }

  /// Days from a to b (positive when b is later).
  friend int32_t operator-(Date b, Date a) { return b.days_ - a.days_; }

 private:
  explicit Date(int32_t days) : days_(days) {}

  int32_t days_;
};

/// Closed date interval [first, last]. Empty ranges are represented with
/// first > last.
struct DateRange {
  Date first;
  Date last;

  DateRange() : first(Date::FromDays(1)), last(Date::FromDays(0)) {}
  DateRange(Date f, Date l) : first(f), last(l) {}

  bool empty() const { return first > last; }
  int32_t num_days() const { return empty() ? 0 : (last - first) + 1; }
  bool Contains(Date d) const { return first <= d && d <= last; }
  bool Contains(const DateRange& other) const {
    return other.empty() || (first <= other.first && other.last <= last);
  }
  bool Overlaps(const DateRange& other) const {
    return !empty() && !other.empty() && first <= other.last &&
           other.first <= last;
  }

  /// Intersection of the two ranges (possibly empty).
  DateRange Intersect(const DateRange& other) const;

  std::string ToString() const;

  friend bool operator==(const DateRange& a, const DateRange& b) {
    return (a.empty() && b.empty()) ||
           (a.first == b.first && a.last == b.last);
  }
};

}  // namespace rased

#endif  // RASED_UTIL_DATE_H_
