#ifndef RASED_UTIL_THREAD_ANNOTATIONS_H_
#define RASED_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#ifdef RASED_DEADLOCK_DETECTOR
#include <cstdint>
#include <source_location>

#include "util/deadlock_detector.h"
#endif

/// Clang thread-safety annotations (-Wthread-safety) plus an annotated
/// mutex wrapper, following the abseil/LLVM convention. Under Clang the
/// macros expand to static-analysis attributes that make the locking
/// discipline of every annotated class machine-checked at compile time;
/// under other compilers they expand to nothing and the wrapper behaves
/// exactly like std::mutex.
///
/// Usage:
///   class Cache {
///     ...
///    private:
///     mutable Mutex mu_;
///     std::unordered_map<Key, Entry> entries_ RASED_GUARDED_BY(mu_);
///   };
///
///   void Cache::Insert(...) {
///     MutexLock lock(&mu_);   // RELEASE on scope exit
///     entries_.emplace(...);  // checked: mu_ is held
///   }

#if defined(__clang__) && (!defined(SWIG))
#define RASED_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RASED_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Data members: protected by the given capability (mutex).
#define RASED_GUARDED_BY(x) RASED_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer members: the *pointed-to* data is protected by the capability
/// (the pointer itself may be read freely).
#define RASED_PT_GUARDED_BY(x) RASED_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Functions: caller must hold / must not hold the capability.
#define RASED_REQUIRES(...) \
  RASED_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define RASED_REQUIRES_SHARED(...) \
  RASED_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define RASED_EXCLUDES(...) RASED_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Functions: acquire/release the capability as a side effect.
#define RASED_ACQUIRE(...) \
  RASED_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RASED_ACQUIRE_SHARED(...) \
  RASED_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RASED_RELEASE(...) \
  RASED_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RASED_RELEASE_SHARED(...) \
  RASED_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RASED_TRY_ACQUIRE(...) \
  RASED_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define RASED_TRY_ACQUIRE_SHARED(...) \
  RASED_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Lock ordering: this mutex must be acquired after the listed ones.
#define RASED_ACQUIRED_AFTER(...) \
  RASED_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define RASED_ACQUIRED_BEFORE(...) \
  RASED_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Types: RAII lock holders / capability types.
#define RASED_CAPABILITY(x) RASED_THREAD_ANNOTATION_(capability(x))
#define RASED_SCOPED_CAPABILITY RASED_THREAD_ANNOTATION_(scoped_lockable)

/// Returns a reference to the guarding mutex (lets callers lock it).
#define RASED_RETURN_CAPABILITY(x) RASED_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function checks the discipline dynamically (e.g.
/// destructors, or init paths that provably run single-threaded).
#define RASED_NO_THREAD_SAFETY_ANALYSIS \
  RASED_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Lifecycle marker for members of internally-synchronized classes that
/// carry no GUARDED_BY because they are written only during a
/// single-threaded phase — construction / Open / Start before worker
/// threads exist, or teardown after they are joined — and are read-only
/// whenever concurrent access is possible. Expands to nothing; rased-lint
/// (rule RL002 guarded-field, DESIGN.md §9) accepts it in place of an
/// annotation. Prefer RASED_GUARDED_BY whenever the member is written
/// while threads are live.
#define RASED_CONST_AFTER_INIT

namespace rased {

/// Base for Mutex/SharedMutex holding the debug-build deadlock-detector
/// hooks (DESIGN.md §9.4). When RASED_DEADLOCK_DETECTOR is defined (the
/// default in sanitizer builds, see CMakeLists.txt), every lock interns
/// its construction site and each blocking acquisition records a
/// lock-order edge; an edge closing a cycle aborts with both acquisition
/// stacks. In release builds the hooks compile to nothing.
class LockOrderTracked {
 protected:
#ifdef RASED_DEADLOCK_DETECTOR
  LockOrderTracked(const std::source_location& site)
      : site_(internal::InternLockSite(site.file_name(), site.line())) {}
  void DetectorAcquire() { internal::LockOrderAcquire(site_); }
  void DetectorTryAcquired() { internal::LockOrderTryAcquire(site_); }
  void DetectorRelease() { internal::LockOrderRelease(site_); }

 private:
  const uint32_t site_;
#else
  LockOrderTracked() = default;
  static void DetectorAcquire() {}
  static void DetectorTryAcquired() {}
  static void DetectorRelease() {}
#endif
};

/// std::mutex with thread-safety-analysis capability attributes. Drop-in:
/// satisfies BasicLockable/Lockable, so std::unique_lock<...> etc. still
/// work (though MutexLock below is the annotated RAII holder the analysis
/// understands).
class RASED_CAPABILITY("mutex") Mutex : private LockOrderTracked {
 public:
#ifdef RASED_DEADLOCK_DETECTOR
  Mutex(std::source_location site = std::source_location::current())
      : LockOrderTracked(site) {}
#else
  Mutex() = default;
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RASED_ACQUIRE() {
    DetectorAcquire();
    mu_.lock();
  }
  void unlock() RASED_RELEASE() {
    mu_.unlock();
    DetectorRelease();
  }
  bool try_lock() RASED_TRY_ACQUIRE(true) {
    bool acquired = mu_.try_lock();
    if (acquired) DetectorTryAcquired();
    return acquired;
  }

  /// The wrapped std::mutex, for interop with std::condition_variable via
  /// CondVar below.
  std::mutex& native() { return mu_; }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock holder the analysis understands (std::lock_guard over a
/// Mutex would lose the annotations under older clangs).
class RASED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RASED_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RASED_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// std::shared_mutex with thread-safety-analysis capability attributes:
/// a reader-writer lock for read-mostly shared state (the query read path
/// holds it shared, ingestion holds it exclusive). Satisfies SharedLockable
/// in addition to Lockable, but prefer the annotated RAII holders below.
class RASED_CAPABILITY("shared_mutex") SharedMutex : private LockOrderTracked {
 public:
#ifdef RASED_DEADLOCK_DETECTOR
  SharedMutex(std::source_location site = std::source_location::current())
      : LockOrderTracked(site) {}
#else
  SharedMutex() = default;
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  // Exclusive (writer) side.
  void lock() RASED_ACQUIRE() {
    DetectorAcquire();
    mu_.lock();
  }
  void unlock() RASED_RELEASE() {
    mu_.unlock();
    DetectorRelease();
  }
  bool try_lock() RASED_TRY_ACQUIRE(true) {
    bool acquired = mu_.try_lock();
    if (acquired) DetectorTryAcquired();
    return acquired;
  }

  // Shared (reader) side. Shared acquisitions record lock-order edges
  // like exclusive ones: a reader blocking on a writer participates in
  // reader-writer deadlock cycles all the same.
  void lock_shared() RASED_ACQUIRE_SHARED() {
    DetectorAcquire();
    mu_.lock_shared();
  }
  void unlock_shared() RASED_RELEASE_SHARED() {
    mu_.unlock_shared();
    DetectorRelease();
  }
  bool try_lock_shared() RASED_TRY_ACQUIRE_SHARED(true) {
    bool acquired = mu_.try_lock_shared();
    if (acquired) DetectorTryAcquired();
    return acquired;
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive holder of a SharedMutex (the write side).
class RASED_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) RASED_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~WriterMutexLock() RASED_RELEASE() { mu_->unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared holder of a SharedMutex (the read side). Any number of
/// readers hold it concurrently; they exclude only writers.
class RASED_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) RASED_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->lock_shared();
  }
  ~ReaderMutexLock() RASED_RELEASE() { mu_->unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable paired with rased::Mutex. Wait() is annotated as
/// requiring the mutex (it is held again when Wait returns).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) RASED_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) RASED_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rased

#endif  // RASED_UTIL_THREAD_ANNOTATIONS_H_
