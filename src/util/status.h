#ifndef RASED_UTIL_STATUS_H_
#define RASED_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace rased {

/// Status is the error-handling currency of the RASED public API.
///
/// Every fallible operation returns either a Status or a Result<T>
/// (see util/result.h). Exceptions are never thrown across module
/// boundaries. The design follows the RocksDB/Arrow convention: a small
/// enum of broad error classes plus a free-form message for diagnostics.
///
/// Status is [[nodiscard]]: a call site that drops a returned Status on
/// the floor is a compile warning (an error under RASED_WERROR). Handle
/// it, propagate it with RASED_RETURN_IF_ERROR, or log it explicitly.
class [[nodiscard]] Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kInvalidArgument = 2,
    kIOError = 3,
    kCorruption = 4,
    kNotSupported = 5,
    kOutOfRange = 6,
    kAlreadyExists = 7,
    kInternal = 8,
    kFailedPrecondition = 9,
  };

  /// Default-constructed Status is OK.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  // Factory functions, one per error class.
  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "Code: message" string, "OK" for success.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// Evaluates an expression returning Status; returns it from the enclosing
/// function if it is not OK.
#define RASED_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::rased::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace rased

#endif  // RASED_UTIL_STATUS_H_
