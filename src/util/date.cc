#include "util/date.h"

#include <cstdio>

#include "util/logging.h"

namespace rased {

namespace {

// Civil-from-days and days-from-civil follow Howard Hinnant's public-domain
// chrono-compatible algorithms (http://howardhinnant.github.io/date_algorithms.html).

// Days since 1970-01-01 for a civil date.
int32_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int>(doe) - 719468;
}

struct Civil {
  int year;
  int month;
  int day;
};

Civil CivilFromDays(int32_t z) {
  z += 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;                  // [1, 12]
  return Civil{y + (m <= 2), static_cast<int>(m), static_cast<int>(d)};
}

bool IsLeap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int DaysInMonthOf(int y, int m) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

Date Date::FromYmd(int year, int month, int day) {
  RASED_CHECK(month >= 1 && month <= 12) << "month=" << month;
  RASED_CHECK(day >= 1 && day <= DaysInMonthOf(year, month))
      << year << "-" << month << "-" << day;
  return Date(DaysFromCivil(year, month, day));
}

Result<Date> Date::Parse(std::string_view text) {
  int y = 0, m = 0, d = 0;
  char tail = '\0';
  // Require exactly "YYYY-MM-DD"; %c tail detects trailing junk.
  std::string buf(text);
  int n = std::sscanf(buf.c_str(), "%d-%d-%d%c", &y, &m, &d, &tail);
  if (n != 3 || buf.size() < 8) {
    return Status::InvalidArgument("expected YYYY-MM-DD, got '" + buf + "'");
  }
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonthOf(y, m)) {
    return Status::InvalidArgument("invalid calendar date '" + buf + "'");
  }
  return Date(DaysFromCivil(y, m, d));
}

int Date::year() const { return CivilFromDays(days_).year; }
int Date::month() const { return CivilFromDays(days_).month; }
int Date::day() const { return CivilFromDays(days_).day; }

int Date::weekday() const {
  // 1970-01-01 was a Thursday (index 3 with Monday = 0).
  int32_t w = (days_ + 3) % 7;
  return w < 0 ? w + 7 : w;
}

int Date::days_in_month() const {
  Civil c = CivilFromDays(days_);
  return DaysInMonthOf(c.year, c.month);
}

Date Date::week_start() const {
  int w = week_of_month();
  RASED_CHECK(w >= 0) << "straggler day " << ToString() << " has no week";
  Civil c = CivilFromDays(days_);
  return FromYmd(c.year, c.month, 7 * w + 1);
}

Date Date::week_end() const {
  int w = week_of_month();
  RASED_CHECK(w >= 0) << "straggler day " << ToString() << " has no week";
  Civil c = CivilFromDays(days_);
  return FromYmd(c.year, c.month, 7 * w + 7);
}

Date Date::AddMonths(int n) const {
  Civil c = CivilFromDays(days_);
  int total = (c.year * 12 + (c.month - 1)) + n;
  int y = total >= 0 ? total / 12 : (total - 11) / 12;
  int m = total - y * 12 + 1;
  int d = c.day;
  int dim = DaysInMonthOf(y, m);
  if (d > dim) d = dim;
  return FromYmd(y, m, d);
}

Date Date::AddYears(int n) const { return AddMonths(12 * n); }

std::string Date::ToString() const {
  Civil c = CivilFromDays(days_);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

DateRange DateRange::Intersect(const DateRange& other) const {
  DateRange r(first > other.first ? first : other.first,
              last < other.last ? last : other.last);
  return r;
}

std::string DateRange::ToString() const {
  if (empty()) return "[empty]";
  return "[" + first.ToString() + " .. " + last.ToString() + "]";
}

}  // namespace rased
