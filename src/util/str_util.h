#ifndef RASED_UTIL_STR_UTIL_H_
#define RASED_UTIL_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace rased {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a base-10 signed/unsigned integer or double; the whole string must
/// be consumed. Returns InvalidArgument otherwise.
Result<int64_t> ParseInt(std::string_view text);
Result<uint64_t> ParseUint(std::string_view text);
Result<double> ParseDouble(std::string_view text);

/// Thousands-separated rendering of a count, e.g. 9142858 -> "9,142,858"
/// (used by the dashboard table renderer to match the paper's Fig. 3).
std::string WithThousandsSep(uint64_t value);

/// Lower-cases ASCII characters.
std::string AsciiLower(std::string_view text);

}  // namespace rased

#endif  // RASED_UTIL_STR_UTIL_H_
