#ifndef RASED_COLLECT_MONTHLY_CRAWLER_H_
#define RASED_COLLECT_MONTHLY_CRAWLER_H_

#include <optional>
#include <string_view>
#include <vector>

#include "collect/changeset_store.h"
#include "collect/crawl_stats.h"
#include "collect/update_record.h"
#include "geo/world_map.h"
#include "osm/element.h"
#include "osm/road_types.h"
#include "util/date.h"

namespace rased {

/// The monthly crawler (Section V): walks a full-history file, compares
/// every two consecutive versions of an element, and classifies each update
/// as create / delete / geometry update / metadata update — the information
/// diffs cannot provide. Its output replaces the month's provisional daily
/// UpdateLists (see TemporalIndex::RebuildMonth). Like the daily crawl,
/// this is pure staging: the month's replacement cubes are written to
/// fresh pages off to the side and swapped in as one atomic catalog
/// publication, so queries either see the whole reclassified month or
/// none of it — never a mix.
///
/// Full-history files store all versions of one element consecutively in
/// ascending version order, which is what the pairwise comparison relies
/// on.
class MonthlyCrawler {
 public:
  MonthlyCrawler(const WorldMap* world, RoadTypeTable* road_types)
      : world_(world), road_types_(road_types) {}

  /// Crawls a full-history document, emitting one tuple per element
  /// version whose date falls inside `window` (pass an unbounded range to
  /// take everything). Version 1 is a create; an invisible version is a
  /// delete; otherwise the version is compared with its predecessor:
  /// changed coordinates / node list / member list => geometry update,
  /// changed tags only => metadata update.
  Status CrawlHistory(std::string_view history_xml,
                      const ChangesetStore& changesets,
                      const DateRange& window,
                      std::vector<UpdateRecord>* out);

  const CrawlStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CrawlStats{}; }

 private:
  void Emit(const Element& current, const Element* previous,
            const ChangesetStore& changesets, const DateRange& window,
            std::vector<UpdateRecord>* out);

  const WorldMap* world_;
  RoadTypeTable* road_types_;
  CrawlStats stats_;
};

}  // namespace rased

#endif  // RASED_COLLECT_MONTHLY_CRAWLER_H_
