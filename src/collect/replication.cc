#include "collect/replication.h"

#include "io/env.h"
#include "util/str_util.h"

namespace rased {

Result<ReplicationState> ReplicationState::Parse(std::string_view contents) {
  ReplicationState state;
  bool have_sequence = false;
  for (const std::string& raw_line : Split(contents, '\n')) {
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::Corruption("bad state line: " + std::string(line));
    }
    std::string key(Trim(line.substr(0, eq)));
    std::string value(Trim(line.substr(eq + 1)));
    if (key == "sequenceNumber") {
      RASED_ASSIGN_OR_RETURN(state.sequence, ParseUint(value));
      have_sequence = true;
    } else if (key == "timestamp") {
      // The real files escape colons: 2021-09-01T00\:00\:00Z.
      std::string unescaped;
      for (size_t i = 0; i < value.size(); ++i) {
        if (value[i] == '\\' && i + 1 < value.size()) continue;
        unescaped.push_back(value[i]);
      }
      RASED_ASSIGN_OR_RETURN(state.timestamp, OsmTimestamp::Parse(unescaped));
    }
    // Unknown keys (txnMax etc.) are ignored, like osmosis does.
  }
  if (!have_sequence) {
    return Status::Corruption("state file missing sequenceNumber");
  }
  return state;
}

std::string ReplicationState::Format() const {
  // Colons escaped as in the planet server's files.
  std::string ts = timestamp.ToString();
  std::string escaped;
  for (char c : ts) {
    if (c == ':') escaped.push_back('\\');
    escaped.push_back(c);
  }
  return StrFormat("sequenceNumber=%llu\ntimestamp=%s\n",
                   static_cast<unsigned long long>(sequence),
                   escaped.c_str());
}

std::string ReplicationDirectory::DiffPath(uint64_t sequence) const {
  return env::JoinPath(dir_, StrFormat("%09llu.osc",
                                       static_cast<unsigned long long>(
                                           sequence)));
}

std::string ReplicationDirectory::StatePath(uint64_t sequence) const {
  return env::JoinPath(dir_, StrFormat("%09llu.state.txt",
                                       static_cast<unsigned long long>(
                                           sequence)));
}

Result<ReplicationState> ReplicationDirectory::LatestState() const {
  RASED_ASSIGN_OR_RETURN(std::string contents,
                         env::ReadFile(env::JoinPath(dir_, "state.txt")));
  return ReplicationState::Parse(contents);
}

Result<ReplicationState> ReplicationDirectory::StateOf(
    uint64_t sequence) const {
  RASED_ASSIGN_OR_RETURN(std::string contents,
                         env::ReadFile(StatePath(sequence)));
  return ReplicationState::Parse(contents);
}

std::string ReplicationDirectory::ChangesetsPath(uint64_t sequence) const {
  return env::JoinPath(dir_, StrFormat("%09llu.changesets.xml",
                                       static_cast<unsigned long long>(
                                           sequence)));
}

Result<std::string> ReplicationDirectory::ReadDiff(uint64_t sequence) const {
  return env::ReadFile(DiffPath(sequence));
}

Result<std::string> ReplicationDirectory::ReadChangesets(
    uint64_t sequence) const {
  if (!env::FileExists(ChangesetsPath(sequence))) {
    return std::string("<osm version=\"0.6\"/>");
  }
  return env::ReadFile(ChangesetsPath(sequence));
}

Status ReplicationDirectory::Publish(uint64_t sequence,
                                     std::string_view osc_xml,
                                     const OsmTimestamp& timestamp,
                                     std::string_view changesets_xml) {
  RASED_RETURN_IF_ERROR(env::CreateDirs(dir_));
  auto latest = LatestState();
  if (latest.ok() && latest.value().sequence >= sequence) {
    return Status::InvalidArgument(
        StrFormat("sequence %llu already published (feed is at %llu)",
                  static_cast<unsigned long long>(sequence),
                  static_cast<unsigned long long>(latest.value().sequence)));
  }
  ReplicationState state;
  state.sequence = sequence;
  state.timestamp = timestamp;
  RASED_RETURN_IF_ERROR(env::WriteFile(DiffPath(sequence), osc_xml));
  if (!changesets_xml.empty()) {
    RASED_RETURN_IF_ERROR(
        env::WriteFile(ChangesetsPath(sequence), changesets_xml));
  }
  RASED_RETURN_IF_ERROR(
      env::WriteFile(StatePath(sequence), state.Format()));
  // The top-level state advances last, atomically: consumers never see a
  // sequence they cannot fetch.
  return env::WriteFileAtomic(env::JoinPath(dir_, "state.txt"),
                              state.Format());
}

Result<uint64_t> ReplicationCursor::LastApplied() const {
  MutexLock lock(&mu_);
  return LastAppliedLocked();
}

Result<uint64_t> ReplicationCursor::LastAppliedLocked() const {
  if (!env::FileExists(cursor_path_)) return static_cast<uint64_t>(0);
  RASED_ASSIGN_OR_RETURN(std::string contents, env::ReadFile(cursor_path_));
  return ParseUint(Trim(contents));
}

Status ReplicationCursor::Store(uint64_t sequence) const {
  return env::WriteFileAtomic(cursor_path_, std::to_string(sequence));
}

Result<uint64_t> ReplicationCursor::CatchUp(const ReplicationDirectory& feed,
                                            const ApplyFn& apply) {
  // Hold the cursor lock for the whole pass: two concurrent CatchUps on
  // the same cursor would otherwise both read sequence N and apply N+1
  // twice.
  MutexLock lock(&mu_);
  RASED_ASSIGN_OR_RETURN(uint64_t applied, LastAppliedLocked());
  auto latest = feed.LatestState();
  if (!latest.ok()) {
    if (latest.status().IsIOError()) return static_cast<uint64_t>(0);  // empty feed
    return latest.status();
  }
  uint64_t count = 0;
  for (uint64_t seq = applied + 1; seq <= latest.value().sequence; ++seq) {
    auto diff = feed.ReadDiff(seq);
    if (!diff.ok()) return diff.status();
    RASED_RETURN_IF_ERROR(apply(seq, diff.value()));
    RASED_RETURN_IF_ERROR(Store(seq));
    ++count;
  }
  return count;
}

}  // namespace rased
