#include "collect/update_record.h"

#include <cstring>

#include "util/str_util.h"

namespace rased {

std::string_view UpdateTypeName(UpdateType type) {
  switch (type) {
    case UpdateType::kNew:
      return "new";
    case UpdateType::kDelete:
      return "delete";
    case UpdateType::kGeometry:
      return "geometry";
    case UpdateType::kMetadata:
      return "metadata";
  }
  return "?";
}

namespace {

template <typename T>
void Put(unsigned char*& p, T value) {
  std::memcpy(p, &value, sizeof(T));
  p += sizeof(T);
}

template <typename T>
T Get(const unsigned char*& p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  p += sizeof(T);
  return value;
}

}  // namespace

void UpdateRecord::EncodeTo(unsigned char* out) const {
  unsigned char* p = out;
  Put<uint8_t>(p, static_cast<uint8_t>(element_type));
  Put<int32_t>(p, date.days_since_epoch());
  Put<uint16_t>(p, country);
  Put<double>(p, lat);
  Put<double>(p, lon);
  Put<uint16_t>(p, road_type);
  Put<uint8_t>(p, static_cast<uint8_t>(update_type));
  Put<uint64_t>(p, changeset_id);
}

UpdateRecord UpdateRecord::DecodeFrom(const unsigned char* in) {
  const unsigned char* p = in;
  UpdateRecord r;
  r.element_type = static_cast<ElementType>(Get<uint8_t>(p));
  r.date = Date::FromDays(Get<int32_t>(p));
  r.country = Get<uint16_t>(p);
  r.lat = Get<double>(p);
  r.lon = Get<double>(p);
  r.road_type = Get<uint16_t>(p);
  r.update_type = static_cast<UpdateType>(Get<uint8_t>(p));
  r.changeset_id = Get<uint64_t>(p);
  return r;
}

std::string UpdateRecord::ToString() const {
  return StrFormat(
      "<%s %s country=%u (%.5f,%.5f) road=%u %s cs=%llu>",
      std::string(ElementTypeName(element_type)).c_str(),
      date.ToString().c_str(), country, lat, lon, road_type,
      std::string(UpdateTypeName(update_type)).c_str(),
      static_cast<unsigned long long>(changeset_id));
}

bool operator==(const UpdateRecord& a, const UpdateRecord& b) {
  return a.element_type == b.element_type && a.date == b.date &&
         a.country == b.country && a.lat == b.lat && a.lon == b.lon &&
         a.road_type == b.road_type && a.update_type == b.update_type &&
         a.changeset_id == b.changeset_id;
}

}  // namespace rased
