#ifndef RASED_COLLECT_UPDATE_LIST_FILE_H_
#define RASED_COLLECT_UPDATE_LIST_FILE_H_

#include <functional>
#include <string>
#include <vector>

#include "collect/update_record.h"
#include "util/result.h"

namespace rased {

/// Binary on-disk UpdateList: the hand-off format between the crawlers
/// (Section V) and the Storage & Indexing module (Section VI). A file is a
/// small header followed by fixed-width encoded UpdateRecords.
namespace update_list_file {

/// Writes all records to `path`, replacing any existing file.
Status Write(const std::string& path, const std::vector<UpdateRecord>& records);

/// Appends records to an existing file (or creates it).
Status Append(const std::string& path, const std::vector<UpdateRecord>& records);

/// Reads the whole file.
Result<std::vector<UpdateRecord>> Read(const std::string& path);

/// Streams records one at a time without materializing the vector; the
/// callback returns a non-OK status to stop.
Status ForEach(const std::string& path,
               const std::function<Status(const UpdateRecord&)>& cb);

/// Number of records in the file without reading the payload.
Result<uint64_t> Count(const std::string& path);

}  // namespace update_list_file
}  // namespace rased

#endif  // RASED_COLLECT_UPDATE_LIST_FILE_H_
