#include "collect/monthly_crawler.h"

#include "osm/history.h"

namespace rased {

Status MonthlyCrawler::CrawlHistory(std::string_view history_xml,
                                    const ChangesetStore& changesets,
                                    const DateRange& window,
                                    std::vector<UpdateRecord>* out) {
  // Consecutive versions of one element are adjacent in the file; keep the
  // previous version to classify the current one.
  std::optional<Element> previous;
  Status s = HistoryReader::Parse(
      history_xml, [this, &changesets, &window, out,
                    &previous](const Element& e) {
        ++stats_.elements_seen;
        const Element* prev = nullptr;
        if (previous.has_value() && previous->type == e.type &&
            previous->meta.id == e.meta.id) {
          prev = &previous.value();
        }
        Emit(e, prev, changesets, window, out);
        previous = e;
        return Status::OK();
      });
  return s;
}

void MonthlyCrawler::Emit(const Element& current, const Element* previous,
                          const ChangesetStore& changesets,
                          const DateRange& window,
                          std::vector<UpdateRecord>* out) {
  Date date = current.meta.timestamp.date;
  if (!window.empty() && !window.Contains(date)) return;

  UpdateRecord r;
  r.element_type = current.type;
  r.date = date;
  r.changeset_id = current.meta.changeset;

  // Road type: from the current version's tags; a deleted version has no
  // tags, so fall back to the previous version's.
  const std::string* highway = current.FindTag("highway");
  if (highway == nullptr && previous != nullptr) {
    highway = previous->FindTag("highway");
  }
  r.road_type =
      highway != nullptr ? road_types_->Intern(*highway) : kRoadTypeNone;

  // Four-way classification (Section V, monthly crawler).
  if (!current.meta.visible) {
    r.update_type = UpdateType::kDelete;
  } else if (current.meta.version == 1 || previous == nullptr) {
    r.update_type = UpdateType::kNew;
  } else if (Element::GeometryDiffers(current, *previous)) {
    r.update_type = UpdateType::kGeometry;
  } else {
    r.update_type = UpdateType::kMetadata;
  }

  // Location: node coordinates (previous version's for deletes, which may
  // have none of their own), else the changeset bbox centre.
  const Element* located = &current;
  if (current.type == ElementType::kNode && !current.meta.visible &&
      previous != nullptr) {
    located = previous;
  }
  if (located->type == ElementType::kNode &&
      (located->meta.visible || located == previous)) {
    r.lat = located->lat;
    r.lon = located->lon;
    r.country = world_->CountryAt(LatLon{r.lat, r.lon});
    ++stats_.located_by_coordinates;
  } else {
    const Changeset* cs = changesets.Find(current.meta.changeset);
    if (cs != nullptr && cs->has_bbox) {
      r.lat = cs->center_lat();
      r.lon = cs->center_lon();
      r.country = world_->CountryAt(LatLon{r.lat, r.lon});
      ++stats_.located_by_changeset;
    } else {
      r.country = kZoneUnknown;
      ++stats_.unlocated;
    }
  }

  out->push_back(r);
  ++stats_.records_emitted;
}

}  // namespace rased
