#include "collect/daily_crawler.h"

namespace rased {

Status DailyCrawler::CrawlDiff(std::string_view osc_xml,
                               const ChangesetStore& changesets,
                               std::vector<UpdateRecord>* out) {
  return OscReader::Parse(osc_xml, [this, &changesets,
                                    out](const OsmChange& change) {
    const Element& e = change.element;
    ++stats_.elements_seen;
    if (elements_counter_ != nullptr) elements_counter_->Increment();

    UpdateRecord r;
    r.element_type = e.type;
    r.date = e.meta.timestamp.date;
    r.changeset_id = e.meta.changeset;
    const std::string* highway = e.FindTag("highway");
    r.road_type =
        highway != nullptr ? road_types_->Intern(*highway) : kRoadTypeNone;
    r.update_type = change.action == ChangeAction::kCreate
                        ? UpdateType::kNew
                        : kProvisionalUpdate;

    // Locate the update. Nodes carry coordinates; ways and relations are
    // resolved through their changeset's bounding box centre (Section V).
    if (e.type == ElementType::kNode && e.meta.visible) {
      r.lat = e.lat;
      r.lon = e.lon;
      r.country = world_->CountryAt(LatLon{e.lat, e.lon});
      ++stats_.located_by_coordinates;
    } else {
      const Changeset* cs = changesets.Find(e.meta.changeset);
      if (cs != nullptr && cs->has_bbox) {
        r.lat = cs->center_lat();
        r.lon = cs->center_lon();
        r.country = world_->CountryAt(LatLon{r.lat, r.lon});
        ++stats_.located_by_changeset;
      } else {
        r.country = kZoneUnknown;
        ++stats_.unlocated;
      }
    }

    out->push_back(r);
    ++stats_.records_emitted;
    if (records_counter_ != nullptr) records_counter_->Increment();
    return Status::OK();
  });
}

}  // namespace rased
