#ifndef RASED_COLLECT_DAILY_CRAWLER_H_
#define RASED_COLLECT_DAILY_CRAWLER_H_

#include <string_view>
#include <vector>

#include "collect/changeset_store.h"
#include "collect/crawl_stats.h"
#include "collect/update_record.h"
#include "geo/world_map.h"
#include "obs/metrics_registry.h"
#include "osm/osc.h"
#include "osm/road_types.h"

namespace rased {

/// The daily crawler (Section V): consumes one day's diff (.osc) file plus
/// the day's changeset metadata and produces UpdateList tuples.
///
/// Seven of the eight attributes are filled directly; the UpdateType is
/// provisional — only "new" vs "updated" is inferable from diffs, so
/// updated tuples land in the kProvisionalUpdate slot until the monthly
/// crawler reclassifies (see UpdateType documentation).
///
/// A crawl is the stage half of the stage-then-publish ingest protocol:
/// it only reads XML and emits tuples, so nothing it does is visible to
/// queries — the day becomes queryable in one atomic catalog publication
/// after the index appends the cube built from these tuples.
class DailyCrawler {
 public:
  /// The map and road-type table must outlive the crawler. The table is
  /// shared and mutated (new highway values are interned). `metrics`, when
  /// non-null, receives live rased_crawl_* counters (elements seen,
  /// records emitted) on top of the per-crawler stats() snapshot.
  DailyCrawler(const WorldMap* world, RoadTypeTable* road_types,
               MetricsRegistry* metrics = nullptr)
      : world_(world), road_types_(road_types) {
    if (metrics != nullptr) {
      elements_counter_ = metrics->GetCounter("rased_crawl_elements_total",
                                              "OSM diff elements crawled");
      records_counter_ = metrics->GetCounter(
          "rased_crawl_records_total", "UpdateList tuples emitted by crawls");
    }
  }

  /// Crawls one diff document against the given changeset metadata,
  /// appending tuples to `out`.
  Status CrawlDiff(std::string_view osc_xml, const ChangesetStore& changesets,
                   std::vector<UpdateRecord>* out);

  const CrawlStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CrawlStats{}; }

 private:
  const WorldMap* world_;
  RoadTypeTable* road_types_;
  CrawlStats stats_;
  Counter* elements_counter_ = nullptr;
  Counter* records_counter_ = nullptr;
};

}  // namespace rased

#endif  // RASED_COLLECT_DAILY_CRAWLER_H_
