#ifndef RASED_COLLECT_REPLICATION_H_
#define RASED_COLLECT_REPLICATION_H_

#include <functional>
#include <string>

#include "osm/element.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace rased {

/// State descriptor of a replication feed, mirroring OSM's state.txt
/// (sequenceNumber + timestamp). Both the real format's escaped colons
/// ("2021-09-01T00\:00\:00Z") and plain timestamps are accepted.
struct ReplicationState {
  uint64_t sequence = 0;
  OsmTimestamp timestamp;

  static Result<ReplicationState> Parse(std::string_view contents);
  std::string Format() const;
};

/// A directory laid out like an OSM replication feed: one `NNNNNNNNN.osc`
/// diff plus `NNNNNNNNN.state.txt` per sequence number, and a top-level
/// `state.txt` describing the newest sequence. (The real planet server
/// nests sequences three directories deep and gzips the diffs; this
/// implementation keeps a flat, uncompressed layout with the same
/// semantics.)
class ReplicationDirectory {
 public:
  explicit ReplicationDirectory(std::string dir) : dir_(std::move(dir)) {}

  /// The newest published state (from the top-level state.txt).
  Result<ReplicationState> LatestState() const;

  /// State of one specific sequence.
  Result<ReplicationState> StateOf(uint64_t sequence) const;

  /// Contents of one sequence's diff.
  Result<std::string> ReadDiff(uint64_t sequence) const;

  /// Changeset metadata published alongside a diff (empty <osm/> document
  /// when the publisher provided none).
  Result<std::string> ReadChangesets(uint64_t sequence) const;

  /// Publisher side: writes the diff (+ optional changeset metadata) and
  /// its state file, then atomically advances the top-level state.txt.
  /// Sequences must be published in increasing order.
  Status Publish(uint64_t sequence, std::string_view osc_xml,
                 const OsmTimestamp& timestamp,
                 std::string_view changesets_xml = {});

  const std::string& dir() const { return dir_; }

 private:
  std::string DiffPath(uint64_t sequence) const;
  std::string StatePath(uint64_t sequence) const;
  std::string ChangesetsPath(uint64_t sequence) const;

  std::string dir_;
};

/// Resumable consumer: remembers the last applied sequence in a cursor
/// file and replays every newer diff through a callback. Crash-safe — the
/// cursor advances (atomically) only after the callback succeeded, so a
/// failed application is retried on the next CatchUp.
///
/// Threading contract: internally synchronized. A cursor mutex serializes
/// whole CatchUp passes, so two threads pointed at the same cursor cannot
/// interleave and double-apply a diff; the apply callback therefore also
/// runs under the cursor lock and must not call back into the cursor.
class ReplicationCursor {
 public:
  /// `cursor_path` is the file holding the last applied sequence.
  explicit ReplicationCursor(std::string cursor_path)
      : cursor_path_(std::move(cursor_path)) {}

  /// Last applied sequence; 0 when nothing was applied yet.
  Result<uint64_t> LastApplied() const RASED_EXCLUDES(mu_);

  using ApplyFn =
      std::function<Status(uint64_t sequence, const std::string& osc_xml)>;

  /// Applies every sequence in (last applied, feed latest], advancing the
  /// cursor after each success. Returns the number of diffs applied.
  Result<uint64_t> CatchUp(const ReplicationDirectory& feed,
                           const ApplyFn& apply) RASED_EXCLUDES(mu_);

  /// Explicitly advances the cursor (for consumers with their own batch
  /// semantics, e.g. ReplicationIngestor's day finalization).
  Status Advance(uint64_t sequence) const RASED_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return Store(sequence);
  }

 private:
  Result<uint64_t> LastAppliedLocked() const RASED_REQUIRES(mu_);
  Status Store(uint64_t sequence) const RASED_REQUIRES(mu_);

  const std::string cursor_path_;

  /// Serializes cursor-file read/advance cycles (the cursor file is the
  /// real shared state; the lock makes read-modify-write passes atomic
  /// within this process).
  mutable Mutex mu_;
};

}  // namespace rased

#endif  // RASED_COLLECT_REPLICATION_H_
