#include "collect/update_list_file.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "io/env.h"
#include "util/str_util.h"

namespace rased {
namespace update_list_file {

namespace {

constexpr uint32_t kMagic = 0x5544554c;  // "UDUL"
constexpr size_t kHeaderBytes = 16;      // magic, record size, count

struct Header {
  uint32_t magic = kMagic;
  uint32_t record_bytes = UpdateRecord::kEncodedBytes;
  uint64_t count = 0;
};

void EncodeHeader(const Header& h, unsigned char* out) {
  std::memcpy(out, &h.magic, 4);
  std::memcpy(out + 4, &h.record_bytes, 4);
  std::memcpy(out + 8, &h.count, 8);
}

Result<Header> DecodeHeader(const unsigned char* in) {
  Header h;
  std::memcpy(&h.magic, in, 4);
  std::memcpy(&h.record_bytes, in + 4, 4);
  std::memcpy(&h.count, in + 8, 8);
  if (h.magic != kMagic) {
    return Status::Corruption("bad UpdateList file magic");
  }
  if (h.record_bytes != UpdateRecord::kEncodedBytes) {
    return Status::Corruption(
        StrFormat("UpdateList record size %u, expected %zu", h.record_bytes,
                  UpdateRecord::kEncodedBytes));
  }
  return h;
}

Status WriteImpl(const std::string& path,
                 const std::vector<UpdateRecord>& records, bool append) {
  uint64_t existing = 0;
  if (append && env::FileExists(path)) {
    auto count = Count(path);
    if (!count.ok()) return count.status();
    existing = count.value();
  }
  std::ofstream out;
  if (append && existing > 0) {
    out.open(path, std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(0, std::ios::end);
  } else {
    out.open(path, std::ios::binary | std::ios::trunc);
  }
  if (!out) return Status::IOError("cannot open " + path + " for writing");

  if (existing == 0) {
    unsigned char header[kHeaderBytes] = {0};
    Header h;
    h.count = records.size();
    EncodeHeader(h, header);
    out.write(reinterpret_cast<const char*>(header), kHeaderBytes);
  }

  std::vector<unsigned char> buf;
  constexpr size_t kBatch = 4096;
  buf.resize(kBatch * UpdateRecord::kEncodedBytes);
  size_t in_buf = 0;
  for (const UpdateRecord& r : records) {
    r.EncodeTo(buf.data() + in_buf * UpdateRecord::kEncodedBytes);
    if (++in_buf == kBatch) {
      out.write(reinterpret_cast<const char*>(buf.data()),
                static_cast<std::streamsize>(in_buf *
                                             UpdateRecord::kEncodedBytes));
      in_buf = 0;
    }
  }
  if (in_buf > 0) {
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(in_buf *
                                           UpdateRecord::kEncodedBytes));
  }

  if (existing > 0) {
    // Update the header count in place.
    unsigned char header[kHeaderBytes] = {0};
    Header h;
    h.count = existing + records.size();
    EncodeHeader(h, header);
    out.seekp(0);
    out.write(reinterpret_cast<const char*>(header), kHeaderBytes);
  }
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace

Status Write(const std::string& path,
             const std::vector<UpdateRecord>& records) {
  return WriteImpl(path, records, /*append=*/false);
}

Status Append(const std::string& path,
              const std::vector<UpdateRecord>& records) {
  return WriteImpl(path, records, /*append=*/true);
}

Result<uint64_t> Count(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  unsigned char header[kHeaderBytes];
  in.read(reinterpret_cast<char*>(header), kHeaderBytes);
  if (!in) return Status::Corruption("truncated UpdateList header in " + path);
  auto h = DecodeHeader(header);
  if (!h.ok()) return h.status();
  return h.value().count;
}

Status ForEach(const std::string& path,
               const std::function<Status(const UpdateRecord&)>& cb) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  unsigned char header[kHeaderBytes];
  in.read(reinterpret_cast<char*>(header), kHeaderBytes);
  if (!in) return Status::Corruption("truncated UpdateList header in " + path);
  RASED_ASSIGN_OR_RETURN(Header h, DecodeHeader(header));

  constexpr size_t kBatch = 4096;
  std::vector<unsigned char> buf(kBatch * UpdateRecord::kEncodedBytes);
  uint64_t remaining = h.count;
  while (remaining > 0) {
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(remaining, kBatch));
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(n * UpdateRecord::kEncodedBytes));
    if (!in) return Status::Corruption("truncated UpdateList body in " + path);
    for (size_t i = 0; i < n; ++i) {
      RASED_RETURN_IF_ERROR(cb(UpdateRecord::DecodeFrom(
          buf.data() + i * UpdateRecord::kEncodedBytes)));
    }
    remaining -= n;
  }
  return Status::OK();
}

Result<std::vector<UpdateRecord>> Read(const std::string& path) {
  std::vector<UpdateRecord> out;
  Status s = ForEach(path, [&out](const UpdateRecord& r) {
    out.push_back(r);
    return Status::OK();
  });
  if (!s.ok()) return s;
  return out;
}

}  // namespace update_list_file
}  // namespace rased
