#ifndef RASED_COLLECT_CHANGESET_STORE_H_
#define RASED_COLLECT_CHANGESET_STORE_H_

#include <string_view>
#include <unordered_map>

#include "osm/changeset.h"
#include "util/result.h"

namespace rased {

/// In-memory lookup table of changeset metadata, populated from one or
/// more changeset XML files. The crawlers use it to resolve the bounding
/// box (and hence the country and representative coordinates) of way and
/// relation updates, which carry no coordinates of their own (Section V).
class ChangesetStore {
 public:
  ChangesetStore() = default;

  /// Parses a changeset XML document and adds every changeset. A changeset
  /// id seen again replaces the previous entry (re-crawl of an updated
  /// file).
  Status AddFromXml(std::string_view xml);

  void Add(const Changeset& changeset);

  /// nullptr when unknown.
  const Changeset* Find(uint64_t id) const;

  size_t size() const { return by_id_.size(); }
  void Clear() { by_id_.clear(); }

 private:
  std::unordered_map<uint64_t, Changeset> by_id_;
};

}  // namespace rased

#endif  // RASED_COLLECT_CHANGESET_STORE_H_
