#ifndef RASED_COLLECT_UPDATE_RECORD_H_
#define RASED_COLLECT_UPDATE_RECORD_H_

#include <cstdint>
#include <string>

#include "geo/world_map.h"
#include "osm/element.h"
#include "osm/road_types.h"
#include "util/date.h"

namespace rased {

/// The UpdateType dimension of the data cubes (Section VI-A): newly
/// created, deleted, geometry update, and metadata update.
///
/// The daily crawler can only distinguish "new" from "some update"
/// (Section V); following the paper it records provisional updates in the
/// kGeometry slot and leaves the other cells zero — that is the "270,000 of
/// 540,000 values" the paper computes daily — until the monthly crawler
/// rebuilds the month's cubes with the full four-way classification.
enum class UpdateType : uint8_t {
  kNew = 0,
  kDelete = 1,
  kGeometry = 2,
  kMetadata = 3,
};
inline constexpr int kNumUpdateTypes = 4;

std::string_view UpdateTypeName(UpdateType type);

/// The slot used for the daily crawler's provisional "updated" records.
inline constexpr UpdateType kProvisionalUpdate = UpdateType::kGeometry;

/// One tuple of the UpdateList relation (Section III):
/// <ElementType, Date, Country, Latitude, Longitude, RoadType, UpdateType,
/// ChangesetID>.
struct UpdateRecord {
  ElementType element_type = ElementType::kNode;
  Date date;
  ZoneId country = kZoneUnknown;
  double lat = 0.0;
  double lon = 0.0;
  RoadTypeId road_type = kRoadTypeNone;
  UpdateType update_type = UpdateType::kNew;
  uint64_t changeset_id = 0;

  /// Fixed serialized footprint (little-endian packed encoding).
  static constexpr size_t kEncodedBytes = 1 + 4 + 2 + 8 + 8 + 2 + 1 + 8;

  /// Encodes into exactly kEncodedBytes at `out`.
  void EncodeTo(unsigned char* out) const;

  /// Decodes from exactly kEncodedBytes at `in`.
  static UpdateRecord DecodeFrom(const unsigned char* in);

  std::string ToString() const;

  friend bool operator==(const UpdateRecord& a, const UpdateRecord& b);
};

}  // namespace rased

#endif  // RASED_COLLECT_UPDATE_RECORD_H_
