#include "collect/changeset_store.h"

namespace rased {

Status ChangesetStore::AddFromXml(std::string_view xml) {
  return ChangesetReader::Parse(xml, [this](const Changeset& cs) {
    Add(cs);
    return Status::OK();
  });
}

void ChangesetStore::Add(const Changeset& changeset) {
  by_id_[changeset.id] = changeset;
}

const Changeset* ChangesetStore::Find(uint64_t id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &it->second;
}

}  // namespace rased
