#ifndef RASED_COLLECT_CRAWL_STATS_H_
#define RASED_COLLECT_CRAWL_STATS_H_

#include <cstdint>

namespace rased {

/// Statistics of one crawl pass, surfaced in maintenance benchmarks.
struct CrawlStats {
  uint64_t elements_seen = 0;
  uint64_t records_emitted = 0;
  uint64_t located_by_coordinates = 0;  // nodes with lat/lon
  uint64_t located_by_changeset = 0;    // ways/relations via changeset bbox
  uint64_t unlocated = 0;               // no changeset bbox available
};

}  // namespace rased

#endif  // RASED_COLLECT_CRAWL_STATS_H_
