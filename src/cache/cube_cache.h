#ifndef RASED_CACHE_CUBE_CACHE_H_
#define RASED_CACHE_CUBE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "cube/data_cube.h"
#include "index/temporal_index.h"
#include "index/temporal_key.h"
#include "obs/metrics_registry.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace rased {

/// How the cache decides what lives in its N slots.
enum class CachePolicy {
  /// The paper's strategy (Section VII-A): statically preload the most
  /// recent alpha*N daily, beta*N weekly, gamma*N monthly and theta*N
  /// yearly cubes. Nothing is admitted or evicted at query time.
  kRasedRecency = 0,
  /// Classic LRU admission/eviction on the query path (ablation baseline).
  kLru = 1,
  /// Recency preload of daily cubes only (alpha = 1), the degenerate
  /// configuration Section VII-B's example warns about.
  kAllDaily = 2,
};

struct CacheOptions {
  /// N — number of cube slots. The paper expresses cache size in bytes
  /// (e.g. 2 GB); slots = bytes / schema.cube_bytes().
  size_t num_slots = 512;

  /// Per-level slot shares for kRasedRecency; must sum to ~1. Defaults are
  /// the deployment values of Section VIII.
  double alpha = 0.4;   // daily
  double beta = 0.35;   // weekly
  double gamma = 0.2;   // monthly
  double theta = 0.05;  // yearly

  CachePolicy policy = CachePolicy::kRasedRecency;

  /// When non-null, the cache registers live rased_cache_* counters and
  /// gauges here at construction (hits/misses/admissions/evictions/
  /// preloads, resident/capacity). The registry must outlive the cache.
  MetricsRegistry* metrics = nullptr;

  /// Slots for a byte budget given the cube size.
  static size_t SlotsForBytes(uint64_t bytes, const CubeSchema& schema) {
    return static_cast<size_t>(bytes / schema.cube_bytes());
  }
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t preloaded = 0;
  uint64_t evictions = 0;
};

/// In-memory cube cache standing between the query executor and the index
/// pager (Section VII-A). Lookups are zero-I/O; the executor charges disk
/// cost only for misses.
///
/// Threading contract: CubeCache is internally synchronized. Lookups,
/// inserts, invalidation, and stats are safe from any number of dashboard
/// worker threads concurrently. Entries are immutable once admitted and
/// handed out as shared_ptr, so a reader keeps its cube alive even if an
/// LRU eviction or InvalidateRange drops the entry mid-read. The one
/// exception is Warm(), which drives the (single-threaded) TemporalIndex
/// pager and must not run concurrently with index maintenance — Rased
/// serializes it against ingestion.
class CubeCache {
 public:
  explicit CubeCache(const CacheOptions& options);

  /// Preloads cubes from the index per the configured policy. For
  /// kRasedRecency/kAllDaily this performs the full static prefetch; for
  /// kLru it is a no-op (the cache fills on demand). Warm reads go through
  /// the index pager but are an offline cost — callers typically reset
  /// pager stats afterwards.
  Status Warm(const TemporalIndex* index) RASED_EXCLUDES(mu_);

  /// Returns the cached cube or nullptr; counts a hit/miss. For kLru the
  /// entry is refreshed. The returned pointer remains valid after eviction.
  std::shared_ptr<const DataCube> Find(const CubeKey& key)
      RASED_EXCLUDES(mu_);

  /// Hands a cube fetched from disk to the cache. Only the kLru policy
  /// admits it (the paper's static policy never changes at query time).
  void Insert(const CubeKey& key, const DataCube& cube) RASED_EXCLUDES(mu_);

  /// Move overload: adopts the cube without copying its cell array. The
  /// query executor uses this to hand freshly fetched cubes over instead
  /// of paying a deep copy per miss.
  void Insert(const CubeKey& key, DataCube&& cube) RASED_EXCLUDES(mu_);

  /// Whether Insert can ever admit (true only for kLru). Lets the executor
  /// skip materializing cache copies entirely under the static policies.
  bool AdmitsOnQuery() const {
    return options_.policy == CachePolicy::kLru;
  }

  bool Contains(const CubeKey& key) const RASED_EXCLUDES(mu_);

  /// Drops every cached cube whose window overlaps `range`. Called when
  /// the monthly rebuild rewrites a month's cubes (and its month/year
  /// ancestors) underneath the cache; callers re-Warm afterwards to refill
  /// the freed slots. In-flight readers holding shared_ptrs are unharmed.
  void InvalidateRange(const DateRange& range) RASED_EXCLUDES(mu_);

  size_t size() const RASED_EXCLUDES(mu_);
  size_t capacity() const { return options_.num_slots; }
  const CacheOptions& options() const { return options_; }
  CacheStats stats() const RASED_EXCLUDES(mu_);
  void ResetStats() RASED_EXCLUDES(mu_);
  void Clear() RASED_EXCLUDES(mu_);

 private:
  void AdmitLru(const CubeKey& key, std::shared_ptr<const DataCube> cube)
      RASED_REQUIRES(mu_);
  void Preload(const TemporalIndex* index, Level level, size_t slots)
      RASED_EXCLUDES(mu_);
  void ClearLocked() RASED_REQUIRES(mu_);

  const CacheOptions options_;  // immutable after construction

  /// Registry handles (all set together in the constructor when
  /// options_.metrics is non-null, else all null). The counters update
  /// lock-free; the resident gauge is set under mu_ right after entry
  /// surgery so it always mirrors entries_.size().
  struct CacheMetrics {
    Counter* hits = nullptr;
    Counter* misses = nullptr;
    Counter* admissions = nullptr;
    Counter* evictions = nullptr;
    Counter* preloads = nullptr;
    Gauge* resident = nullptr;
    Gauge* capacity = nullptr;
  };
  CacheMetrics metrics_ RASED_CONST_AFTER_INIT;

  /// Guards every mutable member below. Held only for map/list surgery,
  /// never across index I/O (Preload reads the cube first, then locks to
  /// admit it), so worker threads contend only on pointer-sized critical
  /// sections.
  mutable Mutex mu_;

  CacheStats stats_ RASED_GUARDED_BY(mu_);

  // Entry storage. lru_list_ is maintained only under the kLru policy.
  // Cubes are shared_ptr<const> so hits escape the lock safely.
  struct Entry {
    std::shared_ptr<const DataCube> cube;
    std::list<CubeKey>::iterator lru_it;
    bool in_lru = false;
  };
  std::unordered_map<CubeKey, Entry, CubeKeyHash> entries_
      RASED_GUARDED_BY(mu_);
  std::list<CubeKey> lru_list_ RASED_GUARDED_BY(mu_);  // front = most recent
};

}  // namespace rased

#endif  // RASED_CACHE_CUBE_CACHE_H_
