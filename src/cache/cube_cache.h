#ifndef RASED_CACHE_CUBE_CACHE_H_
#define RASED_CACHE_CUBE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "cube/cube_codec.h"
#include "cube/data_cube.h"
#include "index/temporal_index.h"
#include "index/temporal_key.h"
#include "obs/metrics_registry.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace rased {

/// How the cache decides what lives inside its byte budget.
enum class CachePolicy {
  /// The paper's strategy (Section VII-A): statically preload the most
  /// recent cubes level by level, giving each level its (beta, gamma,
  /// theta) share of the byte budget and the remainder to daily. Nothing
  /// is admitted or evicted at query time.
  kRasedRecency = 0,
  /// Classic LRU admission/eviction on the query path (ablation baseline).
  kLru = 1,
  /// Recency preload of daily cubes only (alpha = 1), the degenerate
  /// configuration Section VII-B's example warns about.
  kAllDaily = 2,
};

struct CacheOptions {
  /// Cache capacity in bytes of *encoded* cube storage — the paper's 2 GB
  /// deployment figure. Every entry is charged its exact serialized
  /// (compressed) length as recorded in the catalog, so adaptive cube
  /// compression directly multiplies how many cubes the same budget
  /// holds. The decoded working copies are what hits return; the budget
  /// models the resource the paper sizes (bytes of cached cube state).
  uint64_t byte_budget = uint64_t{2} << 30;

  /// Per-level byte shares for kRasedRecency; must sum to ~1. Defaults
  /// are the deployment values of Section VIII.
  double alpha = 0.4;   // daily
  double beta = 0.35;   // weekly
  double gamma = 0.2;   // monthly
  double theta = 0.05;  // yearly

  CachePolicy policy = CachePolicy::kRasedRecency;

  /// When non-null, the cache registers live rased_cache_* counters and
  /// gauges here at construction (hits/misses/admissions/evictions/
  /// preloads, resident cubes/bytes, budget). The registry must outlive
  /// the cache.
  MetricsRegistry* metrics = nullptr;

  /// Budget with guaranteed room for `cubes` cubes of any encoding — the
  /// conversion helper for configurations historically expressed in
  /// slots. Counts the blob header per cube because the adaptive encoder's
  /// worst case (dense fallback) serializes to cube_bytes + header.
  static uint64_t BytesForCubes(size_t cubes, const CubeSchema& schema) {
    return static_cast<uint64_t>(cubes) *
           (schema.cube_bytes() + CubeBlobHeader::kBytes);
  }
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t preloaded = 0;
  uint64_t evictions = 0;
};

/// In-memory cube cache standing between the query executor and the index
/// pager (Section VII-A). Lookups are zero-I/O; the executor charges disk
/// cost only for misses.
///
/// Threading contract: CubeCache is internally synchronized. Lookups,
/// inserts, invalidation, warming, and stats are safe from any number of
/// dashboard worker threads concurrently. Entries are immutable once
/// admitted and handed out as shared_ptr, so a reader keeps its cube alive
/// even if an LRU eviction or InvalidateRange drops the entry mid-read.
/// Warm() pins one catalog snapshot and preloads against it without
/// blocking readers or writers (its reads charge the pager like any
/// query's).
///
/// MVCC validation: every entry remembers the page its cube was read
/// from. The page-taking Find/Contains/Insert overloads treat the page id
/// as the entry's version: a lookup hits only when the caller's snapshot
/// resolves the key to the same page, so a cube cached under a retired
/// epoch can never serve a query pinned to a newer one (RebuildMonth
/// always stages replacement cubes to fresh pages). Entries for untouched
/// keys keep their page across publications and keep hitting — no blanket
/// invalidation on epoch bumps. The page-less overloads skip validation
/// (kInvalidPageId) for callers outside the query path.
class CubeCache {
 public:
  explicit CubeCache(const CacheOptions& options);

  /// Preloads cubes per the configured policy against one pinned snapshot
  /// of `index`'s current version. For kRasedRecency/kAllDaily this
  /// performs the full static prefetch; for kLru it is a no-op (the cache
  /// fills on demand). Warm reads go through the index pager but are an
  /// offline cost — callers typically reset pager stats afterwards.
  /// Non-blocking: queries keep running (and hitting) while Warm refills.
  Status Warm(const TemporalIndex* index) RASED_EXCLUDES(mu_);

  /// Returns the cached cube or nullptr; counts a hit/miss. For kLru the
  /// entry is refreshed. The returned pointer remains valid after eviction.
  std::shared_ptr<const DataCube> Find(const CubeKey& key)
      RASED_EXCLUDES(mu_);

  /// Page-validated lookup: hits only if the entry was cached from
  /// `page` (the caller's snapshot resolution of `key`). A mismatch counts
  /// as a miss and leaves the entry in place — a reader pinned to the
  /// entry's own version can still hit it.
  std::shared_ptr<const DataCube> Find(const CubeKey& key, PageId page)
      RASED_EXCLUDES(mu_);

  /// Hands a cube fetched from disk to the cache. Only the kLru policy
  /// admits it (the paper's static policy never changes at query time).
  void Insert(const CubeKey& key, const DataCube& cube) RASED_EXCLUDES(mu_);

  /// Move overload: adopts the cube without copying its cell array. The
  /// query executor uses this to hand freshly fetched cubes over instead
  /// of paying a deep copy per miss.
  void Insert(const CubeKey& key, DataCube&& cube) RASED_EXCLUDES(mu_);

  /// Page-carrying inserts: record the page the cube was fetched from so
  /// later page-validated lookups can hit it. These overloads measure the
  /// cube's encoded size themselves (one encode pass); callers that
  /// already know it use the sized overload below.
  void Insert(const CubeKey& key, PageId page, const DataCube& cube)
      RASED_EXCLUDES(mu_);
  void Insert(const CubeKey& key, PageId page, DataCube&& cube)
      RASED_EXCLUDES(mu_);

  /// Sized insert: `encoded_bytes` is the cube's exact serialized length
  /// (the catalog's blob_bytes — what the byte budget charges). The query
  /// executor uses this to admit misses without re-encoding.
  void Insert(const CubeKey& key, PageId page, uint64_t encoded_bytes,
              DataCube&& cube) RASED_EXCLUDES(mu_);

  /// Whether Insert can ever admit (true only for kLru). Lets the executor
  /// skip materializing cache copies entirely under the static policies.
  bool AdmitsOnQuery() const {
    return options_.policy == CachePolicy::kLru;
  }

  bool Contains(const CubeKey& key) const RASED_EXCLUDES(mu_);

  /// Page-validated membership test (the optimizer's IsCached probe).
  bool Contains(const CubeKey& key, PageId page) const RASED_EXCLUDES(mu_);

  /// Drops every cached cube whose window overlaps `range`. Called when
  /// the monthly rebuild rewrites a month's cubes (and its month/year
  /// ancestors) underneath the cache; callers re-Warm afterwards to refill
  /// the freed slots. In-flight readers holding shared_ptrs are unharmed.
  void InvalidateRange(const DateRange& range) RASED_EXCLUDES(mu_);

  size_t size() const RASED_EXCLUDES(mu_);
  /// Encoded bytes currently charged against the budget.
  uint64_t bytes_used() const RASED_EXCLUDES(mu_);
  uint64_t budget_bytes() const { return options_.byte_budget; }
  const CacheOptions& options() const { return options_; }
  CacheStats stats() const RASED_EXCLUDES(mu_);
  void ResetStats() RASED_EXCLUDES(mu_);
  void Clear() RASED_EXCLUDES(mu_);

 private:
  void AdmitLru(const CubeKey& key, PageId page, uint64_t bytes,
                std::shared_ptr<const DataCube> cube) RASED_REQUIRES(mu_);
  /// Preloads the newest cubes of `level` that fit in `max_bytes` of
  /// encoded size. Selection is pure catalog metadata (no I/O needed to
  /// decide what fits); only the selected cubes are read.
  void Preload(const TemporalIndex* index, const CatalogSnapshot& snapshot,
               Level level, uint64_t max_bytes) RASED_EXCLUDES(mu_);
  void ClearLocked() RASED_REQUIRES(mu_);

  const CacheOptions options_;  // immutable after construction

  /// Registry handles (all set together in the constructor when
  /// options_.metrics is non-null, else all null). The counters update
  /// lock-free; the resident gauge is set under mu_ right after entry
  /// surgery so it always mirrors entries_.size().
  struct CacheMetrics {
    Counter* hits = nullptr;
    Counter* misses = nullptr;
    Counter* admissions = nullptr;
    Counter* evictions = nullptr;
    Counter* preloads = nullptr;
    Gauge* resident = nullptr;        // cubes
    Gauge* resident_bytes = nullptr;  // encoded bytes charged
    Gauge* budget_bytes = nullptr;    // configured byte budget
  };
  CacheMetrics metrics_ RASED_CONST_AFTER_INIT;

  /// Guards every mutable member below. Held only for map/list surgery,
  /// never across index I/O (Preload reads the cube first, then locks to
  /// admit it), so worker threads contend only on pointer-sized critical
  /// sections.
  mutable Mutex mu_;

  CacheStats stats_ RASED_GUARDED_BY(mu_);

  // Entry storage. lru_list_ is maintained only under the kLru policy.
  // Cubes are shared_ptr<const> so hits escape the lock safely.
  struct Entry {
    std::shared_ptr<const DataCube> cube;
    /// Page the cube was read from — the entry's version for MVCC
    /// validation. kInvalidPageId marks unvalidated (page-less) inserts.
    PageId page = kInvalidPageId;
    /// Encoded bytes this entry charges against the byte budget.
    uint64_t bytes = 0;
    std::list<CubeKey>::iterator lru_it;
    bool in_lru = false;
  };
  std::unordered_map<CubeKey, Entry, CubeKeyHash> entries_
      RASED_GUARDED_BY(mu_);
  std::list<CubeKey> lru_list_ RASED_GUARDED_BY(mu_);  // front = most recent
  /// Sum of entries_[*].bytes — the budget charge.
  uint64_t bytes_used_ RASED_GUARDED_BY(mu_) = 0;
};

}  // namespace rased

#endif  // RASED_CACHE_CUBE_CACHE_H_
