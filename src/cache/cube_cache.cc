#include "cache/cube_cache.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "util/logging.h"

namespace rased {

CubeCache::CubeCache(const CacheOptions& options) : options_(options) {
  if (options_.metrics != nullptr) {
    MetricsRegistry* registry = options_.metrics;
    metrics_.hits = registry->GetCounter("rased_cache_hits_total",
                                         "Cube cache lookup hits");
    metrics_.misses = registry->GetCounter("rased_cache_misses_total",
                                           "Cube cache lookup misses");
    metrics_.admissions =
        registry->GetCounter("rased_cache_admissions_total",
                             "Cubes admitted on the query path (LRU policy)");
    metrics_.evictions = registry->GetCounter("rased_cache_evictions_total",
                                              "Cubes evicted to make room");
    metrics_.preloads = registry->GetCounter(
        "rased_cache_preloads_total", "Cubes preloaded by the static policy");
    metrics_.resident =
        registry->GetGauge("rased_cache_resident_cubes",
                           "Cubes currently resident in the cache");
    metrics_.capacity = registry->GetGauge("rased_cache_capacity_cubes",
                                           "Configured cube slots (N)");
    metrics_.capacity->Set(static_cast<int64_t>(options_.num_slots));
  }
}

void CubeCache::Preload(const TemporalIndex* index,
                        const CatalogSnapshot& snapshot, Level level,
                        size_t slots) {
  if (slots == 0) return;
  for (const CubeKey& key : snapshot.LatestKeys(level, slots)) {
    std::optional<PageId> page = snapshot.PageOf(key);
    auto cube = index->ReadCube(snapshot, key);
    if (!cube.ok()) {
      RASED_LOG(Warning) << "cache preload of " << key.ToString()
                         << " failed: " << cube.status().ToString();
      continue;
    }
    auto shared =
        std::make_shared<const DataCube>(std::move(cube).value());
    MutexLock lock(&mu_);
    Entry entry{std::move(shared), page.value_or(kInvalidPageId),
                lru_list_.end(), false};
    entries_.insert_or_assign(key, std::move(entry));
    ++stats_.preloaded;
    if (metrics_.preloads != nullptr) {
      metrics_.preloads->Increment();
      metrics_.resident->Set(static_cast<int64_t>(entries_.size()));
    }
  }
}

Status CubeCache::Warm(const TemporalIndex* index) {
  if (options_.policy == CachePolicy::kLru) return Status::OK();
  // One snapshot for the whole warm pass: every preloaded entry carries
  // the page of the same published version, and maintenance concurrent
  // with the warm neither blocks nor is blocked by it.
  CatalogSnapshot snapshot = index->Snapshot();
  Clear();
  size_t n = options_.num_slots;
  if (options_.policy == CachePolicy::kAllDaily) {
    Preload(index, snapshot, Level::kDaily, n);
    return Status::OK();
  }
  // kRasedRecency: split N by (alpha, beta, gamma, theta); leftover slots
  // from rounding (or from levels with fewer cubes than their share) fall
  // back to daily, the level with the most nodes.
  size_t weekly = static_cast<size_t>(std::floor(options_.beta * n));
  size_t monthly = static_cast<size_t>(std::floor(options_.gamma * n));
  size_t yearly = static_cast<size_t>(std::floor(options_.theta * n));
  Preload(index, snapshot, Level::kWeekly, weekly);
  Preload(index, snapshot, Level::kMonthly, monthly);
  Preload(index, snapshot, Level::kYearly, yearly);
  // Daily receives its alpha share plus whatever the coarser levels could
  // not fill (an index may simply have fewer than theta*N yearly cubes).
  size_t resident = size();
  size_t remaining = resident < n ? n - resident : 0;
  Preload(index, snapshot, Level::kDaily, remaining);
  return Status::OK();
}

std::shared_ptr<const DataCube> CubeCache::Find(const CubeKey& key) {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (metrics_.misses != nullptr) metrics_.misses->Increment();
    return nullptr;
  }
  ++stats_.hits;
  if (metrics_.hits != nullptr) metrics_.hits->Increment();
  if (options_.policy == CachePolicy::kLru && it->second.in_lru) {
    lru_list_.splice(lru_list_.begin(), lru_list_, it->second.lru_it);
  }
  return it->second.cube;
}

std::shared_ptr<const DataCube> CubeCache::Find(const CubeKey& key,
                                                PageId page) {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.page != page) {
    // Absent, or cached from a different page (a different version of the
    // cube): never serve it to this snapshot.
    ++stats_.misses;
    if (metrics_.misses != nullptr) metrics_.misses->Increment();
    return nullptr;
  }
  ++stats_.hits;
  if (metrics_.hits != nullptr) metrics_.hits->Increment();
  if (options_.policy == CachePolicy::kLru && it->second.in_lru) {
    lru_list_.splice(lru_list_.begin(), lru_list_, it->second.lru_it);
  }
  return it->second.cube;
}

void CubeCache::Insert(const CubeKey& key, const DataCube& cube) {
  Insert(key, kInvalidPageId, cube);
}

void CubeCache::Insert(const CubeKey& key, DataCube&& cube) {
  Insert(key, kInvalidPageId, std::move(cube));
}

void CubeCache::Insert(const CubeKey& key, PageId page,
                       const DataCube& cube) {
  if (options_.policy != CachePolicy::kLru) return;
  // Build the shared copy outside the lock; admission is pointer surgery.
  auto shared = std::make_shared<const DataCube>(cube);
  MutexLock lock(&mu_);
  AdmitLru(key, page, std::move(shared));
}

void CubeCache::Insert(const CubeKey& key, PageId page, DataCube&& cube) {
  if (options_.policy != CachePolicy::kLru) return;
  auto shared = std::make_shared<const DataCube>(std::move(cube));
  MutexLock lock(&mu_);
  AdmitLru(key, page, std::move(shared));
}

bool CubeCache::Contains(const CubeKey& key) const {
  MutexLock lock(&mu_);
  return entries_.find(key) != entries_.end();
}

bool CubeCache::Contains(const CubeKey& key, PageId page) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.page == page;
}

void CubeCache::AdmitLru(const CubeKey& key, PageId page,
                         std::shared_ptr<const DataCube> cube) {
  if (options_.num_slots == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.cube = std::move(cube);
    it->second.page = page;
    if (it->second.in_lru) {
      lru_list_.splice(lru_list_.begin(), lru_list_, it->second.lru_it);
    }
    return;
  }
  while (entries_.size() >= options_.num_slots && !lru_list_.empty()) {
    CubeKey victim = lru_list_.back();
    lru_list_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
    if (metrics_.evictions != nullptr) metrics_.evictions->Increment();
  }
  lru_list_.push_front(key);
  Entry entry{std::move(cube), page, lru_list_.begin(), true};
  entries_.emplace(key, std::move(entry));
  if (metrics_.admissions != nullptr) {
    metrics_.admissions->Increment();
    metrics_.resident->Set(static_cast<int64_t>(entries_.size()));
  }
}

void CubeCache::InvalidateRange(const DateRange& range) {
  MutexLock lock(&mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.range().Overlaps(range)) {
      if (it->second.in_lru) lru_list_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (metrics_.resident != nullptr) {
    metrics_.resident->Set(static_cast<int64_t>(entries_.size()));
  }
}

size_t CubeCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

CacheStats CubeCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void CubeCache::ResetStats() {
  MutexLock lock(&mu_);
  stats_ = CacheStats{};
}

void CubeCache::ClearLocked() {
  entries_.clear();
  lru_list_.clear();
  if (metrics_.resident != nullptr) metrics_.resident->Set(0);
}

void CubeCache::Clear() {
  MutexLock lock(&mu_);
  ClearLocked();
}

}  // namespace rased
