#include "cache/cube_cache.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "cube/cube_codec.h"
#include "util/logging.h"

namespace rased {

namespace {

/// Encoded size of a cube the caller could not supply one for (page-less
/// inserts, tests). One encode pass; the encoded form is discarded.
uint64_t MeasureEncodedBytes(const DataCube& cube) {
  return EncodedCube::Encode(cube).SerializedBytes();
}

}  // namespace

CubeCache::CubeCache(const CacheOptions& options) : options_(options) {
  if (options_.metrics != nullptr) {
    MetricsRegistry* registry = options_.metrics;
    metrics_.hits = registry->GetCounter("rased_cache_hits_total",
                                         "Cube cache lookup hits");
    metrics_.misses = registry->GetCounter("rased_cache_misses_total",
                                           "Cube cache lookup misses");
    metrics_.admissions =
        registry->GetCounter("rased_cache_admissions_total",
                             "Cubes admitted on the query path (LRU policy)");
    metrics_.evictions = registry->GetCounter("rased_cache_evictions_total",
                                              "Cubes evicted to make room");
    metrics_.preloads = registry->GetCounter(
        "rased_cache_preloads_total", "Cubes preloaded by the static policy");
    metrics_.resident =
        registry->GetGauge("rased_cache_resident_cubes",
                           "Cubes currently resident in the cache");
    metrics_.resident_bytes =
        registry->GetGauge("rased_cache_resident_bytes",
                           "Encoded bytes charged against the cache budget");
    metrics_.budget_bytes = registry->GetGauge(
        "rased_cache_budget_bytes", "Configured cache byte budget");
    metrics_.budget_bytes->Set(static_cast<int64_t>(options_.byte_budget));
  }
}

void CubeCache::Preload(const TemporalIndex* index,
                        const CatalogSnapshot& snapshot, Level level,
                        uint64_t max_bytes) {
  if (max_bytes == 0) return;
  // Selection first, purely from catalog metadata: walk the level newest to
  // oldest (LatestKeys returns newest last) and take the contiguous prefix
  // whose encoded sizes fit. Only the selected cubes are then read (and
  // charged) — sizing never costs I/O.
  uint64_t selected_bytes = 0;
  const std::vector<CubeKey> keys =
      snapshot.LatestKeys(level, std::numeric_limits<size_t>::max());
  for (auto kit = keys.rbegin(); kit != keys.rend(); ++kit) {
    const CubeKey& key = *kit;
    std::optional<uint64_t> encoded = snapshot.EncodedBytesOf(key);
    if (!encoded.has_value()) continue;  // raced away; snapshot makes this moot
    if (selected_bytes + *encoded > max_bytes) break;
    selected_bytes += *encoded;

    std::optional<PageId> page = snapshot.PageOf(key);
    auto cube = index->ReadCube(snapshot, key);
    if (!cube.ok()) {
      RASED_LOG(Warning) << "cache preload of " << key.ToString()
                         << " failed: " << cube.status().ToString();
      continue;
    }
    auto shared =
        std::make_shared<const DataCube>(std::move(cube).value());
    MutexLock lock(&mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) bytes_used_ -= it->second.bytes;
    Entry entry{std::move(shared), page.value_or(kInvalidPageId), *encoded,
                lru_list_.end(), false};
    entries_.insert_or_assign(key, std::move(entry));
    bytes_used_ += *encoded;
    ++stats_.preloaded;
    if (metrics_.preloads != nullptr) {
      metrics_.preloads->Increment();
      metrics_.resident->Set(static_cast<int64_t>(entries_.size()));
      metrics_.resident_bytes->Set(static_cast<int64_t>(bytes_used_));
    }
  }
}

Status CubeCache::Warm(const TemporalIndex* index) {
  if (options_.policy == CachePolicy::kLru) return Status::OK();
  // One snapshot for the whole warm pass: every preloaded entry carries
  // the page of the same published version, and maintenance concurrent
  // with the warm neither blocks nor is blocked by it.
  CatalogSnapshot snapshot = index->Snapshot();
  Clear();
  const uint64_t budget = options_.byte_budget;
  if (options_.policy == CachePolicy::kAllDaily) {
    Preload(index, snapshot, Level::kDaily, budget);
    return Status::OK();
  }
  // kRasedRecency: split the byte budget by (alpha, beta, gamma, theta);
  // whatever the coarser levels cannot fill (an index may simply have fewer
  // weekly cubes than beta's share of bytes) falls back to daily, the level
  // with the most nodes. Compression multiplies here: the shares are bytes,
  // so sparsely-encoded cubes cost the budget only what they actually store.
  const double b = static_cast<double>(budget);
  uint64_t weekly = static_cast<uint64_t>(std::floor(options_.beta * b));
  uint64_t monthly = static_cast<uint64_t>(std::floor(options_.gamma * b));
  uint64_t yearly = static_cast<uint64_t>(std::floor(options_.theta * b));
  Preload(index, snapshot, Level::kWeekly, weekly);
  Preload(index, snapshot, Level::kMonthly, monthly);
  Preload(index, snapshot, Level::kYearly, yearly);
  // Daily receives its alpha share plus the coarser levels' leftover bytes.
  uint64_t used = bytes_used();
  uint64_t remaining = used < budget ? budget - used : 0;
  Preload(index, snapshot, Level::kDaily, remaining);
  return Status::OK();
}

std::shared_ptr<const DataCube> CubeCache::Find(const CubeKey& key) {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (metrics_.misses != nullptr) metrics_.misses->Increment();
    return nullptr;
  }
  ++stats_.hits;
  if (metrics_.hits != nullptr) metrics_.hits->Increment();
  if (options_.policy == CachePolicy::kLru && it->second.in_lru) {
    lru_list_.splice(lru_list_.begin(), lru_list_, it->second.lru_it);
  }
  return it->second.cube;
}

std::shared_ptr<const DataCube> CubeCache::Find(const CubeKey& key,
                                                PageId page) {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.page != page) {
    // Absent, or cached from a different page (a different version of the
    // cube): never serve it to this snapshot.
    ++stats_.misses;
    if (metrics_.misses != nullptr) metrics_.misses->Increment();
    return nullptr;
  }
  ++stats_.hits;
  if (metrics_.hits != nullptr) metrics_.hits->Increment();
  if (options_.policy == CachePolicy::kLru && it->second.in_lru) {
    lru_list_.splice(lru_list_.begin(), lru_list_, it->second.lru_it);
  }
  return it->second.cube;
}

void CubeCache::Insert(const CubeKey& key, const DataCube& cube) {
  Insert(key, kInvalidPageId, cube);
}

void CubeCache::Insert(const CubeKey& key, DataCube&& cube) {
  Insert(key, kInvalidPageId, std::move(cube));
}

void CubeCache::Insert(const CubeKey& key, PageId page,
                       const DataCube& cube) {
  if (options_.policy != CachePolicy::kLru) return;
  // Measure and build the shared copy outside the lock; admission is
  // pointer surgery.
  uint64_t bytes = MeasureEncodedBytes(cube);
  auto shared = std::make_shared<const DataCube>(cube);
  MutexLock lock(&mu_);
  AdmitLru(key, page, bytes, std::move(shared));
}

void CubeCache::Insert(const CubeKey& key, PageId page, DataCube&& cube) {
  if (options_.policy != CachePolicy::kLru) return;
  uint64_t bytes = MeasureEncodedBytes(cube);
  auto shared = std::make_shared<const DataCube>(std::move(cube));
  MutexLock lock(&mu_);
  AdmitLru(key, page, bytes, std::move(shared));
}

void CubeCache::Insert(const CubeKey& key, PageId page, uint64_t encoded_bytes,
                       DataCube&& cube) {
  if (options_.policy != CachePolicy::kLru) return;
  auto shared = std::make_shared<const DataCube>(std::move(cube));
  MutexLock lock(&mu_);
  AdmitLru(key, page, encoded_bytes, std::move(shared));
}

bool CubeCache::Contains(const CubeKey& key) const {
  MutexLock lock(&mu_);
  return entries_.find(key) != entries_.end();
}

bool CubeCache::Contains(const CubeKey& key, PageId page) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.page == page;
}

void CubeCache::AdmitLru(const CubeKey& key, PageId page, uint64_t bytes,
                         std::shared_ptr<const DataCube> cube) {
  if (bytes > options_.byte_budget) return;  // can never fit
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_used_ = bytes_used_ - it->second.bytes + bytes;
    it->second.cube = std::move(cube);
    it->second.page = page;
    it->second.bytes = bytes;
    if (it->second.in_lru) {
      lru_list_.splice(lru_list_.begin(), lru_list_, it->second.lru_it);
    }
    if (metrics_.resident_bytes != nullptr) {
      metrics_.resident_bytes->Set(static_cast<int64_t>(bytes_used_));
    }
    return;
  }
  while (bytes_used_ + bytes > options_.byte_budget && !lru_list_.empty()) {
    CubeKey victim = lru_list_.back();
    lru_list_.pop_back();
    auto vit = entries_.find(victim);
    if (vit != entries_.end()) {
      bytes_used_ -= vit->second.bytes;
      entries_.erase(vit);
    }
    ++stats_.evictions;
    if (metrics_.evictions != nullptr) metrics_.evictions->Increment();
  }
  lru_list_.push_front(key);
  Entry entry{std::move(cube), page, bytes, lru_list_.begin(), true};
  entries_.emplace(key, std::move(entry));
  bytes_used_ += bytes;
  if (metrics_.admissions != nullptr) {
    metrics_.admissions->Increment();
    metrics_.resident->Set(static_cast<int64_t>(entries_.size()));
    metrics_.resident_bytes->Set(static_cast<int64_t>(bytes_used_));
  }
}

void CubeCache::InvalidateRange(const DateRange& range) {
  MutexLock lock(&mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.range().Overlaps(range)) {
      bytes_used_ -= it->second.bytes;
      if (it->second.in_lru) lru_list_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (metrics_.resident != nullptr) {
    metrics_.resident->Set(static_cast<int64_t>(entries_.size()));
    metrics_.resident_bytes->Set(static_cast<int64_t>(bytes_used_));
  }
}

size_t CubeCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

uint64_t CubeCache::bytes_used() const {
  MutexLock lock(&mu_);
  return bytes_used_;
}

CacheStats CubeCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void CubeCache::ResetStats() {
  MutexLock lock(&mu_);
  stats_ = CacheStats{};
}

void CubeCache::ClearLocked() {
  entries_.clear();
  lru_list_.clear();
  bytes_used_ = 0;
  if (metrics_.resident != nullptr) {
    metrics_.resident->Set(0);
    metrics_.resident_bytes->Set(0);
  }
}

void CubeCache::Clear() {
  MutexLock lock(&mu_);
  ClearLocked();
}

}  // namespace rased
