#include "query/query_executor.h"

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "cube/cube_codec.h"
#include "obs/heap_stats.h"
#include "obs/request_context.h"
#include "util/clock.h"
#include "util/logging.h"

namespace rased {

QueryExecutor::QueryExecutor(const TemporalIndex* index, CubeCache* cache,
                             const WorldMap* world, PlanMode mode,
                             MetricsRegistry* metrics)
    : index_(index),
      cache_(cache),
      world_(world),
      mode_(mode),
      optimizer_(index, cache) {
  if (metrics != nullptr) {
    metrics_.queries =
        metrics->GetCounter("rased_queries_total", "Analysis queries executed");
    metrics_.errors = metrics->GetCounter("rased_query_errors_total",
                                          "Analysis queries that failed");
    metrics_.cubes_scanned = metrics->GetCounter(
        "rased_query_cubes_scanned_total", "Cubes aggregated across queries");
    metrics_.alloc_ops = metrics->GetCounter(
        "rased_query_alloc_ops_total",
        "Heap allocation operations charged to query execution");
    // Exemplar tracking remembers the worst trace id per latency bucket
    // (served by /api/trace?worst=1). First registration wins, and the
    // executor registers eagerly, so the option reliably takes effect.
    HistogramOptions latency_options;
    latency_options.track_exemplars = true;
    metrics_.cpu_micros = metrics->GetHistogram(
        "rased_query_cpu_micros",
        "Per-query wall time of planning + aggregation (microseconds)",
        latency_options);
    metrics_.device_micros = metrics->GetHistogram(
        "rased_query_device_micros",
        "Per-query simulated device-model time (microseconds)");
    // Byte-scaled buckets: 1KiB..2GiB at 2x resolution.
    HistogramOptions byte_options;
    byte_options.first_bound = 1024;
    byte_options.num_buckets = 22;
    metrics_.alloc_bytes = metrics->GetHistogram(
        "rased_query_alloc_bytes",
        "Heap bytes allocated per query (allocator usable sizes)",
        byte_options);
    metrics_.alloc_peak_bytes = metrics->GetHistogram(
        "rased_query_alloc_peak_bytes",
        "Peak net-live heap bytes per query above its starting baseline",
        byte_options);
  }
}

QueryPlan QueryExecutor::PlanFor(const AnalysisQuery& query,
                                 const CatalogSnapshot& snapshot) const {
  DateRange window = query.range.Intersect(snapshot.coverage());
  // Grouping by Date needs per-day resolution, which only daily cubes have.
  if (mode_ == PlanMode::kFlat || query.group_date) {
    return optimizer_.PlanFlat(snapshot, window);
  }
  return optimizer_.Plan(snapshot, window);
}

QueryPlan QueryExecutor::PlanFor(const AnalysisQuery& query) const {
  return PlanFor(query, index_->Snapshot());
}

Result<QueryResult> QueryExecutor::Execute(const AnalysisQuery& query) const {
  return Execute(query, index_->Snapshot());
}

namespace {

/// The Country dimension mixes disjoint countries with overlapping
/// zone-of-interest aggregates (continents, US states). A query with no
/// explicit country filter must range over a *partition* of the world —
/// the country-kind zones plus the unknown bucket — or every update inside
/// a continent would be counted twice. Explicitly filtering on a continent
/// or state remains possible by naming it.
std::vector<uint32_t> DefaultCountryPartition(const WorldMap& world) {
  std::vector<uint32_t> ids;
  ids.push_back(kZoneUnknown);
  for (ZoneId id : world.country_ids()) ids.push_back(id);
  return ids;
}

CubeSlice SliceFor(const AnalysisQuery& query, const WorldMap& world) {
  CubeSlice slice;
  for (ElementType t : query.element_types) {
    slice.element_types.push_back(static_cast<uint32_t>(t));
  }
  if (query.countries.empty()) {
    slice.countries = DefaultCountryPartition(world);
  } else {
    for (ZoneId z : query.countries) slice.countries.push_back(z);
  }
  for (RoadTypeId r : query.road_types) slice.road_types.push_back(r);
  for (UpdateType u : query.update_types) {
    slice.update_types.push_back(static_cast<uint32_t>(u));
  }
  // IN-lists are sets: a filter value named twice must not double-count.
  slice.Normalize();
  return slice;
}

}  // namespace

Result<QueryResult> QueryExecutor::Execute(
    const AnalysisQuery& query, const CatalogSnapshot& snapshot) const {
  if (query.percentage && !query.group_country) {
    if (metrics_.errors != nullptr) metrics_.errors->Increment();
    return Status::InvalidArgument(
        "Percentage(*) requires grouping by Country (the denominator is the "
        "country's road-network size)");
  }
  // Every heap byte this thread touches from here on is charged to the
  // query (obs/heap_stats.h interposition) — exact, not sampled, and
  // independent of whether the CPU profiler is running.
  ResourceScope resources;
  const int64_t t_start = NowMicros();

  QueryResult result;
  result.stats.epoch = snapshot.epoch();
  QueryPlan plan = PlanFor(query, snapshot);
  const size_t n = plan.cubes.size();
  result.stats.cubes_total = n;

  CubeSlice slice = SliceFor(query, *world_);
  const int64_t t_planned = NowMicros();

  // ---- Phase 1: gather. Probe the cache for every planned cube up
  // front, then fetch all misses in ONE batched index read so physically
  // adjacent cube pages coalesce into single device operations. Cache
  // hits are shared_ptrs, so each cube stays alive even if a concurrent
  // eviction drops it mid-aggregation; misses live in the batch's own
  // storage and are aggregated zero-copy. The batch read charges this
  // query's IoStats (result.stats.io), so concurrent queries account
  // their I/O independently and deterministically.
  std::vector<std::shared_ptr<const DataCube>> hits(n);
  std::vector<CubeKey> miss_keys;
  std::vector<PageId> miss_pages;
  for (size_t i = 0; i < n; ++i) {
    const CubeKey& key = plan.cubes[i];
    // Page-validated probe: a planned cube always resolves in its own
    // snapshot, and the entry hits only if it was cached from the same
    // page — a stale cube from a retired epoch can never serve here.
    PageId page = snapshot.PageOf(key).value_or(kInvalidPageId);
    if (cache_ != nullptr) hits[i] = cache_->Find(key, page);
    if (hits[i] != nullptr) {
      ++result.stats.cubes_from_cache;
    } else {
      miss_keys.push_back(key);
      miss_pages.push_back(page);
    }
    ++result.stats.cubes_per_level[static_cast<int>(key.level)];
  }
  result.stats.cubes_from_disk = miss_keys.size();
  const int64_t t_probed = NowMicros();

  EncodedCubeBatch fetched;
  if (!miss_keys.empty()) {
    auto batch = index_->ReadCubes(snapshot, miss_keys, &result.stats.io);
    if (!batch.ok()) {
      if (metrics_.errors != nullptr) metrics_.errors->Increment();
      return batch.status();
    }
    fetched = std::move(batch).value();
    if (cache_ != nullptr && cache_->AdmitsOnQuery()) {
      // LRU only: decode a dense copy out of the batch and move it in —
      // the one materialization cache residency requires, and no more.
      // The source page rides along for later page-validated probes, and
      // the catalog's encoded length is what the byte budget charges.
      for (size_t j = 0; j < miss_keys.size(); ++j) {
        auto cube = fetched.Decode(j);
        if (!cube.ok()) {
          if (metrics_.errors != nullptr) metrics_.errors->Increment();
          return cube.status();
        }
        uint64_t bytes = snapshot.EncodedBytesOf(miss_keys[j])
                             .value_or(index_->options().schema.cube_bytes());
        cache_->Insert(miss_keys[j], miss_pages[j], bytes,
                       std::move(cube).value());
      }
    }
  }
  const int64_t t_fetched = NowMicros();

  // ---- Phase 2: aggregate. A flat dense accumulator indexed by the
  // packed grouped coordinates replaces the former per-cell map: cubes
  // fold in through the strided SumSliceInto kernel, and rows are read
  // back out of non-zero slots. Packed slot order is row-major over the
  // grouped dimensions in schema order, which is exactly the row order
  // the old tuple-keyed std::map produced, so output order is unchanged.
  const CubeSchema& schema = index_->options().schema;
  GroupBySpec spec;
  spec.element_type = query.group_element_type;
  spec.country = query.group_country;
  spec.road_type = query.group_road_type;
  spec.update_type = query.group_update_type;
  std::vector<uint64_t> acc(GroupAccumulatorSize(schema, spec), 0);

  // Decodes a packed accumulator slot back into grouped coordinates
  // (kNoGroup for ungrouped dimensions), inverting the kernel's strides.
  auto decode = [&schema, &spec](size_t slot, ResultRow* row) {
    if (spec.update_type) {
      row->update_type = static_cast<int32_t>(slot % schema.num_update_types);
      slot /= schema.num_update_types;
    }
    if (spec.road_type) {
      row->road_type = static_cast<int32_t>(slot % schema.num_road_types);
      slot /= schema.num_road_types;
    }
    if (spec.country) {
      row->country = static_cast<int32_t>(slot % schema.num_countries);
      slot /= schema.num_countries;
    }
    if (spec.element_type) {
      row->element_type = static_cast<int32_t>(slot);
    }
  };

  // Grouping by Date keys rows by each (daily) cube's date on top of the
  // packed coordinates; the accumulator is flushed per cube into a sorted
  // map so the output keeps the old (element_type, date, ...) row order.
  using GroupKey = std::tuple<int32_t, int32_t, int32_t, int32_t, int32_t>;
  std::map<GroupKey, uint64_t> dated_groups;

  size_t next_miss = 0;
  for (size_t i = 0; i < n; ++i) {
    if (hits[i] != nullptr) {
      // Cache hits are decoded cubes: the dense strided kernel applies.
      hits[i]->View().SumSliceInto(slice, spec, acc.data());
    } else {
      // Misses stream their encoded bodies straight into the accumulator —
      // sparse cubes never materialize a dense image on the hot path.
      Status st =
          fetched.AccumulateSlice(next_miss++, slice, spec, acc.data());
      if (!st.ok()) {
        if (metrics_.errors != nullptr) metrics_.errors->Increment();
        return st;
      }
    }
    if (query.group_date) {
      int32_t date_key = plan.cubes[i].range().first.days_since_epoch();
      for (size_t slot = 0; slot < acc.size(); ++slot) {
        if (acc[slot] == 0) continue;
        ResultRow row;
        decode(slot, &row);
        dated_groups[GroupKey{row.element_type, date_key, row.country,
                              row.road_type, row.update_type}] += acc[slot];
        acc[slot] = 0;
      }
    }
  }

  auto finish_row = [&](ResultRow* row) {
    if (query.percentage) {
      uint64_t network = world_->zone(static_cast<ZoneId>(row->country))
                             .road_network_size;
      row->percentage =
          network > 0 ? 100.0 * static_cast<double>(row->count) /
                            static_cast<double>(network)
                      : 0.0;
    }
    result.rows.push_back(*row);
  };

  if (query.group_date) {
    result.rows.reserve(dated_groups.size());
    for (const auto& [gk, count] : dated_groups) {
      ResultRow row;
      row.element_type = std::get<0>(gk);
      row.date = Date::FromDays(std::get<1>(gk));
      row.has_date = true;
      row.country = std::get<2>(gk);
      row.road_type = std::get<3>(gk);
      row.update_type = std::get<4>(gk);
      row.count = count;
      finish_row(&row);
    }
  } else {
    for (size_t slot = 0; slot < acc.size(); ++slot) {
      if (acc[slot] == 0) continue;
      ResultRow row;
      decode(slot, &row);
      row.count = acc[slot];
      finish_row(&row);
    }
  }

  // The device model charges virtual time rather than sleeping, so the
  // measured wall time is pure CPU; total_micros() adds the device charge.
  const int64_t t_done = NowMicros();
  result.stats.cpu_micros = t_done - t_start;

  const ResourceUsage heap = resources.Usage();
  result.stats.alloc_bytes = heap.allocated_bytes;
  result.stats.alloc_ops = heap.alloc_ops;
  result.stats.peak_alloc_bytes = static_cast<uint64_t>(heap.peak_bytes);

  // Span breakdown for /api/trace. All simulated device time is charged
  // during the batched miss fetch, so only that span carries device
  // micros; the wall components partition cpu_micros exactly.
  result.spans = {
      {"plan", t_planned - t_start, 0},
      {"cache_probe", t_probed - t_planned, 0},
      {"fetch", t_fetched - t_probed, result.stats.io.simulated_device_micros},
      {"aggregate", t_done - t_fetched, 0},
  };

  if (metrics_.queries != nullptr) {
    metrics_.queries->Increment();
    metrics_.cubes_scanned->Increment(result.stats.cubes_total);
    metrics_.cpu_micros->Observe(result.stats.cpu_micros, CurrentTraceId());
    metrics_.device_micros->Observe(result.stats.io.simulated_device_micros);
    metrics_.alloc_ops->Increment(result.stats.alloc_ops);
    metrics_.alloc_bytes->Observe(
        static_cast<int64_t>(result.stats.alloc_bytes));
    metrics_.alloc_peak_bytes->Observe(heap.peak_bytes);
  }
  return result;
}

}  // namespace rased
