#include "query/query_executor.h"

#include <map>
#include <memory>
#include <tuple>

#include "util/clock.h"
#include "util/logging.h"

namespace rased {

QueryExecutor::QueryExecutor(const TemporalIndex* index, CubeCache* cache,
                             const WorldMap* world, PlanMode mode)
    : index_(index),
      cache_(cache),
      world_(world),
      mode_(mode),
      optimizer_(index, cache) {}

QueryPlan QueryExecutor::PlanFor(const AnalysisQuery& query) const {
  DateRange window = query.range.Intersect(index_->coverage());
  // Grouping by Date needs per-day resolution, which only daily cubes have.
  if (mode_ == PlanMode::kFlat || query.group_date) {
    return optimizer_.PlanFlat(window);
  }
  return optimizer_.Plan(window);
}

namespace {

/// The Country dimension mixes disjoint countries with overlapping
/// zone-of-interest aggregates (continents, US states). A query with no
/// explicit country filter must range over a *partition* of the world —
/// the country-kind zones plus the unknown bucket — or every update inside
/// a continent would be counted twice. Explicitly filtering on a continent
/// or state remains possible by naming it.
std::vector<uint32_t> DefaultCountryPartition(const WorldMap& world) {
  std::vector<uint32_t> ids;
  ids.push_back(kZoneUnknown);
  for (ZoneId id : world.country_ids()) ids.push_back(id);
  return ids;
}

CubeSlice SliceFor(const AnalysisQuery& query, const WorldMap& world) {
  CubeSlice slice;
  for (ElementType t : query.element_types) {
    slice.element_types.push_back(static_cast<uint32_t>(t));
  }
  if (query.countries.empty()) {
    slice.countries = DefaultCountryPartition(world);
  } else {
    for (ZoneId z : query.countries) slice.countries.push_back(z);
  }
  for (RoadTypeId r : query.road_types) slice.road_types.push_back(r);
  for (UpdateType u : query.update_types) {
    slice.update_types.push_back(static_cast<uint32_t>(u));
  }
  return slice;
}

}  // namespace

Result<QueryResult> QueryExecutor::Execute(const AnalysisQuery& query) const {
  if (query.percentage && !query.group_country) {
    return Status::InvalidArgument(
        "Percentage(*) requires grouping by Country (the denominator is the "
        "country's road-network size)");
  }
  StopWatch watch;

  QueryResult result;
  QueryPlan plan = PlanFor(query);
  result.stats.cubes_total = plan.cubes.size();

  CubeSlice slice = SliceFor(query, *world_);

  // GROUP BY accumulator. Key is the tuple of grouped column values with
  // ResultRow::kNoGroup for ungrouped dimensions; date is carried as
  // days-since-epoch (INT32_MIN when ungrouped).
  using GroupKey = std::tuple<int32_t, int32_t, int32_t, int32_t, int32_t>;
  std::map<GroupKey, uint64_t> groups;

  for (const CubeKey& key : plan.cubes) {
    // A cache hit hands back a shared_ptr, so the cube stays alive even if
    // a concurrent eviction drops it from the cache mid-aggregation.
    std::shared_ptr<const DataCube> cached;
    DataCube from_disk{index_->options().schema};
    if (cache_ != nullptr) cached = cache_->Find(key);
    const DataCube* cube = cached.get();
    if (cube != nullptr) {
      ++result.stats.cubes_from_cache;
    } else {
      // The read charges this query's own IoStats (result.stats.io), so
      // concurrent queries account their I/O independently and
      // deterministically.
      auto read = index_->ReadCube(key, &result.stats.io);
      if (!read.ok()) return read.status();
      from_disk = std::move(read).value();
      cube = &from_disk;
      ++result.stats.cubes_from_disk;
      if (cache_ != nullptr) cache_->Insert(key, from_disk);  // LRU only
    }
    ++result.stats.cubes_per_level[static_cast<int>(key.level)];

    int32_t date_key = query.group_date
                           ? key.range().first.days_since_epoch()
                           : ResultRow::kNoGroup;
    cube->ForEachCell(
        slice, [&](uint32_t et, uint32_t co, uint32_t rt, uint32_t ut,
                   uint64_t count) {
          GroupKey gk{
              query.group_element_type ? static_cast<int32_t>(et)
                                       : ResultRow::kNoGroup,
              date_key,
              query.group_country ? static_cast<int32_t>(co)
                                  : ResultRow::kNoGroup,
              query.group_road_type ? static_cast<int32_t>(rt)
                                    : ResultRow::kNoGroup,
              query.group_update_type ? static_cast<int32_t>(ut)
                                      : ResultRow::kNoGroup};
          groups[gk] += count;
        });
  }

  result.rows.reserve(groups.size());
  for (const auto& [gk, count] : groups) {
    ResultRow row;
    row.element_type = std::get<0>(gk);
    if (query.group_date) {
      row.date = Date::FromDays(std::get<1>(gk));
      row.has_date = true;
    }
    row.country = std::get<2>(gk);
    row.road_type = std::get<3>(gk);
    row.update_type = std::get<4>(gk);
    row.count = count;
    if (query.percentage) {
      uint64_t network = world_->zone(static_cast<ZoneId>(row.country))
                             .road_network_size;
      row.percentage =
          network > 0 ? 100.0 * static_cast<double>(count) /
                            static_cast<double>(network)
                      : 0.0;
    }
    result.rows.push_back(row);
  }

  // The device model charges virtual time rather than sleeping, so the
  // measured wall time is pure CPU; total_micros() adds the device charge.
  result.stats.cpu_micros = watch.ElapsedMicros();
  return result;
}

}  // namespace rased
