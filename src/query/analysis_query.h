#ifndef RASED_QUERY_ANALYSIS_QUERY_H_
#define RASED_QUERY_ANALYSIS_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "collect/update_record.h"
#include "geo/world_map.h"
#include "io/pager.h"
#include "obs/query_trace.h"
#include "osm/element.h"
#include "osm/road_types.h"
#include "util/date.h"

namespace rased {

/// One RASED analysis query (Section IV-A). It mirrors the paper's SQL
/// signature: COUNT(*) over UpdateList, filtered by optional IN-lists on
/// the five dimensions plus a date BETWEEN window, grouped by any subset of
/// the dimensions. Empty filter lists mean "no constraint".
///
///   SELECT <grouped dims>, COUNT(*)            -- or Percentage(*)
///   FROM UpdateList U
///   WHERE U.Date BETWEEN range.first AND range.last
///     AND U.ElementType IN element_types ...   -- when non-empty
///   GROUP BY <grouped dims>
struct AnalysisQuery {
  DateRange range;

  // Filters (empty = all values).
  std::vector<ElementType> element_types;
  std::vector<ZoneId> countries;
  std::vector<RoadTypeId> road_types;
  std::vector<UpdateType> update_types;

  // Group-by flags. Grouping by Date forces a daily-granularity plan: the
  // per-day breakdown cannot be read out of coarser cubes.
  bool group_element_type = false;
  bool group_date = false;
  bool group_country = false;
  bool group_road_type = false;
  bool group_update_type = false;

  /// When true, results are reported as Percentage(*): the count divided
  /// by the road-network size of the row's country (Example 3 /
  /// Figure 5). Requires group_country.
  bool percentage = false;

  std::string ToString() const;
};

/// One output row. Group columns that were not requested hold the sentinel
/// kNoGroup.
struct ResultRow {
  static constexpr int32_t kNoGroup = -1;

  int32_t element_type = kNoGroup;  // ElementType when grouped
  Date date;                        // valid iff grouped by date
  bool has_date = false;
  int32_t country = kNoGroup;    // ZoneId when grouped
  int32_t road_type = kNoGroup;  // RoadTypeId when grouped
  int32_t update_type = kNoGroup;

  uint64_t count = 0;
  /// Filled when the query asked for Percentage(*).
  double percentage = 0.0;
};

/// Execution telemetry: the numbers behind every figure of Section VIII.
struct QueryStats {
  /// Total cubes the plan aggregates, by source.
  uint64_t cubes_total = 0;
  uint64_t cubes_from_cache = 0;
  uint64_t cubes_from_disk = 0;
  uint64_t cubes_per_level[4] = {0, 0, 0, 0};

  /// Epoch of the catalog version this query was pinned to for its whole
  /// plan → probe → fetch pipeline (0 if executed without a snapshot).
  uint64_t epoch = 0;

  /// Page I/O issued while executing (disk cube fetches).
  IoStats io;

  /// Pure CPU time of planning + in-memory aggregation.
  int64_t cpu_micros = 0;

  /// Exact heap attribution (obs/heap_stats.h ResourceScope): bytes and
  /// operations allocated on the executing thread while this query ran,
  /// and the high-water mark of net-live bytes above the scope baseline.
  /// Allocator usable sizes, so on/off profiling changes nothing here.
  uint64_t alloc_bytes = 0;
  uint64_t alloc_ops = 0;
  uint64_t peak_alloc_bytes = 0;

  /// End-to-end response time under the device model:
  /// cpu_micros + io.simulated_device_micros.
  int64_t total_micros() const {
    return cpu_micros + io.simulated_device_micros;
  }

  QueryStats& operator+=(const QueryStats& o);
};

/// A query answer: rows plus how it was computed.
struct QueryResult {
  std::vector<ResultRow> rows;
  QueryStats stats;
  /// Per-stage spans (plan, cache_probe, fetch, aggregate) recorded by the
  /// executor; the serving layer appends a render span and hands the whole
  /// trace to the TraceRecorder behind /api/trace.
  std::vector<TraceSpan> spans;
};

}  // namespace rased

#endif  // RASED_QUERY_ANALYSIS_QUERY_H_
