#ifndef RASED_QUERY_SQL_PARSER_H_
#define RASED_QUERY_SQL_PARSER_H_

#include <string_view>

#include "geo/world_map.h"
#include "osm/road_types.h"
#include "query/analysis_query.h"
#include "util/result.h"

namespace rased {

/// Parser for the SQL dialect the paper uses to present analysis queries
/// (Section IV-A). The accepted grammar is exactly the paper's query
/// signature:
///
///   SELECT <columns> FROM UpdateList [U]
///   [WHERE <predicate> [AND <predicate>]...]
///   [GROUP BY <columns>]
///
///   columns:    [U.]ElementType | [U.]Date | [U.]Country | [U.]RoadType
///             | [U.]UpdateType | COUNT(*) | Percentage(*)
///   predicate:  U.Date BETWEEN <date> AND <date>
///             | U.Date AFTER <date> | U.Date BEFORE <date>
///             | U.<attr> IN [v1, v2, ...]    (parentheses also accepted)
///             | U.<attr> = <value>
///
/// Keywords are case-insensitive; values may be bare words or
/// single/double-quoted strings ('United States'). The paper's generic
/// "Update" update-type expands to {geometry, metadata} — the two concrete
/// modification kinds.
///
/// As in standard SQL, every non-aggregate SELECT column must be grouped;
/// listing it in SELECT implies GROUP BY when the clause is omitted.
class SqlParser {
 public:
  /// `world` resolves country names; `road_types` resolves highway values.
  /// Both must outlive the parser.
  SqlParser(const WorldMap* world, const RoadTypeTable* road_types)
      : world_(world), road_types_(road_types) {}

  /// Parses one statement into an executable AnalysisQuery.
  /// InvalidArgument with a position-annotated message on syntax errors or
  /// unresolvable names.
  Result<AnalysisQuery> Parse(std::string_view sql) const;

 private:
  const WorldMap* world_;
  const RoadTypeTable* road_types_;
};

}  // namespace rased

#endif  // RASED_QUERY_SQL_PARSER_H_
