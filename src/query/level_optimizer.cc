#include "query/level_optimizer.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace rased {

namespace {

/// Lexicographic plan cost: (disk fetches, total cubes).
using Cost = std::pair<uint32_t, uint32_t>;

constexpr Cost kInfinity{std::numeric_limits<uint32_t>::max(),
                         std::numeric_limits<uint32_t>::max()};

}  // namespace

QueryPlan LevelOptimizer::PlanFlat(const CatalogSnapshot& snapshot,
                                   const DateRange& range) const {
  QueryPlan plan;
  plan.cubes = snapshot.ExistingKeys(Level::kDaily, range);
  for (const CubeKey& key : plan.cubes) {
    if (IsCached(snapshot, key)) ++plan.expected_cached;
  }
  return plan;
}

QueryPlan LevelOptimizer::Plan(const CatalogSnapshot& snapshot,
                               const DateRange& range) const {
  QueryPlan plan;
  if (range.empty()) return plan;
  const int n = range.num_days();

  // cost[i] covers the first i days of the window; choice[i] records the
  // cube (or day skip) whose window ends at day i-1 on the optimal path.
  struct Choice {
    CubeKey key;
    int from = 0;
    bool skip = false;  // day with no cube anywhere (outside coverage)
  };
  std::vector<Cost> cost(static_cast<size_t>(n) + 1, kInfinity);
  std::vector<Choice> choice(static_cast<size_t>(n) + 1);
  cost[0] = {0, 0};

  for (int i = 1; i <= n; ++i) {
    Date day = range.first.AddDays(i - 1);
    auto consider = [&](const CubeKey& key, int from, bool skip) {
      if (cost[from] == kInfinity) return;
      Cost c = cost[from];
      if (!skip) {
        c.first += IsCached(snapshot, key) ? 0 : 1;
        c.second += 1;
      }
      if (c < cost[i]) {
        cost[i] = c;
        choice[i] = Choice{key, from, skip};
      }
    };

    CubeKey daily = CubeKey::Daily(day);
    if (snapshot.Contains(daily)) {
      consider(daily, i - 1, /*skip=*/false);
    } else {
      // No data exists for this day at any level; covering it is free.
      consider(daily, i - 1, /*skip=*/true);
    }

    if (day.is_week_end() && i >= 7) {
      CubeKey weekly = CubeKey::Weekly(day);
      if (snapshot.Contains(weekly)) consider(weekly, i - 7, false);
    }
    if (day.is_month_end()) {
      int dim = day.days_in_month();
      if (i >= dim) {
        CubeKey monthly = CubeKey::Monthly(day);
        if (snapshot.Contains(monthly)) consider(monthly, i - dim, false);
      }
    }
    if (day.is_year_end()) {
      int diy = (day - day.year_start()) + 1;  // 365 or 366
      if (i >= diy) {
        CubeKey yearly = CubeKey::Yearly(day);
        if (snapshot.Contains(yearly)) consider(yearly, i - diy, false);
      }
    }
  }

  // Walk the choices back and emit cubes in chronological order.
  std::vector<CubeKey> reversed;
  int i = n;
  while (i > 0) {
    const Choice& c = choice[i];
    if (!c.skip) reversed.push_back(c.key);
    i = c.from;
  }
  plan.cubes.assign(reversed.rbegin(), reversed.rend());
  for (const CubeKey& key : plan.cubes) {
    if (IsCached(snapshot, key)) ++plan.expected_cached;
  }
  return plan;
}

}  // namespace rased
