#ifndef RASED_QUERY_QUERY_EXECUTOR_H_
#define RASED_QUERY_QUERY_EXECUTOR_H_

#include <memory>

#include "cache/cube_cache.h"
#include "geo/world_map.h"
#include "index/temporal_index.h"
#include "obs/metrics_registry.h"
#include "query/analysis_query.h"
#include "query/level_optimizer.h"
#include "util/result.h"

namespace rased {

/// Planning mode, matching the three system variants of Figure 9.
enum class PlanMode {
  kFlat = 0,       ///< RASED-F: daily cubes only, no optimizer
  kOptimized = 1,  ///< RASED-O / full RASED: level-optimized cover
};

/// The Query Execution module (Section VII). Phase 1 gathers the plan's
/// cubes: the cache is probed for every planned cube up front and all
/// misses are fetched in one batched index read, so physically adjacent
/// cube pages coalesce into single device operations. Phase 2 is pure
/// in-memory aggregation into a flat dense GROUP BY accumulator indexed
/// by packed group coordinates: cache hits (decoded cubes) fold in
/// through the strided SumSliceInto kernel, while misses stream their
/// encoded bodies (dense, sparse COO, or delta-varint) straight out of
/// the batch arena — sparse cubes never materialize densely on the hot
/// path.
///
/// Threading contract: the executor is stateless — Execute is const and
/// safe from any number of threads concurrently. Each execution pins one
/// CatalogSnapshot for its whole plan → probe → fetch → aggregate
/// pipeline, so a query started before a catalog publication runs
/// entirely against the pre-publication version (and records its epoch in
/// QueryStats) without ever blocking on — or observing a torn state from
/// — concurrent ingest. Each execution owns its QueryStats (page counts
/// and simulated device micros accumulate through a per-call IoStats
/// threaded into every index read), so concurrent queries produce
/// bit-identical accounting to a serial run. The cache's page-validated
/// probes guarantee a cube cached under a retired epoch never serves a
/// newer snapshot.
class QueryExecutor {
 public:
  /// `cache` may be null (uncached variants). `world` supplies zone names
  /// and road-network sizes for Percentage(*) queries. `metrics`, when
  /// non-null, receives live rased_query_* counters and latency histograms
  /// (registered eagerly here, so /metrics shows the families from boot);
  /// it must outlive the executor.
  QueryExecutor(const TemporalIndex* index, CubeCache* cache,
                const WorldMap* world, PlanMode mode = PlanMode::kOptimized,
                MetricsRegistry* metrics = nullptr);

  /// Runs one analysis query against `snapshot` (a pinned catalog
  /// version). The snapshot's epoch lands in QueryStats::epoch.
  Result<QueryResult> Execute(const AnalysisQuery& query,
                              const CatalogSnapshot& snapshot) const;

  /// Runs one analysis query, pinning the index's current version.
  Result<QueryResult> Execute(const AnalysisQuery& query) const;

  /// Plans without executing, against a pinned snapshot (exposed for
  /// tests and the plan-inspection dashboard endpoint).
  QueryPlan PlanFor(const AnalysisQuery& query,
                    const CatalogSnapshot& snapshot) const;
  QueryPlan PlanFor(const AnalysisQuery& query) const;

  PlanMode mode() const { return mode_; }

 private:
  const TemporalIndex* index_;
  CubeCache* cache_;
  const WorldMap* world_;
  PlanMode mode_;
  LevelOptimizer optimizer_;

  /// Registry handles (all set together in the constructor when `metrics`
  /// is non-null, else all null). Updated lock-free per execution, so the
  /// stateless-const threading contract above is unchanged.
  struct QueryMetrics {
    Counter* queries = nullptr;
    Counter* errors = nullptr;
    Counter* cubes_scanned = nullptr;
    Counter* alloc_ops = nullptr;        // rased_query_alloc_ops_total
    Histogram* cpu_micros = nullptr;     // wall time (fake-clock testable);
                                         // tracks per-bucket exemplars so
                                         // /api/trace?worst=1 can name the
                                         // worst trace id per latency bucket
    Histogram* device_micros = nullptr;  // deterministic device-model time
    Histogram* alloc_bytes = nullptr;      // rased_query_alloc_bytes
    Histogram* alloc_peak_bytes = nullptr; // rased_query_alloc_peak_bytes
  };
  QueryMetrics metrics_;
};

}  // namespace rased

#endif  // RASED_QUERY_QUERY_EXECUTOR_H_
