#include "query/sql_parser.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "util/str_util.h"

namespace rased {

namespace {

enum class TokenKind {
  kWord,    // identifier or keyword (possibly dotted: U.Country)
  kString,  // quoted literal
  kNumber,
  kPunct,  // ( ) [ ] , = *
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // normalized: keywords/idents keep original case
  size_t position;    // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      size_t start = pos_;
      if (c == '\'' || c == '"') {
        ++pos_;
        std::string value;
        while (pos_ < input_.size() && input_[pos_] != c) {
          value.push_back(input_[pos_++]);
        }
        if (pos_ >= input_.size()) {
          return Status::InvalidArgument(
              StrFormat("unterminated string literal at offset %zu", start));
        }
        ++pos_;  // closing quote
        tokens.push_back(Token{TokenKind::kString, value, start});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string word;
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '_' || input_[pos_] == '.')) {
          word.push_back(input_[pos_++]);
        }
        tokens.push_back(Token{TokenKind::kWord, word, start});
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string number;
        while (pos_ < input_.size() &&
               (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '-' || input_[pos_] == '.')) {
          number.push_back(input_[pos_++]);
        }
        tokens.push_back(Token{TokenKind::kNumber, number, start});
      } else if (c == '(' || c == ')' || c == '[' || c == ']' || c == ',' ||
                 c == '=' || c == '*') {
        ++pos_;
        tokens.push_back(Token{TokenKind::kPunct, std::string(1, c), start});
      } else {
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, start));
      }
    }
    tokens.push_back(Token{TokenKind::kEnd, "", input_.size()});
    return tokens;
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
};

enum class Attr {
  kElementType,
  kDate,
  kCountry,
  kRoadType,
  kUpdateType,
  kCount,       // COUNT(*)
  kPercentage,  // Percentage(*)
};

/// The dimension attributes by lowercase name, with any "u." prefix
/// stripped.
Result<Attr> AttrFromWord(const std::string& raw, size_t position) {
  std::string word = AsciiLower(raw);
  size_t dot = word.find('.');
  if (dot != std::string::npos) word = word.substr(dot + 1);
  if (word == "elementtype" || word == "element_type") {
    return Attr::kElementType;
  }
  if (word == "date") return Attr::kDate;
  if (word == "country") return Attr::kCountry;
  if (word == "roadtype" || word == "road_type") return Attr::kRoadType;
  if (word == "updatetype" || word == "update_type") return Attr::kUpdateType;
  if (word == "count") return Attr::kCount;
  if (word == "percentage") return Attr::kPercentage;
  return Status::InvalidArgument(
      StrFormat("unknown column '%s' at offset %zu", raw.c_str(), position));
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const WorldMap* world,
         const RoadTypeTable* road_types)
      : tokens_(std::move(tokens)), world_(world), road_types_(road_types) {}

  Result<AnalysisQuery> Run() {
    AnalysisQuery query;
    bool wants_percentage = false;
    std::vector<Attr> select_columns;

    RASED_RETURN_IF_ERROR(ExpectKeyword("select"));
    // SELECT column list.
    for (;;) {
      RASED_ASSIGN_OR_RETURN(Attr attr, ParseSelectColumn());
      if (attr == Attr::kPercentage) {
        wants_percentage = true;
      } else if (attr != Attr::kCount) {
        select_columns.push_back(attr);
      }
      if (!ConsumePunct(",")) break;
    }

    RASED_RETURN_IF_ERROR(ExpectKeyword("from"));
    if (!ConsumeKeyword("updatelist")) {
      return Error("expected table UpdateList");
    }
    // Optional alias.
    if (Peek().kind == TokenKind::kWord && !PeekIsKeyword("where") &&
        !PeekIsKeyword("group")) {
      ++pos_;
    }

    if (ConsumeKeyword("where")) {
      do {
        RASED_RETURN_IF_ERROR(ParsePredicate(&query));
      } while (ConsumeKeyword("and"));
    }

    std::vector<Attr> group_columns = select_columns;
    if (ConsumeKeyword("group")) {
      RASED_RETURN_IF_ERROR(ExpectKeyword("by"));
      group_columns.clear();
      for (;;) {
        RASED_ASSIGN_OR_RETURN(Attr attr, ParseSelectColumn());
        if (attr == Attr::kCount || attr == Attr::kPercentage) {
          return Error("aggregates cannot appear in GROUP BY");
        }
        group_columns.push_back(attr);
        if (!ConsumePunct(",")) break;
      }
      // Standard SQL: every non-aggregate SELECT column must be grouped.
      for (Attr attr : select_columns) {
        if (std::find(group_columns.begin(), group_columns.end(), attr) ==
            group_columns.end()) {
          return Error("SELECT column missing from GROUP BY");
        }
      }
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }

    for (Attr attr : group_columns) {
      switch (attr) {
        case Attr::kElementType:
          query.group_element_type = true;
          break;
        case Attr::kDate:
          query.group_date = true;
          break;
        case Attr::kCountry:
          query.group_country = true;
          break;
        case Attr::kRoadType:
          query.group_road_type = true;
          break;
        case Attr::kUpdateType:
          query.group_update_type = true;
          break;
        default:
          break;
      }
    }
    query.percentage = wants_percentage;
    if (wants_percentage && !query.group_country) {
      return Error("Percentage(*) requires Country in GROUP BY");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu", what.c_str(), Peek().position));
  }

  bool PeekIsKeyword(const char* keyword) const {
    return Peek().kind == TokenKind::kWord &&
           AsciiLower(Peek().text) == keyword;
  }

  bool ConsumeKeyword(const char* keyword) {
    if (!PeekIsKeyword(keyword)) return false;
    ++pos_;
    return true;
  }

  Status ExpectKeyword(const char* keyword) {
    if (!ConsumeKeyword(keyword)) {
      return Error(StrFormat("expected '%s'", keyword));
    }
    return Status::OK();
  }

  bool ConsumePunct(const char* punct) {
    if (Peek().kind == TokenKind::kPunct && Peek().text == punct) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// A SELECT/GROUP BY column: attribute name or COUNT(*) / Percentage(*).
  Result<Attr> ParseSelectColumn() {
    if (Peek().kind != TokenKind::kWord) return Error("expected column");
    RASED_ASSIGN_OR_RETURN(Attr attr,
                           AttrFromWord(Peek().text, Peek().position));
    ++pos_;
    if (attr == Attr::kCount || attr == Attr::kPercentage) {
      if (!(ConsumePunct("(") && ConsumePunct("*") && ConsumePunct(")"))) {
        return Error("expected (*) after aggregate");
      }
    }
    return attr;
  }

  /// A literal value token (word, string, or number).
  Result<std::string> ParseValue() {
    const Token& token = Peek();
    if (token.kind != TokenKind::kWord && token.kind != TokenKind::kString &&
        token.kind != TokenKind::kNumber) {
      return Error("expected a value");
    }
    ++pos_;
    return token.text;
  }

  Result<Date> ParseDateValue() {
    RASED_ASSIGN_OR_RETURN(std::string text, ParseValue());
    return Date::Parse(text);
  }

  Status ParsePredicate(AnalysisQuery* query) {
    if (Peek().kind != TokenKind::kWord) return Error("expected attribute");
    RASED_ASSIGN_OR_RETURN(Attr attr,
                           AttrFromWord(Peek().text, Peek().position));
    ++pos_;

    if (attr == Attr::kDate) {
      if (ConsumeKeyword("between")) {
        RASED_ASSIGN_OR_RETURN(Date first, ParseDateValue());
        RASED_RETURN_IF_ERROR(ExpectKeyword("and"));
        RASED_ASSIGN_OR_RETURN(Date last, ParseDateValue());
        query->range = DateRange(first, last);
        return Status::OK();
      }
      if (ConsumeKeyword("after")) {
        RASED_ASSIGN_OR_RETURN(Date first, ParseDateValue());
        Date last = query->range.empty() ? Date::FromYmd(9999, 12, 31)
                                         : query->range.last;
        query->range = DateRange(first, last);
        return Status::OK();
      }
      if (ConsumeKeyword("before")) {
        RASED_ASSIGN_OR_RETURN(Date last, ParseDateValue());
        Date first = query->range.empty() ? Date::FromYmd(1, 1, 1)
                                          : query->range.first;
        query->range = DateRange(first, last);
        return Status::OK();
      }
      if (ConsumePunct("=")) {
        RASED_ASSIGN_OR_RETURN(Date day, ParseDateValue());
        query->range = DateRange(day, day);
        return Status::OK();
      }
      return Error("Date supports BETWEEN/AFTER/BEFORE/=");
    }

    // Non-date attributes: IN [list] / IN (list) / = value.
    std::vector<std::string> values;
    if (ConsumeKeyword("in")) {
      bool bracket = ConsumePunct("[");
      if (!bracket && !ConsumePunct("(")) {
        return Error("expected '[' or '(' after IN");
      }
      for (;;) {
        RASED_ASSIGN_OR_RETURN(std::string value, ParseValue());
        values.push_back(value);
        if (!ConsumePunct(",")) break;
      }
      if (!(bracket ? ConsumePunct("]") : ConsumePunct(")"))) {
        return Error(bracket ? "expected ']'" : "expected ')'");
      }
    } else if (ConsumePunct("=")) {
      RASED_ASSIGN_OR_RETURN(std::string value, ParseValue());
      values.push_back(value);
    } else {
      return Error("expected IN or =");
    }
    return ApplyValues(attr, values, query);
  }

  Status ApplyValues(Attr attr, const std::vector<std::string>& values,
                     AnalysisQuery* query) {
    for (const std::string& raw : values) {
      std::string value = AsciiLower(raw);
      switch (attr) {
        case Attr::kElementType: {
          auto parsed = ParseElementType(value);
          if (!parsed.ok()) {
            return Error("unknown element type '" + raw + "'");
          }
          query->element_types.push_back(parsed.value());
          break;
        }
        case Attr::kUpdateType:
          if (value == "new" || value == "create" || value == "created") {
            query->update_types.push_back(UpdateType::kNew);
          } else if (value == "delete" || value == "deleted") {
            query->update_types.push_back(UpdateType::kDelete);
          } else if (value == "geometry") {
            query->update_types.push_back(UpdateType::kGeometry);
          } else if (value == "metadata") {
            query->update_types.push_back(UpdateType::kMetadata);
          } else if (value == "update" || value == "updated" ||
                     value == "modified") {
            // The paper's generic "Update" covers both concrete
            // modification kinds.
            query->update_types.push_back(UpdateType::kGeometry);
            query->update_types.push_back(UpdateType::kMetadata);
          } else {
            return Error("unknown update type '" + raw + "'");
          }
          break;
        case Attr::kCountry: {
          auto zone = world_->FindByName(raw);
          if (!zone.ok()) {
            // Common aliases used in the paper's examples.
            if (value == "usa" || value == "us") {
              zone = world_->FindByName("United States");
            } else if (value == "uk") {
              zone = world_->FindByName("United Kingdom");
            }
          }
          if (!zone.ok()) return Error("unknown country '" + raw + "'");
          query->countries.push_back(zone.value());
          break;
        }
        case Attr::kRoadType: {
          RoadTypeId id = road_types_->Lookup(value);
          if (id == road_types_->other_id() && value != "other") {
            return Error("unknown road type '" + raw + "'");
          }
          query->road_types.push_back(id);
          break;
        }
        default:
          return Error("attribute does not accept value filters");
      }
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const WorldMap* world_;
  const RoadTypeTable* road_types_;
};

}  // namespace

Result<AnalysisQuery> SqlParser::Parse(std::string_view sql) const {
  Lexer lexer(sql);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), world_, road_types_);
  return parser.Run();
}

}  // namespace rased
