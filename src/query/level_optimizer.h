#ifndef RASED_QUERY_LEVEL_OPTIMIZER_H_
#define RASED_QUERY_LEVEL_OPTIMIZER_H_

#include <optional>
#include <vector>

#include "cache/cube_cache.h"
#include "index/temporal_index.h"
#include "index/temporal_key.h"
#include "util/date.h"

namespace rased {

/// The set of cubes a query will aggregate.
struct QueryPlan {
  std::vector<CubeKey> cubes;
  /// Of those, how many the optimizer expects to find in cache.
  size_t expected_cached = 0;
  size_t expected_disk() const { return cubes.size() - expected_cached; }
};

/// The level optimizer (Section VII-B): given a query window, choose the
/// mix of daily/weekly/monthly/yearly cubes that covers it exactly while
/// fetching the fewest cubes from disk — cached cubes are free. Section
/// VII-B's worked example (Jan 1 – Feb 15) is reproduced verbatim in the
/// unit tests.
///
/// Plans are computed against a pinned CatalogSnapshot, so a plan never
/// mixes cube availability from two different published versions; cache
/// probes are page-validated against the same snapshot.
class LevelOptimizer {
 public:
  /// `cache` may be null (no caching, the RASED-O variant of Figure 9).
  LevelOptimizer(const TemporalIndex* index, const CubeCache* cache)
      : index_(index), cache_(cache) {}

  /// Exact minimum-cost cover via dynamic programming over the window's
  /// days, resolved against `snapshot`. Cost is lexicographic (disk
  /// fetches, total cubes): plans with fewer disk reads win; among those,
  /// fewer cubes overall.
  QueryPlan Plan(const CatalogSnapshot& snapshot,
                 const DateRange& range) const;

  /// The flat plan: daily cubes only (the RASED-F variant of Figure 9 and
  /// the forced plan for date-grouped queries).
  QueryPlan PlanFlat(const CatalogSnapshot& snapshot,
                     const DateRange& range) const;

  // Conveniences pinning the index's current version for one plan. The
  // executor pins a single snapshot per query and uses the overloads
  // above instead.
  QueryPlan Plan(const DateRange& range) const {
    return Plan(index_->Snapshot(), range);
  }
  QueryPlan PlanFlat(const DateRange& range) const {
    return PlanFlat(index_->Snapshot(), range);
  }

 private:
  bool IsCached(const CatalogSnapshot& snapshot, const CubeKey& key) const {
    if (cache_ == nullptr) return false;
    std::optional<PageId> page = snapshot.PageOf(key);
    return page.has_value() && cache_->Contains(key, *page);
  }

  const TemporalIndex* index_;
  const CubeCache* cache_;
};

}  // namespace rased

#endif  // RASED_QUERY_LEVEL_OPTIMIZER_H_
