#ifndef RASED_QUERY_LEVEL_OPTIMIZER_H_
#define RASED_QUERY_LEVEL_OPTIMIZER_H_

#include <vector>

#include "cache/cube_cache.h"
#include "index/temporal_index.h"
#include "index/temporal_key.h"
#include "util/date.h"

namespace rased {

/// The set of cubes a query will aggregate.
struct QueryPlan {
  std::vector<CubeKey> cubes;
  /// Of those, how many the optimizer expects to find in cache.
  size_t expected_cached = 0;
  size_t expected_disk() const { return cubes.size() - expected_cached; }
};

/// The level optimizer (Section VII-B): given a query window, choose the
/// mix of daily/weekly/monthly/yearly cubes that covers it exactly while
/// fetching the fewest cubes from disk — cached cubes are free. Section
/// VII-B's worked example (Jan 1 – Feb 15) is reproduced verbatim in the
/// unit tests.
class LevelOptimizer {
 public:
  /// `cache` may be null (no caching, the RASED-O variant of Figure 9).
  LevelOptimizer(const TemporalIndex* index, const CubeCache* cache)
      : index_(index), cache_(cache) {}

  /// Exact minimum-cost cover via dynamic programming over the window's
  /// days. Cost is lexicographic (disk fetches, total cubes): plans with
  /// fewer disk reads win; among those, fewer cubes overall.
  QueryPlan Plan(const DateRange& range) const;

  /// The flat plan: daily cubes only (the RASED-F variant of Figure 9 and
  /// the forced plan for date-grouped queries).
  QueryPlan PlanFlat(const DateRange& range) const;

 private:
  bool IsCached(const CubeKey& key) const {
    return cache_ != nullptr && cache_->Contains(key);
  }

  const TemporalIndex* index_;
  const CubeCache* cache_;
};

}  // namespace rased

#endif  // RASED_QUERY_LEVEL_OPTIMIZER_H_
