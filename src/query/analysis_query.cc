#include "query/analysis_query.h"

#include <algorithm>

#include "util/str_util.h"

namespace rased {

std::string AnalysisQuery::ToString() const {
  std::string groups;
  auto add_group = [&groups](bool flag, const char* name) {
    if (!flag) return;
    if (!groups.empty()) groups += ",";
    groups += name;
  };
  add_group(group_element_type, "ElementType");
  add_group(group_date, "Date");
  add_group(group_country, "Country");
  add_group(group_road_type, "RoadType");
  add_group(group_update_type, "UpdateType");
  return StrFormat(
      "AnalysisQuery{%s, filters: et=%zu co=%zu rt=%zu ut=%zu, group by [%s]%s}",
      range.ToString().c_str(), element_types.size(), countries.size(),
      road_types.size(), update_types.size(), groups.c_str(),
      percentage ? ", percentage" : "");
}

QueryStats& QueryStats::operator+=(const QueryStats& o) {
  cubes_total += o.cubes_total;
  cubes_from_cache += o.cubes_from_cache;
  cubes_from_disk += o.cubes_from_disk;
  for (int i = 0; i < 4; ++i) cubes_per_level[i] += o.cubes_per_level[i];
  // Epochs don't sum: aggregated stats report the newest version observed.
  epoch = std::max(epoch, o.epoch);
  io += o.io;
  cpu_micros += o.cpu_micros;
  alloc_bytes += o.alloc_bytes;
  alloc_ops += o.alloc_ops;
  // Peaks don't sum either: concurrent peaks are not additive, so report
  // the worst single-query high-water mark.
  peak_alloc_bytes = std::max(peak_alloc_bytes, o.peak_alloc_bytes);
  return *this;
}

}  // namespace rased
