#ifndef RASED_OSM_ROAD_TYPES_H_
#define RASED_OSM_ROAD_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rased {

/// Integer id of a road type (a value of OSM's highway=* tag). Id 0 is
/// reserved for "(none)": elements that are not part of the road network
/// (e.g. a POI node) still produce UpdateList tuples but carry no road type.
using RoadTypeId = uint16_t;
inline constexpr RoadTypeId kRoadTypeNone = 0;

/// RoadTypeTable maps highway=* tag values to the dense RoadType dimension
/// of the data cubes (Section VI-A lists 150 possible road types).
///
/// The table is pre-seeded with the canonical OSM highway taxonomy
/// (motorway .. bus_stop) and grows on demand: an unseen highway value is
/// assigned the next id until `capacity` is reached, after which it falls
/// into the catch-all "other" bucket. This mirrors how a production RASED
/// would pin the cube dimension while the OSM folksonomy keeps inventing
/// values.
class RoadTypeTable {
 public:
  /// `capacity` is the cube dimension size, including slot 0 ("(none)")
  /// and the "other" bucket. The paper uses 150.
  explicit RoadTypeTable(size_t capacity = 150);

  /// Id for a highway tag value, interning it if there is room.
  RoadTypeId Intern(std::string_view highway_value);

  /// Id for a value without interning; returns the "other" bucket when the
  /// value is unknown.
  RoadTypeId Lookup(std::string_view highway_value) const;

  /// Name for an id ("(none)", "residential", "other", ...).
  const std::string& Name(RoadTypeId id) const;

  /// Number of assigned ids (including "(none)" and "other").
  size_t size() const { return names_.size(); }
  size_t capacity() const { return capacity_; }

  RoadTypeId other_id() const { return other_id_; }

  /// The canonical seed taxonomy (without "(none)"/"other"), in seed order.
  static const std::vector<std::string>& CanonicalHighwayValues();

 private:
  size_t capacity_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, RoadTypeId> index_;
  RoadTypeId other_id_;
};

}  // namespace rased

#endif  // RASED_OSM_ROAD_TYPES_H_
