#ifndef RASED_OSM_ROAD_TYPES_H_
#define RASED_OSM_ROAD_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.h"

namespace rased {

/// Integer id of a road type (a value of OSM's highway=* tag). Id 0 is
/// reserved for "(none)": elements that are not part of the road network
/// (e.g. a POI node) still produce UpdateList tuples but carry no road type.
using RoadTypeId = uint16_t;
inline constexpr RoadTypeId kRoadTypeNone = 0;

/// RoadTypeTable maps highway=* tag values to the dense RoadType dimension
/// of the data cubes (Section VI-A lists 150 possible road types).
///
/// The table is pre-seeded with the canonical OSM highway taxonomy
/// (motorway .. bus_stop) and grows on demand: an unseen highway value is
/// assigned the next id until `capacity` is reached, after which it falls
/// into the catch-all "other" bucket. This mirrors how a production RASED
/// would pin the cube dimension while the OSM folksonomy keeps inventing
/// values.
///
/// Threading contract: internally synchronized. Dashboard workers resolve
/// names (Lookup/Name) concurrently while a crawl thread may be interning
/// new values; Name therefore returns by value, never a reference into
/// the growing table.
class RoadTypeTable {
 public:
  /// `capacity` is the cube dimension size, including slot 0 ("(none)")
  /// and the "other" bucket. The paper uses 150.
  explicit RoadTypeTable(size_t capacity = 150);

  /// Id for a highway tag value, interning it if there is room.
  RoadTypeId Intern(std::string_view highway_value) RASED_EXCLUDES(mu_);

  /// Id for a value without interning; returns the "other" bucket when the
  /// value is unknown.
  RoadTypeId Lookup(std::string_view highway_value) const
      RASED_EXCLUDES(mu_);

  /// Name for an id ("(none)", "residential", "other", ...).
  std::string Name(RoadTypeId id) const RASED_EXCLUDES(mu_);

  /// Number of assigned ids (including "(none)" and "other").
  size_t size() const RASED_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return names_.size();
  }
  size_t capacity() const { return capacity_; }

  RoadTypeId other_id() const { return other_id_; }

  /// The canonical seed taxonomy (without "(none)"/"other"), in seed order.
  static const std::vector<std::string>& CanonicalHighwayValues();

 private:
  const size_t capacity_;
  /// Guards the growing name table; held only for map/vector surgery.
  mutable Mutex mu_;
  std::vector<std::string> names_ RASED_GUARDED_BY(mu_);
  std::unordered_map<std::string, RoadTypeId> index_ RASED_GUARDED_BY(mu_);
  RoadTypeId other_id_ RASED_CONST_AFTER_INIT;  // fixed in the constructor
};

}  // namespace rased

#endif  // RASED_OSM_ROAD_TYPES_H_
