#include "osm/history.h"

#include "osm/element_xml.h"
#include "xml/xml_reader.h"

namespace rased {

Status HistoryReader::Parse(std::string_view xml, const Callback& cb) {
  XmlReader reader(xml);
  for (;;) {
    RASED_ASSIGN_OR_RETURN(XmlEvent ev, reader.Next());
    if (ev == XmlEvent::kEof) return Status::OK();
    if (ev == XmlEvent::kStartElement) break;
  }
  if (reader.name() != "osm") {
    return Status::Corruption("expected <osm> root, got <" + reader.name() +
                              ">");
  }
  for (;;) {
    RASED_ASSIGN_OR_RETURN(XmlEvent ev, reader.Next());
    if (ev == XmlEvent::kEndElement || ev == XmlEvent::kEof) break;
    if (ev != XmlEvent::kStartElement) continue;
    const std::string& name = reader.name();
    if (name != "node" && name != "way" && name != "relation") {
      RASED_RETURN_IF_ERROR(reader.SkipElement());
      continue;
    }
    Element element;
    RASED_RETURN_IF_ERROR(internal_osm::ParseElement(reader, &element));
    RASED_RETURN_IF_ERROR(cb(element));
  }
  return Status::OK();
}

Result<std::vector<Element>> HistoryReader::ParseAll(std::string_view xml) {
  std::vector<Element> out;
  Status s = Parse(xml, [&out](const Element& e) {
    out.push_back(e);
    return Status::OK();
  });
  if (!s.ok()) return s;
  return out;
}

HistoryWriter::HistoryWriter() : writer_(&buffer_) {
  writer_.WriteDeclaration();
  writer_.StartElement("osm");
  writer_.Attribute("version", "0.6");
  writer_.Attribute("generator", "rased-synth");
}

void HistoryWriter::Add(const Element& element) {
  internal_osm::WriteElement(writer_, element);
}

std::string HistoryWriter::Finish() {
  if (!finished_) {
    writer_.EndElement();  // osm
    finished_ = true;
  }
  return std::move(buffer_);
}

}  // namespace rased
