#include "osm/road_types.h"

#include <algorithm>

#include "util/logging.h"

namespace rased {

const std::vector<std::string>& RoadTypeTable::CanonicalHighwayValues() {
  // The core OSM highway taxonomy: principal road classes, their link
  // roads, paths, lifecycle prefixes, and common road-related point
  // features. Order is stable because cube cells are keyed by these ids.
  static const std::vector<std::string>* kValues = new std::vector<std::string>{
      "motorway",       "trunk",          "primary",
      "secondary",      "tertiary",       "unclassified",
      "residential",    "service",        "motorway_link",
      "trunk_link",     "primary_link",   "secondary_link",
      "tertiary_link",  "living_street",  "pedestrian",
      "track",          "bus_guideway",   "escape",
      "raceway",        "road",           "busway",
      "footway",        "bridleway",      "steps",
      "corridor",       "path",           "cycleway",
      "construction",   "proposed",       "planned",
      "platform",       "services",       "rest_area",
      "turning_circle", "turning_loop",   "mini_roundabout",
      "motorway_junction",               "passing_place",
      "traffic_signals","stop",           "give_way",
      "crossing",       "bus_stop",       "speed_camera",
      "street_lamp",    "elevator",       "emergency_bay",
      "emergency_access_point",          "milestone",
      "trailhead",      "toll_gantry",    "traffic_mirror",
      "disused",        "abandoned",      "razed",
  };
  return *kValues;
}

RoadTypeTable::RoadTypeTable(size_t capacity) : capacity_(capacity) {
  RASED_CHECK(capacity_ >= 3) << "need room for (none), other, and one type";
  names_.push_back("(none)");  // slot 0: not a road
  names_.push_back("other");   // slot 1: catch-all bucket
  other_id_ = 1;
  for (const std::string& v : CanonicalHighwayValues()) {
    if (names_.size() >= capacity_) break;
    index_.emplace(v, static_cast<RoadTypeId>(names_.size()));
    names_.push_back(v);
  }
}

RoadTypeId RoadTypeTable::Intern(std::string_view highway_value) {
  if (highway_value.empty()) return kRoadTypeNone;
  MutexLock lock(&mu_);
  auto it = index_.find(std::string(highway_value));
  if (it != index_.end()) return it->second;
  if (names_.size() < capacity_) {
    RoadTypeId id = static_cast<RoadTypeId>(names_.size());
    index_.emplace(std::string(highway_value), id);
    names_.emplace_back(highway_value);
    return id;
  }
  return other_id_;
}

RoadTypeId RoadTypeTable::Lookup(std::string_view highway_value) const {
  if (highway_value.empty()) return kRoadTypeNone;
  MutexLock lock(&mu_);
  auto it = index_.find(std::string(highway_value));
  return it != index_.end() ? it->second : other_id_;
}

std::string RoadTypeTable::Name(RoadTypeId id) const {
  MutexLock lock(&mu_);
  RASED_CHECK(id < names_.size()) << "road type id " << id << " out of range";
  return names_[id];
}

}  // namespace rased
