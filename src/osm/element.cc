#include "osm/element.h"

#include <algorithm>
#include <cstdio>

#include "util/str_util.h"

namespace rased {

std::string_view ElementTypeName(ElementType type) {
  switch (type) {
    case ElementType::kNode:
      return "node";
    case ElementType::kWay:
      return "way";
    case ElementType::kRelation:
      return "relation";
  }
  return "?";
}

Result<ElementType> ParseElementType(std::string_view name) {
  if (name == "node") return ElementType::kNode;
  if (name == "way") return ElementType::kWay;
  if (name == "relation") return ElementType::kRelation;
  return Status::InvalidArgument("unknown element type '" + std::string(name) +
                                 "'");
}

Result<OsmTimestamp> OsmTimestamp::Parse(std::string_view text) {
  // "YYYY-MM-DDTHH:MM:SSZ"
  if (text.size() < 20 || text[10] != 'T' || text.back() != 'Z') {
    return Status::InvalidArgument("bad OSM timestamp '" + std::string(text) +
                                   "'");
  }
  auto date = Date::Parse(text.substr(0, 10));
  if (!date.ok()) return date.status();
  int h = 0, m = 0, s = 0;
  std::string hms(text.substr(11, 8));
  if (std::sscanf(hms.c_str(), "%d:%d:%d", &h, &m, &s) != 3 || h < 0 ||
      h > 23 || m < 0 || m > 59 || s < 0 || s > 60) {
    return Status::InvalidArgument("bad OSM time '" + std::string(text) + "'");
  }
  OsmTimestamp ts;
  ts.date = date.value();
  ts.sec_of_day = h * 3600 + m * 60 + s;
  return ts;
}

std::string OsmTimestamp::ToString() const {
  int h = sec_of_day / 3600;
  int m = (sec_of_day / 60) % 60;
  int s = sec_of_day % 60;
  return StrFormat("%sT%02d:%02d:%02dZ", date.ToString().c_str(), h, m, s);
}

const std::string* Element::FindTag(std::string_view key) const {
  for (const Tag& t : tags) {
    if (t.key == key) return &t.value;
  }
  return nullptr;
}

bool Element::GeometryDiffers(const Element& a, const Element& b) {
  if (a.type != b.type) return true;
  switch (a.type) {
    case ElementType::kNode:
      return a.lat != b.lat || a.lon != b.lon;
    case ElementType::kWay:
      return a.node_refs != b.node_refs;
    case ElementType::kRelation:
      return !(a.members == b.members);
  }
  return false;
}

bool Element::TagsDiffer(const Element& a, const Element& b) {
  if (a.tags.size() != b.tags.size()) return true;
  // Tag order is not semantically meaningful; compare as sorted sets.
  auto sorted = [](const std::vector<Tag>& tags) {
    std::vector<Tag> copy = tags;
    std::sort(copy.begin(), copy.end(), [](const Tag& x, const Tag& y) {
      return x.key != y.key ? x.key < y.key : x.value < y.value;
    });
    return copy;
  };
  return !(sorted(a.tags) == sorted(b.tags));
}

}  // namespace rased
