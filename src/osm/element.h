#ifndef RASED_OSM_ELEMENT_H_
#define RASED_OSM_ELEMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/date.h"
#include "util/result.h"

namespace rased {

/// The three OSM element kinds (Section II-A of the paper).
enum class ElementType : uint8_t { kNode = 0, kWay = 1, kRelation = 2 };
inline constexpr int kNumElementTypes = 3;

/// Short lowercase name ("node"/"way"/"relation") as used in OSM XML.
std::string_view ElementTypeName(ElementType type);

/// Inverse of ElementTypeName. InvalidArgument for anything else.
Result<ElementType> ParseElementType(std::string_view name);

/// One key=value tag.
struct Tag {
  std::string key;
  std::string value;

  friend bool operator==(const Tag& a, const Tag& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// Second-resolution UTC timestamp as used in OSM XML
/// ("YYYY-MM-DDTHH:MM:SSZ"). RASED's cubes only ever consume the Date part,
/// but the file formats round-trip the full value.
struct OsmTimestamp {
  Date date;
  int32_t sec_of_day = 0;  // 0..86399

  static Result<OsmTimestamp> Parse(std::string_view text);
  std::string ToString() const;

  friend bool operator==(const OsmTimestamp& a, const OsmTimestamp& b) {
    return a.date == b.date && a.sec_of_day == b.sec_of_day;
  }
  friend bool operator<(const OsmTimestamp& a, const OsmTimestamp& b) {
    return a.date != b.date ? a.date < b.date : a.sec_of_day < b.sec_of_day;
  }
};

/// Version metadata common to every element version.
struct ElementMeta {
  int64_t id = 0;
  int32_t version = 1;
  OsmTimestamp timestamp;
  uint64_t changeset = 0;
  uint64_t uid = 0;
  std::string user;
  /// False marks a deletion version in full-history files.
  bool visible = true;
};

/// Member of a relation.
struct RelationMember {
  ElementType type = ElementType::kNode;
  int64_t ref = 0;
  std::string role;

  friend bool operator==(const RelationMember& a, const RelationMember& b) {
    return a.type == b.type && a.ref == b.ref && a.role == b.role;
  }
};

/// A single OSM element version of any type. One struct (rather than a
/// class hierarchy) keeps streaming parsers allocation-friendly; the
/// type-specific fields are simply unused for the other kinds.
struct Element {
  ElementType type = ElementType::kNode;
  ElementMeta meta;

  // Node-only.
  double lat = 0.0;
  double lon = 0.0;

  // Way-only.
  std::vector<int64_t> node_refs;

  // Relation-only.
  std::vector<RelationMember> members;

  std::vector<Tag> tags;

  /// Value of the tag with the given key, or nullptr.
  const std::string* FindTag(std::string_view key) const;

  /// True when the element carries a highway=* tag, i.e. is part of the
  /// road network RASED monitors.
  bool IsRoad() const { return FindTag("highway") != nullptr; }

  /// True when the two versions differ in geometry: node coordinates, way
  /// node list, or relation member list (Section V, monthly crawler).
  static bool GeometryDiffers(const Element& a, const Element& b);

  /// True when the two versions differ in their tag sets.
  static bool TagsDiffer(const Element& a, const Element& b);
};

}  // namespace rased

#endif  // RASED_OSM_ELEMENT_H_
