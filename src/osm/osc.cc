#include "osm/osc.h"

#include "osm/element_xml.h"
#include "util/str_util.h"
#include "xml/xml_reader.h"

namespace rased {

std::string_view ChangeActionName(ChangeAction action) {
  switch (action) {
    case ChangeAction::kCreate:
      return "create";
    case ChangeAction::kModify:
      return "modify";
    case ChangeAction::kDelete:
      return "delete";
  }
  return "?";
}

namespace {

Result<ChangeAction> ParseChangeAction(std::string_view name) {
  if (name == "create") return ChangeAction::kCreate;
  if (name == "modify") return ChangeAction::kModify;
  if (name == "delete") return ChangeAction::kDelete;
  return Status::Corruption("unknown osmChange block <" + std::string(name) +
                            ">");
}

}  // namespace

Status OscReader::Parse(std::string_view xml, const Callback& cb) {
  XmlReader reader(xml);

  // Expect the <osmChange> root.
  for (;;) {
    RASED_ASSIGN_OR_RETURN(XmlEvent ev, reader.Next());
    if (ev == XmlEvent::kEof) return Status::OK();  // empty document
    if (ev == XmlEvent::kStartElement) break;
  }
  if (reader.name() != "osmChange") {
    return Status::Corruption("expected <osmChange> root, got <" +
                              reader.name() + ">");
  }

  // Walk <create>/<modify>/<delete> blocks.
  for (;;) {
    RASED_ASSIGN_OR_RETURN(XmlEvent ev, reader.Next());
    if (ev == XmlEvent::kEndElement || ev == XmlEvent::kEof) break;
    if (ev != XmlEvent::kStartElement) continue;
    RASED_ASSIGN_OR_RETURN(ChangeAction action,
                           ParseChangeAction(reader.name()));
    // Elements inside the block.
    for (;;) {
      RASED_ASSIGN_OR_RETURN(XmlEvent block_ev, reader.Next());
      if (block_ev == XmlEvent::kEndElement) break;
      if (block_ev == XmlEvent::kEof) {
        return Status::Corruption("EOF inside osmChange block");
      }
      if (block_ev != XmlEvent::kStartElement) continue;
      OsmChange change;
      change.action = action;
      RASED_RETURN_IF_ERROR(
          internal_osm::ParseElement(reader, &change.element));
      RASED_RETURN_IF_ERROR(cb(change));
    }
  }
  return Status::OK();
}

Result<std::vector<OsmChange>> OscReader::ParseAll(std::string_view xml) {
  std::vector<OsmChange> out;
  Status s = Parse(xml, [&out](const OsmChange& change) {
    out.push_back(change);
    return Status::OK();
  });
  if (!s.ok()) return s;
  return out;
}

OscWriter::OscWriter() : writer_(&buffer_) {
  writer_.WriteDeclaration();
  writer_.StartElement("osmChange");
  writer_.Attribute("version", "0.6");
  writer_.Attribute("generator", "rased-synth");
}

void OscWriter::EnsureBlock(ChangeAction action) {
  if (block_open_ && block_action_ == action) return;
  if (block_open_) writer_.EndElement();
  writer_.StartElement(ChangeActionName(action));
  block_open_ = true;
  block_action_ = action;
}

void OscWriter::Add(ChangeAction action, const Element& element) {
  EnsureBlock(action);
  internal_osm::WriteElement(writer_, element);
}

std::string OscWriter::Finish() {
  if (!finished_) {
    if (block_open_) writer_.EndElement();
    writer_.EndElement();  // osmChange
    finished_ = true;
  }
  return std::move(buffer_);
}

}  // namespace rased
