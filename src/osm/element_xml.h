#ifndef RASED_OSM_ELEMENT_XML_H_
#define RASED_OSM_ELEMENT_XML_H_

#include "osm/element.h"
#include "xml/xml_reader.h"
#include "xml/xml_writer.h"

namespace rased {
namespace internal_osm {

/// Parses one <node>/<way>/<relation> element. The reader must be
/// positioned just after the element's kStartElement event was returned;
/// on success the matching kEndElement has been consumed.
Status ParseElement(XmlReader& reader, Element* out);

/// Emits one element in OSM XML form, including tags/nds/members.
void WriteElement(XmlWriter& writer, const Element& element);

/// Writes/parses a list of <tag k="" v=""/> children (shared with
/// changesets).
void WriteTags(XmlWriter& writer, const std::vector<Tag>& tags);

}  // namespace internal_osm
}  // namespace rased

#endif  // RASED_OSM_ELEMENT_XML_H_
