#include "osm/changeset.h"

#include "osm/element_xml.h"
#include "util/str_util.h"
#include "xml/xml_reader.h"

namespace rased {

namespace {

Status ParseOneChangeset(XmlReader& reader, Changeset* out) {
  *out = Changeset();
  const std::string* id = reader.FindAttr("id");
  if (id == nullptr) {
    return Status::Corruption(
        StrFormat("<changeset> missing id (line %d)", reader.line()));
  }
  RASED_ASSIGN_OR_RETURN(out->id, ParseUint(*id));
  if (const std::string* v = reader.FindAttr("created_at")) {
    RASED_ASSIGN_OR_RETURN(out->created_at, OsmTimestamp::Parse(*v));
  }
  if (const std::string* v = reader.FindAttr("closed_at")) {
    RASED_ASSIGN_OR_RETURN(out->closed_at, OsmTimestamp::Parse(*v));
  }
  if (const std::string* v = reader.FindAttr("open")) {
    out->open = (*v == "true");
  }
  if (const std::string* v = reader.FindAttr("uid")) {
    RASED_ASSIGN_OR_RETURN(out->uid, ParseUint(*v));
  }
  if (const std::string* v = reader.FindAttr("user")) {
    out->user = *v;
  }
  if (const std::string* v = reader.FindAttr("num_changes")) {
    RASED_ASSIGN_OR_RETURN(uint64_t n, ParseUint(*v));
    out->num_changes = static_cast<uint32_t>(n);
  }
  const std::string* min_lat = reader.FindAttr("min_lat");
  const std::string* min_lon = reader.FindAttr("min_lon");
  const std::string* max_lat = reader.FindAttr("max_lat");
  const std::string* max_lon = reader.FindAttr("max_lon");
  if (min_lat != nullptr && min_lon != nullptr && max_lat != nullptr &&
      max_lon != nullptr) {
    out->has_bbox = true;
    RASED_ASSIGN_OR_RETURN(out->min_lat, ParseDouble(*min_lat));
    RASED_ASSIGN_OR_RETURN(out->min_lon, ParseDouble(*min_lon));
    RASED_ASSIGN_OR_RETURN(out->max_lat, ParseDouble(*max_lat));
    RASED_ASSIGN_OR_RETURN(out->max_lon, ParseDouble(*max_lon));
  }

  // Children: <tag k v/> and (ignored) discussion elements.
  for (;;) {
    RASED_ASSIGN_OR_RETURN(XmlEvent ev, reader.Next());
    if (ev == XmlEvent::kEndElement) break;
    if (ev == XmlEvent::kEof) {
      return Status::Corruption("EOF inside <changeset>");
    }
    if (ev != XmlEvent::kStartElement) continue;
    if (reader.name() == "tag") {
      const std::string* k = reader.FindAttr("k");
      const std::string* v = reader.FindAttr("v");
      if (k != nullptr && v != nullptr) out->tags.push_back(Tag{*k, *v});
    }
    RASED_RETURN_IF_ERROR(reader.SkipElement());
  }
  return Status::OK();
}

}  // namespace

Status ChangesetReader::Parse(std::string_view xml, const Callback& cb) {
  XmlReader reader(xml);
  for (;;) {
    RASED_ASSIGN_OR_RETURN(XmlEvent ev, reader.Next());
    if (ev == XmlEvent::kEof) return Status::OK();
    if (ev == XmlEvent::kStartElement) break;
  }
  if (reader.name() != "osm") {
    return Status::Corruption("expected <osm> root, got <" + reader.name() +
                              ">");
  }
  for (;;) {
    RASED_ASSIGN_OR_RETURN(XmlEvent ev, reader.Next());
    if (ev == XmlEvent::kEndElement || ev == XmlEvent::kEof) break;
    if (ev != XmlEvent::kStartElement) continue;
    if (reader.name() != "changeset") {
      RASED_RETURN_IF_ERROR(reader.SkipElement());
      continue;
    }
    Changeset cs;
    RASED_RETURN_IF_ERROR(ParseOneChangeset(reader, &cs));
    RASED_RETURN_IF_ERROR(cb(cs));
  }
  return Status::OK();
}

Result<std::vector<Changeset>> ChangesetReader::ParseAll(
    std::string_view xml) {
  std::vector<Changeset> out;
  Status s = Parse(xml, [&out](const Changeset& cs) {
    out.push_back(cs);
    return Status::OK();
  });
  if (!s.ok()) return s;
  return out;
}

ChangesetWriter::ChangesetWriter() : writer_(&buffer_) {
  writer_.WriteDeclaration();
  writer_.StartElement("osm");
  writer_.Attribute("version", "0.6");
  writer_.Attribute("generator", "rased-synth");
}

void ChangesetWriter::Add(const Changeset& changeset) {
  writer_.StartElement("changeset");
  writer_.Attribute("id", changeset.id);
  writer_.Attribute("created_at", changeset.created_at.ToString());
  if (!changeset.open) {
    writer_.Attribute("closed_at", changeset.closed_at.ToString());
  }
  writer_.Attribute("open", changeset.open ? "true" : "false");
  writer_.Attribute("uid", changeset.uid);
  if (!changeset.user.empty()) writer_.Attribute("user", changeset.user);
  writer_.Attribute("num_changes",
                    static_cast<uint64_t>(changeset.num_changes));
  if (changeset.has_bbox) {
    writer_.AttributeCoord("min_lat", changeset.min_lat);
    writer_.AttributeCoord("min_lon", changeset.min_lon);
    writer_.AttributeCoord("max_lat", changeset.max_lat);
    writer_.AttributeCoord("max_lon", changeset.max_lon);
  }
  internal_osm::WriteTags(writer_, changeset.tags);
  writer_.EndElement();
}

std::string ChangesetWriter::Finish() {
  if (!finished_) {
    writer_.EndElement();  // osm
    finished_ = true;
  }
  return std::move(buffer_);
}

}  // namespace rased
