#include "osm/element_xml.h"

#include "util/str_util.h"

namespace rased {
namespace internal_osm {

namespace {

Status MissingAttr(const XmlReader& reader, const char* attr) {
  return Status::Corruption(StrFormat("<%s> missing attribute '%s' (line %d)",
                                      reader.name().c_str(), attr,
                                      reader.line()));
}

Status ParseMeta(XmlReader& reader, ElementMeta* meta) {
  const std::string* id = reader.FindAttr("id");
  if (id == nullptr) return MissingAttr(reader, "id");
  RASED_ASSIGN_OR_RETURN(meta->id, ParseInt(*id));

  if (const std::string* v = reader.FindAttr("version")) {
    RASED_ASSIGN_OR_RETURN(int64_t ver, ParseInt(*v));
    meta->version = static_cast<int32_t>(ver);
  }
  if (const std::string* ts = reader.FindAttr("timestamp")) {
    RASED_ASSIGN_OR_RETURN(meta->timestamp, OsmTimestamp::Parse(*ts));
  }
  if (const std::string* cs = reader.FindAttr("changeset")) {
    RASED_ASSIGN_OR_RETURN(meta->changeset, ParseUint(*cs));
  }
  if (const std::string* uid = reader.FindAttr("uid")) {
    RASED_ASSIGN_OR_RETURN(meta->uid, ParseUint(*uid));
  }
  if (const std::string* user = reader.FindAttr("user")) {
    meta->user = *user;
  }
  if (const std::string* visible = reader.FindAttr("visible")) {
    meta->visible = (*visible != "false");
  } else {
    meta->visible = true;
  }
  return Status::OK();
}

}  // namespace

Status ParseElement(XmlReader& reader, Element* out) {
  *out = Element();
  RASED_ASSIGN_OR_RETURN(out->type, ParseElementType(reader.name()));
  RASED_RETURN_IF_ERROR(ParseMeta(reader, &out->meta));

  if (out->type == ElementType::kNode) {
    // Deleted node versions in full-history files may omit coordinates.
    const std::string* lat = reader.FindAttr("lat");
    const std::string* lon = reader.FindAttr("lon");
    if (lat != nullptr && lon != nullptr) {
      RASED_ASSIGN_OR_RETURN(out->lat, ParseDouble(*lat));
      RASED_ASSIGN_OR_RETURN(out->lon, ParseDouble(*lon));
    } else if (out->meta.visible) {
      return MissingAttr(reader, "lat/lon");
    }
  }

  // Children: <tag/>, <nd/>, <member/> until the element's end tag.
  for (;;) {
    auto ev = reader.Next();
    if (!ev.ok()) return ev.status();
    if (ev.value() == XmlEvent::kEndElement) break;
    if (ev.value() == XmlEvent::kEof) {
      return Status::Corruption("EOF inside element");
    }
    if (ev.value() == XmlEvent::kText) continue;
    // kStartElement
    const std::string& child = reader.name();
    if (child == "tag") {
      const std::string* k = reader.FindAttr("k");
      const std::string* v = reader.FindAttr("v");
      if (k == nullptr || v == nullptr) return MissingAttr(reader, "k/v");
      out->tags.push_back(Tag{*k, *v});
      RASED_RETURN_IF_ERROR(reader.SkipElement());
    } else if (child == "nd") {
      const std::string* ref = reader.FindAttr("ref");
      if (ref == nullptr) return MissingAttr(reader, "ref");
      RASED_ASSIGN_OR_RETURN(int64_t r, ParseInt(*ref));
      out->node_refs.push_back(r);
      RASED_RETURN_IF_ERROR(reader.SkipElement());
    } else if (child == "member") {
      RelationMember member;
      const std::string* type = reader.FindAttr("type");
      const std::string* ref = reader.FindAttr("ref");
      if (type == nullptr || ref == nullptr) {
        return MissingAttr(reader, "type/ref");
      }
      RASED_ASSIGN_OR_RETURN(member.type, ParseElementType(*type));
      RASED_ASSIGN_OR_RETURN(member.ref, ParseInt(*ref));
      if (const std::string* role = reader.FindAttr("role")) {
        member.role = *role;
      }
      out->members.push_back(std::move(member));
      RASED_RETURN_IF_ERROR(reader.SkipElement());
    } else {
      // Unknown child element; tolerated and skipped.
      RASED_RETURN_IF_ERROR(reader.SkipElement());
    }
  }
  return Status::OK();
}

void WriteTags(XmlWriter& writer, const std::vector<Tag>& tags) {
  for (const Tag& t : tags) {
    writer.StartElement("tag");
    writer.Attribute("k", t.key);
    writer.Attribute("v", t.value);
    writer.EndElement();
  }
}

void WriteElement(XmlWriter& writer, const Element& element) {
  writer.StartElement(ElementTypeName(element.type));
  writer.Attribute("id", element.meta.id);
  writer.Attribute("version", static_cast<int64_t>(element.meta.version));
  writer.Attribute("timestamp", element.meta.timestamp.ToString());
  writer.Attribute("changeset", element.meta.changeset);
  writer.Attribute("uid", element.meta.uid);
  if (!element.meta.user.empty()) writer.Attribute("user", element.meta.user);
  if (!element.meta.visible) writer.Attribute("visible", "false");
  if (element.type == ElementType::kNode && element.meta.visible) {
    writer.AttributeCoord("lat", element.lat);
    writer.AttributeCoord("lon", element.lon);
  }
  for (int64_t ref : element.node_refs) {
    writer.StartElement("nd");
    writer.Attribute("ref", ref);
    writer.EndElement();
  }
  for (const RelationMember& m : element.members) {
    writer.StartElement("member");
    writer.Attribute("type", ElementTypeName(m.type));
    writer.Attribute("ref", m.ref);
    writer.Attribute("role", m.role);
    writer.EndElement();
  }
  WriteTags(writer, element.tags);
  writer.EndElement();
}

}  // namespace internal_osm
}  // namespace rased
