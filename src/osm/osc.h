#ifndef RASED_OSM_OSC_H_
#define RASED_OSM_OSC_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "osm/element.h"
#include "util/result.h"
#include "xml/xml_writer.h"

namespace rased {

/// The three change blocks of an osmChange (.osc) diff file.
enum class ChangeAction : uint8_t { kCreate = 0, kModify = 1, kDelete = 2 };

std::string_view ChangeActionName(ChangeAction action);

/// One entry of a diff file: an action applied to an element after-image
/// (diff files store only the after-image; Section II-B).
struct OsmChange {
  ChangeAction action;
  Element element;
};

/// Parser for OSM osmChange diff files, the format of the minutely/hourly/
/// daily replication diffs RASED's daily crawler consumes.
class OscReader {
 public:
  using Callback = std::function<Status(const OsmChange&)>;

  /// Streams every change to `cb` in file order. Parsing stops at the
  /// first error or non-OK callback status.
  static Status Parse(std::string_view xml, const Callback& cb);

  /// Convenience: collects all changes into a vector.
  static Result<std::vector<OsmChange>> ParseAll(std::string_view xml);
};

/// Incremental writer producing an osmChange document. Changes may be
/// appended in any order; consecutive changes with the same action share
/// one <create>/<modify>/<delete> block like real planet diffs.
class OscWriter {
 public:
  OscWriter();

  void Add(ChangeAction action, const Element& element);

  /// Closes any open block and returns the finished document. The writer
  /// must not be reused afterwards.
  std::string Finish();

 private:
  void EnsureBlock(ChangeAction action);

  std::string buffer_;
  XmlWriter writer_;
  bool block_open_ = false;
  ChangeAction block_action_ = ChangeAction::kCreate;
  bool finished_ = false;
};

}  // namespace rased

#endif  // RASED_OSM_OSC_H_
