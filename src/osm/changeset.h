#ifndef RASED_OSM_CHANGESET_H_
#define RASED_OSM_CHANGESET_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "osm/element.h"
#include "util/result.h"
#include "xml/xml_writer.h"

namespace rased {

/// Metadata describing one OSM changeset (Section II-B): all updates
/// submitted by one user in one session, with a bounding box covering the
/// edits. RASED's daily crawler joins diff entries against this table to
/// locate way/relation updates geographically.
struct Changeset {
  uint64_t id = 0;
  OsmTimestamp created_at;
  OsmTimestamp closed_at;
  bool open = false;
  uint64_t uid = 0;
  std::string user;
  uint32_t num_changes = 0;

  /// Bounding box of the session's edits. Empty changesets (e.g. tag-only
  /// uploads) have no box.
  bool has_bbox = false;
  double min_lat = 0.0;
  double min_lon = 0.0;
  double max_lat = 0.0;
  double max_lon = 0.0;

  std::vector<Tag> tags;

  /// Centre point of the bounding box (the paper assigns each way/relation
  /// update the centre of its changeset's box). Requires has_bbox.
  double center_lat() const { return (min_lat + max_lat) / 2.0; }
  double center_lon() const { return (min_lon + max_lon) / 2.0; }
};

/// Reader for changeset metadata files (<osm><changeset .../>...</osm>).
class ChangesetReader {
 public:
  using Callback = std::function<Status(const Changeset&)>;

  static Status Parse(std::string_view xml, const Callback& cb);
  static Result<std::vector<Changeset>> ParseAll(std::string_view xml);
};

/// Writer emitting the same format.
class ChangesetWriter {
 public:
  ChangesetWriter();

  void Add(const Changeset& changeset);
  std::string Finish();

 private:
  std::string buffer_;
  XmlWriter writer_;
  bool finished_ = false;
};

}  // namespace rased

#endif  // RASED_OSM_CHANGESET_H_
