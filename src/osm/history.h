#ifndef RASED_OSM_HISTORY_H_
#define RASED_OSM_HISTORY_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "osm/element.h"
#include "util/result.h"
#include "xml/xml_writer.h"

namespace rased {

/// Reader for OSM full-history planet files (Section II-B): a single <osm>
/// document containing *every version* of every element, with
/// visible="false" marking deletion versions. Versions of one element are
/// stored consecutively in ascending version order, which is what the
/// monthly crawler relies on to compare consecutive versions.
class HistoryReader {
 public:
  using Callback = std::function<Status(const Element&)>;

  static Status Parse(std::string_view xml, const Callback& cb);
  static Result<std::vector<Element>> ParseAll(std::string_view xml);
};

/// Writer emitting full-history documents in the same layout.
class HistoryWriter {
 public:
  HistoryWriter();

  void Add(const Element& element);
  std::string Finish();

 private:
  std::string buffer_;
  XmlWriter writer_;
  bool finished_ = false;
};

}  // namespace rased

#endif  // RASED_OSM_HISTORY_H_
