#ifndef RASED_DBMS_BUFFER_POOL_H_
#define RASED_DBMS_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "io/pager.h"
#include "util/result.h"

namespace rased {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// LRU page buffer pool in front of a Pager — the PostgreSQL-shared-buffers
/// stand-in of the baseline DBMS (Figure 10 sets it to the same 2 GB as
/// RASED's cube cache). Read-only: the baseline engine never dirties pages
/// on the query path.
class BufferPool {
 public:
  /// `capacity_pages` frames; 0 disables caching entirely.
  BufferPool(Pager* pager, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pointer to the page's payload (valid until the next Fetch).
  /// Misses read through the pager and may evict the LRU frame.
  Result<const unsigned char*> Fetch(PageId page);

  /// Drops a cached frame (after the owner rewrote the page on disk).
  void Invalidate(PageId page);

  size_t capacity() const { return capacity_; }
  size_t size() const { return frames_.size(); }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }
  void Clear();

 private:
  struct Frame {
    std::vector<unsigned char> data;
    std::list<PageId>::iterator lru_it;
  };

  Pager* pager_;
  size_t capacity_;
  BufferPoolStats stats_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recent
  std::vector<unsigned char> uncached_;  // scratch when capacity == 0
};

}  // namespace rased

#endif  // RASED_DBMS_BUFFER_POOL_H_
