#include "dbms/baseline_dbms.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <tuple>

#include "io/env.h"
#include "util/clock.h"
#include "util/logging.h"

namespace rased {

BaselineDbms::BaselineDbms(DbmsOptions options, std::unique_ptr<Pager> pager)
    : options_(std::move(options)), pager_(std::move(pager)) {
  size_t frames = static_cast<size_t>(options_.buffer_pool_bytes /
                                      options_.page_size);
  pool_ = std::make_unique<BufferPool>(pager_.get(), frames);
  tail_.assign(pager_->payload_size(), 0);
}

BaselineDbms::~BaselineDbms() {
  Status s = Sync();
  if (!s.ok()) RASED_LOG(Warning) << "BaselineDbms close: " << s.ToString();
}

Result<std::unique_ptr<BaselineDbms>> BaselineDbms::Create(
    const DbmsOptions& options) {
  RASED_RETURN_IF_ERROR(env::CreateDirs(options.dir));
  std::string path = env::JoinPath(options.dir, "heap.pages");
  if (env::FileExists(path)) {
    return Status::AlreadyExists("dbms heap already exists in " + options.dir);
  }
  auto pager = Pager::Create(path, options.page_size, options.device);
  if (!pager.ok()) return pager.status();
  return std::unique_ptr<BaselineDbms>(
      new BaselineDbms(options, std::move(pager).value()));
}

Result<std::unique_ptr<BaselineDbms>> BaselineDbms::Open(
    const DbmsOptions& options) {
  std::string path = env::JoinPath(options.dir, "heap.pages");
  auto pager = Pager::Open(path, options.device);
  if (!pager.ok()) return pager.status();
  auto dbms = std::unique_ptr<BaselineDbms>(
      new BaselineDbms(options, std::move(pager).value()));
  // Recover the row count from the page slot headers.
  std::vector<unsigned char> buf(dbms->pager_->payload_size());
  for (PageId page = 1; page <= dbms->pager_->num_pages(); ++page) {
    RASED_RETURN_IF_ERROR(dbms->pager_->ReadPage(page, buf.data()));
    uint32_t count;
    std::memcpy(&count, buf.data(), 4);
    dbms->num_records_ += count;
  }
  return dbms;
}

Status BaselineDbms::Append(const std::vector<UpdateRecord>& records) {
  const size_t per_page = RecordsPerPage();
  for (const UpdateRecord& r : records) {
    if (tail_page_ == kInvalidPageId) {
      RASED_ASSIGN_OR_RETURN(tail_page_, pager_->AllocatePage());
      std::fill(tail_.begin(), tail_.end(), 0);
      tail_count_ = 0;
    }
    r.EncodeTo(tail_.data() + 4 + tail_count_ * UpdateRecord::kEncodedBytes);
    ++tail_count_;
    ++num_records_;
    tail_dirty_ = true;
    if (tail_count_ == per_page) {
      RASED_RETURN_IF_ERROR(FlushTail());
      tail_page_ = kInvalidPageId;
    }
  }
  return Status::OK();
}

Status BaselineDbms::FlushTail() {
  if (tail_page_ == kInvalidPageId || !tail_dirty_) return Status::OK();
  std::memcpy(tail_.data(), &tail_count_, 4);
  RASED_RETURN_IF_ERROR(
      pager_->WritePage(tail_page_, tail_.data(), tail_.size()));
  pool_->Invalidate(tail_page_);
  tail_dirty_ = false;
  return Status::OK();
}

Status BaselineDbms::Sync() {
  RASED_RETURN_IF_ERROR(FlushTail());
  return pager_->Sync();
}

Result<QueryResult> BaselineDbms::Execute(const AnalysisQuery& query) {
  if (query.percentage) {
    return Status::NotSupported(
        "the baseline engine reports raw counts only");
  }
  StopWatch watch;
  IoStats io_before = pager_->stats();
  QueryResult result;

  // Pre-expand filters into dense lookup tables (what a real executor's
  // expression compilation would do).
  auto allow = [](auto&& list, size_t domain) {
    std::vector<char> allowed(domain, list.empty() ? 1 : 0);
    for (auto v : list) {
      size_t idx = static_cast<size_t>(v);
      if (idx < domain) allowed[idx] = 1;
    }
    return allowed;
  };
  std::vector<char> et_ok = allow(query.element_types, kNumElementTypes);
  std::vector<char> co_ok = allow(query.countries, 1 << 16);
  std::vector<char> rt_ok = allow(query.road_types, 1 << 16);
  std::vector<char> ut_ok = allow(query.update_types, kNumUpdateTypes);

  using GroupKey = std::tuple<int32_t, int32_t, int32_t, int32_t, int32_t>;
  std::map<GroupKey, uint64_t> groups;

  // Make the heap self-contained before scanning (a real engine's dirty
  // tail page would be visible through its buffer pool).
  RASED_RETURN_IF_ERROR(FlushTail());

  auto scan_record = [&](const UpdateRecord& r) {
    if (!query.range.empty() && !query.range.Contains(r.date)) return;
    if (!et_ok[static_cast<size_t>(r.element_type)]) return;
    if (!co_ok[r.country]) return;
    if (!rt_ok[r.road_type]) return;
    if (!ut_ok[static_cast<size_t>(r.update_type)]) return;
    GroupKey gk{
          query.group_element_type
              ? static_cast<int32_t>(r.element_type)
              : ResultRow::kNoGroup,
          query.group_date ? r.date.days_since_epoch() : ResultRow::kNoGroup,
          query.group_country ? static_cast<int32_t>(r.country)
                              : ResultRow::kNoGroup,
          query.group_road_type ? static_cast<int32_t>(r.road_type)
                                : ResultRow::kNoGroup,
          query.group_update_type ? static_cast<int32_t>(r.update_type)
                                  : ResultRow::kNoGroup};
    groups[gk] += 1;
  };

  // Full scan: the GROUP BY touches attributes no single index covers, so
  // the whole heap streams through the buffer pool.
  for (PageId page = 1; page <= pager_->num_pages(); ++page) {
    auto data = pool_->Fetch(page);
    if (!data.ok()) return data.status();
    uint32_t count;
    std::memcpy(&count, data.value(), 4);
    for (uint32_t slot = 0; slot < count; ++slot) {
      scan_record(UpdateRecord::DecodeFrom(
          data.value() + 4 + slot * UpdateRecord::kEncodedBytes));
    }
  }

  result.rows.reserve(groups.size());
  for (const auto& [gk, count] : groups) {
    ResultRow row;
    row.element_type = std::get<0>(gk);
    if (query.group_date) {
      row.date = Date::FromDays(std::get<1>(gk));
      row.has_date = true;
    }
    row.country = std::get<2>(gk);
    row.road_type = std::get<3>(gk);
    row.update_type = std::get<4>(gk);
    row.count = count;
    result.rows.push_back(row);
  }

  result.stats.io = pager_->stats() - io_before;
  result.stats.cpu_micros = watch.ElapsedMicros();
  return result;
}

}  // namespace rased
