#include "dbms/buffer_pool.h"

namespace rased {

BufferPool::BufferPool(Pager* pager, size_t capacity_pages)
    : pager_(pager), capacity_(capacity_pages) {}

Result<const unsigned char*> BufferPool::Fetch(PageId page) {
  if (capacity_ == 0) {
    uncached_.resize(pager_->payload_size());
    RASED_RETURN_IF_ERROR(pager_->ReadPage(page, uncached_.data()));
    ++stats_.misses;
    return const_cast<const unsigned char*>(uncached_.data());
  }
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return const_cast<const unsigned char*>(it->second.data.data());
  }
  ++stats_.misses;
  while (frames_.size() >= capacity_ && !lru_.empty()) {
    PageId victim = lru_.back();
    lru_.pop_back();
    frames_.erase(victim);
    ++stats_.evictions;
  }
  Frame frame;
  frame.data.resize(pager_->payload_size());
  RASED_RETURN_IF_ERROR(pager_->ReadPage(page, frame.data.data()));
  lru_.push_front(page);
  frame.lru_it = lru_.begin();
  auto [inserted, ok] = frames_.emplace(page, std::move(frame));
  return const_cast<const unsigned char*>(inserted->second.data.data());
}

void BufferPool::Invalidate(PageId page) {
  auto it = frames_.find(page);
  if (it == frames_.end()) return;
  lru_.erase(it->second.lru_it);
  frames_.erase(it);
}

void BufferPool::Clear() {
  frames_.clear();
  lru_.clear();
}

}  // namespace rased
