#ifndef RASED_DBMS_BASELINE_DBMS_H_
#define RASED_DBMS_BASELINE_DBMS_H_

#include <memory>
#include <string>
#include <vector>

#include "collect/update_record.h"
#include "dbms/buffer_pool.h"
#include "io/pager.h"
#include "query/analysis_query.h"
#include "util/result.h"

namespace rased {

struct DbmsOptions {
  std::string dir;
  DeviceModel device;
  size_t page_size = 8192;
  /// Shared-buffers budget; Figure 10 matches it to RASED's 2 GB cache.
  uint64_t buffer_pool_bytes = 2ull << 30;
};

/// The traditional-DBMS baseline of Section VIII-C: UpdateList rows in a
/// heap file, queried by a full scan with hash aggregation — the plan a
/// row store executes for the paper's multi-attribute GROUP BY signature
/// (no index can serve an arbitrary 5-dimensional group-by, which is why
/// PostgreSQL sits at ~1000 s regardless of the window).
///
/// It shares UpdateRecord, AnalysisQuery, and the device cost model with
/// RASED proper, so Figure 10's comparison isolates the architecture
/// (precomputed cube hierarchy vs. scan).
class BaselineDbms {
 public:
  static Result<std::unique_ptr<BaselineDbms>> Create(
      const DbmsOptions& options);
  static Result<std::unique_ptr<BaselineDbms>> Open(
      const DbmsOptions& options);

  BaselineDbms(const BaselineDbms&) = delete;
  BaselineDbms& operator=(const BaselineDbms&) = delete;
  ~BaselineDbms();

  /// Appends rows to the heap.
  Status Append(const std::vector<UpdateRecord>& records);

  /// Full-scan execution of an analysis query. Result rows match
  /// QueryExecutor's output for the same query (verified by integration
  /// tests); stats report the scan's I/O and buffer-pool behaviour.
  Result<QueryResult> Execute(const AnalysisQuery& query);

  uint64_t num_records() const { return num_records_; }
  uint64_t num_pages() const { return pager_->num_pages(); }
  Pager* pager() { return pager_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }

  Status Sync();

 private:
  BaselineDbms(DbmsOptions options, std::unique_ptr<Pager> pager);

  size_t RecordsPerPage() const {
    return (pager_->payload_size() - 4) / UpdateRecord::kEncodedBytes;
  }
  Status FlushTail();

  DbmsOptions options_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  uint64_t num_records_ = 0;

  std::vector<unsigned char> tail_;
  uint32_t tail_count_ = 0;
  PageId tail_page_ = kInvalidPageId;
  bool tail_dirty_ = false;
};

}  // namespace rased

#endif  // RASED_DBMS_BASELINE_DBMS_H_
