#ifndef RASED_CORE_REPLICATION_INGESTOR_H_
#define RASED_CORE_REPLICATION_INGESTOR_H_

#include <string>

#include "collect/replication.h"
#include "core/rased.h"

namespace rased {

/// Connects a RASED instance to a replication feed: each CatchUp crawls
/// every unapplied diff, groups the resulting UpdateList tuples by day,
/// and ingests complete days through the normal daily pipeline. Each
/// ingested day stages its cubes off to the side and lands as one atomic
/// catalog publication (MVCC), so a dashboard serving queries while
/// CatchUp runs never stalls and never sees a half-applied day — readers
/// pinned before a day's publication keep their epoch, readers arriving
/// after see the day and all of its rollups at once.
///
/// Day finalization: the temporal index appends one cube per day, once —
/// so a day is ingested only when the feed has moved past it (a newer
/// day's sequence exists). The trailing, possibly-still-growing day stays
/// unapplied (the cursor does not advance past it) and is re-crawled on
/// the next CatchUp; pass finalize_all=true to force it in (end of feed).
///
/// Diffs must not span days (true of the planet's daily diffs and of
/// UpdateGenerator's artifacts); a mixed-day diff fails the ingest.
class ReplicationIngestor {
 public:
  /// The cursor lives inside the instance directory, so an instance
  /// tracks its own position in the feed. `rased` must outlive this.
  ReplicationIngestor(Rased* rased, std::string feed_dir);

  struct CatchUpStats {
    uint64_t sequences_applied = 0;
    uint64_t days_ingested = 0;
    uint64_t records_ingested = 0;
  };

  /// Applies all complete days newer than the cursor. With finalize_all,
  /// the trailing day is ingested too.
  Result<CatchUpStats> CatchUp(bool finalize_all = false);

  /// Last fully ingested sequence.
  Result<uint64_t> LastApplied() const { return cursor_.LastApplied(); }

 private:
  Rased* rased_;
  ReplicationDirectory feed_;
  ReplicationCursor cursor_;
  /// Feed-progress metrics, registered in the ctor on the instance's
  /// registry: sequences applied across CatchUps, the ingest lag (latest
  /// feed sequence minus last applied) refreshed by each CatchUp, and the
  /// util/clock.h NowMicros stamp of the last CatchUp that reached the
  /// feed — /readyz compares it against the lag to detect wedged ingest,
  /// and a FakeClock makes it exactly assertable in tests.
  Counter* sequences_counter_ = nullptr;
  Gauge* lag_gauge_ = nullptr;
  Gauge* last_progress_gauge_ = nullptr;
};

}  // namespace rased

#endif  // RASED_CORE_REPLICATION_INGESTOR_H_
