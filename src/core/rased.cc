#include "core/rased.h"

#include "cube/agg_kernels.h"
#include "io/env.h"
#include "obs/build_info.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

Rased::Rased(const RasedOptions& options) : options_(options) {}

std::string Rased::MetaPath(const std::string& dir) {
  return env::JoinPath(dir, "rased.meta");
}

Status Rased::SaveMeta() const {
  std::string out = "rased-meta v1\n";
  out += StrFormat("schema %u %u %u %u\n", options_.schema.num_element_types,
                   options_.schema.num_countries,
                   options_.schema.num_road_types,
                   options_.schema.num_update_types);
  out += StrFormat("levels %d\n", options_.num_levels);
  out += StrFormat("warehouse %d\n", options_.enable_warehouse ? 1 : 0);
  // Interned road types are cube coordinates; restarts must reproduce the
  // id assignment exactly.
  for (size_t i = 0; i < road_types_->size(); ++i) {
    out += StrFormat("roadtype %zu %s\n", i,
                     road_types_->Name(static_cast<RoadTypeId>(i)).c_str());
  }
  // Country road-network sizes (Percentage(*) denominators); aggregates
  // are derived on load.
  for (ZoneId id : world_->country_ids()) {
    uint64_t size = world_->zone(id).road_network_size;
    if (size > 0) {
      out += StrFormat("zonesize %u %llu\n", id,
                       static_cast<unsigned long long>(size));
    }
  }
  return env::WriteFileAtomic(MetaPath(options_.dir), out);
}

Status Rased::LoadMeta() {
  RASED_ASSIGN_OR_RETURN(std::string contents,
                         env::ReadFile(MetaPath(options_.dir)));
  std::vector<std::string> lines = Split(contents, '\n');
  if (lines.empty() || lines[0] != "rased-meta v1") {
    return Status::Corruption("bad rased.meta header in " + options_.dir);
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = Trim(lines[i]);
    if (line.empty()) continue;
    // roadtype values may contain no spaces (highway tag values), so a
    // plain split is safe.
    std::vector<std::string> f = Split(line, ' ');
    if (f[0] == "schema" && f.size() == 5) {
      CubeSchema s;
      RASED_ASSIGN_OR_RETURN(int64_t et, ParseInt(f[1]));
      RASED_ASSIGN_OR_RETURN(int64_t co, ParseInt(f[2]));
      RASED_ASSIGN_OR_RETURN(int64_t rt, ParseInt(f[3]));
      RASED_ASSIGN_OR_RETURN(int64_t ut, ParseInt(f[4]));
      s.num_element_types = static_cast<uint32_t>(et);
      s.num_countries = static_cast<uint32_t>(co);
      s.num_road_types = static_cast<uint32_t>(rt);
      s.num_update_types = static_cast<uint32_t>(ut);
      if (!(s == options_.schema)) {
        return Status::InvalidArgument("rased.meta schema " + s.ToString() +
                                       " does not match requested " +
                                       options_.schema.ToString());
      }
    } else if (f[0] == "levels" && f.size() == 2) {
      RASED_ASSIGN_OR_RETURN(int64_t levels, ParseInt(f[1]));
      if (levels != options_.num_levels) {
        return Status::InvalidArgument(
            StrFormat("rased.meta has %d levels, requested %d",
                      static_cast<int>(levels), options_.num_levels));
      }
    } else if (f[0] == "warehouse" && f.size() == 2) {
      // Informational; the index/warehouse files themselves decide.
    } else if (f[0] == "roadtype" && f.size() == 3) {
      RASED_ASSIGN_OR_RETURN(uint64_t id, ParseUint(f[1]));
      RoadTypeId got = road_types_->Intern(f[2]);
      if (id <= 1) continue;  // "(none)"/"other" are structural
      if (got != static_cast<RoadTypeId>(id)) {
        return Status::Corruption(
            StrFormat("road type '%s' restored as id %u, expected %llu",
                      f[2].c_str(), got,
                      static_cast<unsigned long long>(id)));
      }
    } else if (f[0] == "zonesize" && f.size() == 3) {
      RASED_ASSIGN_OR_RETURN(uint64_t id, ParseUint(f[1]));
      RASED_ASSIGN_OR_RETURN(uint64_t size, ParseUint(f[2]));
      if (id < world_->num_zones() &&
          world_->zone(static_cast<ZoneId>(id)).kind == ZoneKind::kCountry) {
        world_->SetRoadNetworkSize(static_cast<ZoneId>(id), size);
      }
    } else {
      return Status::Corruption("bad rased.meta line: " + std::string(line));
    }
  }
  return Status::OK();
}

Result<RasedOptions> Rased::LoadOptions(const std::string& dir) {
  RASED_ASSIGN_OR_RETURN(std::string contents, env::ReadFile(MetaPath(dir)));
  std::vector<std::string> lines = Split(contents, '\n');
  if (lines.empty() || lines[0] != "rased-meta v1") {
    return Status::Corruption("bad rased.meta header in " + dir);
  }
  RasedOptions options;
  options.dir = dir;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::vector<std::string> f = Split(Trim(lines[i]), ' ');
    if (f.empty()) continue;
    if (f[0] == "schema" && f.size() == 5) {
      RASED_ASSIGN_OR_RETURN(int64_t et, ParseInt(f[1]));
      RASED_ASSIGN_OR_RETURN(int64_t co, ParseInt(f[2]));
      RASED_ASSIGN_OR_RETURN(int64_t rt, ParseInt(f[3]));
      RASED_ASSIGN_OR_RETURN(int64_t ut, ParseInt(f[4]));
      options.schema.num_element_types = static_cast<uint32_t>(et);
      options.schema.num_countries = static_cast<uint32_t>(co);
      options.schema.num_road_types = static_cast<uint32_t>(rt);
      options.schema.num_update_types = static_cast<uint32_t>(ut);
    } else if (f[0] == "levels" && f.size() == 2) {
      RASED_ASSIGN_OR_RETURN(int64_t levels, ParseInt(f[1]));
      options.num_levels = static_cast<int>(levels);
    } else if (f[0] == "warehouse" && f.size() == 2) {
      options.enable_warehouse = f[1] == "1";
    }
  }
  return options;
}

Result<std::unique_ptr<Rased>> Rased::Create(const RasedOptions& options) {
  auto rased = std::unique_ptr<Rased>(new Rased(options));
  RASED_RETURN_IF_ERROR(rased->InitComponents(/*create=*/true));
  RASED_RETURN_IF_ERROR(rased->SaveMeta());
  return rased;
}

Result<std::unique_ptr<Rased>> Rased::Open(const RasedOptions& options) {
  auto rased = std::unique_ptr<Rased>(new Rased(options));
  RASED_RETURN_IF_ERROR(rased->InitComponents(/*create=*/false));
  RASED_RETURN_IF_ERROR(rased->LoadMeta());
  return rased;
}

Status Rased::InitComponents(bool create) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  traces_ = std::make_unique<TraceRecorder>(options_.trace, metrics_);
  // Build identity on /metrics from boot: which exact binary (and kernel
  // dispatch state) produced every number this instance exports.
  RegisterBuildInfoGauge(
      metrics_, MakeBuildInfo(Avx2DispatchLabel(kernels::Avx2CompiledIn(),
                                                kernels::Avx2Active())));
  ingest_metrics_.records = metrics_->GetCounter(
      "rased_ingest_records_total", "UpdateList tuples ingested");
  ingest_metrics_.days =
      metrics_->GetCounter("rased_ingest_days_total", "Day cubes ingested");

  world_ = std::make_unique<WorldMap>(options_.schema.num_countries);
  road_types_ =
      std::make_unique<RoadTypeTable>(options_.schema.num_road_types);

  TemporalIndexOptions index_options;
  index_options.schema = options_.schema;
  index_options.num_levels = options_.num_levels;
  index_options.dir = env::JoinPath(options_.dir, "index");
  index_options.device = options_.device;
  index_options.metrics = metrics_;
  if (create) {
    RASED_ASSIGN_OR_RETURN(index_, TemporalIndex::Create(index_options));
  } else {
    RASED_ASSIGN_OR_RETURN(index_, TemporalIndex::Open(index_options));
  }

  builder_ = std::make_unique<CubeBuilder>(options_.schema, world_.get());
  CacheOptions cache_options = options_.cache;
  cache_options.metrics = metrics_;
  cache_ = std::make_unique<CubeCache>(cache_options);
  executor_ = std::make_unique<QueryExecutor>(index_.get(), cache_.get(),
                                              world_.get(),
                                              options_.plan_mode, metrics_);

  if (options_.enable_warehouse) {
    WarehouseOptions wh_options;
    wh_options.dir = env::JoinPath(options_.dir, "warehouse");
    wh_options.device = options_.device;
    if (create) {
      RASED_ASSIGN_OR_RETURN(warehouse_, Warehouse::Create(wh_options));
    } else {
      RASED_ASSIGN_OR_RETURN(warehouse_, Warehouse::Open(wh_options));
    }
    warehouse_->pager()->RegisterMetrics(metrics_, "warehouse");
  }
  return Status::OK();
}

Status Rased::IngestDailyArtifacts(Date day, std::string_view osc_xml,
                                   std::string_view changesets_xml) {
  MutexLock lock(&ingest_mu_);
  ChangesetStore changesets;
  RASED_RETURN_IF_ERROR(changesets.AddFromXml(changesets_xml));
  DailyCrawler crawler(world_.get(), road_types_.get(), metrics_);
  std::vector<UpdateRecord> records;
  RASED_RETURN_IF_ERROR(crawler.CrawlDiff(osc_xml, changesets, &records));
  return IngestDayRecordsLocked(day, records);
}

Status Rased::IngestDayRecords(Date day,
                               const std::vector<UpdateRecord>& records) {
  MutexLock lock(&ingest_mu_);
  return IngestDayRecordsLocked(day, records);
}

Status Rased::IngestDayRecordsLocked(
    Date day, const std::vector<UpdateRecord>& records) {
  DataCube cube(options_.schema);
  for (const UpdateRecord& r : records) {
    if (r.date != day) {
      return Status::InvalidArgument(
          "record dated " + r.date.ToString() +
          " in ingest for " + day.ToString());
    }
    builder_->AddRecord(r, &cube);
  }
  RASED_RETURN_IF_ERROR(index_->AppendDay(day, cube));
  if (warehouse_ != nullptr) {
    RASED_RETURN_IF_ERROR(warehouse_->Append(records));
  }
  ingest_metrics_.days->Increment();
  ingest_metrics_.records->Increment(records.size());
  return Status::OK();
}

Status Rased::IngestDayCube(Date day, const DataCube& cube) {
  MutexLock lock(&ingest_mu_);
  RASED_RETURN_IF_ERROR(index_->AppendDay(day, cube));
  ingest_metrics_.days->Increment();
  return Status::OK();
}

Status Rased::ApplyMonthlyArtifacts(Date month_start,
                                    std::string_view history_xml,
                                    std::string_view changesets_xml) {
  MutexLock lock(&ingest_mu_);
  ChangesetStore changesets;
  RASED_RETURN_IF_ERROR(changesets.AddFromXml(changesets_xml));
  MonthlyCrawler crawler(world_.get(), road_types_.get());
  std::vector<UpdateRecord> records;
  DateRange month(month_start, month_start.month_end());
  RASED_RETURN_IF_ERROR(
      crawler.CrawlHistory(history_xml, changesets, month, &records));

  // One cube per day of the month (empty cubes for quiet days).
  std::map<Date, DataCube> by_day = builder_->BuildDailyCubes(records);
  std::vector<DataCube> cubes;
  cubes.reserve(static_cast<size_t>(month.num_days()));
  for (Date d = month.first; d <= month.last; d = d.next()) {
    auto it = by_day.find(d);
    cubes.push_back(it != by_day.end() ? std::move(it->second)
                                       : DataCube(options_.schema));
  }
  RASED_RETURN_IF_ERROR(index_->RebuildMonth(month_start, cubes));

  // The rebuild published a new catalog version with fresh pages for this
  // month and its month/year ancestors. Cache entries for the replaced
  // cubes are page-validated, so they can no longer serve post-publication
  // snapshots (and correctly keep serving readers still pinned to the old
  // version); evicting them just reclaims the slots promptly. The
  // containing year's range covers every affected ancestor.
  // Statically-warmed policies are refilled against the new version
  // (another offline cost) — readers keep querying throughout.
  cache_->InvalidateRange(
      DateRange(month_start.year_start(), month_start.year_end()));
  if (cache_->options().policy != CachePolicy::kLru &&
      cache_->stats().preloaded > 0) {
    RASED_RETURN_IF_ERROR(WarmCacheLocked());
  }
  return Status::OK();
}

Status Rased::WarmCache() {
  MutexLock lock(&ingest_mu_);
  return WarmCacheLocked();
}

Status Rased::WarmCacheLocked() {
  // Warm pins one snapshot of the currently published version internally;
  // concurrent queries keep running against their own snapshots the whole
  // time (their page-validated probes simply miss entries the warm pass
  // hasn't refilled yet).
  RASED_RETURN_IF_ERROR(cache_->Warm(index_.get()));
  // Warm-up reads are offline cost; keep query-time I/O accounting clean.
  index_->pager()->ResetStats();
  return Status::OK();
}

Result<QueryResult> Rased::Query(const AnalysisQuery& query) const {
  // Lock-free: the executor pins the current catalog version (MVCC) and
  // the whole execution runs against that immutable snapshot.
  return executor_->Execute(query);
}

Result<std::vector<UpdateRecord>> Rased::SampleInBox(const BoundingBox& box,
                                                     size_t n) const {
  if (warehouse_ == nullptr) {
    return Status::NotSupported("warehouse disabled in this instance");
  }
  return warehouse_->SampleInBox(box, n);
}

Result<std::vector<UpdateRecord>> Rased::SampleByChangeset(
    uint64_t changeset_id) const {
  if (warehouse_ == nullptr) {
    return Status::NotSupported("warehouse disabled in this instance");
  }
  return warehouse_->FindByChangeset(changeset_id);
}

Result<std::vector<UpdateRecord>> Rased::Sample(const SampleFilter& filter,
                                                size_t n) const {
  if (warehouse_ == nullptr) {
    return Status::NotSupported("warehouse disabled in this instance");
  }
  return warehouse_->Sample(filter, /*box=*/nullptr, n);
}

Status Rased::Sync() {
  MutexLock lock(&ingest_mu_);
  RASED_RETURN_IF_ERROR(SaveMeta());
  RASED_RETURN_IF_ERROR(index_->Sync());
  if (warehouse_ != nullptr) RASED_RETURN_IF_ERROR(warehouse_->Sync());
  return Status::OK();
}

}  // namespace rased
