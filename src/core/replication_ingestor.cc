#include "core/replication_ingestor.h"

#include <map>

#include "collect/daily_crawler.h"
#include "io/env.h"
#include "util/clock.h"
#include "util/str_util.h"

namespace rased {

ReplicationIngestor::ReplicationIngestor(Rased* rased, std::string feed_dir)
    : rased_(rased),
      feed_(std::move(feed_dir)),
      cursor_(env::JoinPath(rased->options().dir, "replication.cursor")) {
  MetricsRegistry* metrics = rased_->metrics();
  sequences_counter_ =
      metrics->GetCounter("rased_ingest_sequences_total",
                          "Replication sequences applied by CatchUp");
  lag_gauge_ = metrics->GetGauge(
      "rased_ingest_lag_sequences",
      "Replication sequences in the feed not yet applied (ingest lag)");
  last_progress_gauge_ = metrics->GetGauge(
      "rased_ingest_last_progress_micros",
      "util/clock.h NowMicros stamp of the last replication CatchUp");
}

Result<ReplicationIngestor::CatchUpStats> ReplicationIngestor::CatchUp(
    bool finalize_all) {
  CatchUpStats stats;
  RASED_ASSIGN_OR_RETURN(uint64_t applied, cursor_.LastApplied());
  auto latest = feed_.LatestState();
  if (!latest.ok()) {
    if (latest.status().IsIOError()) {  // empty feed
      lag_gauge_->Set(0);
      last_progress_gauge_->Set(NowMicros());
      return stats;
    }
    return latest.status();
  }
  if (latest.value().sequence <= applied) {
    lag_gauge_->Set(0);
    last_progress_gauge_->Set(NowMicros());
    return stats;
  }

  // The trailing day may still be receiving sequences; unless finalizing,
  // it stays unapplied.
  Date last_day = latest.value().timestamp.date;

  // Appends must be day-consecutive; quiet days between the index's
  // coverage and an incoming day are filled with empty cubes.
  auto ingest_day = [this, &stats](Date day,
                                   const std::vector<UpdateRecord>& records)
      -> Status {
    DateRange coverage = rased_->index()->coverage();
    if (!coverage.empty()) {
      for (Date gap = coverage.last.next(); gap < day; gap = gap.next()) {
        RASED_RETURN_IF_ERROR(rased_->IngestDayRecords(gap, {}));
        ++stats.days_ingested;
      }
    }
    RASED_RETURN_IF_ERROR(rased_->IngestDayRecords(day, records));
    ++stats.days_ingested;
    stats.records_ingested += records.size();
    return Status::OK();
  };

  DailyCrawler crawler(&rased_->world(), rased_->road_types(),
                       rased_->metrics());
  std::vector<UpdateRecord> pending;
  Date pending_day;
  bool have_pending = false;
  uint64_t pending_last_seq = applied;

  for (uint64_t seq = applied + 1; seq <= latest.value().sequence; ++seq) {
    RASED_ASSIGN_OR_RETURN(ReplicationState state, feed_.StateOf(seq));
    Date day = state.timestamp.date;
    if (have_pending && day != pending_day) {
      RASED_RETURN_IF_ERROR(ingest_day(pending_day, pending));
      RASED_RETURN_IF_ERROR(cursor_.Advance(pending_last_seq));
      stats.sequences_applied = pending_last_seq - applied;
      pending.clear();
      have_pending = false;
    }
    if (day == last_day && !finalize_all) break;

    RASED_ASSIGN_OR_RETURN(std::string osc, feed_.ReadDiff(seq));
    RASED_ASSIGN_OR_RETURN(std::string changesets_xml,
                           feed_.ReadChangesets(seq));
    ChangesetStore changesets;
    RASED_RETURN_IF_ERROR(changesets.AddFromXml(changesets_xml));
    RASED_RETURN_IF_ERROR(crawler.CrawlDiff(osc, changesets, &pending));
    pending_day = day;
    have_pending = true;
    pending_last_seq = seq;
  }

  if (have_pending) {
    RASED_RETURN_IF_ERROR(ingest_day(pending_day, pending));
    RASED_RETURN_IF_ERROR(cursor_.Advance(pending_last_seq));
    stats.sequences_applied = pending_last_seq - applied;
  }
  sequences_counter_->Increment(stats.sequences_applied);
  lag_gauge_->Set(static_cast<int64_t>(latest.value().sequence -
                                       (applied + stats.sequences_applied)));
  last_progress_gauge_->Set(NowMicros());
  return stats;
}

}  // namespace rased
