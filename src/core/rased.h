#ifndef RASED_CORE_RASED_H_
#define RASED_CORE_RASED_H_

#include <memory>
#include <string>
#include <vector>

#include "cache/cube_cache.h"
#include "collect/changeset_store.h"
#include "collect/daily_crawler.h"
#include "collect/monthly_crawler.h"
#include "cube/data_cube.h"
#include "geo/world_map.h"
#include "index/cube_builder.h"
#include "index/temporal_index.h"
#include "obs/metrics_registry.h"
#include "obs/query_trace.h"
#include "osm/road_types.h"
#include "query/analysis_query.h"
#include "query/query_executor.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "warehouse/warehouse.h"

namespace rased {

/// Top-level configuration for a RASED instance.
struct RasedOptions {
  /// Root directory; the index and warehouse live in subdirectories.
  std::string dir;

  /// Cube shape. The Country dimension also fixes the world-map zone
  /// count; RoadType fixes the road-type table capacity.
  CubeSchema schema = CubeSchema::PaperScale();

  /// Index hierarchy depth (1 = flat; 4 = full RASED).
  int num_levels = 4;

  /// Storage device cost model shared by index and warehouse.
  DeviceModel device;

  /// Cube cache configuration (Section VII-A defaults).
  CacheOptions cache;

  /// Query planning mode (flat vs. level-optimized).
  PlanMode plan_mode = PlanMode::kOptimized;

  /// Whether to maintain the sample-update warehouse (Section VI-B). Bulk
  /// cube loads at benchmark scale typically disable it.
  bool enable_warehouse = true;

  /// Registry every component (index pager, cache, executor, ingestion)
  /// publishes its metrics into. When null the instance creates and owns a
  /// private registry — the default, which keeps instances (and test
  /// suites sharing a process) isolated. A non-null registry must outlive
  /// the instance.
  MetricsRegistry* metrics = nullptr;

  /// Query-trace ring configuration (/api/trace capacity, slow-query
  /// threshold).
  TraceRecorderOptions trace;
};

/// The RASED system facade: owns the world map, road-type table, temporal
/// index, cube cache, query executor, and (optionally) the sample-update
/// warehouse, and exposes the two ingestion paths (daily crawl, monthly
/// rebuild) plus the two query families (analysis, sample).
///
/// Typical lifecycle:
///
///   RasedOptions options;
///   options.dir = "/data/rased";
///   auto rased = Rased::Create(options);
///   for (each day) rased->IngestDailyArtifacts(day, osc_xml, changesets_xml);
///   rased->WarmCache();
///   AnalysisQuery q = ...;
///   auto result = rased->Query(q);
///
/// Threading contract (MVCC): queries never block on ingest, and ingest
/// never waits for queries to drain. The const query family (Query,
/// SampleInBox, SampleByChangeset, Sample) takes no facade lock at all —
/// each analysis query pins one immutable catalog snapshot inside the
/// executor and runs plan → probe → fetch → aggregate entirely against
/// that version, accumulating its own QueryStats through the per-call I/O
/// context; sample queries go to the internally-synchronized warehouse.
/// Ingestion (IngestDailyArtifacts, IngestDayRecords, IngestDayCube,
/// ApplyMonthlyArtifacts), WarmCache, and Sync serialize against each
/// other on one writer mutex: a pipeline crawls and stages off to the
/// side, then the index publishes the new day and all of its rollups in a
/// single atomic version swap — queries started before the swap keep
/// reading the old version, queries started after see the new one, and no
/// query ever observes a half-appended day. Component accessors (index(),
/// cache(), ...) return internally-synchronized objects whose const reads
/// are likewise safe from any thread; mutating them directly (pager(),
/// mutable_world()) is setup/tooling territory and must not race serving.
class Rased {
 public:
  static Result<std::unique_ptr<Rased>> Create(const RasedOptions& options);
  static Result<std::unique_ptr<Rased>> Open(const RasedOptions& options);

  /// Reads the structural options (schema, levels, warehouse flag) a
  /// directory was created with, so tools can Open() a RASED instance
  /// without knowing its configuration out of band. Cache/device settings
  /// are runtime choices and come back defaulted.
  static Result<RasedOptions> LoadOptions(const std::string& dir);

  Rased(const Rased&) = delete;
  Rased& operator=(const Rased&) = delete;

  // ---- ingestion (Section V + VI) ----

  /// Daily pipeline: crawl the day's diff + changeset files, build the
  /// day's cube, append it to the index (with rollups), and stock the
  /// warehouse.
  Status IngestDailyArtifacts(Date day, std::string_view osc_xml,
                              std::string_view changesets_xml)
      RASED_EXCLUDES(ingest_mu_);

  /// Same pipeline when the UpdateList tuples are already in hand.
  Status IngestDayRecords(Date day, const std::vector<UpdateRecord>& records)
      RASED_EXCLUDES(ingest_mu_);

  /// Fast path: append a prebuilt day cube (no warehouse, no crawl).
  Status IngestDayCube(Date day, const DataCube& cube)
      RASED_EXCLUDES(ingest_mu_);

  /// Monthly pipeline: crawl the month's full-history fragment (full
  /// four-way UpdateType classification) and rebuild the month's cubes.
  Status ApplyMonthlyArtifacts(Date month_start, std::string_view history_xml,
                               std::string_view changesets_xml)
      RASED_EXCLUDES(ingest_mu_);

  /// Preloads the cube cache per the configured policy against the
  /// currently published catalog version. Serialized with ingest (so the
  /// warmed epoch is well defined) but never blocks queries: readers keep
  /// hitting the cache — page-validated against their own snapshots —
  /// while the warm pass refills it.
  Status WarmCache() RASED_EXCLUDES(ingest_mu_);

  // ---- queries (Section IV) ----
  // Const and concurrency-safe without any facade lock: each call pins an
  // immutable catalog snapshot (MVCC) and charges its own per-query stats.

  Result<QueryResult> Query(const AnalysisQuery& query) const;

  /// Sample update queries (Section IV-B); n defaults to the paper's 100.
  Result<std::vector<UpdateRecord>> SampleInBox(const BoundingBox& box,
                                                size_t n = 100) const;
  Result<std::vector<UpdateRecord>> SampleByChangeset(
      uint64_t changeset_id) const;
  Result<std::vector<UpdateRecord>> Sample(const SampleFilter& filter,
                                           size_t n = 100) const;

  // ---- component access ----

  const WorldMap& world() const { return *world_; }
  WorldMap* mutable_world() { return world_.get(); }
  RoadTypeTable* road_types() const { return road_types_.get(); }
  const TemporalIndex* index() const { return index_.get(); }
  TemporalIndex* index() { return index_.get(); }
  CubeCache* cache() const { return cache_.get(); }
  const QueryExecutor* executor() const { return executor_.get(); }
  Warehouse* warehouse() const { return warehouse_.get(); }
  const RasedOptions& options() const { return options_; }

  /// The registry all components report into (never null after
  /// Create/Open; instance-owned unless RasedOptions.metrics was set).
  /// Registered handles stay valid for the instance's lifetime.
  MetricsRegistry* metrics() const { return metrics_; }

  /// Ring buffer of recent query traces (never null after Create/Open).
  /// The serving layers (dashboard, CLI) record into it; /api/trace reads.
  TraceRecorder* traces() const { return traces_.get(); }

  /// Resolves a zone by name ("Germany", "North America", "Minnesota").
  Result<ZoneId> CountryId(std::string_view name) const {
    return world_->FindByName(name);
  }

  /// Resolves a road type by highway value ("residential").
  RoadTypeId RoadTypeIdFor(std::string_view highway) {
    return road_types_->Intern(highway);
  }

  Status Sync() RASED_EXCLUDES(ingest_mu_);

 private:
  explicit Rased(const RasedOptions& options);

  Status InitComponents(bool create);

  /// Bodies shared by the public entry points (the public wrappers take
  /// the ingest mutex once; pipelines compose these without re-acquiring).
  Status IngestDayRecordsLocked(Date day,
                                const std::vector<UpdateRecord>& records)
      RASED_REQUIRES(ingest_mu_);
  Status WarmCacheLocked() RASED_REQUIRES(ingest_mu_);

  /// rased.meta persistence: structural options plus the mutable lookup
  /// state that must survive restarts — interned road types (cube
  /// coordinates!) and per-country road-network sizes (Percentage
  /// denominators). Saved on Create and Sync, loaded on Open.
  Status SaveMeta() const;
  Status LoadMeta();
  static std::string MetaPath(const std::string& dir);

  /// Serializes the write side only (ingestion pipelines, WarmCache,
  /// Sync): crawls stay ordered, the warehouse appends in day order, and
  /// rased.meta snapshots a quiescent road-type table. Queries never touch
  /// it — the read side is lock-free via catalog snapshots (MVCC), so this
  /// mutex is ordered before the component locks (index maintenance,
  /// cache, road-type table) but never interacts with readers at all.
  mutable Mutex ingest_mu_;

  /// Everything below is assigned once in InitComponents — before any
  /// caller thread can reach the facade — and is immutable afterwards;
  /// the components themselves do their own locking.
  RasedOptions options_ RASED_CONST_AFTER_INIT;

  /// metrics_ points at options_.metrics when supplied, else at
  /// owned_metrics_. Declared before the components so it outlives their
  /// registered handles during destruction.
  std::unique_ptr<MetricsRegistry> owned_metrics_ RASED_CONST_AFTER_INIT;
  MetricsRegistry* metrics_ RASED_CONST_AFTER_INIT = nullptr;
  std::unique_ptr<TraceRecorder> traces_ RASED_CONST_AFTER_INIT;

  /// Ingestion counters (set in InitComponents; never null afterwards).
  struct IngestMetrics {
    Counter* records = nullptr;  // rased_ingest_records_total
    Counter* days = nullptr;     // rased_ingest_days_total
  };
  IngestMetrics ingest_metrics_ RASED_CONST_AFTER_INIT;

  std::unique_ptr<WorldMap> world_ RASED_CONST_AFTER_INIT;
  std::unique_ptr<RoadTypeTable> road_types_ RASED_CONST_AFTER_INIT;
  std::unique_ptr<TemporalIndex> index_ RASED_CONST_AFTER_INIT;
  std::unique_ptr<CubeBuilder> builder_ RASED_CONST_AFTER_INIT;
  std::unique_ptr<CubeCache> cache_ RASED_CONST_AFTER_INIT;
  std::unique_ptr<QueryExecutor> executor_ RASED_CONST_AFTER_INIT;
  std::unique_ptr<Warehouse> warehouse_ RASED_CONST_AFTER_INIT;
};

}  // namespace rased

#endif  // RASED_CORE_RASED_H_
