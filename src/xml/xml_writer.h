#ifndef RASED_XML_XML_WRITER_H_
#define RASED_XML_XML_WRITER_H_

#include <string>
#include <string_view>
#include <vector>

namespace rased {

/// Streaming XML writer with automatic escaping and indentation, used by
/// the synthetic planet generator to emit OSC diff, changeset, and
/// full-history files in the real OSM formats.
///
/// Usage:
///   std::string out;
///   XmlWriter w(&out);
///   w.WriteDeclaration();
///   w.StartElement("osmChange");
///   w.Attribute("version", "0.6");
///   ...
///   w.EndElement();
class XmlWriter {
 public:
  /// Appends output to `*out`; the pointer must outlive the writer.
  explicit XmlWriter(std::string* out, bool pretty = true);

  /// Emits <?xml version="1.0" encoding="UTF-8"?>.
  void WriteDeclaration();

  /// Opens an element. Attributes may be added until the next child or
  /// text is written.
  void StartElement(std::string_view name);

  /// Adds an attribute to the most recently opened element.
  void Attribute(std::string_view name, std::string_view value);
  void Attribute(std::string_view name, int64_t value);
  void Attribute(std::string_view name, uint64_t value);
  /// Fixed 7-decimal rendering matching OSM's coordinate precision.
  void AttributeCoord(std::string_view name, double value);

  /// Writes escaped character data inside the current element.
  void Text(std::string_view text);

  /// Closes the most recently opened element (self-closing form when the
  /// element had no children or text).
  void EndElement();

  /// Number of currently open elements.
  int depth() const { return static_cast<int>(stack_.size()); }

 private:
  void CloseStartTag();
  void Indent();
  void AppendEscaped(std::string_view text, bool in_attribute);

  std::string* out_;
  bool pretty_;
  std::vector<std::string> stack_;
  bool tag_open_ = false;      // start tag not yet closed with '>'
  bool had_children_ = false;  // current element has children/text
};

}  // namespace rased

#endif  // RASED_XML_XML_WRITER_H_
