#include "xml/xml_writer.h"

#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

XmlWriter::XmlWriter(std::string* out, bool pretty)
    : out_(out), pretty_(pretty) {}

void XmlWriter::WriteDeclaration() {
  out_->append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
  if (pretty_) out_->push_back('\n');
}

void XmlWriter::Indent() {
  if (!pretty_) return;
  out_->append(2 * stack_.size(), ' ');
}

void XmlWriter::CloseStartTag() {
  if (tag_open_) {
    out_->push_back('>');
    if (pretty_) out_->push_back('\n');
    tag_open_ = false;
  }
}

void XmlWriter::StartElement(std::string_view name) {
  CloseStartTag();
  Indent();
  out_->push_back('<');
  out_->append(name);
  stack_.emplace_back(name);
  tag_open_ = true;
  had_children_ = false;
}

void XmlWriter::Attribute(std::string_view name, std::string_view value) {
  RASED_DCHECK(tag_open_) << "Attribute() outside an open start tag";
  out_->push_back(' ');
  out_->append(name);
  out_->append("=\"");
  AppendEscaped(value, /*in_attribute=*/true);
  out_->push_back('"');
}

void XmlWriter::Attribute(std::string_view name, int64_t value) {
  Attribute(name, std::string_view(std::to_string(value)));
}

void XmlWriter::Attribute(std::string_view name, uint64_t value) {
  Attribute(name, std::string_view(std::to_string(value)));
}

void XmlWriter::AttributeCoord(std::string_view name, double value) {
  Attribute(name, std::string_view(StrFormat("%.7f", value)));
}

void XmlWriter::Text(std::string_view text) {
  CloseStartTag();
  had_children_ = true;
  AppendEscaped(text, /*in_attribute=*/false);
}

void XmlWriter::EndElement() {
  RASED_CHECK(!stack_.empty()) << "EndElement() with no open element";
  std::string name = stack_.back();
  stack_.pop_back();
  if (tag_open_) {
    out_->append("/>");
    if (pretty_) out_->push_back('\n');
    tag_open_ = false;
  } else {
    Indent();
    out_->append("</");
    out_->append(name);
    out_->push_back('>');
    if (pretty_) out_->push_back('\n');
  }
  had_children_ = true;  // the parent now has at least one child
}

void XmlWriter::AppendEscaped(std::string_view text, bool in_attribute) {
  for (char c : text) {
    switch (c) {
      case '&':
        out_->append("&amp;");
        break;
      case '<':
        out_->append("&lt;");
        break;
      case '>':
        out_->append("&gt;");
        break;
      case '"':
        if (in_attribute) {
          out_->append("&quot;");
        } else {
          out_->push_back(c);
        }
        break;
      default:
        out_->push_back(c);
    }
  }
}

}  // namespace rased
