#include "xml/xml_reader.h"

#include <cctype>

#include "util/str_util.h"

namespace rased {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

XmlReader::XmlReader(std::string_view input) : input_(input) {}

Status XmlReader::ParseError(const std::string& what) const {
  return Status::Corruption(StrFormat("XML parse error at line %d: %s", line_,
                                      what.c_str()));
}

void XmlReader::Advance() {
  if (pos_ < input_.size()) {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }
}

void XmlReader::SkipWhitespace() {
  while (pos_ < input_.size() &&
         std::isspace(static_cast<unsigned char>(input_[pos_]))) {
    Advance();
  }
}

bool XmlReader::ConsumePrefix(std::string_view prefix) {
  if (input_.substr(pos_, prefix.size()) != prefix) return false;
  for (size_t i = 0; i < prefix.size(); ++i) Advance();
  return true;
}

Status XmlReader::SkipUntil(std::string_view terminator) {
  while (pos_ < input_.size()) {
    if (input_.substr(pos_, terminator.size()) == terminator) {
      for (size_t i = 0; i < terminator.size(); ++i) Advance();
      return Status::OK();
    }
    Advance();
  }
  return ParseError("unexpected end of input while scanning for '" +
                    std::string(terminator) + "'");
}

Result<std::string> XmlReader::ParseName() {
  if (pos_ >= input_.size() || !IsNameStart(input_[pos_])) {
    return ParseError("expected name");
  }
  size_t start = pos_;
  while (pos_ < input_.size() && IsNameChar(input_[pos_])) Advance();
  return std::string(input_.substr(start, pos_ - start));
}

Status XmlReader::DecodeEntities(std::string_view raw, std::string* out) {
  out->clear();
  out->reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out->push_back(raw[i]);
      continue;
    }
    size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return ParseError("unterminated entity reference");
    }
    std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (ent == "amp") {
      out->push_back('&');
    } else if (ent == "lt") {
      out->push_back('<');
    } else if (ent == "gt") {
      out->push_back('>');
    } else if (ent == "quot") {
      out->push_back('"');
    } else if (ent == "apos") {
      out->push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      // Numeric character reference; emit UTF-8.
      uint32_t cp = 0;
      bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
      std::string_view digits = ent.substr(hex ? 2 : 1);
      if (digits.empty()) return ParseError("empty character reference");
      for (char c : digits) {
        uint32_t d;
        if (c >= '0' && c <= '9') {
          d = static_cast<uint32_t>(c - '0');
        } else if (hex && c >= 'a' && c <= 'f') {
          d = static_cast<uint32_t>(c - 'a' + 10);
        } else if (hex && c >= 'A' && c <= 'F') {
          d = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          return ParseError("bad character reference '&" + std::string(ent) +
                            ";'");
        }
        cp = cp * (hex ? 16 : 10) + d;
        if (cp > 0x10FFFF) return ParseError("character reference out of range");
      }
      if (cp < 0x80) {
        out->push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
    } else {
      return ParseError("unknown entity '&" + std::string(ent) + ";'");
    }
    i = semi;
  }
  return Status::OK();
}

Status XmlReader::ParseAttributes(bool* self_closing) {
  attrs_.clear();
  *self_closing = false;
  for (;;) {
    SkipWhitespace();
    if (pos_ >= input_.size()) return ParseError("unterminated start tag");
    char c = input_[pos_];
    if (c == '>') {
      Advance();
      return Status::OK();
    }
    if (c == '/') {
      Advance();
      if (Peek() != '>') return ParseError("expected '>' after '/'");
      Advance();
      *self_closing = true;
      return Status::OK();
    }
    auto name = ParseName();
    if (!name.ok()) return name.status();
    SkipWhitespace();
    if (Peek() != '=') return ParseError("expected '=' after attribute name");
    Advance();
    SkipWhitespace();
    char quote = Peek();
    if (quote != '"' && quote != '\'') {
      return ParseError("expected quoted attribute value");
    }
    Advance();
    size_t start = pos_;
    while (pos_ < input_.size() && input_[pos_] != quote) {
      if (input_[pos_] == '<') return ParseError("'<' in attribute value");
      Advance();
    }
    if (pos_ >= input_.size()) return ParseError("unterminated attribute value");
    std::string_view raw = input_.substr(start, pos_ - start);
    Advance();  // closing quote
    XmlAttr attr;
    attr.name = std::move(name).value();
    RASED_RETURN_IF_ERROR(DecodeEntities(raw, &attr.value));
    attrs_.push_back(std::move(attr));
  }
}

Result<XmlEvent> XmlReader::Next() {
  if (pending_end_) {
    pending_end_ = false;
    --depth_;
    name_ = open_elements_.back();
    open_elements_.pop_back();
    return XmlEvent::kEndElement;
  }
  for (;;) {
    if (pos_ >= input_.size()) {
      at_eof_ = true;
      if (depth_ != 0) return ParseError("unexpected end of input");
      return XmlEvent::kEof;
    }
    if (input_[pos_] != '<') {
      // Character data up to the next '<'.
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != '<') Advance();
      std::string_view raw = input_.substr(start, pos_ - start);
      if (IsAllWhitespace(raw)) continue;  // ignorable whitespace
      RASED_RETURN_IF_ERROR(DecodeEntities(raw, &text_));
      return XmlEvent::kText;
    }
    // Some markup.
    if (ConsumePrefix("<!--")) {
      RASED_RETURN_IF_ERROR(SkipUntil("-->"));
      continue;
    }
    if (ConsumePrefix("<?")) {
      RASED_RETURN_IF_ERROR(SkipUntil("?>"));
      continue;
    }
    if (ConsumePrefix("<!")) {  // DOCTYPE etc.; no internal-subset support
      RASED_RETURN_IF_ERROR(SkipUntil(">"));
      continue;
    }
    if (ConsumePrefix("</")) {
      auto name = ParseName();
      if (!name.ok()) return name.status();
      SkipWhitespace();
      if (Peek() != '>') return ParseError("malformed end tag");
      Advance();
      if (depth_ == 0) return ParseError("end tag without matching start");
      if (open_elements_.back() != name.value()) {
        return ParseError("mismatched end tag </" + name.value() +
                          ">, expected </" + open_elements_.back() + ">");
      }
      open_elements_.pop_back();
      --depth_;
      name_ = std::move(name).value();
      return XmlEvent::kEndElement;
    }
    // Start tag.
    Advance();  // '<'
    auto name = ParseName();
    if (!name.ok()) return name.status();
    name_ = std::move(name).value();
    bool self_closing = false;
    RASED_RETURN_IF_ERROR(ParseAttributes(&self_closing));
    ++depth_;
    open_elements_.push_back(name_);
    pending_end_ = self_closing;
    return XmlEvent::kStartElement;
  }
}

const std::string* XmlReader::FindAttr(std::string_view attr_name) const {
  for (const XmlAttr& a : attrs_) {
    if (a.name == attr_name) return &a.value;
  }
  return nullptr;
}

Status XmlReader::SkipElement() {
  if (pending_end_) {
    pending_end_ = false;
    --depth_;
    open_elements_.pop_back();
    return Status::OK();
  }
  int target = depth_ - 1;
  while (depth_ > target) {
    auto ev = Next();
    if (!ev.ok()) return ev.status();
    if (ev.value() == XmlEvent::kEof) {
      return ParseError("EOF inside element");
    }
  }
  return Status::OK();
}

}  // namespace rased
