#ifndef RASED_XML_XML_READER_H_
#define RASED_XML_XML_READER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace rased {

/// One element attribute. Values are entity-decoded.
struct XmlAttr {
  std::string name;
  std::string value;
};

/// Pull-parser events produced by XmlReader::Next().
enum class XmlEvent {
  kStartElement,  ///< <name attr="v" ...> or <name .../> (see note below)
  kEndElement,    ///< </name>, also synthesized for self-closing elements
  kText,          ///< non-whitespace character data
  kEof,           ///< end of input
};

/// Minimal non-validating XML pull parser.
///
/// Scope: exactly what the OSM planet formats need — elements, attributes,
/// character data, comments, XML declarations/processing instructions and
/// DOCTYPE (all skipped), and the five predefined entities plus numeric
/// character references. No namespaces, CDATA, or DTD expansion.
///
/// A self-closing element <tag/> is reported as kStartElement followed
/// immediately by a synthetic kEndElement, so client code can treat both
/// element forms uniformly.
///
/// The reader borrows the input buffer; it must outlive the reader.
class XmlReader {
 public:
  explicit XmlReader(std::string_view input);

  /// Advances to the next event. After kEof, keeps returning kEof.
  Result<XmlEvent> Next();

  /// Element name for the current kStartElement/kEndElement event.
  const std::string& name() const { return name_; }

  /// Attributes of the current kStartElement event.
  const std::vector<XmlAttr>& attributes() const { return attrs_; }

  /// Entity-decoded character data for the current kText event.
  const std::string& text() const { return text_; }

  /// Returns the value of the named attribute, or nullptr when absent.
  const std::string* FindAttr(std::string_view attr_name) const;

  /// 1-based line of the current parse position (for error messages).
  int line() const { return line_; }

  /// Convenience: skips events until the matching kEndElement of the
  /// element whose kStartElement was just returned. No-op after a
  /// self-closing element's synthetic end was already consumed.
  Status SkipElement();

 private:
  Status ParseError(const std::string& what) const;
  void SkipWhitespace();
  bool ConsumePrefix(std::string_view prefix);
  Status SkipUntil(std::string_view terminator);
  Result<std::string> ParseName();
  Status ParseAttributes(bool* self_closing);
  Status DecodeEntities(std::string_view raw, std::string* out);
  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }
  void Advance();

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;

  std::string name_;
  std::vector<XmlAttr> attrs_;
  std::string text_;
  bool pending_end_ = false;  // synthetic end for self-closing element
  bool at_eof_ = false;
  int depth_ = 0;
  std::vector<std::string> open_elements_;  // for end-tag name checking
};

}  // namespace rased

#endif  // RASED_XML_XML_READER_H_
