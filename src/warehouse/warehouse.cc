#include "warehouse/warehouse.h"

#include <algorithm>
#include <cstring>

#include "io/env.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

namespace {

template <typename T>
bool InListOrEmpty(const std::vector<T>& list, T value) {
  return list.empty() || std::find(list.begin(), list.end(), value) != list.end();
}

}  // namespace

bool SampleFilter::Matches(const UpdateRecord& r) const {
  if (!range.empty() && !range.Contains(r.date)) return false;
  if (!InListOrEmpty(element_types, r.element_type)) return false;
  if (!InListOrEmpty(countries, r.country)) return false;
  if (!InListOrEmpty(road_types, r.road_type)) return false;
  if (!InListOrEmpty(update_types, r.update_type)) return false;
  return true;
}

Warehouse::Warehouse(WarehouseOptions options, std::unique_ptr<Pager> pager)
    : options_(std::move(options)), pager_(std::move(pager)) {
  tail_.assign(pager_->payload_size(), 0);
}

Warehouse::~Warehouse() {
  Status s = Sync();
  if (!s.ok()) RASED_LOG(Warning) << "Warehouse close: " << s.ToString();
}

Result<std::unique_ptr<Warehouse>> Warehouse::Create(
    const WarehouseOptions& options) {
  RASED_RETURN_IF_ERROR(env::CreateDirs(options.dir));
  std::string path = env::JoinPath(options.dir, "warehouse.pages");
  if (env::FileExists(path)) {
    return Status::AlreadyExists("warehouse already exists in " + options.dir);
  }
  auto pager = Pager::Create(path, options.page_size, options.device);
  if (!pager.ok()) return pager.status();
  return std::unique_ptr<Warehouse>(
      new Warehouse(options, std::move(pager).value()));
}

Result<std::unique_ptr<Warehouse>> Warehouse::Open(
    const WarehouseOptions& options) {
  std::string path = env::JoinPath(options.dir, "warehouse.pages");
  auto pager = Pager::Open(path, options.device);
  if (!pager.ok()) return pager.status();
  auto wh = std::unique_ptr<Warehouse>(
      new Warehouse(options, std::move(pager).value()));
  {
    MutexLock lock(&wh->mu_);
    RASED_RETURN_IF_ERROR(wh->RebuildIndexes());
  }
  return wh;
}

Status Warehouse::RebuildIndexes() {
  // Scan every heap page; slot counts are stored in the first 4 payload
  // bytes of each page.
  std::vector<unsigned char> buf(pager_->payload_size());
  for (PageId page = 1; page <= pager_->num_pages(); ++page) {
    RASED_RETURN_IF_ERROR(pager_->ReadPage(page, buf.data()));
    uint32_t count;
    std::memcpy(&count, buf.data(), 4);
    for (uint32_t slot = 0; slot < count; ++slot) {
      UpdateRecord r = UpdateRecord::DecodeFrom(
          buf.data() + 4 + slot * UpdateRecord::kEncodedBytes);
      IndexRecord(r, Locator(page, slot));
      ++num_records_;
    }
  }
  return Status::OK();
}

void Warehouse::IndexRecord(const UpdateRecord& record, uint64_t locator) {
  by_changeset_[record.changeset_id].push_back(locator);
  spatial_.Insert(LatLon{record.lat, record.lon}, locator);
}

Status Warehouse::Append(const std::vector<UpdateRecord>& records) {
  MutexLock lock(&mu_);
  const size_t per_page = RecordsPerPage();
  for (const UpdateRecord& r : records) {
    if (tail_page_ == kInvalidPageId) {
      RASED_ASSIGN_OR_RETURN(tail_page_, pager_->AllocatePage());
      std::fill(tail_.begin(), tail_.end(), 0);
      tail_count_ = 0;
    }
    r.EncodeTo(tail_.data() + 4 + tail_count_ * UpdateRecord::kEncodedBytes);
    IndexRecord(r, Locator(tail_page_, tail_count_));
    ++tail_count_;
    ++num_records_;
    if (tail_count_ == per_page) {
      RASED_RETURN_IF_ERROR(FlushTail());
      tail_page_ = kInvalidPageId;
    }
  }
  return Status::OK();
}

Status Warehouse::FlushTail() {
  if (tail_page_ == kInvalidPageId) return Status::OK();
  std::memcpy(tail_.data(), &tail_count_, 4);
  RASED_RETURN_IF_ERROR(
      pager_->WritePage(tail_page_, tail_.data(), tail_.size()));
  // Invalidate the read cache if it holds this page.
  if (cached_page_ == tail_page_) cached_page_ = kInvalidPageId;
  return Status::OK();
}

Status Warehouse::Sync() {
  MutexLock lock(&mu_);
  RASED_RETURN_IF_ERROR(FlushTail());
  return pager_->Sync();
}

Result<UpdateRecord> Warehouse::ReadAt(uint64_t locator) {
  PageId page = locator >> 16;
  uint32_t slot = static_cast<uint32_t>(locator & 0xffff);
  // Unflushed tail page: serve from memory.
  if (page == tail_page_) {
    if (slot >= tail_count_) return Status::OutOfRange("bad tail slot");
    return UpdateRecord::DecodeFrom(tail_.data() + 4 +
                                    slot * UpdateRecord::kEncodedBytes);
  }
  if (page != cached_page_) {
    cached_buf_.resize(pager_->payload_size());
    RASED_RETURN_IF_ERROR(pager_->ReadPage(page, cached_buf_.data()));
    cached_page_ = page;
  }
  uint32_t count;
  std::memcpy(&count, cached_buf_.data(), 4);
  if (slot >= count) {
    return Status::OutOfRange(StrFormat("slot %u >= page count %u", slot,
                                        count));
  }
  return UpdateRecord::DecodeFrom(cached_buf_.data() + 4 +
                                  slot * UpdateRecord::kEncodedBytes);
}

Result<std::vector<UpdateRecord>> Warehouse::SampleInBox(
    const BoundingBox& box, size_t n) {
  MutexLock lock(&mu_);
  std::vector<uint64_t> locators = spatial_.SearchIds(box, n);
  // Sort by page to serve all slots of one page from one I/O.
  std::sort(locators.begin(), locators.end());
  std::vector<UpdateRecord> out;
  out.reserve(locators.size());
  for (uint64_t loc : locators) {
    RASED_ASSIGN_OR_RETURN(UpdateRecord r, ReadAt(loc));
    out.push_back(r);
  }
  return out;
}

Result<std::vector<UpdateRecord>> Warehouse::FindByChangeset(
    uint64_t changeset_id) {
  MutexLock lock(&mu_);
  std::vector<UpdateRecord> out;
  auto it = by_changeset_.find(changeset_id);
  if (it == by_changeset_.end()) return out;
  std::vector<uint64_t> locators = it->second;
  std::sort(locators.begin(), locators.end());
  out.reserve(locators.size());
  for (uint64_t loc : locators) {
    RASED_ASSIGN_OR_RETURN(UpdateRecord r, ReadAt(loc));
    out.push_back(r);
  }
  return out;
}

Result<std::vector<UpdateRecord>> Warehouse::Sample(
    const SampleFilter& filter, const BoundingBox* box, size_t n) {
  MutexLock lock(&mu_);
  std::vector<UpdateRecord> out;
  if (box != nullptr) {
    // Spatial narrowing through the R-tree, then residual filtering.
    std::vector<uint64_t> locators;
    spatial_.Search(*box, [&locators](uint64_t id, const BoundingBox&) {
      locators.push_back(id);
      return true;
    });
    std::sort(locators.begin(), locators.end());
    for (uint64_t loc : locators) {
      auto r = ReadAt(loc);
      if (!r.ok()) return r.status();
      if (filter.Matches(r.value())) {
        out.push_back(r.value());
        if (out.size() >= n) break;
      }
    }
    return out;
  }
  // Heap scan until n matches.
  std::vector<unsigned char> buf(pager_->payload_size());
  for (PageId page = 1; page <= pager_->num_pages() && out.size() < n;
       ++page) {
    RASED_RETURN_IF_ERROR(pager_->ReadPage(page, buf.data()));
    uint32_t count;
    std::memcpy(&count, buf.data(), 4);
    for (uint32_t slot = 0; slot < count && out.size() < n; ++slot) {
      UpdateRecord r = UpdateRecord::DecodeFrom(
          buf.data() + 4 + slot * UpdateRecord::kEncodedBytes);
      if (filter.Matches(r)) out.push_back(r);
    }
  }
  // Tail page.
  for (uint32_t slot = 0; slot < tail_count_ && out.size() < n; ++slot) {
    UpdateRecord r = UpdateRecord::DecodeFrom(
        tail_.data() + 4 + slot * UpdateRecord::kEncodedBytes);
    if (filter.Matches(r)) out.push_back(r);
  }
  return out;
}

}  // namespace rased
