#ifndef RASED_WAREHOUSE_WAREHOUSE_H_
#define RASED_WAREHOUSE_WAREHOUSE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "collect/update_record.h"
#include "geo/rtree.h"
#include "io/pager.h"
#include "util/date.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace rased {

struct WarehouseOptions {
  std::string dir;
  DeviceModel device;
  /// Heap page size. 8 KiB holds ~240 records.
  size_t page_size = 8192;
};

/// Filter for sample update queries — the WHERE clause of Section IV-B's
/// sample interface (the same optional IN-lists as analysis queries, plus
/// an optional spatial box). Empty lists/invalid box mean unconstrained.
struct SampleFilter {
  DateRange range;
  std::vector<ElementType> element_types;
  std::vector<ZoneId> countries;
  std::vector<RoadTypeId> road_types;
  std::vector<UpdateType> update_types;

  bool Matches(const UpdateRecord& record) const;
};

/// The UpdateList warehouse (Section VI-B): every tuple dumped into a heap
/// file, indexed by a hash index on ChangesetID and a spatial index on
/// (Latitude, Longitude). It serves the sample update queries that let a
/// RASED user inspect concrete updates behind an aggregate.
///
/// The heap pages live on disk behind a Pager; both indexes are in-memory
/// and rebuilt by scanning the heap on Open (their maintenance cost is
/// part of offline ingestion, not the query path).
///
/// Threading contract: public operations are internally synchronized by a
/// single coarse mutex (appends and samples serialize against each other —
/// the sample path is I/O bound anyway). The only exception is pager():
/// reading pager stats while another thread is mid-append is racy; callers
/// wanting exact counts serialize externally, as Rased does.
class Warehouse {
 public:
  static Result<std::unique_ptr<Warehouse>> Create(
      const WarehouseOptions& options);
  static Result<std::unique_ptr<Warehouse>> Open(
      const WarehouseOptions& options);

  Warehouse(const Warehouse&) = delete;
  Warehouse& operator=(const Warehouse&) = delete;
  ~Warehouse();

  /// Appends records to the heap and indexes them.
  Status Append(const std::vector<UpdateRecord>& records)
      RASED_EXCLUDES(mu_);

  /// Up to `n` updates inside the box (via the R-tree).
  Result<std::vector<UpdateRecord>> SampleInBox(const BoundingBox& box,
                                                size_t n) RASED_EXCLUDES(mu_);

  /// All updates of one changeset (via the hash index).
  Result<std::vector<UpdateRecord>> FindByChangeset(uint64_t changeset_id)
      RASED_EXCLUDES(mu_);

  /// Up to `n` (default 100, the paper's default sample size) updates
  /// matching the filter. Uses the R-tree when the filter is spatial,
  /// otherwise samples the heap.
  Result<std::vector<UpdateRecord>> Sample(const SampleFilter& filter,
                                           const BoundingBox* box, size_t n)
      RASED_EXCLUDES(mu_);

  uint64_t num_records() const RASED_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return num_records_;
  }
  Pager* pager() { return pager_.get(); }

  /// Flushes the tail page and heap metadata.
  Status Sync() RASED_EXCLUDES(mu_);

 private:
  Warehouse(WarehouseOptions options, std::unique_ptr<Pager> pager);

  /// Records per heap page; 4 payload bytes hold the page's slot count.
  size_t RecordsPerPage() const {
    return (pager_->payload_size() - 4) / UpdateRecord::kEncodedBytes;
  }
  static uint64_t Locator(PageId page, uint32_t slot) {
    return (page << 16) | slot;
  }
  Result<UpdateRecord> ReadAt(uint64_t locator) RASED_REQUIRES(mu_);
  Status FlushTail() RASED_REQUIRES(mu_);
  Status RebuildIndexes() RASED_REQUIRES(mu_);
  void IndexRecord(const UpdateRecord& record, uint64_t locator)
      RASED_REQUIRES(mu_);

  WarehouseOptions options_ RASED_CONST_AFTER_INIT;
  // The pager is only ever driven while mu_ is held (every public method
  // locks at entry), but the pager() accessor above escapes the lock for
  // stats inspection — see the class threading contract.
  std::unique_ptr<Pager> pager_ RASED_CONST_AFTER_INIT;

  /// Coarse lock over heap tail, in-memory indexes, and the read cache.
  mutable Mutex mu_;

  uint64_t num_records_ RASED_GUARDED_BY(mu_) = 0;

  // Tail page under construction (not yet on disk).
  std::vector<unsigned char> tail_ RASED_GUARDED_BY(mu_);
  uint32_t tail_count_ RASED_GUARDED_BY(mu_) = 0;
  PageId tail_page_ RASED_GUARDED_BY(mu_) = kInvalidPageId;

  // In-memory indexes.
  std::unordered_map<uint64_t, std::vector<uint64_t>> by_changeset_
      RASED_GUARDED_BY(mu_);
  RTree spatial_ RASED_GUARDED_BY(mu_);

  // One-page read cache to make locator bursts touching the same heap
  // page cost one I/O.
  PageId cached_page_ RASED_GUARDED_BY(mu_) = kInvalidPageId;
  std::vector<unsigned char> cached_buf_ RASED_GUARDED_BY(mu_);
};

}  // namespace rased

#endif  // RASED_WAREHOUSE_WAREHOUSE_H_
