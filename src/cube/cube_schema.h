#ifndef RASED_CUBE_CUBE_SCHEMA_H_
#define RASED_CUBE_CUBE_SCHEMA_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rased {

/// Shape of RASED's four-dimensional data cubes (Section VI-A). Every index
/// node at every temporal level shares one schema; a cube cell is the count
/// of updates in the node's time window matching one value of each
/// dimension:
///   ElementType x Country x RoadType x UpdateType.
///
/// The paper's deployment uses 3 x 305 x 150 x 4 = 549,000 cells (~4.4 MB
/// per cube, "one disk page"); benchmarks may run a scaled schema — every
/// experiment varies the number of cubes touched, never the cube width.
struct CubeSchema {
  uint32_t num_element_types = 3;
  uint32_t num_countries = 305;
  uint32_t num_road_types = 150;
  uint32_t num_update_types = 4;

  /// The paper-scale schema (549,000 cells, ~4.4 MB cubes).
  static CubeSchema PaperScale() { return CubeSchema{}; }

  /// Scaled-down schema used by default in benchmarks on small machines:
  /// 3 x 64 x 32 x 4 = 24,576 cells (192 KiB cubes).
  static CubeSchema BenchScale() { return CubeSchema{3, 64, 32, 4}; }

  size_t num_cells() const {
    return static_cast<size_t>(num_element_types) * num_countries *
           num_road_types * num_update_types;
  }

  /// Bytes of one serialized cube (8-byte counters, no header).
  size_t cube_bytes() const { return num_cells() * sizeof(uint64_t); }

  /// Row-major cell index; callers must pass in-range coordinates.
  size_t CellIndex(uint32_t element_type, uint32_t country,
                   uint32_t road_type, uint32_t update_type) const {
    return ((static_cast<size_t>(element_type) * num_countries + country) *
                num_road_types +
            road_type) *
               num_update_types +
           update_type;
  }

  bool InRange(uint32_t element_type, uint32_t country, uint32_t road_type,
               uint32_t update_type) const {
    return element_type < num_element_types && country < num_countries &&
           road_type < num_road_types && update_type < num_update_types;
  }

  std::string ToString() const;

  friend bool operator==(const CubeSchema& a, const CubeSchema& b) {
    return a.num_element_types == b.num_element_types &&
           a.num_countries == b.num_countries &&
           a.num_road_types == b.num_road_types &&
           a.num_update_types == b.num_update_types;
  }
};

/// Per-dimension value selection for slicing/aggregating a cube. An empty
/// list selects every value of that dimension (no filter), mirroring the
/// optional IN-lists of the paper's SQL query signature (Section IV-A).
///
/// IN-list semantics are set semantics: a value named twice must not count
/// matching cells twice. Aggregation assumes Normalize() has been called
/// (the executor normalizes at slice build time); un-normalized slices
/// with duplicates double-count.
struct CubeSlice {
  std::vector<uint32_t> element_types;
  std::vector<uint32_t> countries;
  std::vector<uint32_t> road_types;
  std::vector<uint32_t> update_types;

  bool IsUnconstrained() const {
    return element_types.empty() && countries.empty() && road_types.empty() &&
           update_types.empty();
  }

  /// Sorts and deduplicates every selection list, restoring set semantics
  /// and giving the dense kernels monotone coordinates to stride over.
  void Normalize();
};

}  // namespace rased

#endif  // RASED_CUBE_CUBE_SCHEMA_H_
