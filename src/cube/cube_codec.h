#ifndef RASED_CUBE_CUBE_CODEC_H_
#define RASED_CUBE_CUBE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cube/cube_schema.h"
#include "cube/data_cube.h"
#include "util/result.h"
#include "util/status.h"

namespace rased {

/// Adaptive per-cube storage encodings (DESIGN.md section 11).
///
/// A cube's on-disk representation is chosen at write time from its
/// measured density (fraction of non-zero cells). Most daily country
/// cubes are extremely sparse — a handful of update events scattered over
/// thousands of (element, country, road, update) cells — so storing the
/// dense 8-bytes-per-cell image wastes nearly every page byte. The chosen
/// encoding and the exact serialized length are recorded per cube in the
/// epoch-versioned catalog (index/temporal_index.h), so readers decode
/// without probing and byte budgets (cache/cube_cache.h) account real
/// sizes.
///
/// Wire formats (all integers little-endian):
///
///   kDenseRaw     num_cells() x uint64 counters, row-major cell order —
///                 byte-identical to DataCube::SerializeTo.
///   kSparseCoo    varint nnz, then nnz (varint coord_delta, varint value)
///                 pairs. Coordinates are packed linear cell indexes in
///                 strictly increasing order; the first delta is the index
///                 itself and each subsequent delta is (index - previous
///                 index - 1), so every stored delta is the gap width.
///   kDeltaVarint  num_cells() zigzag varints, each the difference between
///                 a cell and its predecessor in cell order (cell -1 = 0),
///                 computed modulo 2^64.
///
/// Decoders validate everything (truncated varints, out-of-range or
/// non-increasing coordinates, trailing bytes) and fail with a clean
/// Corruption status — never undefined behavior.
enum class CubeEncoding : uint8_t {
  kDenseRaw = 0,
  kSparseCoo = 1,
  kDeltaVarint = 2,
};

/// Short name for logs and bench output ("dense", "sparse", "delta").
const char* CubeEncodingName(CubeEncoding encoding);

/// Write-time encoding selection policy (TemporalIndexOptions.encoding).
enum class CubeEncodingPolicy {
  /// Pick per cube: sparse COO at or below kSparseDensityThreshold,
  /// otherwise delta-varint, falling back to dense whenever the candidate
  /// body would not beat the dense image (never-bigger-than-dense).
  kAdaptive = 0,
  /// Always dense. Used as the like-for-like baseline by
  /// bench/bench_cube_compression (same page geometry, no compression).
  kForceDense = 1,
};

/// Density (non-zero cell fraction) at or below which the sparse COO
/// candidate is built; denser cubes go straight to delta-varint. At ~0.10
/// the worst-case COO entry (2 varints) still undercuts the 8-byte dense
/// cell on real update distributions.
inline constexpr double kSparseDensityThreshold = 0.10;

/// 16-byte header preceding every encoded cube body on disk:
///
///   offset 0  uint32  magic "RCUB"
///   offset 4  uint16  format version (1)
///   offset 6  uint8   encoding (CubeEncoding)
///   offset 7  uint8   reserved, must be 0
///   offset 8  uint64  body_bytes (exact encoded body length)
///
/// Seed-format pages predate this header and carry the raw dense image;
/// the catalog marks those entries legacy and readers skip header parsing
/// for them.
struct CubeBlobHeader {
  static constexpr uint32_t kMagic = 0x42554352;  // "RCUB" little-endian
  static constexpr uint16_t kVersion = 1;
  static constexpr size_t kBytes = 16;

  CubeEncoding encoding = CubeEncoding::kDenseRaw;
  uint64_t body_bytes = 0;

  /// Writes the kBytes-byte header to `out`.
  void SerializeTo(unsigned char* out) const;

  /// Parses and validates a header from `n` available bytes.
  static Result<CubeBlobHeader> Parse(const unsigned char* data, size_t n);
};

/// Aggregates an encoded body straight into the flat packed GROUP BY
/// accumulator `acc` (layout: GroupAccumulatorSize / SumSliceInto) without
/// materializing a dense cube on the sparse paths. Bit-for-bit equal to
/// decoding and running ConstCubeRef::SumSliceInto.
Status AccumulateEncodedSlice(const CubeSchema& schema, CubeEncoding encoding,
                              const unsigned char* body, size_t body_bytes,
                              const CubeSlice& slice, const GroupBySpec& spec,
                              uint64_t* acc);

/// Decodes an encoded body back to a dense cube.
Result<DataCube> DecodeEncodedCube(const CubeSchema& schema,
                                   CubeEncoding encoding,
                                   const unsigned char* body,
                                   size_t body_bytes);

/// One encoded cube: encoding tag + owned 8-byte-aligned body.
class EncodedCube {
 public:
  EncodedCube() = default;

  /// Encodes `cube` under `policy` (see CubeEncodingPolicy). Total cost is
  /// one density scan plus one candidate build per cube at ingest time.
  static EncodedCube Encode(
      const DataCube& cube,
      CubeEncodingPolicy policy = CubeEncodingPolicy::kAdaptive);

  const CubeSchema& schema() const { return schema_; }
  CubeEncoding encoding() const { return encoding_; }
  const unsigned char* body() const {
    return reinterpret_cast<const unsigned char*>(words_.data());
  }
  size_t body_bytes() const { return body_bytes_; }

  /// Exact on-disk blob length: header + body. This is also the size a
  /// byte-budgeted cache charges for the cube.
  size_t SerializedBytes() const {
    return CubeBlobHeader::kBytes + body_bytes_;
  }

  /// Writes SerializedBytes() bytes (header then body) to `out`.
  void SerializeTo(unsigned char* out) const;

  Status AccumulateSlice(const CubeSlice& slice, const GroupBySpec& spec,
                         uint64_t* acc) const {
    return AccumulateEncodedSlice(schema_, encoding_, body(), body_bytes_,
                                  slice, spec, acc);
  }

  Result<DataCube> Decode() const {
    return DecodeEncodedCube(schema_, encoding_, body(), body_bytes_);
  }

 private:
  CubeSchema schema_;
  CubeEncoding encoding_ = CubeEncoding::kDenseRaw;
  std::vector<uint64_t> words_;  // body storage, 8-byte aligned
  size_t body_bytes_ = 0;
};

/// Owning arena for N encoded cubes fetched in one batched read.
///
/// TemporalIndex::ReadCubes lays the page runs of all requested cubes out
/// back to back in the arena (each cube's pages are physically
/// consecutive, so its blob lands contiguous), then binds each slot to its
/// blob offset, validating the on-page header against the catalog's
/// recorded encoding and length. Aggregation then streams each body into
/// the accumulator without any dense materialization; Decode(i) is the
/// escape hatch for callers that need the cube itself (cache admission).
///
/// Slot offsets are 8-byte aligned by construction: page payloads are a
/// multiple of 8 and blobs start on page boundaries.
class EncodedCubeBatch {
 public:
  EncodedCubeBatch() = default;
  EncodedCubeBatch(const CubeSchema& schema, size_t num_cubes,
                   size_t arena_bytes);

  size_t size() const { return slots_.size(); }
  size_t arena_bytes() const { return arena_bytes_; }
  unsigned char* arena() {
    return reinterpret_cast<unsigned char*>(words_.data());
  }
  const unsigned char* arena() const {
    return reinterpret_cast<const unsigned char*>(words_.data());
  }

  /// Binds slot `i` to the blob at `blob_offset`, parsing the RCUB header
  /// and cross-checking it against the catalog-recorded `blob_bytes` and
  /// `expected_encoding`. Any mismatch is a Corruption error.
  Status BindEncoded(size_t i, size_t blob_offset, uint64_t blob_bytes,
                     CubeEncoding expected_encoding);

  /// Binds slot `i` to a seed-format raw dense image (no blob header) at
  /// `offset`.
  Status BindLegacyDense(size_t i, size_t offset);

  CubeEncoding encoding(size_t i) const { return slots_[i].encoding; }
  size_t body_bytes(size_t i) const { return slots_[i].body_bytes; }

  /// Streams cube `i` into the packed accumulator (see
  /// AccumulateEncodedSlice).
  Status AccumulateSlice(size_t i, const CubeSlice& slice,
                         const GroupBySpec& spec, uint64_t* acc) const;

  /// Decodes cube `i` to a dense DataCube.
  Result<DataCube> Decode(size_t i) const;

 private:
  struct Slot {
    size_t body_offset = 0;
    size_t body_bytes = 0;
    CubeEncoding encoding = CubeEncoding::kDenseRaw;
    bool bound = false;
  };

  CubeSchema schema_;
  std::vector<uint64_t> words_;  // arena storage, 8-byte aligned
  size_t arena_bytes_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace rased

#endif  // RASED_CUBE_CUBE_CODEC_H_
