#ifndef RASED_CUBE_DATA_CUBE_H_
#define RASED_CUBE_DATA_CUBE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cube/cube_schema.h"
#include "util/result.h"

namespace rased {

/// A dense 4-D array of update counters — one index node's precomputed
/// statistics (Section VI-A). The dense layout makes the two operations the
/// index performs constantly trivial and fast: per-update increments during
/// daily maintenance and whole-cube vector adds during weekly/monthly/
/// yearly rollups.
class DataCube {
 public:
  /// A zero-filled cube.
  explicit DataCube(const CubeSchema& schema);

  DataCube(const DataCube&) = default;
  DataCube& operator=(const DataCube&) = default;
  DataCube(DataCube&&) = default;
  DataCube& operator=(DataCube&&) = default;

  const CubeSchema& schema() const { return schema_; }

  /// Increments one cell. Coordinates must be in range (DCHECKed).
  void Add(uint32_t element_type, uint32_t country, uint32_t road_type,
           uint32_t update_type, uint64_t count = 1);

  uint64_t Get(uint32_t element_type, uint32_t country, uint32_t road_type,
               uint32_t update_type) const;

  /// Element-wise sum with another cube of the same schema — the rollup
  /// operation building weekly/monthly/yearly cubes from their children.
  Status Merge(const DataCube& other);

  void Clear();

  /// Sum of every cell.
  uint64_t Total() const;

  /// Sum of the cells selected by `slice` (empty dimension list = all).
  uint64_t SumSlice(const CubeSlice& slice) const;

  /// Visits every *non-zero* cell selected by `slice`. This is the
  /// in-memory phase-2 aggregation primitive of the query executor.
  using CellVisitor =
      std::function<void(uint32_t element_type, uint32_t country,
                         uint32_t road_type, uint32_t update_type,
                         uint64_t count)>;
  void ForEachCell(const CubeSlice& slice, const CellVisitor& visit) const;

  /// Raw counters in schema cell order.
  const std::vector<uint64_t>& cells() const { return cells_; }

  // --- serialization (page payload format: raw little-endian counters) ---

  size_t SerializedBytes() const { return schema_.cube_bytes(); }

  /// Writes SerializedBytes() bytes to `out`.
  void SerializeTo(unsigned char* out) const;

  /// Reads a cube previously serialized with the same schema. `n` must be
  /// at least schema.cube_bytes().
  static Result<DataCube> Deserialize(const CubeSchema& schema,
                                      const unsigned char* data, size_t n);

  friend bool operator==(const DataCube& a, const DataCube& b) {
    return a.schema_ == b.schema_ && a.cells_ == b.cells_;
  }

 private:
  CubeSchema schema_;
  std::vector<uint64_t> cells_;
};

}  // namespace rased

#endif  // RASED_CUBE_DATA_CUBE_H_
