#ifndef RASED_CUBE_DATA_CUBE_H_
#define RASED_CUBE_DATA_CUBE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cube/cube_schema.h"
#include "util/result.h"

namespace rased {

/// Visits one non-zero cell during slice iteration.
using CubeCellVisitor =
    std::function<void(uint32_t element_type, uint32_t country,
                       uint32_t road_type, uint32_t update_type,
                       uint64_t count)>;

/// Which dimensions a GROUP BY keeps. Ungrouped dimensions collapse into
/// one accumulator slot.
struct GroupBySpec {
  bool element_type = false;
  bool country = false;
  bool road_type = false;
  bool update_type = false;
};

/// Number of slots a flat dense group-by accumulator needs for `spec`
/// under `schema`: the product of the grouped dimension sizes (>= 1).
/// Slot order is row-major over the grouped dimensions in schema order
/// (element_type, country, road_type, update_type) — the same order cube
/// cells are laid out in, so a fully grouped accumulator is cell order.
size_t GroupAccumulatorSize(const CubeSchema& schema, const GroupBySpec& spec);

/// Non-owning, read-only view of one cube's cells — the zero-copy
/// aggregation handle. A DataCube yields one via View(); a CubeBatch
/// yields one per fetched cube, so cubes read from a page buffer are
/// aggregated without an intermediate deserialize copy. The view borrows
/// both the schema and the cells; the owner must outlive it.
///
/// All methods are const and touch only the borrowed immutable cells, so
/// any number of threads may aggregate through views concurrently.
class ConstCubeRef {
 public:
  ConstCubeRef(const CubeSchema* schema, const uint64_t* cells)
      : schema_(schema), cells_(cells) {}

  const CubeSchema& schema() const { return *schema_; }
  const uint64_t* cells() const { return cells_; }

  uint64_t Get(uint32_t element_type, uint32_t country, uint32_t road_type,
               uint32_t update_type) const;

  /// Sum of every cell.
  uint64_t Total() const;

  /// Sum of the cells selected by `slice` (empty dimension list = all).
  uint64_t SumSlice(const CubeSlice& slice) const;

  /// The dense group-by kernel: folds every cell selected by `slice` into
  /// `acc`, a flat accumulator of GroupAccumulatorSize(schema, spec)
  /// slots indexed by the packed grouped coordinates. Innermost
  /// dimensions that are neither constrained nor grouped are reduced with
  /// contiguous strided sums instead of per-cell visits. `slice` must be
  /// Normalized (sorted, deduplicated).
  void SumSliceInto(const CubeSlice& slice, const GroupBySpec& spec,
                    uint64_t* acc) const;

  /// Visits every *non-zero* cell selected by `slice` — the naive
  /// reference the kernels are property-tested against.
  void ForEachCell(const CubeSlice& slice, const CubeCellVisitor& visit) const;

 private:
  const CubeSchema* schema_;
  const uint64_t* cells_;
};

/// A dense 4-D array of update counters — one index node's precomputed
/// statistics (Section VI-A). The dense layout makes the two operations the
/// index performs constantly trivial and fast: per-update increments during
/// daily maintenance and whole-cube vector adds during weekly/monthly/
/// yearly rollups.
class DataCube {
 public:
  /// A zero-filled cube.
  explicit DataCube(const CubeSchema& schema);

  DataCube(const DataCube&) = default;
  DataCube& operator=(const DataCube&) = default;
  DataCube(DataCube&&) = default;
  DataCube& operator=(DataCube&&) = default;

  const CubeSchema& schema() const { return schema_; }

  /// Zero-copy read view of this cube (valid while the cube lives).
  ConstCubeRef View() const { return ConstCubeRef(&schema_, cells_.data()); }

  /// Increments one cell. Coordinates must be in range (DCHECKed).
  void Add(uint32_t element_type, uint32_t country, uint32_t road_type,
           uint32_t update_type, uint64_t count = 1);

  uint64_t Get(uint32_t element_type, uint32_t country, uint32_t road_type,
               uint32_t update_type) const;

  /// Element-wise sum with another cube of the same schema — the rollup
  /// operation building weekly/monthly/yearly cubes from their children.
  Status Merge(const DataCube& other);

  void Clear();

  /// Sum of every cell.
  uint64_t Total() const;

  /// Sum of the cells selected by `slice` (empty dimension list = all).
  uint64_t SumSlice(const CubeSlice& slice) const;

  /// See ConstCubeRef::SumSliceInto.
  void SumSliceInto(const CubeSlice& slice, const GroupBySpec& spec,
                    uint64_t* acc) const {
    View().SumSliceInto(slice, spec, acc);
  }

  /// Visits every *non-zero* cell selected by `slice`.
  using CellVisitor = CubeCellVisitor;
  void ForEachCell(const CubeSlice& slice, const CellVisitor& visit) const;

  /// Raw counters in schema cell order.
  const std::vector<uint64_t>& cells() const { return cells_; }

  // --- serialization (page payload format: raw little-endian counters) ---

  size_t SerializedBytes() const { return schema_.cube_bytes(); }

  /// Writes SerializedBytes() bytes to `out`.
  void SerializeTo(unsigned char* out) const;

  /// Reads a cube previously serialized with the same schema. `n` must be
  /// at least schema.cube_bytes().
  static Result<DataCube> Deserialize(const CubeSchema& schema,
                                      const unsigned char* data, size_t n);

  /// Owning copy of num_cells() counters (e.g. materializing one cube out
  /// of a CubeBatch for cache admission).
  static DataCube FromCells(const CubeSchema& schema, const uint64_t* cells);

  friend bool operator==(const DataCube& a, const DataCube& b) {
    return a.schema_ == b.schema_ && a.cells_ == b.cells_;
  }

 private:
  CubeSchema schema_;
  std::vector<uint64_t> cells_;
};

/// Owning container for N cubes fetched in one batched read: a single
/// 8-byte-aligned allocation of N * num_cells() counters, filled directly
/// by the pager (page payloads land at cube_bytes() stride), with
/// zero-copy per-cube views. One allocation and one payload copy per
/// batch, instead of the per-cube vector + Deserialize memcpy of the
/// serial path.
class CubeBatch {
 public:
  CubeBatch() = default;
  CubeBatch(const CubeSchema& schema, size_t num_cubes);

  const CubeSchema& schema() const { return schema_; }
  size_t size() const { return num_cubes_; }

  /// Zero-copy view of cube `i` (valid while the batch lives).
  ConstCubeRef cube(size_t i) const;

  /// Owning copy of cube `i` (for cache admission).
  DataCube Materialize(size_t i) const;

  /// The backing store as bytes: size() * schema().cube_bytes(),
  /// cube-serialization format at cube_bytes() stride. The pager's
  /// batched read writes payloads straight into this.
  unsigned char* raw_bytes();

 private:
  CubeSchema schema_;
  size_t num_cubes_ = 0;
  std::vector<uint64_t> cells_;  // num_cubes * num_cells, cube-major
};

}  // namespace rased

#endif  // RASED_CUBE_DATA_CUBE_H_
