#include "cube/data_cube.h"

#include <cstring>
#include <numeric>

#include "cube/agg_kernels.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

size_t GroupAccumulatorSize(const CubeSchema& schema, const GroupBySpec& spec) {
  size_t n = 1;
  if (spec.element_type) n *= schema.num_element_types;
  if (spec.country) n *= schema.num_countries;
  if (spec.road_type) n *= schema.num_road_types;
  if (spec.update_type) n *= schema.num_update_types;
  return n;
}

namespace {

/// Expands a possibly-empty selection to an iteration universe.
struct DimIter {
  const std::vector<uint32_t>* selected;  // nullptr-like when empty
  uint32_t size;                          // dimension size when unselected

  uint32_t count() const {
    return selected->empty() ? size
                             : static_cast<uint32_t>(selected->size());
  }
  uint32_t value(uint32_t i) const {
    return selected->empty() ? i : (*selected)[i];
  }
  /// True when the selection covers the whole dimension contiguously.
  bool dense() const { return selected->empty(); }
};

void ForEachCellImpl(const CubeSchema& schema, const uint64_t* cells,
                     const CubeSlice& slice, const CubeCellVisitor& visit) {
  DimIter et{&slice.element_types, schema.num_element_types};
  DimIter co{&slice.countries, schema.num_countries};
  DimIter rt{&slice.road_types, schema.num_road_types};
  DimIter ut{&slice.update_types, schema.num_update_types};

  for (uint32_t a = 0; a < et.count(); ++a) {
    uint32_t ev = et.value(a);
    if (ev >= schema.num_element_types) continue;
    for (uint32_t b = 0; b < co.count(); ++b) {
      uint32_t cv = co.value(b);
      if (cv >= schema.num_countries) continue;
      for (uint32_t c = 0; c < rt.count(); ++c) {
        uint32_t rv = rt.value(c);
        if (rv >= schema.num_road_types) continue;
        // Innermost dimension: cells are contiguous when unconstrained.
        size_t base = schema.CellIndex(ev, cv, rv, 0);
        for (uint32_t d = 0; d < ut.count(); ++d) {
          uint32_t uv = ut.value(d);
          if (uv >= schema.num_update_types) continue;
          uint64_t count = cells[base + uv];
          if (count != 0) visit(ev, cv, rv, uv, count);
        }
      }
    }
  }
}

/// Contiguous sum of `n` counters — the strided fast path's inner loop,
/// dispatched to the hand-vectorized AVX2 kernel for long runs (see
/// cube/agg_kernels.h; bit-for-bit identical to the scalar loop).
inline uint64_t SumRun(const uint64_t* p, size_t n) {
  return kernels::SumRun(p, n);
}

/// The dense group-by kernel (see ConstCubeRef::SumSliceInto). Strategy:
/// walk the constrained/grouped outer dimensions exactly like ForEachCell,
/// but compute each visited cell's packed accumulator slot incrementally
/// from per-dimension group strides (stride 0 when ungrouped), and reduce
/// innermost dimensions that are neither constrained nor grouped with
/// contiguous sums instead of per-cell visits:
///   - update_type dense & ungrouped             -> sum UT-runs
///   - ...and road_type dense & ungrouped too    -> sum RT*UT planes
void SumSliceIntoImpl(const CubeSchema& schema, const uint64_t* cells,
                      const CubeSlice& slice, const GroupBySpec& spec,
                      uint64_t* acc) {
  DimIter et{&slice.element_types, schema.num_element_types};
  DimIter co{&slice.countries, schema.num_countries};
  DimIter rt{&slice.road_types, schema.num_road_types};
  DimIter ut{&slice.update_types, schema.num_update_types};

  // Packed accumulator strides, row-major over grouped dims in schema
  // order (et, co, rt, ut), innermost-out. Ungrouped -> stride 0, so the
  // slot index contribution of that dimension vanishes.
  size_t unit = 1;
  size_t s_ut = 0, s_rt = 0, s_co = 0, s_et = 0;
  if (spec.update_type) {
    s_ut = unit;
    unit *= schema.num_update_types;
  }
  if (spec.road_type) {
    s_rt = unit;
    unit *= schema.num_road_types;
  }
  if (spec.country) {
    s_co = unit;
    unit *= schema.num_countries;
  }
  if (spec.element_type) {
    s_et = unit;
  }

  const bool ut_whole = ut.dense() && !spec.update_type;
  const bool rt_whole = rt.dense() && !spec.road_type;
  const size_t ut_size = schema.num_update_types;
  const size_t plane = static_cast<size_t>(schema.num_road_types) * ut_size;

  for (uint32_t a = 0; a < et.count(); ++a) {
    uint32_t ev = et.value(a);
    if (ev >= schema.num_element_types) continue;
    const size_t g_et = s_et * ev;
    for (uint32_t b = 0; b < co.count(); ++b) {
      uint32_t cv = co.value(b);
      if (cv >= schema.num_countries) continue;
      const size_t g_co = g_et + s_co * cv;
      if (ut_whole && rt_whole) {
        // Whole road_type x update_type plane collapses into one slot.
        acc[g_co] += SumRun(cells + schema.CellIndex(ev, cv, 0, 0), plane);
        continue;
      }
      for (uint32_t c = 0; c < rt.count(); ++c) {
        uint32_t rv = rt.value(c);
        if (rv >= schema.num_road_types) continue;
        const size_t g_rt = g_co + s_rt * rv;
        const uint64_t* row = cells + schema.CellIndex(ev, cv, rv, 0);
        if (ut_whole) {
          acc[g_rt] += SumRun(row, ut_size);
          continue;
        }
        for (uint32_t d = 0; d < ut.count(); ++d) {
          uint32_t uv = ut.value(d);
          if (uv >= schema.num_update_types) continue;
          acc[g_rt + s_ut * uv] += row[uv];
        }
      }
    }
  }
}

}  // namespace

// --- ConstCubeRef ---

uint64_t ConstCubeRef::Get(uint32_t element_type, uint32_t country,
                           uint32_t road_type, uint32_t update_type) const {
  RASED_DCHECK(
      schema_->InRange(element_type, country, road_type, update_type))
      << "cube coordinate out of range";
  return cells_[schema_->CellIndex(element_type, country, road_type,
                                   update_type)];
}

uint64_t ConstCubeRef::Total() const {
  return SumRun(cells_, schema_->num_cells());
}

uint64_t ConstCubeRef::SumSlice(const CubeSlice& slice) const {
  if (slice.IsUnconstrained()) return Total();
  uint64_t sum = 0;
  SumSliceInto(slice, GroupBySpec{}, &sum);
  return sum;
}

void ConstCubeRef::SumSliceInto(const CubeSlice& slice, const GroupBySpec& spec,
                                uint64_t* acc) const {
  SumSliceIntoImpl(*schema_, cells_, slice, spec, acc);
}

void ConstCubeRef::ForEachCell(const CubeSlice& slice,
                               const CubeCellVisitor& visit) const {
  ForEachCellImpl(*schema_, cells_, slice, visit);
}

// --- DataCube ---

DataCube::DataCube(const CubeSchema& schema)
    : schema_(schema), cells_(schema.num_cells(), 0) {}

void DataCube::Add(uint32_t element_type, uint32_t country,
                   uint32_t road_type, uint32_t update_type, uint64_t count) {
  RASED_DCHECK(schema_.InRange(element_type, country, road_type, update_type))
      << "cube coordinate out of range";
  cells_[schema_.CellIndex(element_type, country, road_type, update_type)] +=
      count;
}

uint64_t DataCube::Get(uint32_t element_type, uint32_t country,
                       uint32_t road_type, uint32_t update_type) const {
  RASED_DCHECK(schema_.InRange(element_type, country, road_type, update_type))
      << "cube coordinate out of range";
  return cells_[schema_.CellIndex(element_type, country, road_type,
                                  update_type)];
}

Status DataCube::Merge(const DataCube& other) {
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument("merging cubes with different schemas: " +
                                   schema_.ToString() + " vs " +
                                   other.schema_.ToString());
  }
  kernels::AddRun(cells_.data(), other.cells_.data(), cells_.size());
  return Status::OK();
}

void DataCube::Clear() { std::fill(cells_.begin(), cells_.end(), 0); }

uint64_t DataCube::Total() const { return View().Total(); }

uint64_t DataCube::SumSlice(const CubeSlice& slice) const {
  return View().SumSlice(slice);
}

void DataCube::ForEachCell(const CubeSlice& slice,
                           const CellVisitor& visit) const {
  View().ForEachCell(slice, visit);
}

void DataCube::SerializeTo(unsigned char* out) const {
  std::memcpy(out, cells_.data(), schema_.cube_bytes());
}

Result<DataCube> DataCube::Deserialize(const CubeSchema& schema,
                                       const unsigned char* data, size_t n) {
  if (n < schema.cube_bytes()) {
    return Status::Corruption(
        StrFormat("cube payload %zu bytes, schema needs %zu", n,
                  schema.cube_bytes()));
  }
  DataCube cube(schema);
  std::memcpy(cube.cells_.data(), data, schema.cube_bytes());
  return cube;
}

DataCube DataCube::FromCells(const CubeSchema& schema, const uint64_t* cells) {
  DataCube cube(schema);
  std::memcpy(cube.cells_.data(), cells, schema.cube_bytes());
  return cube;
}

// --- CubeBatch ---

CubeBatch::CubeBatch(const CubeSchema& schema, size_t num_cubes)
    : schema_(schema),
      num_cubes_(num_cubes),
      cells_(schema.num_cells() * num_cubes, 0) {}

ConstCubeRef CubeBatch::cube(size_t i) const {
  RASED_DCHECK(i < num_cubes_) << "cube index out of range";
  return ConstCubeRef(&schema_, cells_.data() + i * schema_.num_cells());
}

DataCube CubeBatch::Materialize(size_t i) const {
  RASED_DCHECK(i < num_cubes_) << "cube index out of range";
  return DataCube::FromCells(schema_,
                             cells_.data() + i * schema_.num_cells());
}

unsigned char* CubeBatch::raw_bytes() {
  return reinterpret_cast<unsigned char*>(cells_.data());
}

}  // namespace rased
