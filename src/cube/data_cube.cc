#include "cube/data_cube.h"

#include <cstring>
#include <numeric>

#include "util/logging.h"
#include "util/str_util.h"

namespace rased {

DataCube::DataCube(const CubeSchema& schema)
    : schema_(schema), cells_(schema.num_cells(), 0) {}

void DataCube::Add(uint32_t element_type, uint32_t country,
                   uint32_t road_type, uint32_t update_type, uint64_t count) {
  RASED_DCHECK(schema_.InRange(element_type, country, road_type, update_type))
      << "cube coordinate out of range";
  cells_[schema_.CellIndex(element_type, country, road_type, update_type)] +=
      count;
}

uint64_t DataCube::Get(uint32_t element_type, uint32_t country,
                       uint32_t road_type, uint32_t update_type) const {
  RASED_DCHECK(schema_.InRange(element_type, country, road_type, update_type))
      << "cube coordinate out of range";
  return cells_[schema_.CellIndex(element_type, country, road_type,
                                  update_type)];
}

Status DataCube::Merge(const DataCube& other) {
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument("merging cubes with different schemas: " +
                                   schema_.ToString() + " vs " +
                                   other.schema_.ToString());
  }
  const uint64_t* src = other.cells_.data();
  uint64_t* dst = cells_.data();
  size_t n = cells_.size();
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
  return Status::OK();
}

void DataCube::Clear() { std::fill(cells_.begin(), cells_.end(), 0); }

uint64_t DataCube::Total() const {
  return std::accumulate(cells_.begin(), cells_.end(), uint64_t{0});
}

namespace {

/// Expands a possibly-empty selection to an iteration universe.
struct DimIter {
  const std::vector<uint32_t>* selected;  // nullptr-like when empty
  uint32_t size;                          // dimension size when unselected

  uint32_t count() const {
    return selected->empty() ? size
                             : static_cast<uint32_t>(selected->size());
  }
  uint32_t value(uint32_t i) const {
    return selected->empty() ? i : (*selected)[i];
  }
};

}  // namespace

uint64_t DataCube::SumSlice(const CubeSlice& slice) const {
  if (slice.IsUnconstrained()) return Total();
  uint64_t sum = 0;
  ForEachCell(slice, [&sum](uint32_t, uint32_t, uint32_t, uint32_t,
                            uint64_t count) { sum += count; });
  return sum;
}

void DataCube::ForEachCell(const CubeSlice& slice,
                           const CellVisitor& visit) const {
  DimIter et{&slice.element_types, schema_.num_element_types};
  DimIter co{&slice.countries, schema_.num_countries};
  DimIter rt{&slice.road_types, schema_.num_road_types};
  DimIter ut{&slice.update_types, schema_.num_update_types};

  for (uint32_t a = 0; a < et.count(); ++a) {
    uint32_t ev = et.value(a);
    if (ev >= schema_.num_element_types) continue;
    for (uint32_t b = 0; b < co.count(); ++b) {
      uint32_t cv = co.value(b);
      if (cv >= schema_.num_countries) continue;
      for (uint32_t c = 0; c < rt.count(); ++c) {
        uint32_t rv = rt.value(c);
        if (rv >= schema_.num_road_types) continue;
        // Innermost dimension: cells are contiguous when unconstrained.
        size_t base = schema_.CellIndex(ev, cv, rv, 0);
        for (uint32_t d = 0; d < ut.count(); ++d) {
          uint32_t uv = ut.value(d);
          if (uv >= schema_.num_update_types) continue;
          uint64_t count = cells_[base + uv];
          if (count != 0) visit(ev, cv, rv, uv, count);
        }
      }
    }
  }
}

void DataCube::SerializeTo(unsigned char* out) const {
  std::memcpy(out, cells_.data(), schema_.cube_bytes());
}

Result<DataCube> DataCube::Deserialize(const CubeSchema& schema,
                                       const unsigned char* data, size_t n) {
  if (n < schema.cube_bytes()) {
    return Status::Corruption(
        StrFormat("cube payload %zu bytes, schema needs %zu", n,
                  schema.cube_bytes()));
  }
  DataCube cube(schema);
  std::memcpy(cube.cells_.data(), data, schema.cube_bytes());
  return cube;
}

}  // namespace rased
