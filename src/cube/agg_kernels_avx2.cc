#include "cube/agg_kernels.h"

#include <immintrin.h>

// The ONLY translation unit built with -mavx2 and the only one permitted
// to touch vendor SIMD intrinsics (rased-lint RL013). Everything here must
// stay bit-for-bit identical to the scalar kernels: 64-bit lane adds wrap
// modulo 2^64 exactly like uint64_t arithmetic, and integer addition is
// associative, so lane-parallel partial sums reduce to the same value in
// any order.

namespace rased {
namespace kernels {

uint64_t SumRunAvx2(const uint64_t* p, size_t n) {
  // Two independent accumulators hide the 1-cycle add latency behind the
  // 2-per-cycle load throughput on the long runs this is dispatched for.
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_epi64(
        acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)));
    acc1 = _mm256_add_epi64(
        acc1,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 4)));
  }
  if (i + 4 <= n) {
    acc0 = _mm256_add_epi64(
        acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)));
    i += 4;
  }
  alignas(32) uint64_t lane[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane),
                     _mm256_add_epi64(acc0, acc1));
  uint64_t sum = lane[0] + lane[1] + lane[2] + lane[3];
  for (; i < n; ++i) sum += p[i];
  return sum;
}

void AddRunAvx2(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(d, s));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

}  // namespace kernels
}  // namespace rased
