#ifndef RASED_CUBE_AGG_KERNELS_H_
#define RASED_CUBE_AGG_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace rased {
namespace kernels {

/// Contiguous-run aggregation kernels behind runtime CPU dispatch.
///
/// The dense group-by fast paths in SumSliceInto reduce whole
/// road_type x update_type planes (and whole cubes, via Total/rollup
/// merges) with two primitive loops: a horizontal sum of a contiguous run
/// and an element-wise add of one run into another. Both are pure 64-bit
/// integer adds, so every implementation is bit-for-bit identical by
/// construction (addition is associative and commutative modulo 2^64) —
/// the property the scalar-vs-AVX2 cross-check suite asserts.
///
/// Dispatch: the scalar kernels are always compiled; when the build
/// includes the AVX2 translation unit (RASED_DISABLE_AVX2 off, x86-64
/// target) and the running CPU reports AVX2, ActiveKernels() resolves to
/// the vector implementations once on first use. Short runs skip the
/// indirect call entirely — for a 4-wide update_type row the call would
/// cost more than the adds.
///
/// All functions are thread-safe: the kernel table is immutable after the
/// first resolution and the test-only scalar override is an atomic flag.

/// Always-compiled scalar fallbacks (also the reference implementations).
uint64_t SumRunScalar(const uint64_t* p, size_t n);
void AddRunScalar(uint64_t* dst, const uint64_t* src, size_t n);

struct KernelTable {
  uint64_t (*sum_run)(const uint64_t* p, size_t n);
  void (*add_run)(uint64_t* dst, const uint64_t* src, size_t n);
  const char* name;  // "scalar" or "avx2"
};

/// The resolved kernel table (CPU detection happens once, on first call).
const KernelTable& ActiveKernels();

/// True when the AVX2 translation unit was compiled into this binary
/// (independent of what the running CPU supports).
bool Avx2CompiledIn();

/// True when ActiveKernels() currently resolves to the AVX2 kernels.
bool Avx2Active();

/// Test hook: force the scalar kernels regardless of CPU support, so the
/// cross-check suites and benches can run both implementations in one
/// process. Not for production paths.
void ForceScalarKernelsForTesting(bool force);

/// Below this run length the dispatch overhead (indirect call + vector
/// setup) exceeds the work; both entry points inline a scalar loop.
inline constexpr size_t kShortRunCells = 16;

/// Sum of `n` contiguous counters.
inline uint64_t SumRun(const uint64_t* p, size_t n) {
  if (n < kShortRunCells) {
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i) sum += p[i];
    return sum;
  }
  return ActiveKernels().sum_run(p, n);
}

/// dst[i] += src[i] over `n` contiguous counters (the rollup merge loop).
inline void AddRun(uint64_t* dst, const uint64_t* src, size_t n) {
  if (n < kShortRunCells) {
    for (size_t i = 0; i < n; ++i) dst[i] += src[i];
    return;
  }
  ActiveKernels().add_run(dst, src, n);
}

}  // namespace kernels
}  // namespace rased

#endif  // RASED_CUBE_AGG_KERNELS_H_
