#include "cube/agg_kernels.h"

#include <atomic>

namespace rased {
namespace kernels {

uint64_t SumRunScalar(const uint64_t* p, size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) sum += p[i];
  return sum;
}

void AddRunScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

#if defined(RASED_HAVE_AVX2)
// Defined in agg_kernels_avx2.cc — the only translation unit built with
// -mavx2 and the only one allowed to use vendor intrinsics (rased-lint
// RL013 confines them there).
uint64_t SumRunAvx2(const uint64_t* p, size_t n);
void AddRunAvx2(uint64_t* dst, const uint64_t* src, size_t n);
#endif

namespace {

constexpr KernelTable kScalarTable{SumRunScalar, AddRunScalar, "scalar"};
#if defined(RASED_HAVE_AVX2)
constexpr KernelTable kAvx2Table{SumRunAvx2, AddRunAvx2, "avx2"};
#endif

const KernelTable* DetectKernels() {
#if defined(RASED_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return &kAvx2Table;
#endif
  return &kScalarTable;
}

/// Resolved once on first use; immutable afterwards. The acquire/release
/// pair only orders the pointer publication — both candidate tables are
/// constexpr, so a racing first call resolves to the same table.
std::atomic<const KernelTable*> g_active{nullptr};

/// Test-only override; checked on every dispatch so a test can flip it
/// between passes of a cross-check.
std::atomic<bool> g_force_scalar{false};

}  // namespace

const KernelTable& ActiveKernels() {
  if (g_force_scalar.load(std::memory_order_relaxed)) return kScalarTable;
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = DetectKernels();
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

bool Avx2CompiledIn() {
#if defined(RASED_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool Avx2Active() { return &ActiveKernels() != &kScalarTable; }

void ForceScalarKernelsForTesting(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

}  // namespace kernels
}  // namespace rased
