#include "cube/cube_codec.h"

#include <cstring>

#include "util/varint.h"

namespace rased {

namespace {

// --- Little-endian scalar I/O ---------------------------------------------

void StoreLe16(unsigned char* p, uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}

void StoreLe32(unsigned char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void StoreLe64(unsigned char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

uint16_t LoadLe16(const unsigned char* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t LoadLe32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t LoadLe64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

// LEB128 varints and zigzag live in util/varint.h (hoisted from this file
// so obs/timeseries.cc can delta-encode metric snapshots the same way).

// --- Packed GROUP BY lookup tables ----------------------------------------

/// Per-dimension table mapping a coordinate value to its packed
/// accumulator-slot contribution, or kExcludedSlot when the slice filters
/// the value out. Strides mirror SumSliceIntoImpl exactly (row-major over
/// grouped dims in schema order, update_type innermost), so streaming
/// encoded cells through these tables is bit-for-bit the dense kernel's
/// result. Assumes the slice is Normalize()d (selections deduplicated),
/// the same contract the dense path relies on.
struct SliceLuts {
  static constexpr int64_t kExcludedSlot = -1;
  std::vector<int64_t> et, co, rt, ut;
};

void BuildDimLut(std::vector<int64_t>* lut, const std::vector<uint32_t>& sel,
                 uint32_t dim_size, size_t stride) {
  if (sel.empty()) {
    lut->resize(dim_size);
    for (uint32_t v = 0; v < dim_size; ++v) {
      (*lut)[v] = static_cast<int64_t>(stride * v);
    }
    return;
  }
  lut->assign(dim_size, SliceLuts::kExcludedSlot);
  for (uint32_t v : sel) {
    if (v < dim_size) (*lut)[v] = static_cast<int64_t>(stride * v);
  }
}

void BuildSliceLuts(const CubeSchema& schema, const CubeSlice& slice,
                    const GroupBySpec& spec, SliceLuts* luts) {
  size_t unit = 1;
  size_t s_ut = 0, s_rt = 0, s_co = 0, s_et = 0;
  if (spec.update_type) {
    s_ut = unit;
    unit *= schema.num_update_types;
  }
  if (spec.road_type) {
    s_rt = unit;
    unit *= schema.num_road_types;
  }
  if (spec.country) {
    s_co = unit;
    unit *= schema.num_countries;
  }
  if (spec.element_type) {
    s_et = unit;
  }
  BuildDimLut(&luts->et, slice.element_types, schema.num_element_types, s_et);
  BuildDimLut(&luts->co, slice.countries, schema.num_countries, s_co);
  BuildDimLut(&luts->rt, slice.road_types, schema.num_road_types, s_rt);
  BuildDimLut(&luts->ut, slice.update_types, schema.num_update_types, s_ut);
}

// --- Per-encoding body builders -------------------------------------------

void BuildSparseBody(const CubeSchema& schema,
                     const std::vector<uint64_t>& cells, size_t nnz,
                     std::vector<unsigned char>* body) {
  (void)schema;
  PutVarint(body, nnz);
  uint64_t next_min = 0;  // smallest index the next entry may use
  for (size_t idx = 0; idx < cells.size(); ++idx) {
    if (cells[idx] == 0) continue;
    PutVarint(body, static_cast<uint64_t>(idx) - next_min);
    PutVarint(body, cells[idx]);
    next_min = static_cast<uint64_t>(idx) + 1;
  }
}

void BuildDeltaBody(const std::vector<uint64_t>& cells,
                    std::vector<unsigned char>* body) {
  uint64_t prev = 0;
  for (uint64_t cell : cells) {
    PutVarint(body, ZigzagEncode(cell - prev));
    prev = cell;
  }
}

// --- Per-encoding accumulate / decode cores -------------------------------

/// Decomposes linear index `idx` and adds `value` into `acc` through the
/// LUTs. Returns false when any dimension is filtered out.
inline void AccumulateCell(const SliceLuts& luts, uint64_t idx, uint64_t value,
                           uint32_t num_update_types, uint32_t num_road_types,
                           uint32_t num_countries, uint64_t* acc) {
  const uint64_t ut = idx % num_update_types;
  uint64_t rest = idx / num_update_types;
  const uint64_t rt = rest % num_road_types;
  rest /= num_road_types;
  const uint64_t co = rest % num_countries;
  const uint64_t et = rest / num_countries;
  const int64_t g_ut = luts.ut[ut];
  const int64_t g_rt = luts.rt[rt];
  const int64_t g_co = luts.co[co];
  const int64_t g_et = luts.et[et];
  if ((g_ut | g_rt | g_co | g_et) < 0) return;  // some dim filtered out
  acc[g_et + g_co + g_rt + g_ut] += value;
}

Status AccumulateSparse(const CubeSchema& schema, const unsigned char* body,
                        size_t body_bytes, const SliceLuts& luts,
                        uint64_t* acc) {
  const unsigned char* p = body;
  const unsigned char* end = body + body_bytes;
  const uint64_t num_cells = schema.num_cells();
  uint64_t nnz = 0;
  RASED_RETURN_IF_ERROR(GetVarint(&p, end, &nnz));
  if (nnz > num_cells) {
    return Status::Corruption("sparse cube nnz exceeds cell count");
  }
  uint64_t next_min = 0;
  for (uint64_t i = 0; i < nnz; ++i) {
    uint64_t gap = 0;
    uint64_t value = 0;
    RASED_RETURN_IF_ERROR(GetVarint(&p, end, &gap));
    RASED_RETURN_IF_ERROR(GetVarint(&p, end, &value));
    if (gap >= num_cells || next_min + gap >= num_cells) {
      return Status::Corruption("sparse cube coordinate out of range");
    }
    const uint64_t idx = next_min + gap;
    next_min = idx + 1;
    AccumulateCell(luts, idx, value, schema.num_update_types,
                   schema.num_road_types, schema.num_countries, acc);
  }
  if (p != end) {
    return Status::Corruption("trailing bytes after sparse cube body");
  }
  return Status::OK();
}

Status AccumulateDelta(const CubeSchema& schema, const unsigned char* body,
                       size_t body_bytes, const SliceLuts& luts,
                       uint64_t* acc) {
  const unsigned char* p = body;
  const unsigned char* end = body + body_bytes;
  const uint64_t num_cells = schema.num_cells();
  uint64_t cell = 0;  // running value; deltas accumulate mod 2^64
  for (uint64_t idx = 0; idx < num_cells; ++idx) {
    uint64_t z = 0;
    RASED_RETURN_IF_ERROR(GetVarint(&p, end, &z));
    cell += ZigzagDecode(z);
    if (cell != 0) {
      AccumulateCell(luts, idx, cell, schema.num_update_types,
                     schema.num_road_types, schema.num_countries, acc);
    }
  }
  if (p != end) {
    return Status::Corruption("trailing bytes after delta cube body");
  }
  return Status::OK();
}

Status AccumulateDense(const CubeSchema& schema, const unsigned char* body,
                       size_t body_bytes, const CubeSlice& slice,
                       const GroupBySpec& spec, uint64_t* acc) {
  if (body_bytes != schema.cube_bytes()) {
    return Status::Corruption("dense cube body has wrong length");
  }
  if (reinterpret_cast<uintptr_t>(body) % alignof(uint64_t) == 0) {
    // Aligned (the arena/EncodedCube case): reuse the SIMD dense kernels
    // on a zero-copy view.
    ConstCubeRef(&schema,
                 reinterpret_cast<const uint64_t*>(
                     static_cast<const void*>(body)))
        .SumSliceInto(slice, spec, acc);
    return Status::OK();
  }
  // Misaligned caller (shouldn't happen on the hot paths): deserialize,
  // which memcpys, then aggregate.
  RASED_ASSIGN_OR_RETURN(DataCube cube,
                         DataCube::Deserialize(schema, body, body_bytes));
  cube.SumSliceInto(slice, spec, acc);
  return Status::OK();
}

}  // namespace

const char* CubeEncodingName(CubeEncoding encoding) {
  switch (encoding) {
    case CubeEncoding::kDenseRaw:
      return "dense";
    case CubeEncoding::kSparseCoo:
      return "sparse";
    case CubeEncoding::kDeltaVarint:
      return "delta";
  }
  return "unknown";
}

void CubeBlobHeader::SerializeTo(unsigned char* out) const {
  StoreLe32(out, kMagic);
  StoreLe16(out + 4, kVersion);
  out[6] = static_cast<unsigned char>(encoding);
  out[7] = 0;
  StoreLe64(out + 8, body_bytes);
}

Result<CubeBlobHeader> CubeBlobHeader::Parse(const unsigned char* data,
                                             size_t n) {
  if (n < kBytes) {
    return Status::Corruption("cube blob shorter than its header");
  }
  if (LoadLe32(data) != kMagic) {
    return Status::Corruption("bad cube blob magic");
  }
  const uint16_t version = LoadLe16(data + 4);
  if (version == 0 || version > kVersion) {
    return Status::Corruption("unsupported cube blob version");
  }
  const unsigned char enc = data[6];
  if (enc > static_cast<unsigned char>(CubeEncoding::kDeltaVarint)) {
    return Status::Corruption("unknown cube encoding tag");
  }
  if (data[7] != 0) {
    return Status::Corruption("nonzero reserved byte in cube blob header");
  }
  CubeBlobHeader header;
  header.encoding = static_cast<CubeEncoding>(enc);
  header.body_bytes = LoadLe64(data + 8);
  return header;
}

Status AccumulateEncodedSlice(const CubeSchema& schema, CubeEncoding encoding,
                              const unsigned char* body, size_t body_bytes,
                              const CubeSlice& slice, const GroupBySpec& spec,
                              uint64_t* acc) {
  if (encoding == CubeEncoding::kDenseRaw) {
    return AccumulateDense(schema, body, body_bytes, slice, spec, acc);
  }
  SliceLuts luts;
  BuildSliceLuts(schema, slice, spec, &luts);
  if (encoding == CubeEncoding::kSparseCoo) {
    return AccumulateSparse(schema, body, body_bytes, luts, acc);
  }
  return AccumulateDelta(schema, body, body_bytes, luts, acc);
}

Result<DataCube> DecodeEncodedCube(const CubeSchema& schema,
                                   CubeEncoding encoding,
                                   const unsigned char* body,
                                   size_t body_bytes) {
  if (encoding == CubeEncoding::kDenseRaw) {
    if (body_bytes != schema.cube_bytes()) {
      return Status::Corruption("dense cube body has wrong length");
    }
    return DataCube::Deserialize(schema, body, body_bytes);
  }
  // Decode through the accumulate core with a fully-grouped identity spec:
  // every slot of the packed accumulator is one cell in cell order, so the
  // same validated streaming path serves both aggregation and decoding.
  std::vector<uint64_t> cells(schema.num_cells(), 0);
  CubeSlice all;
  GroupBySpec every{/*element_type=*/true, /*country=*/true,
                    /*road_type=*/true, /*update_type=*/true};
  RASED_RETURN_IF_ERROR(AccumulateEncodedSlice(schema, encoding, body,
                                               body_bytes, all, every,
                                               cells.data()));
  return DataCube::FromCells(schema, cells.data());
}

EncodedCube EncodedCube::Encode(const DataCube& cube,
                                CubeEncodingPolicy policy) {
  EncodedCube out;
  out.schema_ = cube.schema();
  const std::vector<uint64_t>& cells = cube.cells();
  const size_t dense_bytes = out.schema_.cube_bytes();

  std::vector<unsigned char> body;
  if (policy == CubeEncodingPolicy::kAdaptive) {
    size_t nnz = 0;
    for (uint64_t cell : cells) nnz += cell != 0 ? 1 : 0;
    const double density =
        cells.empty() ? 0.0
                      : static_cast<double>(nnz) /
                            static_cast<double>(cells.size());
    if (density <= kSparseDensityThreshold) {
      out.encoding_ = CubeEncoding::kSparseCoo;
      body.reserve(2 * kMaxVarintBytes * nnz + kMaxVarintBytes);
      BuildSparseBody(out.schema_, cells, nnz, &body);
    } else {
      out.encoding_ = CubeEncoding::kDeltaVarint;
      body.reserve(cells.size() * 2);
      BuildDeltaBody(cells, &body);
    }
    if (body.size() >= dense_bytes) {
      // Never-bigger-than-dense: an incompressible cube stores dense.
      body.clear();
      out.encoding_ = CubeEncoding::kDenseRaw;
    }
  } else {
    out.encoding_ = CubeEncoding::kDenseRaw;
  }

  if (out.encoding_ == CubeEncoding::kDenseRaw) {
    out.words_.assign((dense_bytes + 7) / 8, 0);
    cube.SerializeTo(reinterpret_cast<unsigned char*>(out.words_.data()));
    out.body_bytes_ = dense_bytes;
  } else {
    out.words_.assign((body.size() + 7) / 8, 0);
    std::memcpy(out.words_.data(), body.data(), body.size());
    out.body_bytes_ = body.size();
  }
  return out;
}

void EncodedCube::SerializeTo(unsigned char* out) const {
  CubeBlobHeader header;
  header.encoding = encoding_;
  header.body_bytes = body_bytes_;
  header.SerializeTo(out);
  std::memcpy(out + CubeBlobHeader::kBytes, body(), body_bytes_);
}

EncodedCubeBatch::EncodedCubeBatch(const CubeSchema& schema, size_t num_cubes,
                                   size_t arena_bytes)
    : schema_(schema),
      words_((arena_bytes + 7) / 8, 0),
      arena_bytes_(arena_bytes),
      slots_(num_cubes) {}

Status EncodedCubeBatch::BindEncoded(size_t i, size_t blob_offset,
                                     uint64_t blob_bytes,
                                     CubeEncoding expected_encoding) {
  if (i >= slots_.size()) {
    return Status::InvalidArgument("cube batch slot out of range");
  }
  if (blob_bytes < CubeBlobHeader::kBytes ||
      blob_offset > arena_bytes_ || blob_bytes > arena_bytes_ - blob_offset) {
    return Status::Corruption("cube blob exceeds its page run");
  }
  RASED_ASSIGN_OR_RETURN(
      CubeBlobHeader header,
      CubeBlobHeader::Parse(arena() + blob_offset, blob_bytes));
  if (header.body_bytes != blob_bytes - CubeBlobHeader::kBytes) {
    return Status::Corruption("cube blob length disagrees with catalog");
  }
  if (header.encoding != expected_encoding) {
    return Status::Corruption("cube blob encoding disagrees with catalog");
  }
  slots_[i] = Slot{blob_offset + CubeBlobHeader::kBytes,
                   static_cast<size_t>(header.body_bytes), header.encoding,
                   /*bound=*/true};
  return Status::OK();
}

Status EncodedCubeBatch::BindLegacyDense(size_t i, size_t offset) {
  if (i >= slots_.size()) {
    return Status::InvalidArgument("cube batch slot out of range");
  }
  const size_t dense_bytes = schema_.cube_bytes();
  if (offset > arena_bytes_ || dense_bytes > arena_bytes_ - offset) {
    return Status::Corruption("legacy cube exceeds its page run");
  }
  slots_[i] =
      Slot{offset, dense_bytes, CubeEncoding::kDenseRaw, /*bound=*/true};
  return Status::OK();
}

Status EncodedCubeBatch::AccumulateSlice(size_t i, const CubeSlice& slice,
                                         const GroupBySpec& spec,
                                         uint64_t* acc) const {
  if (i >= slots_.size() || !slots_[i].bound) {
    return Status::InvalidArgument("cube batch slot not bound");
  }
  const Slot& slot = slots_[i];
  return AccumulateEncodedSlice(schema_, slot.encoding, arena() +
                                slot.body_offset, slot.body_bytes, slice,
                                spec, acc);
}

Result<DataCube> EncodedCubeBatch::Decode(size_t i) const {
  if (i >= slots_.size() || !slots_[i].bound) {
    return Status::InvalidArgument("cube batch slot not bound");
  }
  const Slot& slot = slots_[i];
  return DecodeEncodedCube(schema_, slot.encoding, arena() + slot.body_offset,
                           slot.body_bytes);
}

}  // namespace rased
