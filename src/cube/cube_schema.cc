#include "cube/cube_schema.h"

#include "util/str_util.h"

namespace rased {

std::string CubeSchema::ToString() const {
  return StrFormat("CubeSchema(%u x %u x %u x %u = %zu cells, %zu bytes)",
                   num_element_types, num_countries, num_road_types,
                   num_update_types, num_cells(), cube_bytes());
}

}  // namespace rased
