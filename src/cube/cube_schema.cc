#include "cube/cube_schema.h"

#include <algorithm>

#include "util/str_util.h"

namespace rased {

std::string CubeSchema::ToString() const {
  return StrFormat("CubeSchema(%u x %u x %u x %u = %zu cells, %zu bytes)",
                   num_element_types, num_countries, num_road_types,
                   num_update_types, num_cells(), cube_bytes());
}

void CubeSlice::Normalize() {
  auto normalize = [](std::vector<uint32_t>& values) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
  };
  normalize(element_types);
  normalize(countries);
  normalize(road_types);
  normalize(update_types);
}

}  // namespace rased
