#include "cli/cli.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/rased.h"
#include "core/replication_ingestor.h"
#include "dashboard/dashboard_service.h"
#include "dashboard/render.h"
#include "io/env.h"
#include "obs/profiler.h"
#include "obs/request_context.h"
#include "obs/slo.h"
#include "query/sql_parser.h"
#include "synth/update_generator.h"
#include "util/clock.h"
#include "util/config.h"
#include "util/str_util.h"

namespace rased {

namespace {

constexpr char kUsage[] = R"(rased — road-network update monitoring for OSM

usage: rased <command> key=value...

commands:
  init          create a RASED instance
                  dir=DIR [schema=paper|bench] [levels=1..4] [no_warehouse=1]
  synth         generate synthetic OSM crawler input files
                  dir=OUT from=YYYY-MM-DD to=YYYY-MM-DD [seed=N] [rate=X]
                  [schema=paper|bench]  (must match the consuming instance)
                  [publish=FEEDDIR]     (emit a replication feed instead)
  ingest-day    crawl one day's diff + changesets into the instance
                  dir=DIR date=YYYY-MM-DD osc=FILE changesets=FILE
  ingest-month  apply a monthly full-history pass
                  dir=DIR month=YYYY-MM-01 history=FILE changesets=FILE
  query         run an analysis query
                  dir=DIR [from=.. to=..] [countries=Germany,Qatar]
                  [element_types=way,node] [road_types=residential]
                  [update_types=new,delete,geometry,metadata]
                  [group=country,date,element_type,road_type,update_type]
                  [percentage=1] [format=table|bar|json|csv|timeseries|pivot]
                  or the paper's SQL directly:
                  sql="SELECT Country, COUNT(*) FROM UpdateList
                       WHERE Date BETWEEN 2021-01-01 AND 2021-12-31
                       GROUP BY Country"
  sample        sample concrete updates (Section IV-B)
                  dir=DIR changeset=ID | box=minlat,minlon,maxlat,maxlon [n=N]
  sync          catch up from a replication feed directory
                  dir=DIR feed=FEEDDIR [finalize=1]
                  (a feed is published by `synth publish=FEEDDIR` or any
                   OSM-style sequence of NNNNNNNNN.osc + state files)
  stats         print index/cache/storage statistics
                  dir=DIR
  metrics       print the instance's metrics in Prometheus text format
                  dir=DIR [probe=1]  (probe runs one full-coverage query
                  first so the query/cache/pager series carry real traffic)
  serve         start the web dashboard
                  dir=DIR [port=N] [serve_seconds=N (0 = forever)]
  top           live self-monitoring view against a running dashboard
                  port=N [host=127.0.0.1] [window=SEC] [interval=SEC]
                  [iterations=N (0 = forever; 1 prints one frame and exits)]
  profile       fetch a CPU profile from a running dashboard
                  port=N [host=127.0.0.1]
                  [seconds=N (capture the next N seconds, default 5)]
                  [window=N (instead: merge retained always-on windows)]
                  [top=20] [format=table|folded]
                  (folded output pipes into flamegraph.pl or speedscope)
  help          show this message
)";

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int FailUsage(const std::string& message) {
  std::fprintf(stderr, "error: %s\n\n%s", message.c_str(), kUsage);
  return 2;
}

Result<std::unique_ptr<Rased>> OpenInstance(const Config& config,
                                            bool warm_cache) {
  std::string dir = config.GetString("dir", "");
  if (dir.empty()) return Status::InvalidArgument("dir= is required");
  RASED_ASSIGN_OR_RETURN(RasedOptions options, Rased::LoadOptions(dir));
  // Cache size is a byte budget. cache_mb= sets it directly; the
  // historical cache_slots= (a dense-cube count) is still honored so old
  // scripts keep working.
  if (config.Has("cache_mb")) {
    options.cache.byte_budget =
        static_cast<uint64_t>(config.GetInt("cache_mb", 2048)) << 20;
  } else {
    options.cache.byte_budget = CacheOptions::BytesForCubes(
        static_cast<size_t>(config.GetInt("cache_slots", 512)),
        options.schema);
  }
  options.device.read_latency_us = config.GetInt("device_us", 0);
  options.device.write_latency_us = options.device.read_latency_us;
  RASED_ASSIGN_OR_RETURN(std::unique_ptr<Rased> rased,
                         Rased::Open(options));
  if (warm_cache) {
    RASED_RETURN_IF_ERROR(rased->WarmCache());
  }
  return rased;
}

int CmdInit(const Config& config) {
  RasedOptions options;
  options.dir = config.GetString("dir", "");
  if (options.dir.empty()) return FailUsage("init needs dir=");
  std::string schema = config.GetString("schema", "paper");
  if (schema == "paper") {
    options.schema = CubeSchema::PaperScale();
  } else if (schema == "bench") {
    options.schema = CubeSchema::BenchScale();
  } else {
    return FailUsage("schema must be 'paper' or 'bench'");
  }
  options.num_levels = static_cast<int>(config.GetInt("levels", 4));
  options.enable_warehouse = !config.GetBool("no_warehouse", false);
  auto rased = Rased::Create(options);
  if (!rased.ok()) return Fail(rased.status());
  if (auto s = rased.value()->Sync(); !s.ok()) return Fail(s);
  std::printf("initialized RASED in %s\n  %s\n  %d levels, warehouse %s\n",
              options.dir.c_str(), options.schema.ToString().c_str(),
              options.num_levels,
              options.enable_warehouse ? "enabled" : "disabled");
  return 0;
}

int CmdSynth(const Config& config) {
  std::string dir = config.GetString("dir", "");
  if (dir.empty() && !config.Has("publish")) {
    return FailUsage("synth needs dir= (or publish=FEEDDIR)");
  }
  auto from = Date::Parse(config.GetString("from", ""));
  auto to = Date::Parse(config.GetString("to", ""));
  if (!from.ok() || !to.ok()) {
    return FailUsage("synth needs from=YYYY-MM-DD to=YYYY-MM-DD");
  }
  if (!dir.empty()) {
    if (auto s = env::CreateDirs(dir); !s.ok()) return Fail(s);
  }

  SynthOptions synth;
  synth.seed = static_cast<uint64_t>(config.GetInt("seed", 42));
  synth.base_updates_per_day = config.GetDouble("rate", 500.0);
  synth.period = DateRange(from.value(), to.value());
  // The generator's world must match the consuming instance's schema —
  // zone grids differ between scales, so a mismatch scrambles locations.
  std::string schema_name = config.GetString("schema", "paper");
  CubeSchema schema = schema_name == "bench" ? CubeSchema::BenchScale()
                                             : CubeSchema::PaperScale();
  if (schema_name != "paper" && schema_name != "bench") {
    return FailUsage("schema must be 'paper' or 'bench'");
  }
  WorldMap world(schema.num_countries);
  RoadTypeTable roads(schema.num_road_types);
  UpdateGenerator generator(synth, &world, &roads);

  // publish=FEEDDIR emits a replication feed (state.txt + sequences)
  // instead of loose per-day files, for consumption by `rased sync`.
  if (config.Has("publish")) {
    ReplicationDirectory feed(config.GetString("publish", ""));
    uint64_t seq = 0;
    if (auto latest = feed.LatestState(); latest.ok()) {
      seq = latest.value().sequence;
    }
    for (Date d = from.value(); d <= to.value(); d = d.next()) {
      DayArtifacts files = generator.GenerateDayArtifacts(d);
      Status s = feed.Publish(++seq, files.osc_xml,
                              OsmTimestamp{d, 86399}, files.changesets_xml);
      if (!s.ok()) return Fail(s);
    }
    std::printf("published %s as sequences up to %llu in %s\n",
                synth.period.ToString().c_str(),
                static_cast<unsigned long long>(seq),
                feed.dir().c_str());
    return 0;
  }

  for (Date d = from.value(); d <= to.value(); d = d.next()) {
    DayArtifacts files = generator.GenerateDayArtifacts(d);
    Status s = env::WriteFile(env::JoinPath(dir, d.ToString() + ".osc"),
                              files.osc_xml);
    if (s.ok()) {
      s = env::WriteFile(
          env::JoinPath(dir, d.ToString() + ".changesets.xml"),
          files.changesets_xml);
    }
    if (!s.ok()) return Fail(s);
    // Month artifacts once per completed month inside the range.
    if (d.is_month_end() && d.month_start() >= from.value()) {
      MonthArtifacts month = generator.GenerateMonthArtifacts(d.month_start());
      std::string stem = d.month_start().ToString().substr(0, 7);
      s = env::WriteFile(env::JoinPath(dir, stem + ".history.xml"),
                         month.history_xml);
      if (s.ok()) {
        s = env::WriteFile(
            env::JoinPath(dir, stem + ".history-changesets.xml"),
            month.changesets_xml);
      }
      if (!s.ok()) return Fail(s);
    }
  }
  std::printf("wrote synthetic crawler input for %s to %s\n",
              synth.period.ToString().c_str(), dir.c_str());
  return 0;
}

int CmdIngestDay(const Config& config) {
  auto date = Date::Parse(config.GetString("date", ""));
  if (!date.ok()) return FailUsage("ingest-day needs date=YYYY-MM-DD");
  auto osc = env::ReadFile(config.GetString("osc", ""));
  if (!osc.ok()) return Fail(osc.status());
  auto changesets = env::ReadFile(config.GetString("changesets", ""));
  if (!changesets.ok()) return Fail(changesets.status());

  auto rased = OpenInstance(config, /*warm_cache=*/false);
  if (!rased.ok()) return Fail(rased.status());
  Status s = rased.value()->IngestDailyArtifacts(date.value(), osc.value(),
                                                 changesets.value());
  if (!s.ok()) return Fail(s);
  if (s = rased.value()->Sync(); !s.ok()) return Fail(s);
  std::printf("ingested %s (coverage now %s)\n",
              date.value().ToString().c_str(),
              rased.value()->index()->coverage().ToString().c_str());
  return 0;
}

int CmdIngestMonth(const Config& config) {
  auto month = Date::Parse(config.GetString("month", ""));
  if (!month.ok() || !month.value().is_month_start()) {
    return FailUsage("ingest-month needs month=YYYY-MM-01");
  }
  auto history = env::ReadFile(config.GetString("history", ""));
  if (!history.ok()) return Fail(history.status());
  auto changesets = env::ReadFile(config.GetString("changesets", ""));
  if (!changesets.ok()) return Fail(changesets.status());

  auto rased = OpenInstance(config, /*warm_cache=*/false);
  if (!rased.ok()) return Fail(rased.status());
  Status s = rased.value()->ApplyMonthlyArtifacts(
      month.value(), history.value(), changesets.value());
  if (!s.ok()) return Fail(s);
  if (s = rased.value()->Sync(); !s.ok()) return Fail(s);
  std::printf("rebuilt %.7s from the monthly full-history pass\n",
              month.value().ToString().c_str());
  return 0;
}

/// Bridges CLI key=value arguments onto the dashboard's query-parameter
/// parser, so `rased query` and GET /api/query accept the same names.
HttpRequest RequestFromConfig(const Config& config) {
  HttpRequest request;
  for (const char* key :
       {"from", "to", "countries", "element_types", "road_types",
        "update_types", "group", "percentage"}) {
    if (config.Has(key)) {
      std::string value = config.GetString(key, "");
      request.params[key] = value;
    }
  }
  return request;
}

int CmdQuery(const Config& config) {
  auto rased = OpenInstance(config, /*warm_cache=*/true);
  if (!rased.ok()) return Fail(rased.status());
  // A CLI run mints a trace id like a dashboard request would, so LOG()
  // lines emitted during execution and the trace-ring entry correlate.
  ScopedRequestContext request_scope(MintTraceId());
  DashboardService service(rased.value().get());  // parser reuse; not started

  // Queries may be given as key=value filters or as the paper's SQL.
  Result<AnalysisQuery> query = AnalysisQuery{};
  if (config.Has("sql")) {
    SqlParser parser(&rased.value()->world(), rased.value()->road_types());
    query = parser.Parse(config.GetString("sql", ""));
  } else {
    query = service.ParseQueryParams(RequestFromConfig(config));
  }
  if (!query.ok()) return Fail(query.status());
  auto result = rased.value()->Query(query.value());
  if (!result.ok()) return Fail(result.status());

  RenderContext ctx{&rased.value()->world(), rased.value()->road_types()};
  const int64_t t_render = NowMicros();
  std::string format = config.GetString("format", "table");
  if (format == "table") {
    std::printf("%s", RenderTable(result.value(), query.value(), ctx).c_str());
  } else if (format == "bar") {
    std::printf("%s",
                RenderBarChart(result.value(), query.value(), ctx).c_str());
  } else if (format == "json") {
    std::printf("%s\n",
                RenderJson(result.value(), query.value(), ctx).c_str());
  } else if (format == "timeseries") {
    std::printf("%s",
                RenderTimeSeries(result.value(), query.value(), ctx).c_str());
  } else if (format == "pivot") {
    std::printf("%s",
                RenderCountryElementPivot(result.value(), ctx).c_str());
  } else if (format == "csv") {
    std::printf("%s", RenderCsv(result.value(), query.value(), ctx).c_str());
  } else {
    return FailUsage("unknown format '" + format + "'");
  }

  // Record the run in the instance's trace ring, same shape as the
  // dashboard path, so slow CLI queries hit the slow-query log too.
  const int64_t render_micros = NowMicros() - t_render;
  const QueryStats& stats = result.value().stats;
  QueryTrace trace;
  trace.trace_id = CurrentTraceId();
  trace.summary = query.value().ToString();
  trace.wall_micros = stats.cpu_micros + render_micros;
  trace.device_micros = stats.io.simulated_device_micros;
  trace.cubes_total = stats.cubes_total;
  trace.cubes_from_cache = stats.cubes_from_cache;
  trace.cubes_from_disk = stats.cubes_from_disk;
  trace.page_reads = stats.io.page_reads;
  trace.read_ops = stats.io.read_ops;
  trace.bytes_read = stats.io.bytes_read;
  trace.spans = result.value().spans;
  trace.spans.push_back({"render", render_micros, 0});
  rased.value()->traces()->Record(std::move(trace));

  std::fprintf(stderr, "-- %llu cubes (%llu cached), %.3f ms\n",
               static_cast<unsigned long long>(
                   result.value().stats.cubes_total),
               static_cast<unsigned long long>(
                   result.value().stats.cubes_from_cache),
               result.value().stats.total_micros() / 1000.0);
  return 0;
}

int CmdSample(const Config& config) {
  auto rased = OpenInstance(config, /*warm_cache=*/false);
  if (!rased.ok()) return Fail(rased.status());
  size_t n = static_cast<size_t>(config.GetInt("n", 100));

  Result<std::vector<UpdateRecord>> samples = std::vector<UpdateRecord>{};
  if (config.Has("changeset")) {
    auto id = ParseUint(config.GetString("changeset", ""));
    if (!id.ok()) return Fail(id.status());
    samples = rased.value()->SampleByChangeset(id.value());
  } else if (config.Has("box")) {
    std::vector<std::string> parts = Split(config.GetString("box", ""), ',');
    if (parts.size() != 4) {
      return FailUsage("box needs minlat,minlon,maxlat,maxlon");
    }
    BoundingBox box;
    auto a = ParseDouble(parts[0]), b = ParseDouble(parts[1]),
         c = ParseDouble(parts[2]), d = ParseDouble(parts[3]);
    if (!a.ok() || !b.ok() || !c.ok() || !d.ok()) {
      return FailUsage("box needs four numbers");
    }
    box = BoundingBox{a.value(), b.value(), c.value(), d.value()};
    samples = rased.value()->SampleInBox(box, n);
  } else {
    return FailUsage("sample needs changeset= or box=");
  }
  if (!samples.ok()) return Fail(samples.status());
  for (const UpdateRecord& r : samples.value()) {
    std::printf("%s\n", r.ToString().c_str());
  }
  std::fprintf(stderr, "-- %zu sample(s)\n", samples.value().size());
  return 0;
}

int CmdSync(const Config& config) {
  std::string feed = config.GetString("feed", "");
  if (feed.empty()) return FailUsage("sync needs feed=FEEDDIR");
  auto rased = OpenInstance(config, /*warm_cache=*/false);
  if (!rased.ok()) return Fail(rased.status());
  ReplicationIngestor ingestor(rased.value().get(), feed);
  auto stats = ingestor.CatchUp(config.GetBool("finalize", false));
  if (!stats.ok()) return Fail(stats.status());
  if (auto s = rased.value()->Sync(); !s.ok()) return Fail(s);
  std::printf("applied %llu sequence(s): %llu day(s), %llu update(s); "
              "coverage now %s\n",
              static_cast<unsigned long long>(
                  stats.value().sequences_applied),
              static_cast<unsigned long long>(stats.value().days_ingested),
              static_cast<unsigned long long>(
                  stats.value().records_ingested),
              rased.value()->index()->coverage().ToString().c_str());
  return 0;
}

int CmdStats(const Config& config) {
  auto rased = OpenInstance(config, /*warm_cache=*/false);
  if (!rased.ok()) return Fail(rased.status());
  IndexStorageStats stats = rased.value()->index()->StorageStats();
  std::printf("coverage:   %s\n",
              rased.value()->index()->coverage().ToString().c_str());
  std::printf("schema:     %s\n",
              rased.value()->options().schema.ToString().c_str());
  std::printf("cubes:      %llu daily, %llu weekly, %llu monthly, "
              "%llu yearly (%llu total)\n",
              static_cast<unsigned long long>(stats.cubes_per_level[0]),
              static_cast<unsigned long long>(stats.cubes_per_level[1]),
              static_cast<unsigned long long>(stats.cubes_per_level[2]),
              static_cast<unsigned long long>(stats.cubes_per_level[3]),
              static_cast<unsigned long long>(stats.total_cubes));
  std::printf("index file: %.1f MB\n", stats.file_bytes / 1048576.0);
  if (rased.value()->warehouse() != nullptr) {
    std::printf("warehouse:  %llu update records\n",
                static_cast<unsigned long long>(
                    rased.value()->warehouse()->num_records()));
  }
  return 0;
}

int CmdMetrics(const Config& config) {
  auto rased = OpenInstance(config, /*warm_cache=*/true);
  if (!rased.ok()) return Fail(rased.status());
  if (config.GetBool("probe", false)) {
    // One full-coverage grouped query drives real traffic through the
    // cache, pager, and executor so their series show non-zero values.
    AnalysisQuery probe;
    probe.range = rased.value()->index()->coverage();
    probe.group_country = true;
    if (auto result = rased.value()->Query(probe); !result.ok()) {
      return Fail(result.status());
    }
  }
  std::printf("%s", rased.value()->metrics()->RenderPrometheus().c_str());
  return 0;
}

// ---- rased top ------------------------------------------------------------

/// One series out of /api/selfstats?format=tsv. The producer is
/// dashboard_service.cc RenderSelfstatsTsv; the shapes must stay in sync.
struct TopSeries {
  std::string name;
  std::string labels;  // "" or {k="v",...}, keys sorted
  std::string type;    // "counter" | "gauge" | "histogram"
  std::vector<int64_t> bounds;
  struct Point {
    int64_t t_micros = 0;
    std::vector<uint64_t> values;
  };
  std::vector<Point> points;
};

struct TopSnapshot {
  int64_t now_micros = 0;
  int64_t interval_micros = 0;
  uint64_t samples = 0;
  uint64_t samples_total = 0;
  uint64_t resident_bytes = 0;
  uint64_t byte_budget = 0;
  uint64_t cost_micros_total = 0;
  std::vector<TopSeries> series;
};

/// Minimal HTTP/1.1 GET against the dashboard; returns the body after
/// asserting a 200 status line.
Result<std::string> HttpGetBody(const std::string& host, int port,
                                const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("host must be an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError(
        StrFormat("connect to %s:%d failed", host.c_str(), port));
  }
  const std::string request =
      StrFormat("GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n",
                target.c_str(), host.c_str());
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return Status::IOError("send() failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      ::close(fd);
      return Status::IOError("recv() failed");
    }
    if (n == 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (response.rfind("HTTP/1.1 200", 0) != 0) {
    const size_t line_end = response.find("\r\n");
    return Status::IOError("GET " + target + ": " +
                           response.substr(0, line_end));
  }
  const size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) {
    return Status::Corruption("malformed HTTP response (no blank line)");
  }
  return response.substr(body + 4);
}

Result<TopSnapshot> ParseSelfstatsTsv(const std::string& body) {
  TopSnapshot snap;
  const std::vector<std::string> lines = Split(body, '\n');
  if (lines.empty() || lines[0].rfind("#selfstats", 0) != 0) {
    return Status::Corruption("selfstats: missing #selfstats meta line");
  }
  for (const std::string& token : Split(lines[0], ' ')) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    const std::string_view key = std::string_view(token).substr(0, eq);
    auto value = ParseUint(std::string_view(token).substr(eq + 1));
    if (!value.ok()) continue;
    if (key == "now") {
      snap.now_micros = static_cast<int64_t>(value.value());
    } else if (key == "interval_micros") {
      snap.interval_micros = static_cast<int64_t>(value.value());
    } else if (key == "samples") {
      snap.samples = value.value();
    } else if (key == "samples_total") {
      snap.samples_total = value.value();
    } else if (key == "resident_bytes") {
      snap.resident_bytes = value.value();
    } else if (key == "byte_budget") {
      snap.byte_budget = value.value();
    } else if (key == "cost_micros_total") {
      snap.cost_micros_total = value.value();
    }
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const std::vector<std::string> cols = Split(lines[i], '\t');
    if (cols.size() != 5) {
      return Status::Corruption("selfstats: bad series line: " + lines[i]);
    }
    TopSeries series;
    series.name = cols[0];
    series.labels = cols[1];
    series.type = cols[2];
    if (!cols[3].empty()) {
      for (const std::string& bound : Split(cols[3], ',')) {
        RASED_ASSIGN_OR_RETURN(int64_t b, ParseInt(bound));
        series.bounds.push_back(b);
      }
    }
    if (!cols[4].empty()) {
      for (const std::string& encoded : Split(cols[4], ' ')) {
        const size_t colon = encoded.find(':');
        if (colon == std::string::npos) {
          return Status::Corruption("selfstats: bad point: " + encoded);
        }
        TopSeries::Point point;
        RASED_ASSIGN_OR_RETURN(
            point.t_micros,
            ParseInt(std::string_view(encoded).substr(0, colon)));
        for (const std::string& v :
             Split(std::string_view(encoded).substr(colon + 1), ',')) {
          RASED_ASSIGN_OR_RETURN(uint64_t value, ParseUint(v));
          point.values.push_back(value);
        }
        series.points.push_back(std::move(point));
      }
    }
    snap.series.push_back(std::move(series));
  }
  return snap;
}

/// Counter change from the oldest to the newest retained sample, summed
/// across every series of the family, plus the widest spanned wall time.
struct CounterWindow {
  uint64_t events = 0;
  int64_t span_micros = 0;
};

CounterWindow CounterDelta(const TopSnapshot& snap, std::string_view name) {
  CounterWindow w;
  for (const TopSeries& s : snap.series) {
    if (s.name != name || s.type != "counter" || s.points.size() < 2) {
      continue;
    }
    const TopSeries::Point& first = s.points.front();
    const TopSeries::Point& last = s.points.back();
    if (first.values.empty() || last.values.empty()) continue;
    w.events += last.values[0] - first.values[0];
    w.span_micros = std::max(w.span_micros, last.t_micros - first.t_micros);
  }
  return w;
}

double RatePerSec(const CounterWindow& w) {
  return w.span_micros > 0 ? w.events * 1e6 / w.span_micros : 0.0;
}

/// Newest value of the first gauge series matching `name` whose label
/// string contains `labels_filter` (empty matches any).
bool GaugeLatest(const TopSnapshot& snap, std::string_view name,
                 std::string_view labels_filter, int64_t* out) {
  for (const TopSeries& s : snap.series) {
    if (s.name != name || s.type != "gauge" || s.points.empty()) continue;
    if (!labels_filter.empty() &&
        s.labels.find(labels_filter) == std::string::npos) {
      continue;
    }
    if (s.points.back().values.empty()) continue;
    *out = static_cast<int64_t>(s.points.back().values[0]);
    return true;
  }
  return false;
}

/// Upper bound (micros) of the bucket holding quantile `q` of the
/// window's observations, bucket deltas merged across every series of
/// the histogram family. False when the window saw no observations.
bool HistQuantileMicros(const TopSnapshot& snap, std::string_view name,
                        double q, int64_t* out_micros) {
  std::vector<int64_t> bounds;
  std::vector<uint64_t> deltas;  // finite buckets + the +Inf bucket
  for (const TopSeries& s : snap.series) {
    if (s.name != name || s.type != "histogram" || s.points.size() < 2) {
      continue;
    }
    if (bounds.empty()) {
      bounds = s.bounds;
      deltas.assign(bounds.size() + 1, 0);
    }
    if (s.bounds != bounds) continue;  // mismatched layouts never merge
    // Point layout: [count, sum-bits, bucket_0 .. bucket_n(+Inf)].
    const std::vector<uint64_t>& first = s.points.front().values;
    const std::vector<uint64_t>& last = s.points.back().values;
    const size_t want = 2 + bounds.size() + 1;
    if (first.size() != want || last.size() != want) continue;
    for (size_t b = 0; b + 2 < want; ++b) {
      deltas[b] += last[b + 2] - first[b + 2];
    }
  }
  uint64_t total = 0;
  for (uint64_t d : deltas) total += d;
  if (total == 0) return false;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < deltas.size(); ++b) {
    cumulative += deltas[b];
    if (cumulative > rank) {
      *out_micros = b < bounds.size()   ? bounds[b]
                    : bounds.empty()    ? 0
                                        : bounds.back() * 2;  // +Inf bucket
      return true;
    }
  }
  return false;
}

std::string LabelValue(const std::string& labels, const std::string& key) {
  const std::string needle = key + "=\"";
  const size_t at = labels.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  const size_t end = labels.find('"', start);
  return end == std::string::npos ? "" : labels.substr(start, end - start);
}

std::string FormatMillis(int64_t micros) {
  return StrFormat("%.1fms", micros / 1000.0);
}

std::string FormatKib(uint64_t bytes) {
  return StrFormat("%.1fKiB", bytes / 1024.0);
}

std::string RenderTopFrame(const TopSnapshot& snap, const std::string& host,
                           int port, int64_t window_seconds) {
  std::string out = StrFormat(
      "rased top — %s:%d   window %llds   %llu sample(s) retained "
      "(%llu taken, every %llds)\n\n",
      host.c_str(), port, static_cast<long long>(window_seconds),
      static_cast<unsigned long long>(snap.samples),
      static_cast<unsigned long long>(snap.samples_total),
      static_cast<long long>(snap.interval_micros / 1000000));

  const CounterWindow http = CounterDelta(snap, "rased_http_requests_total");
  int64_t p50 = 0, p99 = 0;
  const bool have_latency =
      HistQuantileMicros(snap, "rased_http_request_micros", 0.50, &p50) &&
      HistQuantileMicros(snap, "rased_http_request_micros", 0.99, &p99);
  out += StrFormat("  http      %6.1f req/s   p50 %s   p99 %s\n",
                   RatePerSec(http),
                   have_latency ? FormatMillis(p50).c_str() : "-",
                   have_latency ? FormatMillis(p99).c_str() : "-");

  const CounterWindow queries = CounterDelta(snap, "rased_queries_total");
  out += StrFormat("  queries   %6.1f q/s\n", RatePerSec(queries));

  const CounterWindow hits = CounterDelta(snap, "rased_cache_hits_total");
  const CounterWindow misses = CounterDelta(snap, "rased_cache_misses_total");
  const uint64_t lookups = hits.events + misses.events;
  if (lookups > 0) {
    out += StrFormat(
        "  cache     %5.1f%% hit rate   (%llu hits, %llu misses)\n",
        100.0 * static_cast<double>(hits.events) /
            static_cast<double>(lookups),
        static_cast<unsigned long long>(hits.events),
        static_cast<unsigned long long>(misses.events));
  } else {
    out += "  cache     idle (no lookups in window)\n";
  }

  int64_t lag = 0;
  if (GaugeLatest(snap, "rased_ingest_lag_sequences", "", &lag)) {
    out += StrFormat("  ingest    lag %lld sequence(s)\n",
                     static_cast<long long>(lag));
  }

  out += StrFormat(
      "  sampler   %s resident of %s budget, avg cost %lldus/sample\n",
      FormatKib(snap.resident_bytes).c_str(),
      FormatKib(snap.byte_budget).c_str(),
      static_cast<long long>(
          snap.samples_total > 0
              ? snap.cost_micros_total /
                    static_cast<int64_t>(snap.samples_total)
              : 0));

  bool slo_header = false;
  for (const TopSeries& s : snap.series) {
    if (s.name != "rased_slo_status" || s.points.empty() ||
        s.points.back().values.empty()) {
      continue;
    }
    const std::string objective = LabelValue(s.labels, "objective");
    const int64_t status = static_cast<int64_t>(s.points.back().values[0]);
    int64_t burn_short = 0, burn_long = 0;
    GaugeLatest(snap, "rased_slo_burn_rate",
                "objective=\"" + objective + "\",window=\"long\"",
                &burn_long);
    GaugeLatest(snap, "rased_slo_burn_rate",
                "objective=\"" + objective + "\",window=\"short\"",
                &burn_short);
    out += StrFormat(
        "  %s%-24s %-8s burn %.2f short / %.2f long\n",
        slo_header ? "          " : "slo       ", objective.c_str(),
        SloStatusName(static_cast<SloStatus>(status)),
        burn_short / 1000.0, burn_long / 1000.0);
    slo_header = true;
  }
  return out;
}

int CmdTop(const Config& config) {
  const int port = static_cast<int>(config.GetInt("port", 0));
  if (port <= 0) return FailUsage("top needs port= of a running dashboard");
  const std::string host = config.GetString("host", "127.0.0.1");
  const int64_t window_seconds = config.GetInt("window", 300);
  int64_t interval_seconds = config.GetInt("interval", 2);
  if (interval_seconds <= 0) interval_seconds = 1;
  const int64_t iterations = config.GetInt("iterations", 0);
  const std::string target =
      StrFormat("/api/selfstats?format=tsv&window=%lld",
                static_cast<long long>(window_seconds));
  for (int64_t frame = 0; iterations == 0 || frame < iterations; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::seconds(interval_seconds));
    }
    auto body = HttpGetBody(host, port, target);
    if (!body.ok()) return Fail(body.status());
    auto snap = ParseSelfstatsTsv(body.value());
    if (!snap.ok()) return Fail(snap.status());
    // Multi-frame mode repaints in place; a single frame (iterations=1,
    // the scriptable probe mode) prints plainly.
    if (iterations != 1) std::printf("\x1b[H\x1b[2J");
    std::printf("%s",
                RenderTopFrame(snap.value(), host, port, window_seconds)
                    .c_str());
    std::fflush(stdout);
  }
  return 0;
}

/// Renders top-N frames of a folded profile as self/cumulative tables —
/// the quick look before reaching for a flamegraph.
int CmdProfile(const Config& config) {
  const int port = static_cast<int>(config.GetInt("port", 0));
  if (port <= 0) return FailUsage("profile needs port=");
  const std::string host = config.GetString("host", "127.0.0.1");
  std::string target;
  if (config.Has("window")) {
    target = StrFormat("/api/profile?window=%lld&format=folded",
                       static_cast<long long>(config.GetInt("window", 60)));
  } else {
    target = StrFormat("/api/profile?seconds=%lld&format=folded",
                       static_cast<long long>(config.GetInt("seconds", 5)));
  }
  auto body = HttpGetBody(host, port, target);
  if (!body.ok()) return Fail(body.status());

  const std::string format = config.GetString("format", "table");
  if (format == "folded") {
    // Verbatim pass-through: `rased profile ... format=folded |
    // flamegraph.pl > flame.svg`.
    std::printf("%s", body.value().c_str());
    return 0;
  }
  if (format != "table") {
    return FailUsage("profile format= must be table or folded");
  }

  auto folded = ParseFolded(body.value());
  if (!folded.ok()) return Fail(folded.status());
  uint64_t total = 0;
  for (const auto& [stack, count] : folded.value()) total += count;
  if (total == 0) {
    std::printf("profile: 0 samples (idle instance or capture too short)\n");
    return 0;
  }
  const size_t top_n = static_cast<size_t>(config.GetInt("top", 20));
  const std::vector<FrameTotals> frames = TopFrames(folded.value(), top_n);
  auto pct = [total](uint64_t n) {
    return 100.0 * static_cast<double>(n) / static_cast<double>(total);
  };
  std::printf("profile: %llu samples, %zu unique stacks\n",
              static_cast<unsigned long long>(total), folded.value().size());
  std::printf("%10s %7s %10s %7s  %s\n", "cum", "cum%", "self", "self%",
              "frame");
  for (const FrameTotals& frame : frames) {
    std::printf("%10llu %6.2f%% %10llu %6.2f%%  %s\n",
                static_cast<unsigned long long>(frame.cumulative),
                pct(frame.cumulative),
                static_cast<unsigned long long>(frame.self), pct(frame.self),
                frame.name.c_str());
  }
  return 0;
}

int CmdServe(const Config& config) {
  // The serve main thread mostly sleeps, but registering it keeps any CPU
  // it does burn attributable alongside the HTTP workers.
  ProfilerThreadScope profiler_scope("serve-main");
  auto rased = OpenInstance(config, /*warm_cache=*/true);
  if (!rased.ok()) return Fail(rased.status());
  DashboardService service(rased.value().get());
  Status s = service.Start(static_cast<int>(config.GetInt("port", 0)));
  if (!s.ok()) return Fail(s);
  std::printf("RASED dashboard: http://127.0.0.1:%d/\n", service.port());
  // Scripts (tools/check.sh metrics smoke) read the port line from a
  // redirected stdout while the server is still running.
  std::fflush(stdout);
  int64_t serve_seconds = config.GetInt("serve_seconds", 0);
  if (serve_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  } else {
    for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
  }
  service.Stop();
  return 0;
}

}  // namespace

int RunCli(int argc, const char* const* argv) {
  if (argc < 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    std::printf("%s", kUsage);
    return 0;
  }
  Config config;
  if (Status s = config.ParseArgs(argc - 1, argv + 1); !s.ok()) {
    return FailUsage(s.ToString());
  }
  if (command == "init") return CmdInit(config);
  if (command == "synth") return CmdSynth(config);
  if (command == "ingest-day") return CmdIngestDay(config);
  if (command == "ingest-month") return CmdIngestMonth(config);
  if (command == "query") return CmdQuery(config);
  if (command == "sample") return CmdSample(config);
  if (command == "sync") return CmdSync(config);
  if (command == "stats") return CmdStats(config);
  if (command == "metrics") return CmdMetrics(config);
  if (command == "serve") return CmdServe(config);
  if (command == "top") return CmdTop(config);
  if (command == "profile") return CmdProfile(config);
  return FailUsage("unknown command '" + command + "'");
}

}  // namespace rased
