#ifndef RASED_CLI_CLI_H_
#define RASED_CLI_CLI_H_

namespace rased {

/// Entry point of the `rased` command-line tool (tools/rased_cli.cc is a
/// trivial main() around this). Exposed as a library function so the
/// command dispatch, argument handling, and every subcommand are unit
/// testable.
///
/// Usage:
///   rased init dir=DIR [schema=paper|bench] [levels=1..4] [no_warehouse=1]
///   rased synth dir=OUT from=YYYY-MM-DD to=YYYY-MM-DD [seed=N] [rate=X]
///   rased ingest-day dir=DIR date=YYYY-MM-DD osc=FILE changesets=FILE
///   rased ingest-month dir=DIR month=YYYY-MM-01 history=FILE changesets=FILE
///   rased query dir=DIR [from=.. to=.. countries=a,b group=country,..]
///               [percentage=1] [format=table|bar|json|csv|timeseries|pivot]
///   rased sample dir=DIR changeset=ID | box=minlat,minlon,maxlat,maxlon [n=N]
///   rased stats dir=DIR
///   rased serve dir=DIR [port=N] [serve_seconds=N]
///   rased top port=N [host=H] [window=SEC] [interval=SEC] [iterations=N]
///   rased help
///
/// Returns the process exit code (0 on success).
int RunCli(int argc, const char* const* argv);

}  // namespace rased

#endif  // RASED_CLI_CLI_H_
