#ifndef RASED_OBS_REQUEST_CONTEXT_H_
#define RASED_OBS_REQUEST_CONTEXT_H_

/// Per-request trace ids (DESIGN.md §12). The HTTP server (and the CLI
/// query path) mints a 64-bit id per request — or adopts one arriving in
/// an X-Rased-Trace-Id header, the future scatter-gather propagation path —
/// and installs it in a thread-local for the request's duration. Every
/// LOG() line the request emits, its /api/trace ring entry, and the
/// X-Rased-Trace-Id response header then join on the same key.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/logging.h"
#include "util/result.h"

namespace rased {

/// A fresh nonzero trace id from a process-wide util/random Rng (seeded
/// from the wall clock once). Thread-safe.
uint64_t MintTraceId();

/// The calling thread's current trace id, 0 outside any request scope.
inline uint64_t CurrentTraceId() { return GetThreadLogTraceId(); }

/// 16 lowercase hex digits, zero-padded — the header and log wire format.
std::string FormatTraceId(uint64_t trace_id);

/// Parses a FormatTraceId-shaped id (1..16 hex digits, nonzero).
Result<uint64_t> ParseTraceId(std::string_view text);

/// Installs `trace_id` as the calling thread's trace id for the scope's
/// lifetime and restores the previous id on exit (scopes nest).
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(uint64_t trace_id)
      : previous_(GetThreadLogTraceId()) {
    SetThreadLogTraceId(trace_id);
  }
  ~ScopedRequestContext() { SetThreadLogTraceId(previous_); }

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  const uint64_t previous_;
};

}  // namespace rased

#endif  // RASED_OBS_REQUEST_CONTEXT_H_
