#include "obs/request_context.h"

#include <cstdio>

#include "util/clock.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace rased {

uint64_t MintTraceId() {
  // Leaked singletons: trace ids may be minted during static teardown
  // (e.g. a logging destructor), so no destruction order to get wrong.
  static Mutex* mu = new Mutex;
  static Rng* rng = new Rng(static_cast<uint64_t>(NowWallMicros()) ^
                            0x9e3779b97f4a7c15ULL);
  MutexLock lock(mu);
  uint64_t id;
  do {
    id = rng->Next();
  } while (id == 0);
  return id;
}

std::string FormatTraceId(uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return std::string(buf, 16);
}

Result<uint64_t> ParseTraceId(std::string_view text) {
  if (text.empty() || text.size() > 16) {
    return Status::InvalidArgument("trace id must be 1..16 hex digits");
  }
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return Status::InvalidArgument("trace id has a non-hex digit");
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  if (value == 0) {
    return Status::InvalidArgument("trace id must be nonzero");
  }
  return value;
}

}  // namespace rased
