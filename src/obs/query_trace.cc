#include "obs/query_trace.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/clock.h"
#include "util/logging.h"

namespace rased {

TraceRecorder::TraceRecorder(const TraceRecorderOptions& options,
                             MetricsRegistry* metrics)
    : options_(options) {
  RASED_CHECK(options_.capacity >= 1);
  if (metrics != nullptr) {
    recorded_counter_ = metrics->GetCounter(
        "rased_traces_recorded_total", "Query traces recorded (ring + slow)");
    slow_counter_ = metrics->GetCounter(
        "rased_slow_queries_total",
        "Queries whose wall+device time exceeded the slow-query threshold");
    suppressed_counter_ = metrics->GetCounter(
        "rased_slow_query_log_suppressed_total",
        "Slow-query WARN lines dropped by the log rate limiter");
  }
}

uint64_t TraceRecorder::Record(QueryTrace trace) {
  bool slow = options_.slow_query_micros > 0 &&
              trace.total_micros() > options_.slow_query_micros;
  bool log_suppressed = false;
  uint64_t id = 0;
  {
    MutexLock lock(&mu_);
    id = next_id_++;
    trace.id = id;
    if (slow) {
      // Token bucket (capacity 1): a slow-query storm logs at most
      // slow_log_per_sec lines, and each emitted line carries how many
      // were dropped since the previous one.
      bool emit = true;
      if (options_.slow_log_per_sec > 0) {
        const int64_t now = NowMicros();
        if (log_refill_micros_ == 0) log_refill_micros_ = now;
        log_tokens_ =
            std::min(1.0, log_tokens_ + static_cast<double>(
                                            now - log_refill_micros_) *
                                            options_.slow_log_per_sec / 1e6);
        log_refill_micros_ = now;
        if (log_tokens_ >= 1.0) {
          log_tokens_ -= 1.0;
        } else {
          emit = false;
        }
      }
      if (emit) {
        std::ostringstream line;
        line << "slow query #" << id << ": total=" << trace.total_micros()
             << "us (wall=" << trace.wall_micros
             << "us device=" << trace.device_micros
             << "us) cubes=" << trace.cubes_total << " ("
             << trace.cubes_from_cache << " cached, " << trace.cubes_from_disk
             << " disk) read_ops=" << trace.read_ops
             << " bytes_read=" << trace.bytes_read
             << " alloc_bytes=" << trace.alloc_bytes
             << " peak_alloc=" << trace.peak_alloc_bytes;
        for (const TraceSpan& span : trace.spans) {
          line << " " << span.name << "=" << span.wall_micros << "+"
               << span.device_micros << "us";
        }
        line << " query={" << trace.summary << "}";
        if (log_suppressed_ > 0) {
          line << " suppressed=" << log_suppressed_;
          log_suppressed_ = 0;
        }
        RASED_LOG(Warning) << line.str();
      } else {
        ++log_suppressed_;
        log_suppressed = true;
      }
    }
    ring_.push_back(std::move(trace));
    while (ring_.size() > options_.capacity) ring_.pop_front();
  }
  if (recorded_counter_ != nullptr) recorded_counter_->Increment();
  if (slow && slow_counter_ != nullptr) slow_counter_->Increment();
  if (log_suppressed && suppressed_counter_ != nullptr) {
    suppressed_counter_->Increment();
  }
  return id;
}

std::vector<QueryTrace> TraceRecorder::Snapshot() const {
  MutexLock lock(&mu_);
  return std::vector<QueryTrace>(ring_.begin(), ring_.end());
}

uint64_t TraceRecorder::total_recorded() const {
  MutexLock lock(&mu_);
  return next_id_ - 1;
}

}  // namespace rased
