#include "obs/query_trace.h"

#include <sstream>
#include <utility>

#include "util/logging.h"

namespace rased {

TraceRecorder::TraceRecorder(const TraceRecorderOptions& options,
                             MetricsRegistry* metrics)
    : options_(options) {
  RASED_CHECK(options_.capacity >= 1);
  if (metrics != nullptr) {
    recorded_counter_ = metrics->GetCounter(
        "rased_traces_recorded_total", "Query traces recorded (ring + slow)");
    slow_counter_ = metrics->GetCounter(
        "rased_slow_queries_total",
        "Queries whose wall+device time exceeded the slow-query threshold");
  }
}

uint64_t TraceRecorder::Record(QueryTrace trace) {
  bool slow = options_.slow_query_micros > 0 &&
              trace.total_micros() > options_.slow_query_micros;
  uint64_t id = 0;
  {
    MutexLock lock(&mu_);
    id = next_id_++;
    trace.id = id;
    if (slow) {
      std::ostringstream line;
      line << "slow query #" << id << ": total=" << trace.total_micros()
           << "us (wall=" << trace.wall_micros
           << "us device=" << trace.device_micros
           << "us) cubes=" << trace.cubes_total << " ("
           << trace.cubes_from_cache << " cached, " << trace.cubes_from_disk
           << " disk) read_ops=" << trace.read_ops
           << " bytes_read=" << trace.bytes_read;
      for (const TraceSpan& span : trace.spans) {
        line << " " << span.name << "=" << span.wall_micros << "+"
             << span.device_micros << "us";
      }
      line << " query={" << trace.summary << "}";
      RASED_LOG(Warning) << line.str();
    }
    ring_.push_back(std::move(trace));
    while (ring_.size() > options_.capacity) ring_.pop_front();
  }
  if (recorded_counter_ != nullptr) recorded_counter_->Increment();
  if (slow && slow_counter_ != nullptr) slow_counter_->Increment();
  return id;
}

std::vector<QueryTrace> TraceRecorder::Snapshot() const {
  MutexLock lock(&mu_);
  return std::vector<QueryTrace>(ring_.begin(), ring_.end());
}

uint64_t TraceRecorder::total_recorded() const {
  MutexLock lock(&mu_);
  return next_id_ - 1;
}

}  // namespace rased
