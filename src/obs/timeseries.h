#ifndef RASED_OBS_TIMESERIES_H_
#define RASED_OBS_TIMESERIES_H_

/// Self-monitoring time series (DESIGN.md §12). A MetricsHistory samples a
/// MetricsRegistry on a fixed interval into a bounded ring of delta-encoded
/// snapshots, giving the instance a retained view of its own metrics —
/// /api/selfstats plots it, SloTracker (obs/slo.h) computes windowed
/// burn rates from it, and `rased top` polls it.
///
/// Storage shape (the LiveVectorLake snapshot+delta idea applied to metric
/// vectors): the registry snapshot is flattened to one uint64 vector in a
/// fixed layout; the oldest retained sample is stored raw (varint keyframe)
/// and every later sample as zigzag-varint deltas against its predecessor,
/// so a quiet instance costs ~1 byte per series per sample. Eviction
/// re-bases the second sample into the new keyframe, keeping the ring
/// within a configured byte budget. All time reads go through util/clock.h,
/// so a FakeClock makes sampling and windowing fully deterministic.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "util/thread_annotations.h"

namespace rased {

struct MetricsHistoryOptions {
  /// Background sampling period. Also the granularity floor for SLO
  /// windows: a window shorter than the interval sees at most one delta.
  int64_t sample_interval_micros = 10 * 1000 * 1000;

  /// Upper bound on encoded snapshot bytes retained (plus a small fixed
  /// per-sample overhead, counted). The newest sample is always retained
  /// even if it alone exceeds the budget.
  uint64_t ring_byte_budget = 1 << 20;
};

/// Bounded, delta-encoded history of a registry's samples.
///
/// Thread safety: SampleOnce/Query/accessors are safe from any thread;
/// StartSampler/StopSampler must be externally serialized (the owning
/// service's Start/Stop). The optional background sampler calls SampleOnce
/// on its own thread, driven by util/clock.h NowMicros.
class MetricsHistory {
 public:
  explicit MetricsHistory(MetricsRegistry* registry,
                          const MetricsHistoryOptions& options = {});
  ~MetricsHistory();

  MetricsHistory(const MetricsHistory&) = delete;
  MetricsHistory& operator=(const MetricsHistory&) = delete;

  /// Hook run after every sample (background or manual) with the sample's
  /// timestamp, outside internal locks — SloTracker::Evaluate plugs in
  /// here. Set before StartSampler; not thread-safe against sampling.
  void SetPostSampleHook(std::function<void(int64_t now_micros)> hook);

  /// Launches the background sampler after taking one synchronous sample,
  /// so a started history is never empty. No-op if already running.
  void StartSampler();
  /// Stops and joins the sampler thread. No-op if not running. Called by
  /// the destructor.
  void StopSampler();

  /// Takes one sample stamped NowMicros() and appends it to the ring,
  /// evicting the oldest samples past the byte budget. If the registry's
  /// series layout changed since the last sample (new series registered),
  /// the ring resets to this sample (documented in DESIGN.md §12; series
  /// are normally all registered at boot).
  void SampleOnce() RASED_EXCLUDES(mu_);

  struct Point {
    int64_t t_micros = 0;
    /// Same per-kind layout as SampledSeries::values.
    std::vector<uint64_t> values;
  };

  struct Series {
    std::string name;
    std::string labels;
    SampledSeries::Kind kind = SampledSeries::Kind::kCounter;
    std::vector<int64_t> bounds;  // histogram finite bucket bounds
    std::vector<Point> points;    // oldest first
  };

  /// Decoded points of every series whose family name equals `family`
  /// (empty = all series), restricted to t_micros >= now_micros -
  /// window_micros (window_micros <= 0 = all retained). Series identity
  /// order matches the registry's sorted exposition order.
  std::vector<Series> Query(std::string_view family, int64_t window_micros,
                            int64_t now_micros) const RASED_EXCLUDES(mu_);

  int64_t sample_interval_micros() const {
    return options_.sample_interval_micros;
  }
  uint64_t ring_byte_budget() const { return options_.ring_byte_budget; }
  /// Samples currently retained in the ring.
  size_t num_samples() const RASED_EXCLUDES(mu_);
  /// Samples ever taken (retained + evicted + layout-reset casualties).
  uint64_t samples_taken() const RASED_EXCLUDES(mu_);
  /// Encoded bytes retained, including the fixed per-sample overhead.
  uint64_t resident_bytes() const RASED_EXCLUDES(mu_);
  /// Cumulative wall micros spent snapshotting + encoding in SampleOnce.
  uint64_t sample_cost_micros_total() const RASED_EXCLUDES(mu_);

 private:
  /// Fixed per-sample bookkeeping charged against the byte budget
  /// (timestamp + deque/vector overhead, rounded up).
  static constexpr uint64_t kSampleOverheadBytes = 48;

  struct SeriesLayout {
    std::string name;
    std::string labels;
    SampledSeries::Kind kind = SampledSeries::Kind::kCounter;
    std::vector<int64_t> bounds;
    size_t offset = 0;  // first word in the flat value vector
    size_t count = 0;   // words owned by this series
  };

  struct EncodedSample {
    int64_t t_micros = 0;
    /// Varints: raw values for the ring front (keyframe), zigzag deltas
    /// against the predecessor for every later sample.
    std::vector<unsigned char> bytes;
  };

  void SamplerLoop();
  bool LayoutMatchesLocked(const std::vector<SampledSeries>& snapshot) const
      RASED_REQUIRES(mu_);
  void RebuildLayoutLocked(const std::vector<SampledSeries>& snapshot)
      RASED_REQUIRES(mu_);
  void EvictOverBudgetLocked() RASED_REQUIRES(mu_);
  static void DecodeOnto(const EncodedSample& sample, bool is_keyframe,
                         std::vector<uint64_t>* values);

  MetricsRegistry* const registry_ RASED_CONST_AFTER_INIT;
  const MetricsHistoryOptions options_;

  mutable Mutex mu_;
  std::vector<SeriesLayout> layout_ RASED_GUARDED_BY(mu_);
  size_t layout_words_ RASED_GUARDED_BY(mu_) = 0;
  std::deque<EncodedSample> ring_ RASED_GUARDED_BY(mu_);
  /// Flat values of the oldest (front_) and newest (last_) retained
  /// sample, in layout order — decode seed and delta base respectively.
  std::vector<uint64_t> front_values_ RASED_GUARDED_BY(mu_);
  std::vector<uint64_t> last_values_ RASED_GUARDED_BY(mu_);
  uint64_t resident_bytes_ RASED_GUARDED_BY(mu_) = 0;
  uint64_t samples_taken_ RASED_GUARDED_BY(mu_) = 0;
  uint64_t sample_cost_micros_total_ RASED_GUARDED_BY(mu_) = 0;
  int64_t next_due_micros_ RASED_GUARDED_BY(mu_) = 0;

  /// Self-accounting published into the sampled registry itself.
  Counter* samples_counter_ RASED_CONST_AFTER_INIT;
  Counter* sample_cost_counter_ RASED_CONST_AFTER_INIT;
  Gauge* resident_gauge_ RASED_CONST_AFTER_INIT;
  Gauge* retained_gauge_ RASED_CONST_AFTER_INIT;

  std::function<void(int64_t)> post_sample_hook_ RASED_CONST_AFTER_INIT;
  std::atomic<bool> sampler_running_{false};
  std::thread sampler_thread_ RASED_CONST_AFTER_INIT;
};

}  // namespace rased

#endif  // RASED_OBS_TIMESERIES_H_
