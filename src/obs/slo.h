#ifndef RASED_OBS_SLO_H_
#define RASED_OBS_SLO_H_

/// Rolling-window SLO objectives and multi-window burn rates (DESIGN.md
/// §12), computed from MetricsHistory snapshot deltas rather than live
/// counters so every number is a pure function of the retained series —
/// deterministic under a FakeClock-driven scripted load.
///
/// Burn-rate math (the standard SRE formulation): an objective targets a
/// good-event fraction `target` (e.g. 0.99 of requests under 250ms). Over
/// a window, bad_fraction = bad / total, and
///     burn_rate = bad_fraction / (1 - target)
/// i.e. burn 1.0 consumes the error budget exactly at the sustainable
/// rate; burn 14.4 exhausts a 30-day budget in ~2 days. Status uses two
/// windows so a spike must persist before paging:
///     burning: both the short and long window burn >= burning_burn_rate
///     warning: the short window burn >= warning_burn_rate
///     ok:      otherwise (including "too few events to judge")
///
/// /readyz consumes WorstStatus() — the future load-shedder's hook.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/timeseries.h"

namespace rased {

enum class SloStatus : int { kOk = 0, kWarning = 1, kBurning = 2 };

const char* SloStatusName(SloStatus status);

struct SloObjective {
  enum class Kind {
    /// Histogram family of event durations; an event is bad when it lands
    /// above threshold_micros (computed from bucket deltas: bad = Δcount -
    /// Δcumulative(le <= threshold)). threshold_micros should sit on a
    /// bucket bound or the effective threshold rounds up to the next one.
    kLatency,
    /// Counter ratio: bad = Δ(bad_family series whose rendered labels
    /// contain bad_label_filter), total = Δ(family).
    kRatio,
  };

  std::string name;  // objective label on the published gauges
  Kind kind = Kind::kLatency;
  std::string family;  // histogram (kLatency) or total counter (kRatio)
  int64_t threshold_micros = 250000;
  std::string bad_family;        // kRatio only
  std::string bad_label_filter;  // kRatio only; "" matches every series
  double target = 0.99;          // good fraction objective, in (0, 1)
};

struct SloOptions {
  int64_t short_window_micros = 5 * 60 * 1000000LL;
  int64_t long_window_micros = 60 * 60 * 1000000LL;
  double warning_burn_rate = 1.0;
  double burning_burn_rate = 14.4;
  /// A window with fewer total events than this reports burn 0 (not
  /// enough signal to page on; keeps near-idle instances Ready).
  uint64_t min_events = 20;
  /// Empty = SloTracker::DefaultObjectives().
  std::vector<SloObjective> objectives;
};

/// Evaluates objectives against a MetricsHistory and publishes
/// rased_slo_burn_rate{objective,window} (milli-units: burn × 1000),
/// rased_slo_status{objective}, and rased_slo_worst_status gauges.
///
/// Thread safety: Evaluate and WorstStatus are safe from any thread (gauge
/// stores and an atomic worst-status; the history handles its own locking).
class SloTracker {
 public:
  SloTracker(MetricsHistory* history, MetricsRegistry* registry,
             const SloOptions& options = {});

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// The serving-path objectives: p99 HTTP latency under 250ms and HTTP
  /// 5xx error rate under 0.1%.
  static std::vector<SloObjective> DefaultObjectives();

  struct WindowBurn {
    int64_t window_micros = 0;
    uint64_t total_events = 0;
    uint64_t bad_events = 0;
    double burn_rate = 0.0;
  };

  struct ObjectiveState {
    std::string name;
    SloStatus status = SloStatus::kOk;
    WindowBurn short_window;
    WindowBurn long_window;
  };

  /// Recomputes every objective from the history as of `now_micros`,
  /// publishes the gauges, updates WorstStatus, and returns the states in
  /// objective order. Deterministic given the history contents.
  std::vector<ObjectiveState> Evaluate(int64_t now_micros);

  /// Worst status across objectives at the last Evaluate (kOk before one).
  SloStatus WorstStatus() const {
    return static_cast<SloStatus>(
        worst_status_.load(std::memory_order_acquire));
  }

  const SloOptions& options() const { return options_; }

 private:
  struct ObjectiveGauges {
    Gauge* burn_short = nullptr;
    Gauge* burn_long = nullptr;
    Gauge* status = nullptr;
  };

  WindowBurn ComputeWindow(const SloObjective& objective,
                           int64_t window_micros, int64_t now_micros) const;

  MetricsHistory* const history_;
  const SloOptions options_;
  std::vector<ObjectiveGauges> gauges_;  // parallel to options_.objectives
  Gauge* worst_gauge_;
  std::atomic<int> worst_status_{0};
};

}  // namespace rased

#endif  // RASED_OBS_SLO_H_
