#ifndef RASED_OBS_METRICS_REGISTRY_H_
#define RASED_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace rased {

/// Process observability primitives (see DESIGN.md §8). A MetricsRegistry
/// owns named counter/gauge/histogram series; components fetch cheap
/// handles once (a mutex-guarded map lookup) and update them lock-free on
/// the hot path (one relaxed atomic op per update), so instrumentation is
/// safe under the dashboard's 8-worker concurrency and TSan-clean.
///
/// Determinism contract: metrics fed from the device model (pager
/// transfer counts, simulated device micros, cache hits/misses under the
/// static policies, per-query device-time histograms) are pure functions
/// of the workload and therefore bit-identical between serial and
/// concurrent runs of the same query set. Wall-clock metrics (cpu/latency
/// histograms) are not, but are exactly assertable under a test clock
/// (util/clock.h SetClockForTesting).

/// Monotonically increasing event count. Overflow wraps modulo 2^64 (the
/// usual Prometheus client behavior); at one increment per nanosecond
/// that is ~584 years away.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class MetricsRegistry;
  Counter() = default;

  std::atomic<uint64_t> value_{0};
};

/// A settable instantaneous value (resident cubes, ingest lag, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<int64_t> value_{0};
};

/// Fixed exponential bucket layout: finite bucket i covers values up to
/// and including bound[i] = round(first_bound * growth^i) (bounds are
/// forced strictly increasing), plus one implicit +Inf overflow bucket.
/// The defaults span 1us..2^29us (~9 min) at 2x resolution — wide enough
/// for every latency this system produces.
struct HistogramOptions {
  int64_t first_bound = 1;
  double growth = 2.0;
  int num_buckets = 30;
  /// When set, the histogram also remembers, per bucket, the worst
  /// (largest) observation since the last DrainExemplars() together with
  /// the caller-supplied exemplar id (in practice a trace id). Off by
  /// default: it costs two extra atomics per bucket and is only useful on
  /// histograms whose observations carry a trace id.
  bool track_exemplars = false;
};

/// One drained exemplar: the worst observation that landed in `bucket`
/// since the previous drain, plus the id (trace id) it carried. The
/// value/trace_id pairing is best-effort under concurrent ties — two
/// racing equal observations may cross-pair — which is fine for the
/// debugging use ("show me a trace that was this slow").
struct HistogramExemplar {
  int bucket = 0;        ///< bucket index; num_finite_buckets() means +Inf
  int64_t bound = 0;     ///< inclusive upper bound; -1 for the +Inf bucket
  int64_t value = 0;     ///< the worst observed value in the bucket
  uint64_t trace_id = 0; ///< exemplar id supplied with that observation
};

/// Latency/size distribution with atomic per-bucket counts. Observe is
/// wait-free: one bounds lookup plus three relaxed atomic adds. A value
/// landing exactly on a bucket bound counts into that bucket (Prometheus
/// `le` is inclusive). Negative values clamp into the first bucket.
class Histogram {
 public:
  void Observe(int64_t value);

  /// Observe plus exemplar tracking: when the histogram was created with
  /// track_exemplars, also CAS-maxes the per-bucket worst-value slot and
  /// remembers `exemplar_id` for it. Without tracking this is Observe().
  void Observe(int64_t value, uint64_t exemplar_id);

  /// Returns every bucket's worst observation since the last drain and
  /// resets the slots ("since last scrape" semantics). Empty when the
  /// histogram does not track exemplars or nothing was observed.
  std::vector<HistogramExemplar> DrainExemplars();

  bool tracks_exemplars() const { return exemplars_ != nullptr; }

  int num_finite_buckets() const { return static_cast<int>(bounds_.size()); }
  int64_t bucket_bound(int i) const {
    return bounds_[static_cast<size_t>(i)];
  }
  /// i in [0, num_finite_buckets()]; the last index is the +Inf bucket.
  uint64_t bucket_count(int i) const {
    return counts_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class MetricsRegistry;
  explicit Histogram(const HistogramOptions& options);

  /// Sentinel meaning "no observation since the last drain". An actual
  /// INT64_MIN observation is indistinguishable and never installs, which
  /// is harmless: exemplars exist to surface worst cases, not minima.
  static constexpr int64_t kNoExemplar = INT64_MIN;

  struct ExemplarSlot {
    std::atomic<int64_t> worst{kNoExemplar};
    std::atomic<uint64_t> id{0};
  };

  std::vector<int64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::unique_ptr<ExemplarSlot[]> exemplars_;  // null unless tracking
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Label set of one series, e.g. {{"file", "index"}}. Keys are sorted
/// internally, so label order at the call site does not create distinct
/// series. Cardinality rule (DESIGN.md §8): label values must come from
/// small closed sets known at compile/startup time (route table, level
/// names, status classes) — never from request input.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Structured snapshot of one series, the sampler read path consumed by
/// obs/timeseries.h MetricsHistory. `values` flattens the series state as
/// uint64 words so samplers can delta-encode uniformly:
///   counter   → [value]
///   gauge     → [bit-cast int64 value]
///   histogram → [count, bit-cast int64 sum, bucket_0 .. bucket_n(+Inf)]
/// Bucket reads are individually atomic but not mutually consistent (the
/// registry never stops writers); every word is monotone for counters and
/// histogram fields, which is what windowed deltas rely on.
struct SampledSeries {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;    // family name
  std::string labels;  // rendered label string: "" or {k="v",...}
  Kind kind = Kind::kCounter;
  std::vector<int64_t> bounds;  // histogram finite bucket bounds, else empty
  std::vector<uint64_t> values;
};

/// Named metric families, each holding one or more labeled series.
///
/// Get* returns a stable handle: the same (name, labels) pair always
/// yields the same pointer, valid for the registry's lifetime, and the
/// help/options of the first registration win. Requesting an existing
/// family as a different type is a programmer error (RASED_CHECK).
///
/// Thread safety: Get*/Render/num_series are safe from any thread; handle
/// updates are lock-free (see Counter/Gauge/Histogram).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry for code with no injection path. Components in
  /// this codebase take a registry pointer instead (each Rased instance
  /// owns a private registry by default), which keeps tests isolated.
  static MetricsRegistry* Global();

  /// Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* and by convention
  /// are rased_<component>_<quantity>[_total|_micros|_bytes].
  Counter* GetCounter(std::string_view name, std::string_view help,
                      const MetricLabels& labels = {}) RASED_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  const MetricLabels& labels = {}) RASED_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          const HistogramOptions& options = {},
                          const MetricLabels& labels = {})
      RASED_EXCLUDES(mu_);

  /// Prometheus text exposition (format 0.0.4): # HELP/# TYPE per family,
  /// one line per series, histograms as cumulative _bucket/_sum/_count.
  /// Families and series are emitted in sorted order, so two registries
  /// holding equal values render byte-identical documents.
  std::string RenderPrometheus() const RASED_EXCLUDES(mu_);

  /// Number of registered series across all families (histogram = 1).
  size_t num_series() const RASED_EXCLUDES(mu_);

  /// Flattened snapshot of every series, in the same sorted
  /// (family, label-string) order as RenderPrometheus — two registries
  /// holding equal values produce element-wise equal snapshots.
  std::vector<SampledSeries> Sample() const RASED_EXCLUDES(mu_);

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Family {
    Type type = Type::kCounter;
    std::string help;
    HistogramOptions histogram_options;
    // Keyed by the rendered label string ("" or {k="v",...}), which keeps
    // exposition order deterministic.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Family* FamilyFor(std::string_view name, std::string_view help, Type type)
      RASED_REQUIRES(mu_);
  static std::string RenderLabelString(const MetricLabels& labels);

  mutable Mutex mu_;
  std::map<std::string, Family, std::less<>> families_ RASED_GUARDED_BY(mu_);
};

}  // namespace rased

#endif  // RASED_OBS_METRICS_REGISTRY_H_
