#include "obs/timeseries.h"

#include <chrono>
#include <utility>

#include "util/clock.h"
#include "util/logging.h"
#include "util/varint.h"

namespace rased {

namespace {

/// Background sampler poll tick. The sampler sleeps in short real-time
/// ticks and compares NowMicros() against the next due time, because
/// rased::CondVar has no timed wait and the due time is FakeClock-driven.
constexpr auto kSamplerTick = std::chrono::milliseconds(20);

}  // namespace

MetricsHistory::MetricsHistory(MetricsRegistry* registry,
                               const MetricsHistoryOptions& options)
    : registry_(registry), options_(options) {
  samples_counter_ = registry_->GetCounter(
      "rased_selfstats_samples_total",
      "Metric history samples taken since process start");
  sample_cost_counter_ = registry_->GetCounter(
      "rased_selfstats_sample_micros_total",
      "Cumulative wall micros spent snapshotting and encoding samples");
  resident_gauge_ = registry_->GetGauge(
      "rased_selfstats_resident_bytes",
      "Encoded bytes retained by the metric history ring");
  retained_gauge_ = registry_->GetGauge(
      "rased_selfstats_samples_retained",
      "Samples currently retained by the metric history ring");
}

MetricsHistory::~MetricsHistory() { StopSampler(); }

void MetricsHistory::SetPostSampleHook(
    std::function<void(int64_t now_micros)> hook) {
  post_sample_hook_ = std::move(hook);
}

void MetricsHistory::StartSampler() {
  if (sampler_running_.load(std::memory_order_acquire)) return;
  SampleOnce();
  sampler_running_.store(true, std::memory_order_release);
  sampler_thread_ = std::thread([this] { SamplerLoop(); });
}

void MetricsHistory::StopSampler() {
  if (!sampler_running_.load(std::memory_order_acquire)) return;
  sampler_running_.store(false, std::memory_order_release);
  if (sampler_thread_.joinable()) sampler_thread_.join();
}

void MetricsHistory::SamplerLoop() {
  while (sampler_running_.load(std::memory_order_acquire)) {
    const int64_t now = NowMicros();
    bool due;
    {
      MutexLock lock(&mu_);
      due = now >= next_due_micros_;
    }
    if (due) SampleOnce();
    std::this_thread::sleep_for(kSamplerTick);
  }
}

bool MetricsHistory::LayoutMatchesLocked(
    const std::vector<SampledSeries>& snapshot) const {
  if (snapshot.size() != layout_.size()) return false;
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const SampledSeries& s = snapshot[i];
    const SeriesLayout& l = layout_[i];
    if (s.name != l.name || s.labels != l.labels || s.kind != l.kind ||
        s.values.size() != l.count) {
      return false;
    }
  }
  return true;
}

void MetricsHistory::RebuildLayoutLocked(
    const std::vector<SampledSeries>& snapshot) {
  layout_.clear();
  layout_.reserve(snapshot.size());
  size_t offset = 0;
  for (const SampledSeries& s : snapshot) {
    SeriesLayout& l = layout_.emplace_back();
    l.name = s.name;
    l.labels = s.labels;
    l.kind = s.kind;
    l.bounds = s.bounds;
    l.offset = offset;
    l.count = s.values.size();
    offset += l.count;
  }
  layout_words_ = offset;
  ring_.clear();
  front_values_.clear();
  last_values_.clear();
  resident_bytes_ = 0;
}

void MetricsHistory::EvictOverBudgetLocked() {
  while (resident_bytes_ > options_.ring_byte_budget && ring_.size() > 1) {
    // Re-base the second sample into the new keyframe: decode its deltas
    // onto the evicted front's values and re-encode raw.
    EncodedSample& next = ring_[1];
    DecodeOnto(next, /*is_keyframe=*/false, &front_values_);
    resident_bytes_ -= next.bytes.size() + kSampleOverheadBytes;
    resident_bytes_ -= ring_.front().bytes.size() + kSampleOverheadBytes;
    next.bytes.clear();
    for (uint64_t v : front_values_) PutVarint(&next.bytes, v);
    resident_bytes_ += next.bytes.size() + kSampleOverheadBytes;
    ring_.pop_front();
  }
}

void MetricsHistory::DecodeOnto(const EncodedSample& sample, bool is_keyframe,
                                std::vector<uint64_t>* values) {
  const unsigned char* p = sample.bytes.data();
  const unsigned char* end = p + sample.bytes.size();
  for (uint64_t& slot : *values) {
    uint64_t word = 0;
    // Ring buffers are process-local; decode failure is a programmer error.
    RASED_CHECK(GetVarint(&p, end, &word).ok());
    slot = is_keyframe ? word : slot + ZigzagDecode(word);
  }
  RASED_CHECK(p == end);
}

void MetricsHistory::SampleOnce() {
  const int64_t now = NowMicros();
  const StopWatch cost;
  std::vector<SampledSeries> snapshot = registry_->Sample();

  {
    MutexLock lock(&mu_);
    if (!LayoutMatchesLocked(snapshot)) RebuildLayoutLocked(snapshot);

    EncodedSample sample;
    sample.t_micros = now;
    const bool keyframe = ring_.empty();
    if (keyframe) {
      front_values_.resize(layout_words_);
      last_values_.assign(layout_words_, 0);
    }
    std::vector<uint64_t> flat(layout_words_);
    size_t w = 0;
    for (const SampledSeries& s : snapshot) {
      for (uint64_t v : s.values) flat[w++] = v;
    }
    sample.bytes.reserve(layout_words_ + layout_words_ / 2);
    for (size_t i = 0; i < layout_words_; ++i) {
      if (keyframe) {
        PutVarint(&sample.bytes, flat[i]);
      } else {
        PutVarint(&sample.bytes, ZigzagEncode(flat[i] - last_values_[i]));
      }
    }
    if (keyframe) front_values_ = flat;
    last_values_ = std::move(flat);
    resident_bytes_ += sample.bytes.size() + kSampleOverheadBytes;
    ring_.push_back(std::move(sample));
    EvictOverBudgetLocked();

    ++samples_taken_;
    const uint64_t cost_micros =
        static_cast<uint64_t>(cost.ElapsedMicros() < 0 ? 0
                                                       : cost.ElapsedMicros());
    sample_cost_micros_total_ += cost_micros;
    next_due_micros_ = now + options_.sample_interval_micros;

    samples_counter_->Increment();
    sample_cost_counter_->Increment(cost_micros);
    resident_gauge_->Set(static_cast<int64_t>(resident_bytes_));
    retained_gauge_->Set(static_cast<int64_t>(ring_.size()));
  }

  if (post_sample_hook_) post_sample_hook_(now);
}

std::vector<MetricsHistory::Series> MetricsHistory::Query(
    std::string_view family, int64_t window_micros,
    int64_t now_micros) const {
  const int64_t cutoff =
      window_micros > 0 ? now_micros - window_micros : INT64_MIN;

  MutexLock lock(&mu_);
  std::vector<Series> out;
  std::vector<size_t> selected;
  for (size_t i = 0; i < layout_.size(); ++i) {
    if (!family.empty() && layout_[i].name != family) continue;
    selected.push_back(i);
    Series& series = out.emplace_back();
    series.name = layout_[i].name;
    series.labels = layout_[i].labels;
    series.kind = layout_[i].kind;
    series.bounds = layout_[i].bounds;
  }
  if (selected.empty() || ring_.empty()) return out;

  std::vector<uint64_t> values = front_values_;
  for (size_t s = 0; s < ring_.size(); ++s) {
    const EncodedSample& sample = ring_[s];
    if (s > 0) DecodeOnto(sample, /*is_keyframe=*/false, &values);
    if (sample.t_micros < cutoff) continue;
    for (size_t k = 0; k < selected.size(); ++k) {
      const SeriesLayout& l = layout_[selected[k]];
      Point& point = out[k].points.emplace_back();
      point.t_micros = sample.t_micros;
      point.values.assign(values.begin() + static_cast<ptrdiff_t>(l.offset),
                          values.begin() +
                              static_cast<ptrdiff_t>(l.offset + l.count));
    }
  }
  return out;
}

size_t MetricsHistory::num_samples() const {
  MutexLock lock(&mu_);
  return ring_.size();
}

uint64_t MetricsHistory::samples_taken() const {
  MutexLock lock(&mu_);
  return samples_taken_;
}

uint64_t MetricsHistory::resident_bytes() const {
  MutexLock lock(&mu_);
  return resident_bytes_;
}

uint64_t MetricsHistory::sample_cost_micros_total() const {
  MutexLock lock(&mu_);
  return sample_cost_micros_total_;
}

}  // namespace rased
