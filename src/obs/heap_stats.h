#ifndef RASED_OBS_HEAP_STATS_H_
#define RASED_OBS_HEAP_STATS_H_

#include <cstddef>
#include <cstdint>

namespace rased {

namespace heap_internal {
/// Allocation hooks called by the global operator new/delete replacements
/// in heap_stats.cc. `bytes` is the usable size reported by the allocator
/// (malloc_usable_size), charged symmetrically on allocation and free so
/// matched pairs cancel exactly, including under ASan/TSan allocators.
void NoteAlloc(std::size_t bytes) noexcept;
void NoteFree(std::size_t bytes) noexcept;
}  // namespace heap_internal

/// Per-thread allocator totals since thread start. Monotonic; free totals
/// are charged to the *freeing* thread, so cross-thread frees make
/// (alloc - free) of a single thread an approximation of live bytes.
struct ThreadAllocCounters {
  uint64_t alloc_bytes = 0;
  uint64_t alloc_ops = 0;
  uint64_t free_bytes = 0;
  uint64_t free_ops = 0;
};

/// Totals for the calling thread.
ThreadAllocCounters ThreadAllocTotals();

/// Allocator usage attributed to one ResourceScope (one query, one
/// request). Mergeable across threads with operator+= / Merge: byte and
/// op totals add exactly; peak_bytes adds as a conservative upper bound
/// (concurrent scopes need not have peaked simultaneously).
struct ResourceUsage {
  uint64_t allocated_bytes = 0;
  uint64_t alloc_ops = 0;
  uint64_t freed_bytes = 0;
  uint64_t free_ops = 0;
  /// High-water mark of (thread live bytes - live bytes at scope start)
  /// over the scope's lifetime; never negative.
  int64_t peak_bytes = 0;

  ResourceUsage& operator+=(const ResourceUsage& other) {
    allocated_bytes += other.allocated_bytes;
    alloc_ops += other.alloc_ops;
    freed_bytes += other.freed_bytes;
    free_ops += other.free_ops;
    peak_bytes += other.peak_bytes;
    return *this;
  }
};

/// RAII window over the calling thread's allocation counters: everything
/// the thread allocates or frees between construction and Usage()/
/// destruction is charged to this scope. Scopes nest (a child's traffic is
/// part of the parent's, since both read the same thread totals); the
/// innermost scope additionally tracks the live-byte high-water mark and
/// propagates it to its parent on destruction. For work handed to another
/// thread, open a scope there and Merge() its Usage() back into the
/// originating scope. All methods must be called on the owning thread.
class ResourceScope {
 public:
  ResourceScope();
  ~ResourceScope();

  ResourceScope(const ResourceScope&) = delete;
  ResourceScope& operator=(const ResourceScope&) = delete;

  /// Usage charged so far: thread-total deltas since construction plus
  /// everything Merge()d in from other threads.
  ResourceUsage Usage() const;

  /// Adds usage measured by a scope on another thread (thread handoff).
  void Merge(const ResourceUsage& other) { merged_ += other; }

 private:
  friend void heap_internal::NoteAlloc(std::size_t) noexcept;

  ResourceScope* parent_;
  uint64_t alloc_bytes_at_start_;
  uint64_t alloc_ops_at_start_;
  uint64_t free_bytes_at_start_;
  uint64_t free_ops_at_start_;
  int64_t live_at_start_;
  /// Absolute thread-live high-water seen while this scope (or a nested
  /// child, folded in at child destruction) was innermost.
  int64_t max_live_;
  ResourceUsage merged_;
};

}  // namespace rased

#endif  // RASED_OBS_HEAP_STATS_H_
