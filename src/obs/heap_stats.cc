#include "obs/heap_stats.h"

#if defined(__linux__)
#include <malloc.h>
#endif

#include <cstdlib>
#include <new>

// Allocation accounting via global operator new/delete interposition.
//
// Every replaceable allocation/deallocation function is defined in this
// translation unit, so any binary that links it (everything that runs a
// QueryExecutor does, via ResourceScope) charges all C++ heap traffic to
// the per-thread counters below. The hot path is branch-light: two
// thread-local integer adds plus one malloc_usable_size call; no locks, no
// per-allocation stacks, no global state. Sizes are the allocator's usable
// size on BOTH sides, so alloc/free totals cancel exactly for matched
// pairs under glibc and under the ASan/TSan allocators alike.
//
// The thread-local state is a zero-initialized POD: it needs no dynamic
// initializer and no destructor, so the hooks are safe during static init
// and thread teardown, when interposed allocation calls still arrive.

namespace rased {

namespace heap_internal {

namespace {

struct ThreadState {
  uint64_t alloc_bytes;
  uint64_t alloc_ops;
  uint64_t free_bytes;
  uint64_t free_ops;
  ResourceScope* innermost;
};

thread_local ThreadState g_thread_state;

std::size_t UsableSize(void* p) noexcept {
#if defined(__linux__)
  return malloc_usable_size(p);
#else
  (void)p;
  return 0;
#endif
}

}  // namespace

void NoteAlloc(std::size_t bytes) noexcept {
  ThreadState& ts = g_thread_state;
  ts.alloc_bytes += bytes;
  ts.alloc_ops += 1;
  ResourceScope* scope = ts.innermost;
  if (scope != nullptr) {
    const int64_t live = static_cast<int64_t>(ts.alloc_bytes) -
                         static_cast<int64_t>(ts.free_bytes);
    if (live > scope->max_live_) scope->max_live_ = live;
  }
}

void NoteFree(std::size_t bytes) noexcept {
  ThreadState& ts = g_thread_state;
  ts.free_bytes += bytes;
  ts.free_ops += 1;
}

}  // namespace heap_internal

ThreadAllocCounters ThreadAllocTotals() {
  const heap_internal::ThreadState& ts = heap_internal::g_thread_state;
  ThreadAllocCounters out;
  out.alloc_bytes = ts.alloc_bytes;
  out.alloc_ops = ts.alloc_ops;
  out.free_bytes = ts.free_bytes;
  out.free_ops = ts.free_ops;
  return out;
}

ResourceScope::ResourceScope() {
  heap_internal::ThreadState& ts = heap_internal::g_thread_state;
  parent_ = ts.innermost;
  alloc_bytes_at_start_ = ts.alloc_bytes;
  alloc_ops_at_start_ = ts.alloc_ops;
  free_bytes_at_start_ = ts.free_bytes;
  free_ops_at_start_ = ts.free_ops;
  live_at_start_ = static_cast<int64_t>(ts.alloc_bytes) -
                   static_cast<int64_t>(ts.free_bytes);
  max_live_ = live_at_start_;
  ts.innermost = this;
}

ResourceScope::~ResourceScope() {
  heap_internal::ThreadState& ts = heap_internal::g_thread_state;
  ts.innermost = parent_;
  if (parent_ != nullptr) {
    // The child's window is part of the parent's, so its high-water and
    // any cross-thread merges belong to the parent once the child closes.
    if (max_live_ > parent_->max_live_) parent_->max_live_ = max_live_;
    parent_->merged_ += merged_;
  }
}

ResourceUsage ResourceScope::Usage() const {
  const heap_internal::ThreadState& ts = heap_internal::g_thread_state;
  ResourceUsage usage = merged_;
  usage.allocated_bytes += ts.alloc_bytes - alloc_bytes_at_start_;
  usage.alloc_ops += ts.alloc_ops - alloc_ops_at_start_;
  usage.freed_bytes += ts.free_bytes - free_bytes_at_start_;
  usage.free_ops += ts.free_ops - free_ops_at_start_;
  const int64_t local_peak = max_live_ - live_at_start_;
  if (local_peak > 0) usage.peak_bytes += local_peak;
  return usage;
}

}  // namespace rased

namespace {

void* AllocOrThrow(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  while (p == nullptr) {
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
    p = std::malloc(size);
  }
  rased::heap_internal::NoteAlloc(rased::heap_internal::UsableSize(p));
  return p;
}

void* AllocAlignedOrThrow(std::size_t size, std::size_t alignment) {
  if (size == 0) size = 1;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  while (posix_memalign(&p, alignment, size) != 0) {
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
  rased::heap_internal::NoteAlloc(rased::heap_internal::UsableSize(p));
  return p;
}

void FreeAndNote(void* p) noexcept {
  if (p == nullptr) return;
  rased::heap_internal::NoteFree(rased::heap_internal::UsableSize(p));
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return AllocOrThrow(size); }
void* operator new[](std::size_t size) { return AllocOrThrow(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return AllocOrThrow(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return AllocOrThrow(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  return AllocAlignedOrThrow(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return AllocAlignedOrThrow(size, static_cast<std::size_t>(alignment));
}
void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  try {
    return AllocAlignedOrThrow(size, static_cast<std::size_t>(alignment));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  try {
    return AllocAlignedOrThrow(size, static_cast<std::size_t>(alignment));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { FreeAndNote(p); }
void operator delete[](void* p) noexcept { FreeAndNote(p); }
void operator delete(void* p, std::size_t) noexcept { FreeAndNote(p); }
void operator delete[](void* p, std::size_t) noexcept { FreeAndNote(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  FreeAndNote(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  FreeAndNote(p);
}
void operator delete(void* p, std::align_val_t) noexcept { FreeAndNote(p); }
void operator delete[](void* p, std::align_val_t) noexcept { FreeAndNote(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  FreeAndNote(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  FreeAndNote(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  FreeAndNote(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  FreeAndNote(p);
}
