#ifndef RASED_OBS_PROFILER_H_
#define RASED_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rased {

namespace profiler_internal {
/// Per-thread sampling state (ring, timer, stack bounds). Defined in
/// profiler.cc; opaque to everyone but the profiler and its handler.
struct ThreadEntry;
}  // namespace profiler_internal

/// Knobs for the always-on sampling CPU profiler (DESIGN.md section 13).
struct ProfilerOptions {
  /// Samples per second of CPU time, per registered thread. 99 (not 100)
  /// so sampling does not phase-lock with 10ms-period work.
  int sample_hz = 99;

  /// Frames kept per sample (deeper stacks are truncated at the root
  /// end). Clamped to the compile-time slot capacity (64).
  int max_stack_depth = 48;

  /// Pending raw samples per thread between reaper drains. At 99 Hz and
  /// the default reap interval only a handful are ever in flight; the
  /// headroom absorbs reaper scheduling stalls without dropping.
  size_t ring_slots = 256;

  /// Width of one always-on aggregation window.
  int64_t window_micros = 10 * 1000 * 1000;

  /// Byte budget for retained windows; oldest windows are evicted first.
  size_t window_byte_budget = 2 * 1024 * 1024;

  /// How often the background reaper drains the per-thread rings.
  int64_t reap_interval_micros = 100 * 1000;

  /// Registry for rased_profiler_* series (nullptr: unregistered).
  MetricsRegistry* metrics = nullptr;
};

/// One aggregated profile: folded stacks ("root;frame;leaf") to sample
/// counts, plus drop accounting for the covered interval.
struct ProfileWindow {
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  uint64_t samples = 0;
  uint64_t dropped = 0;
  std::map<std::string, uint64_t> folded;

  /// Approximate heap footprint, the unit of the ring's byte budget.
  size_t ResidentBytes() const;
};

/// Byte-budgeted ring of retained profile windows. Pure data structure
/// (no clock, no signals) so eviction and budget accounting are testable
/// with FakeClock-stamped windows. Thread-safe.
class ProfileWindowRing {
 public:
  explicit ProfileWindowRing(size_t byte_budget);

  /// Appends a window, then evicts oldest-first until the resident bytes
  /// fit the budget (the newest window always stays, even oversized).
  void Add(ProfileWindow window);

  /// Merges every retained window overlapping [from_micros, +inf) into
  /// one. With from_micros = INT64_MIN, merges everything retained.
  ProfileWindow Merge(int64_t from_micros) const;

  size_t num_windows() const;
  size_t resident_bytes() const;

 private:
  mutable Mutex mu_;
  const size_t byte_budget_;
  std::deque<ProfileWindow> windows_ RASED_GUARDED_BY(mu_);
  size_t resident_bytes_ RASED_GUARDED_BY(mu_) = 0;
};

/// Result of an on-demand capture or a retained-window merge.
struct ProfileReport {
  int64_t duration_micros = 0;
  uint64_t samples = 0;
  uint64_t dropped = 0;
  std::map<std::string, uint64_t> folded;
};

/// Renders folded-stack lines ("frame;frame;frame <count>\n"), the format
/// flamegraph.pl and speedscope ingest directly.
std::string RenderFolded(const std::map<std::string, uint64_t>& folded);

/// Parses folded-stack text back into a stack->count map (the `rased
/// profile` renderer input). Rejects lines without a trailing count.
Result<std::map<std::string, uint64_t>> ParseFolded(std::string_view text);

/// Per-frame totals derived from a folded profile: `self` counts samples
/// with the frame on top, `cumulative` counts samples with the frame
/// anywhere on the stack (recursive frames counted once per sample).
struct FrameTotals {
  std::string name;
  uint64_t self = 0;
  uint64_t cumulative = 0;
};

/// Top `n` frames by cumulative count (ties broken by name).
std::vector<FrameTotals> TopFrames(
    const std::map<std::string, uint64_t>& folded, size_t n);

/// Process-wide signal-driven sampling CPU profiler.
///
/// Each registered thread (ProfilerThreadScope) owns a CPU-time POSIX
/// timer that delivers SIGPROF to exactly that thread at sample_hz. The
/// async-signal-safe handler walks the frame-pointer chain of the
/// interrupted context into a lock-free SPSC ring; a background reaper
/// drains the rings, symbolizes, and aggregates into folded-stack windows
/// retained under a byte budget. Start/Stop are refcounted: the profiler
/// runs while at least one Start is outstanding, and the SIGPROF handler
/// stays installed for the life of the process once armed (it ignores
/// signals while the profiler is stopped).
class Profiler {
 public:
  static Profiler* Global();

  /// Starts (or joins) process-wide profiling. The first caller's options
  /// win; later Start calls only bump the refcount.
  Status Start(const ProfilerOptions& options);

  /// Decrements the refcount; the last Stop disarms every timer, joins
  /// the reaper, and fails outstanding captures.
  void Stop();

  bool running() const;

  /// Blocks the calling thread for ~duration_micros of real time while
  /// the reaper routes freshly drained samples into this capture, then
  /// returns the aggregated profile. FailedPrecondition when stopped.
  Result<ProfileReport> CollectFor(int64_t duration_micros);

  /// Merges the in-progress window plus retained windows overlapping the
  /// trailing span_micros into one report, without blocking. Drains the
  /// per-thread rings first (when running), so the report covers samples
  /// up to the call even if the reaper has not run yet.
  Result<ProfileReport> RetainedReport(int64_t span_micros);

  /// Lifetime totals over drained rings (monotone).
  uint64_t samples_total() const;
  uint64_t dropped_total() const;

 private:
  friend class ProfilerThreadScope;
  struct Collector;
  using StackCounts = std::map<std::vector<uintptr_t>, uint64_t>;

  Profiler() = default;

  /// Registers the calling thread; arms its timer when running.
  profiler_internal::ThreadEntry* RegisterCurrentThread(const char* name);
  void UnregisterCurrentThread(profiler_internal::ThreadEntry* entry);

  Status ArmTimerLocked(profiler_internal::ThreadEntry* entry)
      RASED_REQUIRES(mu_);
  void DisarmTimerLocked(profiler_internal::ThreadEntry* entry)
      RASED_REQUIRES(mu_);
  void ReaperLoop(int64_t reap_interval_micros);
  void DrainOnce(int64_t now_micros);
  void DrainLocked(int64_t now_micros) RASED_REQUIRES(mu_);
  std::string FoldStack(const std::vector<uintptr_t>& pcs)
      RASED_REQUIRES(mu_);
  void FoldInto(const StackCounts& counts,
                std::map<std::string, uint64_t>* folded, uint64_t* samples)
      RASED_REQUIRES(mu_);

  mutable Mutex mu_;
  std::atomic<bool> reaper_running_{false};
  int active_refs_ RASED_GUARDED_BY(mu_) = 0;
  bool handler_installed_ RASED_GUARDED_BY(mu_) = false;
  ProfilerOptions options_ RASED_GUARDED_BY(mu_);
  std::vector<profiler_internal::ThreadEntry*> entries_ RASED_GUARDED_BY(mu_);
  std::vector<Collector*> collectors_ RASED_GUARDED_BY(mu_);
  std::map<uintptr_t, std::string> symbol_cache_ RASED_GUARDED_BY(mu_);
  std::unique_ptr<ProfileWindowRing> ring_ RASED_GUARDED_BY(mu_);
  StackCounts pending_ RASED_GUARDED_BY(mu_);
  int64_t window_start_micros_ RASED_GUARDED_BY(mu_) = 0;
  uint64_t window_dropped_ RASED_GUARDED_BY(mu_) = 0;
  uint64_t samples_total_ RASED_GUARDED_BY(mu_) = 0;
  uint64_t dropped_total_ RASED_GUARDED_BY(mu_) = 0;
  std::thread reaper_ RASED_GUARDED_BY(mu_);

  struct ProfilerMetrics {
    Counter* samples = nullptr;
    Counter* dropped = nullptr;
    Counter* handler_nanos = nullptr;
    Gauge* windows = nullptr;
    Gauge* window_bytes = nullptr;
    Gauge* threads = nullptr;
  };
  ProfilerMetrics metrics_ RASED_GUARDED_BY(mu_);
};

/// RAII registration of the calling thread with the profiler. Threads
/// that matter (HTTP workers, the CLI serve/main thread, bench workers)
/// open one of these at the top of their run loop; unregistered threads
/// are simply never sampled. Nesting is a no-op: the outermost scope owns
/// the registration. `name` must outlive the scope (string literals).
class ProfilerThreadScope {
 public:
  explicit ProfilerThreadScope(const char* name);
  ~ProfilerThreadScope();

  ProfilerThreadScope(const ProfilerThreadScope&) = delete;
  ProfilerThreadScope& operator=(const ProfilerThreadScope&) = delete;

 private:
  profiler_internal::ThreadEntry* entry_ = nullptr;
};

}  // namespace rased

#endif  // RASED_OBS_PROFILER_H_
