#include "obs/build_info.h"

namespace rased {

namespace {

#ifndef RASED_VERSION_STRING
#define RASED_VERSION_STRING "dev"
#endif
#ifndef RASED_GIT_SHA
#define RASED_GIT_SHA "unknown"
#endif

const char* CompilerString() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

std::string Avx2DispatchLabel(bool compiled_in, bool active) {
  if (!compiled_in) return "not-compiled";
  return active ? "active" : "compiled-disabled";
}

BuildInfo MakeBuildInfo(std::string_view avx2_label) {
  BuildInfo info;
  info.version = RASED_VERSION_STRING;
  info.git_sha = RASED_GIT_SHA;
  info.compiler = CompilerString();
  info.avx2 = std::string(avx2_label);
  return info;
}

void RegisterBuildInfoGauge(MetricsRegistry* metrics, const BuildInfo& info) {
  if (metrics == nullptr) return;
  MetricLabels labels{{"version", info.version},
                      {"git_sha", info.git_sha},
                      {"compiler", info.compiler},
                      {"avx2", info.avx2}};
  Gauge* gauge = metrics->GetGauge(
      "rased_build_info",
      "Build identity (constant 1; the information is in the labels)",
      labels);
  gauge->Set(1);
}

}  // namespace rased
