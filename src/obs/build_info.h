#ifndef RASED_OBS_BUILD_INFO_H_
#define RASED_OBS_BUILD_INFO_H_

#include <string>
#include <string_view>

#include "obs/metrics_registry.h"

namespace rased {

/// Identity of the running build, so profiles, benches, and incident
/// traces are attributable to an exact binary.
struct BuildInfo {
  std::string version;   ///< project version (CMake), "dev" when unset
  std::string git_sha;   ///< short commit sha at configure time
  std::string compiler;  ///< compiler id + version string
  std::string avx2;      ///< AVX2 dispatch state label (see below)
};

/// Canonical label for the AVX2 kernel dispatch state, shared by the
/// /metrics gauge and the /readyz detail: "active", "compiled-disabled"
/// (built but CPU/flag gated it off), or "not-compiled".
std::string Avx2DispatchLabel(bool compiled_in, bool active);

/// Build identity with the given dispatch label. Version/sha/compiler are
/// baked in at compile time (RASED_VERSION_STRING / RASED_GIT_SHA).
BuildInfo MakeBuildInfo(std::string_view avx2_label);

/// Registers the `rased_build_info` gauge: constant value 1, the build
/// identity carried entirely in labels (the Prometheus _info convention).
void RegisterBuildInfoGauge(MetricsRegistry* metrics, const BuildInfo& info);

}  // namespace rased

#endif  // RASED_OBS_BUILD_INFO_H_
