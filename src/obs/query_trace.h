#ifndef RASED_OBS_QUERY_TRACE_H_
#define RASED_OBS_QUERY_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "util/thread_annotations.h"

namespace rased {

/// One stage of a query's execution. Every span carries two clocks:
///  - wall_micros: real elapsed time (util/clock.h NowMicros, overridable
///    in tests), nondeterministic in production;
///  - device_micros: simulated device-model time charged by the pager
///    while this stage ran — a pure function of the workload, so
///    bit-identical between serial and concurrent runs.
struct TraceSpan {
  std::string name;
  int64_t wall_micros = 0;
  int64_t device_micros = 0;
};

/// A completed query's trace: identity, headline timings, the device-model
/// transfer profile, and the per-stage spans
/// (plan -> cache_probe -> fetch -> aggregate -> render).
struct QueryTrace {
  uint64_t id = 0;          // assigned by TraceRecorder::Record
  /// Request trace id (obs/request_context.h), 0 when recorded outside a
  /// request scope. Joins this entry with the X-Rased-Trace-Id response
  /// header and the `trace=` field on the request's log lines.
  uint64_t trace_id = 0;
  std::string summary;      // human-readable query description
  int64_t wall_micros = 0;  // end-to-end wall time
  int64_t device_micros = 0;
  uint64_t cubes_total = 0;
  uint64_t cubes_from_cache = 0;
  uint64_t cubes_from_disk = 0;
  uint64_t page_reads = 0;
  uint64_t read_ops = 0;
  uint64_t bytes_read = 0;
  /// Catalog epoch the query was pinned to (MVCC publication counter).
  uint64_t epoch = 0;
  /// Exact heap attribution from the query's ResourceScope
  /// (obs/heap_stats.h): bytes/ops allocated while the query executed and
  /// its high-water mark of net-live bytes above the scope's baseline.
  uint64_t alloc_bytes = 0;
  uint64_t alloc_ops = 0;
  uint64_t peak_alloc_bytes = 0;
  std::vector<TraceSpan> spans;

  /// wall + simulated device time: what an end user of the modeled
  /// hardware would experience; this is what the slow-query threshold
  /// compares against.
  int64_t total_micros() const { return wall_micros + device_micros; }
};

struct TraceRecorderOptions {
  /// Ring-buffer capacity: how many recent traces /api/trace can return.
  size_t capacity = 64;
  /// Queries whose total_micros exceeds this log one WARN line with the
  /// full span breakdown. <= 0 disables slow-query logging.
  int64_t slow_query_micros = 250000;
  /// Token-bucket rate limit on that WARN line (a slow-query storm must
  /// not flood the log). At most this many lines per second, burst 1; the
  /// next emitted line carries a ` suppressed=N` suffix counting the slow
  /// queries whose lines were dropped since. <= 0 disables the limit.
  double slow_log_per_sec = 1.0;
};

/// Bounded ring buffer of recent query traces with slow-query logging.
/// Record/Snapshot are safe from any thread (one short mutex section; the
/// buffer is tiny and copies are cheap relative to query execution).
class TraceRecorder {
 public:
  explicit TraceRecorder(const TraceRecorderOptions& options = {},
                         MetricsRegistry* metrics = nullptr);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Assigns the trace a process-unique id, appends it to the ring
  /// (evicting the oldest beyond capacity), emits the slow-query log line
  /// when over threshold, and returns the assigned id.
  uint64_t Record(QueryTrace trace) RASED_EXCLUDES(mu_);

  /// The retained traces, oldest first.
  std::vector<QueryTrace> Snapshot() const RASED_EXCLUDES(mu_);

  /// Total traces ever recorded (not bounded by capacity).
  uint64_t total_recorded() const RASED_EXCLUDES(mu_);

  const TraceRecorderOptions& options() const { return options_; }

 private:
  const TraceRecorderOptions options_;
  // Registry handles, bound once in the constructor.
  Counter* recorded_counter_ RASED_CONST_AFTER_INIT =
      nullptr;  // rased_traces_recorded_total
  Counter* slow_counter_ RASED_CONST_AFTER_INIT =
      nullptr;  // rased_slow_queries_total
  Counter* suppressed_counter_ RASED_CONST_AFTER_INIT =
      nullptr;  // rased_slow_query_log_suppressed_total

  mutable Mutex mu_;
  uint64_t next_id_ RASED_GUARDED_BY(mu_) = 1;
  std::deque<QueryTrace> ring_ RASED_GUARDED_BY(mu_);
  // Slow-query log token bucket (capacity 1, slow_log_per_sec refill).
  double log_tokens_ RASED_GUARDED_BY(mu_) = 1.0;
  int64_t log_refill_micros_ RASED_GUARDED_BY(mu_) = 0;
  uint64_t log_suppressed_ RASED_GUARDED_BY(mu_) = 0;
};

}  // namespace rased

#endif  // RASED_OBS_QUERY_TRACE_H_
