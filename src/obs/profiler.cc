#include "obs/profiler.h"

#if defined(__linux__)
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/types.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>
#define RASED_PROFILER_SUPPORTED 1
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <utility>

#include "util/clock.h"
#include "util/logging.h"
#include "util/signal_safety.h"
#include "util/str_util.h"
#include "util/symbolize.h"

// Linux delivers a per-thread CPU-clock timer's signal to one specific
// thread via SIGEV_THREAD_ID; older glibc headers spell the union member
// but not the POSIX-draft macro names.
#if defined(__linux__)
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif

namespace rased {

namespace profiler_internal {

/// Compile-time frame capacity of one ring slot; ProfilerOptions
/// max_stack_depth is clamped to this.
constexpr int kMaxDepthCap = 64;

struct RawSample {
  int32_t depth = 0;
  uintptr_t pc[kMaxDepthCap];
};

struct ThreadEntry {
  // SPSC ring: the signal handler (producer, this thread only) publishes
  // slots with a release store of head; the reaper (consumer, under the
  // profiler mutex) acquires head, reads, and releases tail.
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> tail{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> handler_nanos{0};

  uintptr_t stack_lo = 0;
  uintptr_t stack_hi = 0;
  pid_t tid = 0;
  int max_depth = 48;
  const char* name = "";
  std::vector<RawSample> slots;

  // Reaper-side (profiler-mutex-guarded) bookkeeping.
  bool timer_armed = false;
#if defined(RASED_PROFILER_SUPPORTED)
  timer_t timer{};
#endif
  uint64_t dropped_reaped = 0;
  uint64_t nanos_reaped = 0;
};

/// The registered entry of the current thread, written only by this
/// thread (ProfilerThreadScope); read by the SIGPROF handler, which runs
/// on this thread, so plain accesses are sequenced correctly.
thread_local ThreadEntry* g_thread_entry = nullptr;

/// Whether samples should be recorded; flipped by Start/Stop. The handler
/// stays installed across Stop and consults this flag.
std::atomic<bool> g_profiler_active{false};

/// SIGPROF deliveries with no registered entry or while stopped (e.g. a
/// queued signal landing right after unregistration).
std::atomic<uint64_t> g_unattributed{0};

/// Frame-pointer chain walk, bounded to the sampled thread's own stack so
/// every dereference is a valid read even mid-prologue. Sanitizers are
/// disabled for this function only: it deliberately reads raw stack words
/// (saved rbp/return-address slots) that ASan redzone bookkeeping and
/// TSan shadow do not model.
__attribute__((no_sanitize("address", "thread", "undefined"))) int
WalkFrames(uintptr_t pc, uintptr_t fp, uintptr_t stack_lo,
           uintptr_t stack_hi, int max_depth, uintptr_t* out) {
  int n = 0;
  if (max_depth > kMaxDepthCap) max_depth = kMaxDepthCap;
  if (pc != 0 && n < max_depth) out[n++] = pc;
  while (n < max_depth && fp >= stack_lo &&
         fp + 2 * sizeof(uintptr_t) <= stack_hi &&
         (fp & (sizeof(uintptr_t) - 1)) == 0) {
    const uintptr_t* frame = reinterpret_cast<const uintptr_t*>(fp);
    const uintptr_t next_fp = frame[0];
    const uintptr_t ret = frame[1];
    if (ret == 0) break;
    out[n++] = ret;
    if (next_fp <= fp) break;  // chain must grow toward the stack base
    fp = next_fp;
  }
  return n;
}

#if defined(RASED_PROFILER_SUPPORTED)
/// SIGPROF entry point. Async-signal-safe: errno save/restore, one TLS
/// read, an atomic-indexed write into a preallocated ring, clock_gettime
/// for self-accounting. No allocation, no locks, no stdio, no logging.
RASED_SIGNAL_HANDLER void SigprofHandler(int /*signo*/, siginfo_t* /*info*/,
                                         void* ucontext) {
  ScopedErrnoRestore errno_guard;
  ThreadEntry* entry = g_thread_entry;
  if (entry == nullptr ||
      !g_profiler_active.load(std::memory_order_relaxed)) {
    g_unattributed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  timespec t0;
  clock_gettime(CLOCK_MONOTONIC, &t0);

  uintptr_t pc = 0;
  uintptr_t fp = 0;
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext);
#if defined(__x86_64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)uc;
#endif

  const uint64_t head = entry->head.load(std::memory_order_relaxed);
  const uint64_t tail = entry->tail.load(std::memory_order_acquire);
  if (head - tail >= entry->slots.size()) {
    entry->dropped.fetch_add(1, std::memory_order_relaxed);
  } else {
    RawSample& slot = entry->slots[head % entry->slots.size()];
    slot.depth = WalkFrames(pc, fp, entry->stack_lo, entry->stack_hi,
                            entry->max_depth, slot.pc);
    entry->head.store(head + 1, std::memory_order_release);
  }

  timespec t1;
  clock_gettime(CLOCK_MONOTONIC, &t1);
  const int64_t nanos = (t1.tv_sec - t0.tv_sec) * 1000000000LL +
                        (t1.tv_nsec - t0.tv_nsec);
  if (nanos > 0) {
    entry->handler_nanos.fetch_add(static_cast<uint64_t>(nanos),
                                   std::memory_order_relaxed);
  }
}
#endif  // RASED_PROFILER_SUPPORTED

/// Reaper poll tick; same idiom as the selfstats sampler (rased::CondVar
/// has no timed wait, and the due times are NowMicros-driven).
constexpr auto kReaperTick = std::chrono::milliseconds(20);

}  // namespace profiler_internal

using profiler_internal::g_profiler_active;
using profiler_internal::g_thread_entry;
using profiler_internal::RawSample;
using profiler_internal::ThreadEntry;

// ---------------------------------------------------------------------------
// ProfileWindow / ProfileWindowRing
// ---------------------------------------------------------------------------

size_t ProfileWindow::ResidentBytes() const {
  // Map-node and string overheads approximated per entry; the budget is a
  // sizing knob, not an allocator audit.
  size_t bytes = sizeof(ProfileWindow);
  for (const auto& [stack, count] : folded) {
    (void)count;
    bytes += stack.size() + 64;
  }
  return bytes;
}

ProfileWindowRing::ProfileWindowRing(size_t byte_budget)
    : byte_budget_(byte_budget == 0 ? 1 : byte_budget) {}

void ProfileWindowRing::Add(ProfileWindow window) {
  const size_t bytes = window.ResidentBytes();
  MutexLock lock(&mu_);
  windows_.push_back(std::move(window));
  resident_bytes_ += bytes;
  while (resident_bytes_ > byte_budget_ && windows_.size() > 1) {
    resident_bytes_ -= windows_.front().ResidentBytes();
    windows_.pop_front();
  }
}

ProfileWindow ProfileWindowRing::Merge(int64_t from_micros) const {
  MutexLock lock(&mu_);
  ProfileWindow out;
  bool first = true;
  for (const ProfileWindow& w : windows_) {
    if (w.end_micros < from_micros) continue;
    if (first) {
      out.start_micros = w.start_micros;
      first = false;
    }
    out.end_micros = std::max(out.end_micros, w.end_micros);
    out.samples += w.samples;
    out.dropped += w.dropped;
    for (const auto& [stack, count] : w.folded) out.folded[stack] += count;
  }
  return out;
}

size_t ProfileWindowRing::num_windows() const {
  MutexLock lock(&mu_);
  return windows_.size();
}

size_t ProfileWindowRing::resident_bytes() const {
  MutexLock lock(&mu_);
  return resident_bytes_;
}

// ---------------------------------------------------------------------------
// Folded-stack helpers
// ---------------------------------------------------------------------------

std::string RenderFolded(const std::map<std::string, uint64_t>& folded) {
  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

Result<std::map<std::string, uint64_t>> ParseFolded(std::string_view text) {
  std::map<std::string, uint64_t> folded;
  size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    const size_t space = line.find_last_of(' ');
    if (space == std::string_view::npos || space == 0 ||
        space + 1 >= line.size()) {
      return Status::InvalidArgument(
          StrFormat("folded line %d has no trailing count", line_no));
    }
    RASED_ASSIGN_OR_RETURN(uint64_t count,
                           ParseUint(line.substr(space + 1)));
    folded[std::string(line.substr(0, space))] += count;
  }
  return folded;
}

std::vector<FrameTotals> TopFrames(
    const std::map<std::string, uint64_t>& folded, size_t n) {
  std::map<std::string, FrameTotals> totals;
  for (const auto& [stack, count] : folded) {
    std::set<std::string_view> seen;  // recursion: one charge per sample
    std::string_view rest = stack;
    std::string_view leaf;
    while (!rest.empty()) {
      size_t semi = rest.find(';');
      std::string_view frame = rest.substr(0, semi);
      rest = semi == std::string_view::npos ? std::string_view()
                                            : rest.substr(semi + 1);
      if (frame.empty()) continue;
      leaf = frame;
      if (seen.insert(frame).second) {
        FrameTotals& t = totals[std::string(frame)];
        t.cumulative += count;
      }
    }
    if (!leaf.empty()) totals[std::string(leaf)].self += count;
  }
  std::vector<FrameTotals> out;
  out.reserve(totals.size());
  for (auto& [name, t] : totals) {
    t.name = name;
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(),
            [](const FrameTotals& a, const FrameTotals& b) {
              if (a.cumulative != b.cumulative) {
                return a.cumulative > b.cumulative;
              }
              return a.name < b.name;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

struct Profiler::Collector {
  int64_t end_micros = 0;
  bool done = false;
  uint64_t dropped_at_start = 0;
  uint64_t dropped = 0;
  StackCounts counts;
};

Profiler* Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return profiler;
}

Status Profiler::Start(const ProfilerOptions& options) {
#if !defined(RASED_PROFILER_SUPPORTED)
  (void)options;
  return Status::NotSupported("profiler requires Linux POSIX timers");
#else
  std::thread reaper;
  {
    MutexLock lock(&mu_);
    if (active_refs_ > 0) {
      ++active_refs_;
      return Status::OK();
    }
    options_ = options;
    options_.sample_hz = std::clamp(options_.sample_hz, 1, 1000);
    options_.max_stack_depth =
        std::clamp(options_.max_stack_depth, 1,
                   profiler_internal::kMaxDepthCap);
    options_.ring_slots = std::max<size_t>(options_.ring_slots, 16);
    options_.window_micros =
        std::max<int64_t>(options_.window_micros, 100 * 1000);
    options_.reap_interval_micros =
        std::max<int64_t>(options_.reap_interval_micros, 10 * 1000);

    if (!handler_installed_) {
      struct sigaction sa;
      std::memset(&sa, 0, sizeof(sa));
      sa.sa_sigaction = &profiler_internal::SigprofHandler;
      sa.sa_flags = SA_SIGINFO | SA_RESTART;
      sigemptyset(&sa.sa_mask);
      if (sigaction(SIGPROF, &sa, nullptr) != 0) {
        return Status::IOError(std::string("sigaction(SIGPROF): ") +
                               std::strerror(errno));
      }
      handler_installed_ = true;
    }

    if (options_.metrics != nullptr) {
      MetricsRegistry* registry = options_.metrics;
      metrics_.samples = registry->GetCounter(
          "rased_profiler_samples_total",
          "CPU profile samples drained from per-thread rings");
      metrics_.dropped = registry->GetCounter(
          "rased_profiler_samples_dropped_total",
          "CPU profile samples dropped on full per-thread rings");
      metrics_.handler_nanos = registry->GetCounter(
          "rased_profiler_handler_nanos_total",
          "Cumulative nanoseconds spent inside the SIGPROF handler "
          "(profiler duty cycle numerator)");
      metrics_.windows = registry->GetGauge(
          "rased_profiler_windows_retained",
          "Always-on profile windows currently retained");
      metrics_.window_bytes = registry->GetGauge(
          "rased_profiler_window_resident_bytes",
          "Approximate bytes retained by the profile window ring");
      metrics_.threads = registry->GetGauge(
          "rased_profiler_threads_registered",
          "Threads currently registered for sampling");
    }

    ring_ = std::make_unique<ProfileWindowRing>(options_.window_byte_budget);
    pending_.clear();
    window_dropped_ = 0;
    window_start_micros_ = NowMicros();

    for (ThreadEntry* entry : entries_) {
      Status armed = ArmTimerLocked(entry);
      if (!armed.ok()) {
        RASED_LOG(Warning) << "profiler: " << armed.ToString();
      }
    }
    g_profiler_active.store(true, std::memory_order_release);
    active_refs_ = 1;
    reaper_running_.store(true, std::memory_order_release);
    reaper = std::thread(
        [this, interval = options_.reap_interval_micros] {
          ReaperLoop(interval);
        });
    reaper_ = std::move(reaper);
  }
  return Status::OK();
#endif
}

void Profiler::Stop() {
  std::thread reaper;
  {
    MutexLock lock(&mu_);
    if (active_refs_ == 0) return;
    if (--active_refs_ > 0) return;
    g_profiler_active.store(false, std::memory_order_release);
    for (ThreadEntry* entry : entries_) DisarmTimerLocked(entry);
    reaper_running_.store(false, std::memory_order_release);
    reaper = std::move(reaper_);
  }
  if (reaper.joinable()) reaper.join();
  MutexLock lock(&mu_);
  // The reaper's final drain already ran; anything still waiting gets
  // what was collected so far.
  for (Collector* collector : collectors_) {
    collector->dropped = dropped_total_ - collector->dropped_at_start;
    collector->done = true;
  }
  collectors_.clear();
}

bool Profiler::running() const {
  MutexLock lock(&mu_);
  return active_refs_ > 0;
}

uint64_t Profiler::samples_total() const {
  MutexLock lock(&mu_);
  return samples_total_;
}

uint64_t Profiler::dropped_total() const {
  MutexLock lock(&mu_);
  return dropped_total_;
}

Result<ProfileReport> Profiler::CollectFor(int64_t duration_micros) {
  if (duration_micros <= 0) duration_micros = 1000 * 1000;
  Collector collector;
  {
    MutexLock lock(&mu_);
    if (active_refs_ == 0) {
      return Status::FailedPrecondition("profiler is not running");
    }
    collector.end_micros = NowMicros() + duration_micros;
    collector.dropped_at_start = dropped_total_;
    collectors_.push_back(&collector);
  }
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (collector.done) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ProfileReport report;
  report.duration_micros = duration_micros;
  report.dropped = collector.dropped;
  {
    MutexLock lock(&mu_);
    FoldInto(collector.counts, &report.folded, &report.samples);
  }
  return report;
}

Result<ProfileReport> Profiler::RetainedReport(int64_t span_micros) {
  MutexLock lock(&mu_);
  if (ring_ == nullptr) {
    return Status::FailedPrecondition("profiler has never run");
  }
  const int64_t now = NowMicros();
  // Pull anything still sitting in the per-thread rings so the report
  // covers samples right up to this call, not just the reaper's last
  // pass (at short uptimes the reaper may not have run at all yet).
  if (active_refs_ > 0) DrainLocked(now);
  const int64_t from = span_micros > 0 ? now - span_micros : INT64_MIN;
  ProfileWindow merged = ring_->Merge(from);
  ProfileReport report;
  report.folded = std::move(merged.folded);
  report.samples = merged.samples;
  report.dropped = merged.dropped + window_dropped_;
  // Include the in-progress window so a fresh server still reports.
  FoldInto(pending_, &report.folded, &report.samples);
  const int64_t start =
      merged.start_micros > 0 ? merged.start_micros : window_start_micros_;
  report.duration_micros = std::max<int64_t>(now - start, 0);
  return report;
}

ThreadEntry* Profiler::RegisterCurrentThread(const char* name) {
  auto* entry = new ThreadEntry();
  entry->name = name;
#if defined(RASED_PROFILER_SUPPORTED)
  entry->tid = static_cast<pid_t>(::syscall(SYS_gettid));
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* stack_addr = nullptr;
    size_t stack_size = 0;
    if (pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0) {
      entry->stack_lo = reinterpret_cast<uintptr_t>(stack_addr);
      entry->stack_hi = entry->stack_lo + stack_size;
    }
    pthread_attr_destroy(&attr);
  }
#endif
  MutexLock lock(&mu_);
  entry->max_depth = std::min(options_.max_stack_depth,
                              profiler_internal::kMaxDepthCap);
  entry->slots.resize(std::max<size_t>(options_.ring_slots, 16));
  entries_.push_back(entry);
  g_thread_entry = entry;  // this thread's TLS; handler sees it from here
  if (active_refs_ > 0) {
    Status armed = ArmTimerLocked(entry);
    if (!armed.ok()) {
      RASED_LOG(Warning) << "profiler: " << armed.ToString();
    }
  }
  if (metrics_.threads != nullptr) {
    metrics_.threads->Set(static_cast<int64_t>(entries_.size()));
  }
  return entry;
}

void Profiler::UnregisterCurrentThread(ThreadEntry* entry) {
  // Clear the TLS first: a SIGPROF queued by this thread's timer can
  // still be delivered until timer_delete below, and must find no entry.
  g_thread_entry = nullptr;
  MutexLock lock(&mu_);
  DisarmTimerLocked(entry);
  // Reap the tail of the ring so short-lived threads still contribute.
  const uint64_t head = entry->head.load(std::memory_order_acquire);
  for (uint64_t tail = entry->tail.load(std::memory_order_relaxed);
       tail != head; ++tail) {
    const RawSample& slot = entry->slots[tail % entry->slots.size()];
    const int depth = std::max<int32_t>(slot.depth, 0);
    std::vector<uintptr_t> pcs(slot.pc, slot.pc + depth);
    ++pending_[pcs];
    ++samples_total_;
  }
  const uint64_t dropped = entry->dropped.load(std::memory_order_relaxed);
  dropped_total_ += dropped - entry->dropped_reaped;
  window_dropped_ += dropped - entry->dropped_reaped;
  entries_.erase(std::find(entries_.begin(), entries_.end(), entry));
  if (metrics_.threads != nullptr) {
    metrics_.threads->Set(static_cast<int64_t>(entries_.size()));
  }
  delete entry;
}

Status Profiler::ArmTimerLocked(ThreadEntry* entry) {
#if defined(RASED_PROFILER_SUPPORTED)
  if (entry->timer_armed) return Status::OK();
  entry->max_depth = std::min(options_.max_stack_depth,
                              profiler_internal::kMaxDepthCap);
  if (entry->slots.size() != options_.ring_slots) {
    // Safe to resize: no signal targets this thread until timer_settime.
    entry->slots.assign(options_.ring_slots, RawSample{});
    entry->head.store(0, std::memory_order_relaxed);
    entry->tail.store(0, std::memory_order_relaxed);
  }
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = entry->tid;
  if (timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &entry->timer) != 0) {
    return Status::IOError(StrFormat("timer_create(tid %d): %s", entry->tid,
                                     std::strerror(errno)));
  }
  const int64_t interval_ns = 1000000000LL / options_.sample_hz;
  itimerspec spec{};
  spec.it_interval.tv_sec = interval_ns / 1000000000LL;
  spec.it_interval.tv_nsec = interval_ns % 1000000000LL;
  spec.it_value = spec.it_interval;
  if (timer_settime(entry->timer, 0, &spec, nullptr) != 0) {
    timer_delete(entry->timer);
    return Status::IOError(StrFormat("timer_settime(tid %d): %s",
                                     entry->tid, std::strerror(errno)));
  }
  entry->timer_armed = true;
  return Status::OK();
#else
  (void)entry;
  return Status::NotSupported("profiler requires Linux POSIX timers");
#endif
}

void Profiler::DisarmTimerLocked(ThreadEntry* entry) {
#if defined(RASED_PROFILER_SUPPORTED)
  if (!entry->timer_armed) return;
  timer_delete(entry->timer);
  entry->timer_armed = false;
#else
  (void)entry;
#endif
}

void Profiler::ReaperLoop(int64_t reap_interval_micros) {
  int64_t next_due = 0;
  while (reaper_running_.load(std::memory_order_acquire)) {
    const int64_t now = NowMicros();
    if (now >= next_due) {
      DrainOnce(now);
      next_due = now + reap_interval_micros;
    }
    std::this_thread::sleep_for(profiler_internal::kReaperTick);
  }
  DrainOnce(NowMicros());
}

void Profiler::DrainOnce(int64_t now_micros) {
  MutexLock lock(&mu_);
  DrainLocked(now_micros);
}

void Profiler::DrainLocked(int64_t now_micros) {
  StackCounts batch;
  uint64_t batch_samples = 0;
  uint64_t batch_dropped = 0;
  uint64_t batch_nanos = 0;
  for (ThreadEntry* entry : entries_) {
    const uint64_t head = entry->head.load(std::memory_order_acquire);
    uint64_t tail = entry->tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      const RawSample& slot = entry->slots[tail % entry->slots.size()];
      const int depth = std::max<int32_t>(slot.depth, 0);
      std::vector<uintptr_t> pcs(slot.pc, slot.pc + depth);
      ++batch[pcs];
      ++batch_samples;
    }
    entry->tail.store(tail, std::memory_order_release);
    const uint64_t dropped = entry->dropped.load(std::memory_order_relaxed);
    batch_dropped += dropped - entry->dropped_reaped;
    entry->dropped_reaped = dropped;
    const uint64_t nanos =
        entry->handler_nanos.load(std::memory_order_relaxed);
    batch_nanos += nanos - entry->nanos_reaped;
    entry->nanos_reaped = nanos;
  }
  samples_total_ += batch_samples;
  dropped_total_ += batch_dropped;
  window_dropped_ += batch_dropped;
  for (const auto& [pcs, count] : batch) pending_[pcs] += count;

  // Route the fresh batch into live captures, then finish the due ones.
  for (Collector* collector : collectors_) {
    for (const auto& [pcs, count] : batch) collector->counts[pcs] += count;
  }
  for (size_t i = 0; i < collectors_.size();) {
    Collector* collector = collectors_[i];
    if (now_micros >= collector->end_micros) {
      collector->dropped = dropped_total_ - collector->dropped_at_start;
      collector->done = true;
      collectors_.erase(collectors_.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  if (ring_ != nullptr &&
      now_micros - window_start_micros_ >= options_.window_micros) {
    ProfileWindow window;
    window.start_micros = window_start_micros_;
    window.end_micros = now_micros;
    window.dropped = window_dropped_;
    FoldInto(pending_, &window.folded, &window.samples);
    ring_->Add(std::move(window));
    pending_.clear();
    window_dropped_ = 0;
    window_start_micros_ = now_micros;
  }

  if (metrics_.samples != nullptr) {
    metrics_.samples->Increment(batch_samples);
    metrics_.dropped->Increment(batch_dropped);
    metrics_.handler_nanos->Increment(batch_nanos);
    if (ring_ != nullptr) {
      metrics_.windows->Set(static_cast<int64_t>(ring_->num_windows()));
      metrics_.window_bytes->Set(
          static_cast<int64_t>(ring_->resident_bytes()));
    }
  }
}

std::string Profiler::FoldStack(const std::vector<uintptr_t>& pcs) {
  if (pcs.empty()) return "(unknown)";
  // Samples are captured leaf-first; folded form reads root-first.
  std::string out;
  for (size_t i = pcs.size(); i-- > 0;) {
    auto it = symbol_cache_.find(pcs[i]);
    if (it == symbol_cache_.end()) {
      it = symbol_cache_.emplace(pcs[i], SymbolizePc(pcs[i])).first;
    }
    if (!out.empty()) out += ';';
    out += it->second;
  }
  return out;
}

void Profiler::FoldInto(const StackCounts& counts,
                        std::map<std::string, uint64_t>* folded,
                        uint64_t* samples) {
  for (const auto& [pcs, count] : counts) {
    (*folded)[FoldStack(pcs)] += count;
    *samples += count;
  }
}

// ---------------------------------------------------------------------------
// ProfilerThreadScope
// ---------------------------------------------------------------------------

ProfilerThreadScope::ProfilerThreadScope(const char* name) {
  if (g_thread_entry != nullptr) return;  // nested: outermost scope owns
  entry_ = Profiler::Global()->RegisterCurrentThread(name);
}

ProfilerThreadScope::~ProfilerThreadScope() {
  if (entry_ == nullptr) return;
  Profiler::Global()->UnregisterCurrentThread(entry_);
}

}  // namespace rased
