#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace rased {

namespace {

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 c == '_' || c == ':';
    bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

bool IsValidLabelKey(std::string_view key) {
  if (key.empty()) return false;
  for (size_t i = 0; i < key.size(); ++i) {
    char c = key[i];
    bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

// Prometheus label-value escaping: backslash, double quote, newline.
void AppendEscapedLabelValue(std::string_view value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

// HELP text escaping: backslash and newline only (no quotes in HELP).
void AppendEscapedHelp(std::string_view help, std::string* out) {
  for (char c : help) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

// Splices `le="<bound>"` into an already-rendered label string.
std::string WithLeLabel(const std::string& label_string,
                        const std::string& bound) {
  std::string out;
  if (label_string.empty()) {
    out = "{le=\"" + bound + "\"}";
  } else {
    out = label_string.substr(0, label_string.size() - 1) + ",le=\"" + bound +
          "\"}";
  }
  return out;
}

}  // namespace

Histogram::Histogram(const HistogramOptions& options) {
  RASED_CHECK(options.first_bound >= 0);
  RASED_CHECK(options.growth > 1.0);
  RASED_CHECK(options.num_buckets >= 1);
  bounds_.reserve(static_cast<size_t>(options.num_buckets));
  int64_t bound = options.first_bound;
  for (int i = 0; i < options.num_buckets; ++i) {
    bounds_.push_back(bound);
    // Force strictly increasing integer bounds even when growth rounds to
    // the same value (e.g. growth=1.1 near 1).
    int64_t next = static_cast<int64_t>(
        std::llround(static_cast<double>(bound) * options.growth));
    bound = std::max(bound + 1, next);
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
  if (options.track_exemplars) {
    exemplars_ = std::make_unique<ExemplarSlot[]>(bounds_.size() + 1);
  }
}

void Histogram::Observe(int64_t value) {
  // First finite bucket whose (inclusive) upper bound admits the value.
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  size_t idx = static_cast<size_t>(it - bounds_.begin());  // == size: +Inf
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::Observe(int64_t value, uint64_t exemplar_id) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  size_t idx = static_cast<size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  if (exemplars_ == nullptr) return;
  ExemplarSlot& slot = exemplars_[idx];
  int64_t cur = slot.worst.load(std::memory_order_relaxed);
  while (value > cur) {
    if (slot.worst.compare_exchange_weak(cur, value,
                                         std::memory_order_relaxed)) {
      slot.id.store(exemplar_id, std::memory_order_relaxed);
      break;
    }
  }
}

std::vector<HistogramExemplar> Histogram::DrainExemplars() {
  std::vector<HistogramExemplar> out;
  if (exemplars_ == nullptr) return out;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    ExemplarSlot& slot = exemplars_[i];
    int64_t worst = slot.worst.exchange(kNoExemplar,
                                        std::memory_order_relaxed);
    if (worst == kNoExemplar) continue;
    HistogramExemplar e;
    e.bucket = static_cast<int>(i);
    e.bound = i < bounds_.size() ? bounds_[i] : -1;
    e.value = worst;
    e.trace_id = slot.id.load(std::memory_order_relaxed);
    out.push_back(e);
  }
  return out;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return registry;
}

std::string MetricsRegistry::RenderLabelString(const MetricLabels& labels) {
  if (labels.empty()) return "";
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    RASED_CHECK(IsValidLabelKey(sorted[i].first))
        << "bad label key: " << sorted[i].first;
    if (i > 0) {
      RASED_CHECK(sorted[i].first != sorted[i - 1].first)
          << "duplicate label key: " << sorted[i].first;
      out.push_back(',');
    }
    out += sorted[i].first;
    out += "=\"";
    AppendEscapedLabelValue(sorted[i].second, &out);
    out += "\"";
  }
  out.push_back('}');
  return out;
}

MetricsRegistry::Family* MetricsRegistry::FamilyFor(std::string_view name,
                                                    std::string_view help,
                                                    Type type) {
  RASED_CHECK(IsValidMetricName(name))
      << "bad metric name: " << std::string(name);
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.type = type;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  } else {
    RASED_CHECK(it->second.type == type)
        << "metric family re-registered as different type: "
        << std::string(name);
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     const MetricLabels& labels) {
  std::string key = RenderLabelString(labels);
  MutexLock lock(&mu_);
  Family* family = FamilyFor(name, help, Type::kCounter);
  auto it = family->counters.find(key);
  if (it == family->counters.end()) {
    it = family->counters
             .emplace(std::move(key), std::unique_ptr<Counter>(new Counter))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 const MetricLabels& labels) {
  std::string key = RenderLabelString(labels);
  MutexLock lock(&mu_);
  Family* family = FamilyFor(name, help, Type::kGauge);
  auto it = family->gauges.find(key);
  if (it == family->gauges.end()) {
    it = family->gauges
             .emplace(std::move(key), std::unique_ptr<Gauge>(new Gauge))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         const HistogramOptions& options,
                                         const MetricLabels& labels) {
  std::string key = RenderLabelString(labels);
  MutexLock lock(&mu_);
  Family* family = FamilyFor(name, help, Type::kHistogram);
  if (family->histograms.empty()) family->histogram_options = options;
  auto it = family->histograms.find(key);
  if (it == family->histograms.end()) {
    it = family->histograms
             .emplace(std::move(key), std::unique_ptr<Histogram>(new Histogram(
                                          family->histogram_options)))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  MutexLock lock(&mu_);
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " ";
    AppendEscapedHelp(family.help, &out);
    out += "\n# TYPE " + name + " ";
    switch (family.type) {
      case Type::kCounter:
        out += "counter\n";
        for (const auto& [labels, counter] : family.counters) {
          out += name + labels + " " + std::to_string(counter->value()) + "\n";
        }
        break;
      case Type::kGauge:
        out += "gauge\n";
        for (const auto& [labels, gauge] : family.gauges) {
          out += name + labels + " " + std::to_string(gauge->value()) + "\n";
        }
        break;
      case Type::kHistogram:
        out += "histogram\n";
        for (const auto& [labels, histogram] : family.histograms) {
          uint64_t cumulative = 0;
          for (int i = 0; i < histogram->num_finite_buckets(); ++i) {
            cumulative += histogram->bucket_count(i);
            out += name + "_bucket" +
                   WithLeLabel(labels,
                               std::to_string(histogram->bucket_bound(i))) +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative +=
              histogram->bucket_count(histogram->num_finite_buckets());
          out += name + "_bucket" + WithLeLabel(labels, "+Inf") + " " +
                 std::to_string(cumulative) + "\n";
          out += name + "_sum" + labels + " " +
                 std::to_string(histogram->sum()) + "\n";
          // _count must equal the +Inf bucket for a self-consistent
          // exposition, so it is derived from the same bucket sweep.
          out += name + "_count" + labels + " " + std::to_string(cumulative) +
                 "\n";
        }
        break;
    }
  }
  return out;
}

size_t MetricsRegistry::num_series() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& [name, family] : families_) {
    n += family.counters.size() + family.gauges.size() +
         family.histograms.size();
  }
  return n;
}

std::vector<SampledSeries> MetricsRegistry::Sample() const {
  std::vector<SampledSeries> out;
  MutexLock lock(&mu_);
  for (const auto& [name, family] : families_) {
    switch (family.type) {
      case Type::kCounter:
        for (const auto& [labels, counter] : family.counters) {
          SampledSeries& s = out.emplace_back();
          s.name = name;
          s.labels = labels;
          s.kind = SampledSeries::Kind::kCounter;
          s.values.push_back(counter->value());
        }
        break;
      case Type::kGauge:
        for (const auto& [labels, gauge] : family.gauges) {
          SampledSeries& s = out.emplace_back();
          s.name = name;
          s.labels = labels;
          s.kind = SampledSeries::Kind::kGauge;
          s.values.push_back(static_cast<uint64_t>(gauge->value()));
        }
        break;
      case Type::kHistogram:
        for (const auto& [labels, histogram] : family.histograms) {
          SampledSeries& s = out.emplace_back();
          s.name = name;
          s.labels = labels;
          s.kind = SampledSeries::Kind::kHistogram;
          const int nb = histogram->num_finite_buckets();
          s.bounds.reserve(static_cast<size_t>(nb));
          for (int i = 0; i < nb; ++i) {
            s.bounds.push_back(histogram->bucket_bound(i));
          }
          s.values.reserve(static_cast<size_t>(nb) + 3);
          s.values.push_back(histogram->count());
          s.values.push_back(static_cast<uint64_t>(histogram->sum()));
          for (int i = 0; i <= nb; ++i) {
            s.values.push_back(histogram->bucket_count(i));
          }
        }
        break;
    }
  }
  return out;
}

}  // namespace rased
