#include "obs/slo.h"

#include <algorithm>
#include <cmath>

namespace rased {

namespace {

SloOptions WithDefaultObjectives(SloOptions options) {
  if (options.objectives.empty()) {
    options.objectives = SloTracker::DefaultObjectives();
  }
  return options;
}

int64_t BurnMilli(double burn_rate) {
  constexpr double kMax = 1e12;  // keep llround defined for huge ratios
  return std::llround(std::min(burn_rate, kMax) * 1000.0);
}

}  // namespace

const char* SloStatusName(SloStatus status) {
  switch (status) {
    case SloStatus::kOk:
      return "ok";
    case SloStatus::kWarning:
      return "warning";
    case SloStatus::kBurning:
      return "burning";
  }
  return "?";
}

std::vector<SloObjective> SloTracker::DefaultObjectives() {
  SloObjective latency;
  latency.name = "query_latency_p99";
  latency.kind = SloObjective::Kind::kLatency;
  latency.family = "rased_http_request_micros";
  latency.threshold_micros = 250000;
  latency.target = 0.99;

  SloObjective errors;
  errors.name = "http_error_rate";
  errors.kind = SloObjective::Kind::kRatio;
  errors.family = "rased_http_requests_total";
  errors.bad_family = "rased_http_responses_total";
  errors.bad_label_filter = "class=\"5xx\"";
  errors.target = 0.999;

  return {latency, errors};
}

SloTracker::SloTracker(MetricsHistory* history, MetricsRegistry* registry,
                       const SloOptions& options)
    : history_(history), options_(WithDefaultObjectives(options)) {
  gauges_.reserve(options_.objectives.size());
  for (const SloObjective& objective : options_.objectives) {
    ObjectiveGauges g;
    // NOLINT-RASED(metric-in-loop): one-time registration per objective
    g.burn_short = registry->GetGauge(
        "rased_slo_burn_rate",
        "Error-budget burn rate x1000 per objective and window",
        {{"objective", objective.name}, {"window", "short"}});
    // NOLINT-RASED(metric-in-loop): one-time registration per objective
    g.burn_long = registry->GetGauge(
        "rased_slo_burn_rate",
        "Error-budget burn rate x1000 per objective and window",
        {{"objective", objective.name}, {"window", "long"}});
    // NOLINT-RASED(metric-in-loop): one-time registration per objective
    g.status = registry->GetGauge(
        "rased_slo_status", "Objective status: 0 ok, 1 warning, 2 burning",
        {{"objective", objective.name}});
    gauges_.push_back(g);
  }
  worst_gauge_ = registry->GetGauge(
      "rased_slo_worst_status",
      "Worst objective status: 0 ok, 1 warning, 2 burning");
}

SloTracker::WindowBurn SloTracker::ComputeWindow(const SloObjective& objective,
                                                int64_t window_micros,
                                                int64_t now_micros) const {
  WindowBurn burn;
  burn.window_micros = window_micros;

  // Delta of one flattened word between the first and last retained point
  // in the window. Every word involved is monotone (counters, histogram
  // counts), so first-vs-last is the windowed event count.
  auto window_delta = [&](const std::string& family, const char* label_filter,
                          auto&& per_series) {
    const std::vector<MetricsHistory::Series> series =
        history_->Query(family, window_micros, now_micros);
    for (const MetricsHistory::Series& s : series) {
      if (label_filter != nullptr &&
          s.labels.find(label_filter) == std::string::npos) {
        continue;
      }
      if (s.points.size() < 2) continue;  // need a delta, not a level
      per_series(s, s.points.front(), s.points.back());
    }
  };

  switch (objective.kind) {
    case SloObjective::Kind::kLatency:
      window_delta(objective.family, nullptr,
                   [&](const MetricsHistory::Series& s,
                       const MetricsHistory::Point& first,
                       const MetricsHistory::Point& last) {
                     if (s.kind != SampledSeries::Kind::kHistogram) return;
                     // values: [count, sum, bucket_0 .. bucket_n(+Inf)]
                     const uint64_t total = last.values[0] - first.values[0];
                     uint64_t good = 0;
                     for (size_t b = 0; b < s.bounds.size(); ++b) {
                       if (s.bounds[b] > objective.threshold_micros) break;
                       good += last.values[b + 2] - first.values[b + 2];
                     }
                     burn.total_events += total;
                     burn.bad_events += total - std::min(total, good);
                   });
      break;
    case SloObjective::Kind::kRatio:
      window_delta(objective.family, nullptr,
                   [&](const MetricsHistory::Series& s,
                       const MetricsHistory::Point& first,
                       const MetricsHistory::Point& last) {
                     if (s.kind != SampledSeries::Kind::kCounter) return;
                     burn.total_events += last.values[0] - first.values[0];
                   });
      window_delta(objective.bad_family,
                   objective.bad_label_filter.empty()
                       ? nullptr
                       : objective.bad_label_filter.c_str(),
                   [&](const MetricsHistory::Series& s,
                       const MetricsHistory::Point& first,
                       const MetricsHistory::Point& last) {
                     if (s.kind != SampledSeries::Kind::kCounter) return;
                     burn.bad_events += last.values[0] - first.values[0];
                   });
      burn.bad_events = std::min(burn.bad_events, burn.total_events);
      break;
  }

  if (burn.total_events < options_.min_events) return burn;  // burn 0
  const double budget = 1.0 - objective.target;
  if (budget <= 0.0) return burn;
  burn.burn_rate = (static_cast<double>(burn.bad_events) /
                    static_cast<double>(burn.total_events)) /
                   budget;
  return burn;
}

std::vector<SloTracker::ObjectiveState> SloTracker::Evaluate(
    int64_t now_micros) {
  std::vector<ObjectiveState> states;
  states.reserve(options_.objectives.size());
  SloStatus worst = SloStatus::kOk;
  for (size_t i = 0; i < options_.objectives.size(); ++i) {
    const SloObjective& objective = options_.objectives[i];
    ObjectiveState state;
    state.name = objective.name;
    state.short_window =
        ComputeWindow(objective, options_.short_window_micros, now_micros);
    state.long_window =
        ComputeWindow(objective, options_.long_window_micros, now_micros);
    if (state.short_window.burn_rate >= options_.burning_burn_rate &&
        state.long_window.burn_rate >= options_.burning_burn_rate) {
      state.status = SloStatus::kBurning;
    } else if (state.short_window.burn_rate >= options_.warning_burn_rate) {
      state.status = SloStatus::kWarning;
    }
    if (static_cast<int>(state.status) > static_cast<int>(worst)) {
      worst = state.status;
    }

    gauges_[i].burn_short->Set(BurnMilli(state.short_window.burn_rate));
    gauges_[i].burn_long->Set(BurnMilli(state.long_window.burn_rate));
    gauges_[i].status->Set(static_cast<int64_t>(state.status));
    states.push_back(std::move(state));
  }
  worst_gauge_->Set(static_cast<int64_t>(worst));
  worst_status_.store(static_cast<int>(worst), std::memory_order_release);
  return states;
}

}  // namespace rased
