// Country Analysis — the paper's Example 1 (Section IV-A) end to end.
//
// "Find the number of newly created or modified element types (node, way,
// relation) for each country road network in 2021", visualized as the
// paper's Figure 2 (bar chart) and Figure 3 (pivot table), plus the
// choropleth world map.
//
// Runs at paper scale (305 zones) over a one-year synthetic history built
// through the fast cube path, so all the paper's example countries
// (Germany, Singapore, Qatar, ...) exist by name.

#include <cstdio>

#include "cache/cube_cache.h"
#include "dashboard/render.h"
#include "index/temporal_index.h"
#include "io/env.h"
#include "osm/road_types.h"
#include "query/query_executor.h"
#include "synth/cube_synthesizer.h"

using namespace rased;

int main() {
  TempDir workspace("rased-country-analysis");
  CubeSchema schema = CubeSchema::PaperScale();
  WorldMap world(schema.num_countries);
  RoadTypeTable roads(schema.num_road_types);

  // Build two years of daily cubes (2020-2021) directly — the bulk-load
  // path the paper uses for its evaluation.
  SynthOptions synth;
  synth.base_updates_per_day = 3000.0;
  synth.period = DateRange(Date::FromYmd(2021, 1, 1),
                           Date::FromYmd(2021, 12, 31));
  CubeSynthesizer synthesizer(synth, &world, schema);
  synthesizer.activity().InitRoadNetworkSizes(&world);

  TemporalIndexOptions index_options;
  index_options.schema = schema;
  index_options.dir = env::JoinPath(workspace.path(), "index");
  auto index = TemporalIndex::Create(index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("bulk-loading 2021 at paper scale (~426 x 4.4 MB cubes, about"
              " a minute)...\n");
  for (Date d = synth.period.first; d <= synth.period.last; d = d.next()) {
    Status s = index.value()->AppendDay(d, synthesizer.DayCube(d));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  CacheOptions cache_options;  // the deployment's (.4,.35,.2,.05) split
  cache_options.byte_budget = CacheOptions::BytesForCubes(64, schema);
  CubeCache cache(cache_options);
  if (!cache.Warm(index.value().get()).ok()) return 1;
  index.value()->pager()->ResetStats();
  QueryExecutor executor(index.value().get(), &cache, &world);

  // The paper's SQL:
  //   SELECT U.Country, U.ElementType, COUNT(*) FROM UpdateList U
  //   WHERE U.Date BETWEEN 2021-01-01 AND 2021-12-31
  //     AND U.UpdateType IN [New, Update]
  //   GROUP BY U.Country, U.ElementType
  AnalysisQuery query;
  query.range = DateRange(Date::FromYmd(2021, 1, 1),
                          Date::FromYmd(2021, 12, 31));
  query.update_types = {UpdateType::kNew, UpdateType::kGeometry,
                        UpdateType::kMetadata};
  query.group_country = true;
  query.group_element_type = true;
  query.group_update_type = true;

  auto result = executor.Execute(query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  RenderContext ctx{&world, &roads};
  std::printf("\n-- Figure 3 rendering: table format --\n\n%s\n",
              RenderCountryElementPivot(result.value(), ctx, 10).c_str());

  AnalysisQuery totals = query;
  totals.group_element_type = false;
  totals.group_update_type = false;
  auto total_result = executor.Execute(totals);
  if (!total_result.ok()) return 1;
  std::printf("-- Figure 2 rendering: bar chart --\n\n%s\n",
              RenderBarChart(total_result.value(), totals, ctx, 48, 10)
                  .c_str());

  std::printf("-- choropleth: 2021 update intensity --\n\n%s\n",
              RenderChoropleth(total_result.value(), ctx, 88, 24).c_str());

  std::printf("plan: %llu cubes, %llu from cache; response %.3f ms\n",
              static_cast<unsigned long long>(
                  result.value().stats.cubes_total),
              static_cast<unsigned long long>(
                  result.value().stats.cubes_from_cache),
              result.value().stats.total_micros() / 1000.0);
  return 0;
}
