// Quickstart: the smallest complete RASED program.
//
// Creates a RASED instance, ingests one month of OSM-format daily diff +
// changeset files through the real crawler pipeline, and runs an analysis
// query.
//
//   $ ./quickstart
//
// Everything runs in a temp directory and cleans up after itself.

#include <cstdio>

#include "core/rased.h"
#include "dashboard/render.h"
#include "io/env.h"
#include "synth/update_generator.h"

using namespace rased;

int main() {
  TempDir workspace("rased-quickstart");

  // 1. Configure and create the system. PaperScale gives the deployment's
  //    cube shape: 3 element types x 305 zones x 150 road types x 4 update
  //    types, ~4.4 MB per cube.
  RasedOptions options;
  options.dir = workspace.path();
  options.schema = CubeSchema::PaperScale();
  auto rased = Rased::Create(options);
  if (!rased.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 rased.status().ToString().c_str());
    return 1;
  }

  // 2. Ingest one month of daily diff + changeset files. Here they come
  //    from the synthetic planet; in production they would be the daily
  //    replication files from planet.openstreetmap.org.
  SynthOptions synth;
  synth.base_updates_per_day = 300.0;
  synth.period = DateRange(Date::FromYmd(2021, 6, 1),
                           Date::FromYmd(2021, 6, 30));
  UpdateGenerator generator(synth, &rased.value()->world(),
                            rased.value()->road_types());
  generator.activity().InitRoadNetworkSizes(rased.value()->mutable_world());

  std::printf("ingesting June 2021 (diff + changeset files)...\n");
  for (Date d = synth.period.first; d <= synth.period.last; d = d.next()) {
    DayArtifacts files = generator.GenerateDayArtifacts(d);
    Status s = rased.value()->IngestDailyArtifacts(d, files.osc_xml,
                                                   files.changesets_xml);
    if (!s.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!rased.value()->WarmCache().ok()) return 1;

  // 3. Ask a question: which countries changed the most this month?
  AnalysisQuery query;
  query.range = synth.period;
  query.group_country = true;
  auto result = rased.value()->Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  RenderContext ctx{&rased.value()->world(), rased.value()->road_types()};
  std::printf("\nroad-network updates by country, June 2021:\n\n%s\n",
              RenderTable(result.value(), query, ctx, TableSort::kCount, 10)
                  .c_str());
  std::printf("answered from %llu cube(s) in %.3f ms\n",
              static_cast<unsigned long long>(
                  result.value().stats.cubes_total),
              result.value().stats.total_micros() / 1000.0);
  return 0;
}
