// Dashboard server: RASED's web face (the equivalent of
// https://rased.cs.umn.edu for the synthetic planet).
//
// Builds a populated RASED instance and serves the HTML dashboard and the
// JSON API on localhost:
//
//   $ ./dashboard_server port=8080 serve_seconds=3600
//   then open http://127.0.0.1:8080/
//
// Defaults: ephemeral port, a short demo window so `make examples`-style
// batch runs terminate on their own. Pass serve_seconds=0 to run forever.

#include <cstdio>
#include <thread>

#include "core/rased.h"
#include "dashboard/dashboard_service.h"
#include "io/env.h"
#include "synth/update_generator.h"
#include "util/config.h"

using namespace rased;

int main(int argc, char** argv) {
  Config config;
  if (!config.ParseArgs(argc, argv).ok()) {
    std::fprintf(stderr, "usage: dashboard_server [port=N] "
                         "[serve_seconds=N] [base_rate=N]\n");
    return 1;
  }
  int port = static_cast<int>(config.GetInt("port", 0));
  int64_t serve_seconds = config.GetInt("serve_seconds", 15);

  TempDir workspace("rased-dashboard");
  RasedOptions options;
  options.dir = workspace.path();
  options.schema = CubeSchema::BenchScale();
  options.cache.byte_budget =
      CacheOptions::BytesForCubes(64, options.schema);
  auto rased = Rased::Create(options);
  if (!rased.ok()) {
    std::fprintf(stderr, "%s\n", rased.status().ToString().c_str());
    return 1;
  }

  SynthOptions synth;
  synth.base_updates_per_day = config.GetDouble("base_rate", 150.0);
  synth.period = DateRange(Date::FromYmd(2020, 1, 1),
                           Date::FromYmd(2021, 12, 31));
  UpdateGenerator gen(synth, &rased.value()->world(),
                      rased.value()->road_types());
  gen.activity().InitRoadNetworkSizes(rased.value()->mutable_world());
  std::printf("ingesting two years of synthetic history...\n");
  for (Date d = synth.period.first; d <= synth.period.last; d = d.next()) {
    Status s = rased.value()->IngestDayRecords(d, gen.GenerateDayRecords(d));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!rased.value()->WarmCache().ok()) return 1;

  DashboardService service(rased.value().get());
  Status s = service.Start(port);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nRASED dashboard: http://127.0.0.1:%d/\n", service.port());
  std::printf("  try: /api/query?from=2021-01-01&to=2021-12-31&group=country\n");
  std::printf("       /api/query?group=country&format=table\n");
  std::printf("       /api/stats  /api/zones\n");
  if (serve_seconds > 0) {
    std::printf("serving for %lld s (serve_seconds=0 to run forever)...\n",
                static_cast<long long>(serve_seconds));
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  } else {
    std::printf("serving until killed...\n");
    for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
  }
  service.Stop();
  return 0;
}
