// End-to-end pipeline walk-through: every moving part of RASED in one
// program, narrated.
//
//  1. the synthetic planet emits real OSM files onto disk
//     (daily .osc diffs + changeset XML, monthly full history);
//  2. the daily crawler ingests each day (provisional update types);
//  3. an analysis query shows the provisional statistics;
//  4. the monthly crawler reclassifies (create/delete/geometry/metadata);
//  5. sample update queries drill into concrete updates via the
//     warehouse's spatial and changeset indexes.

#include <cstdio>

#include "core/rased.h"
#include "dashboard/render.h"
#include "io/env.h"
#include "synth/update_generator.h"

using namespace rased;

int main() {
  TempDir workspace("rased-pipeline");
  std::string crawl_dir = env::JoinPath(workspace.path(), "crawl");
  if (!env::CreateDirs(crawl_dir).ok()) return 1;

  RasedOptions options;
  options.dir = env::JoinPath(workspace.path(), "rased");
  options.schema = CubeSchema::BenchScale();
  options.cache.byte_budget =
      CacheOptions::BytesForCubes(16, options.schema);
  auto rased = Rased::Create(options);
  if (!rased.ok()) return 1;
  Rased& system = *rased.value();

  SynthOptions synth;
  synth.base_updates_per_day = 200.0;
  Date month = Date::FromYmd(2021, 9, 1);
  synth.period = DateRange(month, month.month_end());
  UpdateGenerator gen(synth, &system.world(), system.road_types());
  gen.activity().InitRoadNetworkSizes(system.mutable_world());

  // --- 1+2: write the files a real deployment would download, crawl them.
  std::printf("[1] writing and crawling September 2021, day by day...\n");
  uint64_t total_updates = 0;
  for (Date d = month; d <= month.month_end(); d = d.next()) {
    DayArtifacts files = gen.GenerateDayArtifacts(d);
    std::string osc_path =
        env::JoinPath(crawl_dir, d.ToString() + ".osc");
    std::string cs_path =
        env::JoinPath(crawl_dir, d.ToString() + ".changesets.xml");
    if (!env::WriteFile(osc_path, files.osc_xml).ok()) return 1;
    if (!env::WriteFile(cs_path, files.changesets_xml).ok()) return 1;

    auto osc = env::ReadFile(osc_path);
    auto changesets = env::ReadFile(cs_path);
    if (!osc.ok() || !changesets.ok()) return 1;
    Status s =
        system.IngestDailyArtifacts(d, osc.value(), changesets.value());
    if (!s.ok()) {
      std::fprintf(stderr, "  %s: %s\n", d.ToString().c_str(),
                   s.ToString().c_str());
      return 1;
    }
    total_updates += system.warehouse()->num_records();
  }
  std::printf("    %llu updates in the warehouse\n",
              static_cast<unsigned long long>(
                  system.warehouse()->num_records()));
  if (!system.WarmCache().ok()) return 1;

  // --- 3: provisional statistics.
  RenderContext ctx{&system.world(), system.road_types()};
  AnalysisQuery by_type;
  by_type.range = synth.period;
  by_type.group_update_type = true;
  auto provisional = system.Query(by_type);
  if (!provisional.ok()) return 1;
  std::printf("\n[2] update types after daily crawls (provisional — diffs "
              "only know new vs update):\n\n%s\n",
              RenderTable(provisional.value(), by_type, ctx).c_str());

  // --- 4: monthly full-history pass.
  std::printf("[3] monthly crawler: full-history pass reclassifies...\n");
  MonthArtifacts monthly = gen.GenerateMonthArtifacts(month);
  Status s = system.ApplyMonthlyArtifacts(month, monthly.history_xml,
                                          monthly.changesets_xml);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto reclassified = system.Query(by_type);
  if (!reclassified.ok()) return 1;
  std::printf("\n    update types after the monthly rebuild:\n\n%s\n",
              RenderTable(reclassified.value(), by_type, ctx).c_str());

  // --- 5: sample update queries (Section IV-B).
  ZoneId germany = system.CountryId("Germany").value_or(kZoneUnknown);
  const Zone& zone = system.world().zone(germany);
  auto samples = system.SampleInBox(zone.bounds, 5);
  if (!samples.ok()) return 1;
  std::printf("[4] sample updates inside %s's bounding box (N=5):\n",
              zone.name.c_str());
  for (const UpdateRecord& r : samples.value()) {
    std::printf("    %s\n", r.ToString().c_str());
  }
  if (!samples.value().empty()) {
    uint64_t cs = samples.value()[0].changeset_id;
    auto by_changeset = system.SampleByChangeset(cs);
    if (!by_changeset.ok()) return 1;
    std::printf("    changeset %llu holds %zu update(s) "
                "(hash-index lookup)\n",
                static_cast<unsigned long long>(cs),
                by_changeset.value().size());
  }

  std::printf("\npipeline complete.\n");
  return 0;
}
