// Road Type Analysis and Comparative Time Series — the paper's Examples 2
// and 3 (Section IV-A), including Figure 5's percentage series for
// Germany, Singapore and Qatar, and a timelapse rendering.
//
// Uses the paper-scale world (so Singapore and Qatar exist) over an
// 18-month history at a reduced cube width for speed: the RoadType
// dimension is trimmed to 40 — plenty for the taxonomy the charts show.

#include <cstdio>

#include "cache/cube_cache.h"
#include "dashboard/render.h"
#include "index/temporal_index.h"
#include "io/env.h"
#include "osm/road_types.h"
#include "query/query_executor.h"
#include "synth/cube_synthesizer.h"

using namespace rased;

int main() {
  TempDir workspace("rased-examples23");
  CubeSchema schema{3, 305, 40, 4};
  WorldMap world(schema.num_countries);
  RoadTypeTable roads(schema.num_road_types);

  SynthOptions synth;
  synth.base_updates_per_day = 4000.0;
  synth.period = DateRange(Date::FromYmd(2020, 7, 1),
                           Date::FromYmd(2021, 12, 31));
  CubeSynthesizer synthesizer(synth, &world, schema);
  synthesizer.activity().InitRoadNetworkSizes(&world);

  TemporalIndexOptions index_options;
  index_options.schema = schema;
  index_options.dir = env::JoinPath(workspace.path(), "index");
  auto index = TemporalIndex::Create(index_options);
  if (!index.ok()) return 1;
  std::printf("bulk-loading Jul 2020 .. Dec 2021...\n");
  for (Date d = synth.period.first; d <= synth.period.last; d = d.next()) {
    if (!index.value()->AppendDay(d, synthesizer.DayCube(d)).ok()) return 1;
  }

  CacheOptions cache_options;
  cache_options.byte_budget = CacheOptions::BytesForCubes(128, schema);
  CubeCache cache(cache_options);
  if (!cache.Warm(index.value().get()).ok()) return 1;
  index.value()->pager()->ResetStats();
  QueryExecutor executor(index.value().get(), &cache, &world);
  RenderContext ctx{&world, &roads};

  // ---- Example 2: road types edited in the USA ----
  //   SELECT U.RoadType, U.ElementType, COUNT(*) FROM UpdateList U
  //   WHERE U.Date AFTER 2018-01-01 AND U.Country = USA
  //     AND U.UpdateType IN [New, Update]
  //   GROUP BY U.RoadType, U.ElementType
  AnalysisQuery roadtype_query;
  roadtype_query.range = synth.period;  // history starts after 2018 anyway
  roadtype_query.countries = {world.FindByName("United States").value()};
  roadtype_query.update_types = {UpdateType::kNew, UpdateType::kGeometry,
                                 UpdateType::kMetadata};
  roadtype_query.group_road_type = true;
  auto roadtype_result = executor.Execute(roadtype_query);
  if (!roadtype_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 roadtype_result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n-- Example 2 / Figure 4: USA updates by road type --\n\n%s\n",
              RenderBarChart(roadtype_result.value(), roadtype_query, ctx,
                             48, 12)
                  .c_str());

  // ---- Example 3: comparative percentage time series ----
  //   SELECT U.Country, U.Date, Percentage(*) FROM UpdateList U
  //   WHERE U.Date BETWEEN 2020-01-01 AND 2021-12-31
  //     AND U.Country IN [Germany, Singapore, Qatar]
  //   GROUP BY U.Country, U.Date
  AnalysisQuery series_query;
  series_query.range = synth.period;
  series_query.countries = {world.FindByName("Germany").value(),
                            world.FindByName("Singapore").value(),
                            world.FindByName("Qatar").value()};
  series_query.group_country = true;
  series_query.group_date = true;
  series_query.percentage = true;
  auto series_result = executor.Execute(series_query);
  if (!series_result.ok()) {
    std::fprintf(stderr, "%s\n", series_result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "-- Example 3 / Figure 5: %% daily change, Germany vs Singapore vs "
      "Qatar --\n\n%s\n",
      RenderTimeSeries(series_result.value(), series_query, ctx, 90, 16)
          .c_str());

  // ---- Timelapse: the terminal version of RASED's evolution video ----
  AnalysisQuery lapse = series_query;
  lapse.percentage = false;
  lapse.countries.clear();  // whole world
  auto lapse_result = executor.Execute(lapse);
  if (!lapse_result.ok()) return 1;
  auto frames = RenderTimelapse(lapse_result.value(), ctx, 72, 16);
  std::printf("-- timelapse: first and last monthly frames (%zu total) --\n\n",
              frames.size());
  if (!frames.empty()) {
    std::printf("%s\n%s\n", frames.front().c_str(), frames.back().c_str());
  }

  std::printf("example 2 stats: %llu cubes, %.3f ms; example 3 stats: %llu "
              "cubes, %.3f ms\n",
              static_cast<unsigned long long>(
                  roadtype_result.value().stats.cubes_total),
              roadtype_result.value().stats.total_micros() / 1000.0,
              static_cast<unsigned long long>(
                  series_result.value().stats.cubes_total),
              series_result.value().stats.total_micros() / 1000.0);
  return 0;
}
