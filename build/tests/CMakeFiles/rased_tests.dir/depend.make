# Empty dependencies file for rased_tests.
# This may be replaced when dependencies are built.
