
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/cube_cache_test.cc" "tests/CMakeFiles/rased_tests.dir/cache/cube_cache_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/cache/cube_cache_test.cc.o.d"
  "/root/repo/tests/cli/cli_test.cc" "tests/CMakeFiles/rased_tests.dir/cli/cli_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/cli/cli_test.cc.o.d"
  "/root/repo/tests/collect/changeset_store_test.cc" "tests/CMakeFiles/rased_tests.dir/collect/changeset_store_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/collect/changeset_store_test.cc.o.d"
  "/root/repo/tests/collect/daily_crawler_test.cc" "tests/CMakeFiles/rased_tests.dir/collect/daily_crawler_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/collect/daily_crawler_test.cc.o.d"
  "/root/repo/tests/collect/monthly_crawler_test.cc" "tests/CMakeFiles/rased_tests.dir/collect/monthly_crawler_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/collect/monthly_crawler_test.cc.o.d"
  "/root/repo/tests/collect/replication_test.cc" "tests/CMakeFiles/rased_tests.dir/collect/replication_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/collect/replication_test.cc.o.d"
  "/root/repo/tests/collect/update_list_file_test.cc" "tests/CMakeFiles/rased_tests.dir/collect/update_list_file_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/collect/update_list_file_test.cc.o.d"
  "/root/repo/tests/collect/update_record_test.cc" "tests/CMakeFiles/rased_tests.dir/collect/update_record_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/collect/update_record_test.cc.o.d"
  "/root/repo/tests/cube/cube_schema_test.cc" "tests/CMakeFiles/rased_tests.dir/cube/cube_schema_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/cube/cube_schema_test.cc.o.d"
  "/root/repo/tests/cube/data_cube_test.cc" "tests/CMakeFiles/rased_tests.dir/cube/data_cube_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/cube/data_cube_test.cc.o.d"
  "/root/repo/tests/dashboard/dashboard_service_test.cc" "tests/CMakeFiles/rased_tests.dir/dashboard/dashboard_service_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/dashboard/dashboard_service_test.cc.o.d"
  "/root/repo/tests/dashboard/http_server_test.cc" "tests/CMakeFiles/rased_tests.dir/dashboard/http_server_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/dashboard/http_server_test.cc.o.d"
  "/root/repo/tests/dashboard/json_writer_test.cc" "tests/CMakeFiles/rased_tests.dir/dashboard/json_writer_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/dashboard/json_writer_test.cc.o.d"
  "/root/repo/tests/dashboard/render_test.cc" "tests/CMakeFiles/rased_tests.dir/dashboard/render_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/dashboard/render_test.cc.o.d"
  "/root/repo/tests/dbms/baseline_dbms_test.cc" "tests/CMakeFiles/rased_tests.dir/dbms/baseline_dbms_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/dbms/baseline_dbms_test.cc.o.d"
  "/root/repo/tests/geo/latlon_test.cc" "tests/CMakeFiles/rased_tests.dir/geo/latlon_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/geo/latlon_test.cc.o.d"
  "/root/repo/tests/geo/rtree_test.cc" "tests/CMakeFiles/rased_tests.dir/geo/rtree_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/geo/rtree_test.cc.o.d"
  "/root/repo/tests/geo/world_map_test.cc" "tests/CMakeFiles/rased_tests.dir/geo/world_map_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/geo/world_map_test.cc.o.d"
  "/root/repo/tests/index/cube_builder_test.cc" "tests/CMakeFiles/rased_tests.dir/index/cube_builder_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/index/cube_builder_test.cc.o.d"
  "/root/repo/tests/index/index_consistency_test.cc" "tests/CMakeFiles/rased_tests.dir/index/index_consistency_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/index/index_consistency_test.cc.o.d"
  "/root/repo/tests/index/temporal_index_test.cc" "tests/CMakeFiles/rased_tests.dir/index/temporal_index_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/index/temporal_index_test.cc.o.d"
  "/root/repo/tests/index/temporal_key_test.cc" "tests/CMakeFiles/rased_tests.dir/index/temporal_key_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/index/temporal_key_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/rased_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/replication_ingestor_test.cc" "tests/CMakeFiles/rased_tests.dir/integration/replication_ingestor_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/integration/replication_ingestor_test.cc.o.d"
  "/root/repo/tests/io/crc32c_test.cc" "tests/CMakeFiles/rased_tests.dir/io/crc32c_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/io/crc32c_test.cc.o.d"
  "/root/repo/tests/io/env_test.cc" "tests/CMakeFiles/rased_tests.dir/io/env_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/io/env_test.cc.o.d"
  "/root/repo/tests/io/page_file_test.cc" "tests/CMakeFiles/rased_tests.dir/io/page_file_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/io/page_file_test.cc.o.d"
  "/root/repo/tests/io/pager_test.cc" "tests/CMakeFiles/rased_tests.dir/io/pager_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/io/pager_test.cc.o.d"
  "/root/repo/tests/osm/changeset_test.cc" "tests/CMakeFiles/rased_tests.dir/osm/changeset_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/osm/changeset_test.cc.o.d"
  "/root/repo/tests/osm/element_test.cc" "tests/CMakeFiles/rased_tests.dir/osm/element_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/osm/element_test.cc.o.d"
  "/root/repo/tests/osm/history_test.cc" "tests/CMakeFiles/rased_tests.dir/osm/history_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/osm/history_test.cc.o.d"
  "/root/repo/tests/osm/osc_test.cc" "tests/CMakeFiles/rased_tests.dir/osm/osc_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/osm/osc_test.cc.o.d"
  "/root/repo/tests/osm/road_types_test.cc" "tests/CMakeFiles/rased_tests.dir/osm/road_types_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/osm/road_types_test.cc.o.d"
  "/root/repo/tests/query/executor_brute_force_test.cc" "tests/CMakeFiles/rased_tests.dir/query/executor_brute_force_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/query/executor_brute_force_test.cc.o.d"
  "/root/repo/tests/query/level_optimizer_test.cc" "tests/CMakeFiles/rased_tests.dir/query/level_optimizer_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/query/level_optimizer_test.cc.o.d"
  "/root/repo/tests/query/query_executor_test.cc" "tests/CMakeFiles/rased_tests.dir/query/query_executor_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/query/query_executor_test.cc.o.d"
  "/root/repo/tests/query/sql_parser_test.cc" "tests/CMakeFiles/rased_tests.dir/query/sql_parser_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/query/sql_parser_test.cc.o.d"
  "/root/repo/tests/synth/activity_model_test.cc" "tests/CMakeFiles/rased_tests.dir/synth/activity_model_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/synth/activity_model_test.cc.o.d"
  "/root/repo/tests/synth/cube_synthesizer_test.cc" "tests/CMakeFiles/rased_tests.dir/synth/cube_synthesizer_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/synth/cube_synthesizer_test.cc.o.d"
  "/root/repo/tests/synth/update_generator_test.cc" "tests/CMakeFiles/rased_tests.dir/synth/update_generator_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/synth/update_generator_test.cc.o.d"
  "/root/repo/tests/util/config_test.cc" "tests/CMakeFiles/rased_tests.dir/util/config_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/util/config_test.cc.o.d"
  "/root/repo/tests/util/date_test.cc" "tests/CMakeFiles/rased_tests.dir/util/date_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/util/date_test.cc.o.d"
  "/root/repo/tests/util/random_test.cc" "tests/CMakeFiles/rased_tests.dir/util/random_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/util/random_test.cc.o.d"
  "/root/repo/tests/util/result_test.cc" "tests/CMakeFiles/rased_tests.dir/util/result_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/util/result_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/rased_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/str_util_test.cc" "tests/CMakeFiles/rased_tests.dir/util/str_util_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/util/str_util_test.cc.o.d"
  "/root/repo/tests/warehouse/warehouse_test.cc" "tests/CMakeFiles/rased_tests.dir/warehouse/warehouse_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/warehouse/warehouse_test.cc.o.d"
  "/root/repo/tests/xml/xml_fuzz_test.cc" "tests/CMakeFiles/rased_tests.dir/xml/xml_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/xml/xml_fuzz_test.cc.o.d"
  "/root/repo/tests/xml/xml_reader_test.cc" "tests/CMakeFiles/rased_tests.dir/xml/xml_reader_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/xml/xml_reader_test.cc.o.d"
  "/root/repo/tests/xml/xml_writer_test.cc" "tests/CMakeFiles/rased_tests.dir/xml/xml_writer_test.cc.o" "gcc" "tests/CMakeFiles/rased_tests.dir/xml/xml_writer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/rased_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/dashboard/CMakeFiles/rased_dashboard.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rased_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dbms/CMakeFiles/rased_dbms.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/rased_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/rased_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/rased_query.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rased_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/rased_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/rased_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/rased_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rased_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/osm/CMakeFiles/rased_osm.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/rased_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rased_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rased_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
