file(REMOVE_RECURSE
  "CMakeFiles/dashboard_server.dir/dashboard_server.cc.o"
  "CMakeFiles/dashboard_server.dir/dashboard_server.cc.o.d"
  "dashboard_server"
  "dashboard_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dashboard_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
