# Empty dependencies file for dashboard_server.
# This may be replaced when dependencies are built.
