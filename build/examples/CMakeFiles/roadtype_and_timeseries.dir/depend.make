# Empty dependencies file for roadtype_and_timeseries.
# This may be replaced when dependencies are built.
