file(REMOVE_RECURSE
  "CMakeFiles/roadtype_and_timeseries.dir/roadtype_and_timeseries.cc.o"
  "CMakeFiles/roadtype_and_timeseries.dir/roadtype_and_timeseries.cc.o.d"
  "roadtype_and_timeseries"
  "roadtype_and_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadtype_and_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
