
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/end_to_end_pipeline.cc" "examples/CMakeFiles/end_to_end_pipeline.dir/end_to_end_pipeline.cc.o" "gcc" "examples/CMakeFiles/end_to_end_pipeline.dir/end_to_end_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dashboard/CMakeFiles/rased_dashboard.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rased_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/rased_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/dbms/CMakeFiles/rased_dbms.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/rased_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/rased_query.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rased_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/rased_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/rased_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/rased_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rased_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/osm/CMakeFiles/rased_osm.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/rased_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rased_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rased_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
