file(REMOVE_RECURSE
  "CMakeFiles/end_to_end_pipeline.dir/end_to_end_pipeline.cc.o"
  "CMakeFiles/end_to_end_pipeline.dir/end_to_end_pipeline.cc.o.d"
  "end_to_end_pipeline"
  "end_to_end_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
