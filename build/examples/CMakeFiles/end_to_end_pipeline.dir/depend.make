# Empty dependencies file for end_to_end_pipeline.
# This may be replaced when dependencies are built.
