file(REMOVE_RECURSE
  "CMakeFiles/country_analysis.dir/country_analysis.cc.o"
  "CMakeFiles/country_analysis.dir/country_analysis.cc.o.d"
  "country_analysis"
  "country_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/country_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
