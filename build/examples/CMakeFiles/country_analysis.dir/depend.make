# Empty dependencies file for country_analysis.
# This may be replaced when dependencies are built.
