# Empty compiler generated dependencies file for rased_query.
# This may be replaced when dependencies are built.
