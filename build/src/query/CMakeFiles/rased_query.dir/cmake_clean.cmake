file(REMOVE_RECURSE
  "CMakeFiles/rased_query.dir/analysis_query.cc.o"
  "CMakeFiles/rased_query.dir/analysis_query.cc.o.d"
  "CMakeFiles/rased_query.dir/level_optimizer.cc.o"
  "CMakeFiles/rased_query.dir/level_optimizer.cc.o.d"
  "CMakeFiles/rased_query.dir/query_executor.cc.o"
  "CMakeFiles/rased_query.dir/query_executor.cc.o.d"
  "CMakeFiles/rased_query.dir/sql_parser.cc.o"
  "CMakeFiles/rased_query.dir/sql_parser.cc.o.d"
  "librased_query.a"
  "librased_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
