file(REMOVE_RECURSE
  "librased_query.a"
)
