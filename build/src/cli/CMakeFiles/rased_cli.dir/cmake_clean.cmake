file(REMOVE_RECURSE
  "CMakeFiles/rased_cli.dir/cli.cc.o"
  "CMakeFiles/rased_cli.dir/cli.cc.o.d"
  "librased_cli.a"
  "librased_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
