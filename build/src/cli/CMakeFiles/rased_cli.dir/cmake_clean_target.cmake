file(REMOVE_RECURSE
  "librased_cli.a"
)
