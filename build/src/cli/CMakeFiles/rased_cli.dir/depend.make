# Empty dependencies file for rased_cli.
# This may be replaced when dependencies are built.
