file(REMOVE_RECURSE
  "librased_geo.a"
)
