file(REMOVE_RECURSE
  "CMakeFiles/rased_geo.dir/latlon.cc.o"
  "CMakeFiles/rased_geo.dir/latlon.cc.o.d"
  "CMakeFiles/rased_geo.dir/rtree.cc.o"
  "CMakeFiles/rased_geo.dir/rtree.cc.o.d"
  "CMakeFiles/rased_geo.dir/world_map.cc.o"
  "CMakeFiles/rased_geo.dir/world_map.cc.o.d"
  "librased_geo.a"
  "librased_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
