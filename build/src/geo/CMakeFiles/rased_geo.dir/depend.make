# Empty dependencies file for rased_geo.
# This may be replaced when dependencies are built.
