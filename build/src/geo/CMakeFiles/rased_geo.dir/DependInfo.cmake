
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/latlon.cc" "src/geo/CMakeFiles/rased_geo.dir/latlon.cc.o" "gcc" "src/geo/CMakeFiles/rased_geo.dir/latlon.cc.o.d"
  "/root/repo/src/geo/rtree.cc" "src/geo/CMakeFiles/rased_geo.dir/rtree.cc.o" "gcc" "src/geo/CMakeFiles/rased_geo.dir/rtree.cc.o.d"
  "/root/repo/src/geo/world_map.cc" "src/geo/CMakeFiles/rased_geo.dir/world_map.cc.o" "gcc" "src/geo/CMakeFiles/rased_geo.dir/world_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rased_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
