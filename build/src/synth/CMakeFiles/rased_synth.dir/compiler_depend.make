# Empty compiler generated dependencies file for rased_synth.
# This may be replaced when dependencies are built.
