file(REMOVE_RECURSE
  "librased_synth.a"
)
