file(REMOVE_RECURSE
  "CMakeFiles/rased_synth.dir/activity_model.cc.o"
  "CMakeFiles/rased_synth.dir/activity_model.cc.o.d"
  "CMakeFiles/rased_synth.dir/cube_synthesizer.cc.o"
  "CMakeFiles/rased_synth.dir/cube_synthesizer.cc.o.d"
  "CMakeFiles/rased_synth.dir/update_generator.cc.o"
  "CMakeFiles/rased_synth.dir/update_generator.cc.o.d"
  "librased_synth.a"
  "librased_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
