file(REMOVE_RECURSE
  "CMakeFiles/rased_dashboard.dir/dashboard_service.cc.o"
  "CMakeFiles/rased_dashboard.dir/dashboard_service.cc.o.d"
  "CMakeFiles/rased_dashboard.dir/http_server.cc.o"
  "CMakeFiles/rased_dashboard.dir/http_server.cc.o.d"
  "CMakeFiles/rased_dashboard.dir/json_writer.cc.o"
  "CMakeFiles/rased_dashboard.dir/json_writer.cc.o.d"
  "CMakeFiles/rased_dashboard.dir/render.cc.o"
  "CMakeFiles/rased_dashboard.dir/render.cc.o.d"
  "librased_dashboard.a"
  "librased_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
