file(REMOVE_RECURSE
  "librased_dashboard.a"
)
