# Empty compiler generated dependencies file for rased_dashboard.
# This may be replaced when dependencies are built.
