# Empty compiler generated dependencies file for rased_index.
# This may be replaced when dependencies are built.
