file(REMOVE_RECURSE
  "librased_index.a"
)
