file(REMOVE_RECURSE
  "CMakeFiles/rased_index.dir/cube_builder.cc.o"
  "CMakeFiles/rased_index.dir/cube_builder.cc.o.d"
  "CMakeFiles/rased_index.dir/temporal_index.cc.o"
  "CMakeFiles/rased_index.dir/temporal_index.cc.o.d"
  "CMakeFiles/rased_index.dir/temporal_key.cc.o"
  "CMakeFiles/rased_index.dir/temporal_key.cc.o.d"
  "librased_index.a"
  "librased_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
