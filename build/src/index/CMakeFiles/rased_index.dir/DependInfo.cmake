
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/cube_builder.cc" "src/index/CMakeFiles/rased_index.dir/cube_builder.cc.o" "gcc" "src/index/CMakeFiles/rased_index.dir/cube_builder.cc.o.d"
  "/root/repo/src/index/temporal_index.cc" "src/index/CMakeFiles/rased_index.dir/temporal_index.cc.o" "gcc" "src/index/CMakeFiles/rased_index.dir/temporal_index.cc.o.d"
  "/root/repo/src/index/temporal_key.cc" "src/index/CMakeFiles/rased_index.dir/temporal_key.cc.o" "gcc" "src/index/CMakeFiles/rased_index.dir/temporal_key.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cube/CMakeFiles/rased_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rased_io.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/rased_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rased_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rased_util.dir/DependInfo.cmake"
  "/root/repo/build/src/osm/CMakeFiles/rased_osm.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/rased_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
