file(REMOVE_RECURSE
  "CMakeFiles/rased_xml.dir/xml_reader.cc.o"
  "CMakeFiles/rased_xml.dir/xml_reader.cc.o.d"
  "CMakeFiles/rased_xml.dir/xml_writer.cc.o"
  "CMakeFiles/rased_xml.dir/xml_writer.cc.o.d"
  "librased_xml.a"
  "librased_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
