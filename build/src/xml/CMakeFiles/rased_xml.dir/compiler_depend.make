# Empty compiler generated dependencies file for rased_xml.
# This may be replaced when dependencies are built.
