file(REMOVE_RECURSE
  "librased_xml.a"
)
