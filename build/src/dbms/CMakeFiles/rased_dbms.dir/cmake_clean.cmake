file(REMOVE_RECURSE
  "CMakeFiles/rased_dbms.dir/baseline_dbms.cc.o"
  "CMakeFiles/rased_dbms.dir/baseline_dbms.cc.o.d"
  "CMakeFiles/rased_dbms.dir/buffer_pool.cc.o"
  "CMakeFiles/rased_dbms.dir/buffer_pool.cc.o.d"
  "librased_dbms.a"
  "librased_dbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_dbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
