file(REMOVE_RECURSE
  "librased_dbms.a"
)
