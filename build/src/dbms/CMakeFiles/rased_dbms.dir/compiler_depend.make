# Empty compiler generated dependencies file for rased_dbms.
# This may be replaced when dependencies are built.
