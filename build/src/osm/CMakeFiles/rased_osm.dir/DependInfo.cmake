
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osm/changeset.cc" "src/osm/CMakeFiles/rased_osm.dir/changeset.cc.o" "gcc" "src/osm/CMakeFiles/rased_osm.dir/changeset.cc.o.d"
  "/root/repo/src/osm/element.cc" "src/osm/CMakeFiles/rased_osm.dir/element.cc.o" "gcc" "src/osm/CMakeFiles/rased_osm.dir/element.cc.o.d"
  "/root/repo/src/osm/element_xml.cc" "src/osm/CMakeFiles/rased_osm.dir/element_xml.cc.o" "gcc" "src/osm/CMakeFiles/rased_osm.dir/element_xml.cc.o.d"
  "/root/repo/src/osm/history.cc" "src/osm/CMakeFiles/rased_osm.dir/history.cc.o" "gcc" "src/osm/CMakeFiles/rased_osm.dir/history.cc.o.d"
  "/root/repo/src/osm/osc.cc" "src/osm/CMakeFiles/rased_osm.dir/osc.cc.o" "gcc" "src/osm/CMakeFiles/rased_osm.dir/osc.cc.o.d"
  "/root/repo/src/osm/road_types.cc" "src/osm/CMakeFiles/rased_osm.dir/road_types.cc.o" "gcc" "src/osm/CMakeFiles/rased_osm.dir/road_types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rased_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/rased_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
