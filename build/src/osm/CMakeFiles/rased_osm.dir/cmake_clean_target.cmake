file(REMOVE_RECURSE
  "librased_osm.a"
)
