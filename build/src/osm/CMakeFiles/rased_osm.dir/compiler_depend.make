# Empty compiler generated dependencies file for rased_osm.
# This may be replaced when dependencies are built.
