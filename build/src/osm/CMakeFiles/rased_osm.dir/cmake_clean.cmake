file(REMOVE_RECURSE
  "CMakeFiles/rased_osm.dir/changeset.cc.o"
  "CMakeFiles/rased_osm.dir/changeset.cc.o.d"
  "CMakeFiles/rased_osm.dir/element.cc.o"
  "CMakeFiles/rased_osm.dir/element.cc.o.d"
  "CMakeFiles/rased_osm.dir/element_xml.cc.o"
  "CMakeFiles/rased_osm.dir/element_xml.cc.o.d"
  "CMakeFiles/rased_osm.dir/history.cc.o"
  "CMakeFiles/rased_osm.dir/history.cc.o.d"
  "CMakeFiles/rased_osm.dir/osc.cc.o"
  "CMakeFiles/rased_osm.dir/osc.cc.o.d"
  "CMakeFiles/rased_osm.dir/road_types.cc.o"
  "CMakeFiles/rased_osm.dir/road_types.cc.o.d"
  "librased_osm.a"
  "librased_osm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_osm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
