file(REMOVE_RECURSE
  "CMakeFiles/rased_cube.dir/cube_schema.cc.o"
  "CMakeFiles/rased_cube.dir/cube_schema.cc.o.d"
  "CMakeFiles/rased_cube.dir/data_cube.cc.o"
  "CMakeFiles/rased_cube.dir/data_cube.cc.o.d"
  "librased_cube.a"
  "librased_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
