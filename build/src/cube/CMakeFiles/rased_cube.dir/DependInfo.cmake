
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cube/cube_schema.cc" "src/cube/CMakeFiles/rased_cube.dir/cube_schema.cc.o" "gcc" "src/cube/CMakeFiles/rased_cube.dir/cube_schema.cc.o.d"
  "/root/repo/src/cube/data_cube.cc" "src/cube/CMakeFiles/rased_cube.dir/data_cube.cc.o" "gcc" "src/cube/CMakeFiles/rased_cube.dir/data_cube.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rased_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
