file(REMOVE_RECURSE
  "librased_cube.a"
)
