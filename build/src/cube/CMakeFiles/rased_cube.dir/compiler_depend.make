# Empty compiler generated dependencies file for rased_cube.
# This may be replaced when dependencies are built.
