file(REMOVE_RECURSE
  "librased_io.a"
)
