# Empty dependencies file for rased_io.
# This may be replaced when dependencies are built.
