file(REMOVE_RECURSE
  "CMakeFiles/rased_io.dir/crc32c.cc.o"
  "CMakeFiles/rased_io.dir/crc32c.cc.o.d"
  "CMakeFiles/rased_io.dir/env.cc.o"
  "CMakeFiles/rased_io.dir/env.cc.o.d"
  "CMakeFiles/rased_io.dir/page_file.cc.o"
  "CMakeFiles/rased_io.dir/page_file.cc.o.d"
  "CMakeFiles/rased_io.dir/pager.cc.o"
  "CMakeFiles/rased_io.dir/pager.cc.o.d"
  "librased_io.a"
  "librased_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
