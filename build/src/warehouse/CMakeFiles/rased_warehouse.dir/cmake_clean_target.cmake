file(REMOVE_RECURSE
  "librased_warehouse.a"
)
