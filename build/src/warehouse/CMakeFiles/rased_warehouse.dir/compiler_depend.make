# Empty compiler generated dependencies file for rased_warehouse.
# This may be replaced when dependencies are built.
