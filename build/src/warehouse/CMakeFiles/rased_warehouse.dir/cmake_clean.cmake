file(REMOVE_RECURSE
  "CMakeFiles/rased_warehouse.dir/warehouse.cc.o"
  "CMakeFiles/rased_warehouse.dir/warehouse.cc.o.d"
  "librased_warehouse.a"
  "librased_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
