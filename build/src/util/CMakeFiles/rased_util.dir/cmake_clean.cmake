file(REMOVE_RECURSE
  "CMakeFiles/rased_util.dir/config.cc.o"
  "CMakeFiles/rased_util.dir/config.cc.o.d"
  "CMakeFiles/rased_util.dir/date.cc.o"
  "CMakeFiles/rased_util.dir/date.cc.o.d"
  "CMakeFiles/rased_util.dir/logging.cc.o"
  "CMakeFiles/rased_util.dir/logging.cc.o.d"
  "CMakeFiles/rased_util.dir/random.cc.o"
  "CMakeFiles/rased_util.dir/random.cc.o.d"
  "CMakeFiles/rased_util.dir/status.cc.o"
  "CMakeFiles/rased_util.dir/status.cc.o.d"
  "CMakeFiles/rased_util.dir/str_util.cc.o"
  "CMakeFiles/rased_util.dir/str_util.cc.o.d"
  "librased_util.a"
  "librased_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
