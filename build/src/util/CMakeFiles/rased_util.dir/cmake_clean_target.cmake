file(REMOVE_RECURSE
  "librased_util.a"
)
