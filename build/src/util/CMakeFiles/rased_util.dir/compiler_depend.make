# Empty compiler generated dependencies file for rased_util.
# This may be replaced when dependencies are built.
