# Empty compiler generated dependencies file for rased_cache.
# This may be replaced when dependencies are built.
