file(REMOVE_RECURSE
  "CMakeFiles/rased_cache.dir/cube_cache.cc.o"
  "CMakeFiles/rased_cache.dir/cube_cache.cc.o.d"
  "librased_cache.a"
  "librased_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
