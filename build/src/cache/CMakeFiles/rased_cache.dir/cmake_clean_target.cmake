file(REMOVE_RECURSE
  "librased_cache.a"
)
