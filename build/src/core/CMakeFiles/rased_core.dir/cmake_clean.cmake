file(REMOVE_RECURSE
  "CMakeFiles/rased_core.dir/rased.cc.o"
  "CMakeFiles/rased_core.dir/rased.cc.o.d"
  "CMakeFiles/rased_core.dir/replication_ingestor.cc.o"
  "CMakeFiles/rased_core.dir/replication_ingestor.cc.o.d"
  "librased_core.a"
  "librased_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
