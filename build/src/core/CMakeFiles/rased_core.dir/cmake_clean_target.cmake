file(REMOVE_RECURSE
  "librased_core.a"
)
