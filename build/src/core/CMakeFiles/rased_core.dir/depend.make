# Empty dependencies file for rased_core.
# This may be replaced when dependencies are built.
