file(REMOVE_RECURSE
  "librased_collect.a"
)
