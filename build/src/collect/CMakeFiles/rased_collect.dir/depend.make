# Empty dependencies file for rased_collect.
# This may be replaced when dependencies are built.
