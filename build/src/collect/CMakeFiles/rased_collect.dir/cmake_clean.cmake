file(REMOVE_RECURSE
  "CMakeFiles/rased_collect.dir/changeset_store.cc.o"
  "CMakeFiles/rased_collect.dir/changeset_store.cc.o.d"
  "CMakeFiles/rased_collect.dir/daily_crawler.cc.o"
  "CMakeFiles/rased_collect.dir/daily_crawler.cc.o.d"
  "CMakeFiles/rased_collect.dir/monthly_crawler.cc.o"
  "CMakeFiles/rased_collect.dir/monthly_crawler.cc.o.d"
  "CMakeFiles/rased_collect.dir/replication.cc.o"
  "CMakeFiles/rased_collect.dir/replication.cc.o.d"
  "CMakeFiles/rased_collect.dir/update_list_file.cc.o"
  "CMakeFiles/rased_collect.dir/update_list_file.cc.o.d"
  "CMakeFiles/rased_collect.dir/update_record.cc.o"
  "CMakeFiles/rased_collect.dir/update_record.cc.o.d"
  "librased_collect.a"
  "librased_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
