# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("io")
subdirs("xml")
subdirs("osm")
subdirs("geo")
subdirs("synth")
subdirs("collect")
subdirs("cube")
subdirs("index")
subdirs("cache")
subdirs("query")
subdirs("warehouse")
subdirs("dbms")
subdirs("core")
subdirs("dashboard")
subdirs("cli")
