# Empty dependencies file for rased_cli_bin.
# This may be replaced when dependencies are built.
