file(REMOVE_RECURSE
  "CMakeFiles/rased_cli_bin.dir/rased_cli.cc.o"
  "CMakeFiles/rased_cli_bin.dir/rased_cli.cc.o.d"
  "rased"
  "rased.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_cli_bin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
