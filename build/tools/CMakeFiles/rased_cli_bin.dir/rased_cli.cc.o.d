tools/CMakeFiles/rased_cli_bin.dir/rased_cli.cc.o: \
 /root/repo/tools/rased_cli.cc /usr/include/stdc-predef.h \
 /root/repo/src/cli/../cli/cli.h
