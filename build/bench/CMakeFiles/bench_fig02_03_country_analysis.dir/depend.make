# Empty dependencies file for bench_fig02_03_country_analysis.
# This may be replaced when dependencies are built.
