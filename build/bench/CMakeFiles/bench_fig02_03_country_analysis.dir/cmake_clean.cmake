file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_03_country_analysis.dir/bench_fig02_03_country_analysis.cc.o"
  "CMakeFiles/bench_fig02_03_country_analysis.dir/bench_fig02_03_country_analysis.cc.o.d"
  "bench_fig02_03_country_analysis"
  "bench_fig02_03_country_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_03_country_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
