# Empty compiler generated dependencies file for bench_fig05_timeseries.
# This may be replaced when dependencies are built.
