# Empty dependencies file for rased_bench_common.
# This may be replaced when dependencies are built.
