file(REMOVE_RECURSE
  "../lib/librased_bench_common.a"
  "../lib/librased_bench_common.pdb"
  "CMakeFiles/rased_bench_common.dir/common/bench_common.cc.o"
  "CMakeFiles/rased_bench_common.dir/common/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rased_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
