file(REMOVE_RECURSE
  "../lib/librased_bench_common.a"
)
