# Empty dependencies file for bench_fig08_index_levels.
# This may be replaced when dependencies are built.
