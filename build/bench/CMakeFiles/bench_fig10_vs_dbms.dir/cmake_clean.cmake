file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vs_dbms.dir/bench_fig10_vs_dbms.cc.o"
  "CMakeFiles/bench_fig10_vs_dbms.dir/bench_fig10_vs_dbms.cc.o.d"
  "bench_fig10_vs_dbms"
  "bench_fig10_vs_dbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vs_dbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
