file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_roadtype_analysis.dir/bench_fig04_roadtype_analysis.cc.o"
  "CMakeFiles/bench_fig04_roadtype_analysis.dir/bench_fig04_roadtype_analysis.cc.o.d"
  "bench_fig04_roadtype_analysis"
  "bench_fig04_roadtype_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_roadtype_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
