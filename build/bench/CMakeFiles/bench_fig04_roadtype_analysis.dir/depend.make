# Empty dependencies file for bench_fig04_roadtype_analysis.
# This may be replaced when dependencies are built.
