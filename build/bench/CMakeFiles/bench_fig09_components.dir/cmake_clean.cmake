file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_components.dir/bench_fig09_components.cc.o"
  "CMakeFiles/bench_fig09_components.dir/bench_fig09_components.cc.o.d"
  "bench_fig09_components"
  "bench_fig09_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
