# Empty dependencies file for bench_fig09_components.
# This may be replaced when dependencies are built.
