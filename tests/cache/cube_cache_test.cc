#include "cache/cube_cache.h"

#include <gtest/gtest.h>

#include "cube/cube_codec.h"
#include "io/env.h"

namespace rased {
namespace {

CubeSchema TinySchema() { return CubeSchema{3, 8, 4, 4}; }

/// Exact budget charge of one cube (what the catalog records and the
/// byte-budgeted cache accounts).
uint64_t EncodedBytes(const DataCube& cube) {
  return EncodedCube::Encode(cube).SerializedBytes();
}

class CubeCacheTest : public ::testing::Test {
 protected:
  // Builds an index covering `days` days from 2021-01-01. Each daily cube
  // holds a single cell, so every cube stores sparse and tiny — the
  // encoded sizes the byte budget meters are a few dozen bytes, not the
  // multi-KB dense image.
  std::unique_ptr<TemporalIndex> BuildIndex(int days) {
    TemporalIndexOptions options;
    options.schema = TinySchema();
    options.num_levels = 4;
    options.dir =
        env::JoinPath(dir_.path(), "index-" + std::to_string(counter_++));
    options.device = DeviceModel::None();
    auto index = TemporalIndex::Create(options);
    EXPECT_TRUE(index.ok());
    Date d = Date::FromYmd(2021, 1, 1);
    for (int i = 0; i < days; ++i) {
      DataCube cube(TinySchema());
      cube.Add(0, 0, 0, 0, static_cast<uint64_t>(i + 1));
      EXPECT_TRUE(index.value()->AppendDay(d, cube).ok());
      d = d.next();
    }
    return std::move(index).value();
  }

  // Sum of the catalog-recorded encoded sizes of the `n` newest cubes of
  // `level` — the budget that admits exactly those cubes on preload.
  static uint64_t BytesForLatest(const CatalogSnapshot& snapshot, Level level,
                                 size_t n) {
    uint64_t total = 0;
    for (const CubeKey& key : snapshot.LatestKeys(level, n)) {
      total += snapshot.EncodedBytesOf(key).value_or(0);
    }
    return total;
  }

  TempDir dir_{"cache-test"};
  int counter_ = 0;
};

TEST_F(CubeCacheTest, RecencyPreloadSplitsByLevel) {
  auto index = BuildIndex(90);  // 90 daily, 12 weekly, 2 monthly (Jan, Feb)
  CacheOptions options;
  options.byte_budget = CacheOptions::BytesForCubes(40, TinySchema());
  options.policy = CachePolicy::kRasedRecency;
  // alpha .4 beta .35 gamma .2 theta .05
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());

  // The most recent daily/weekly/monthly cubes must be resident.
  EXPECT_TRUE(cache.Contains(CubeKey::Daily(Date::FromYmd(2021, 3, 31))));
  EXPECT_TRUE(cache.Contains(CubeKey::Weekly(Date::FromYmd(2021, 3, 22))));
  EXPECT_TRUE(cache.Contains(CubeKey::Monthly(Date::FromYmd(2021, 2, 1))));
  EXPECT_LE(cache.bytes_used(), options.byte_budget);
}

TEST_F(CubeCacheTest, GenerousBudgetChargesCatalogEncodedBytes) {
  auto index = BuildIndex(45);
  IndexStorageStats stats = index->StorageStats();
  CacheOptions options;
  options.byte_budget = stats.encoded_bytes * 4;  // room for everything
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  // Every cube fits, and each entry is charged its exact catalog-recorded
  // encoded length — residency totals mirror StorageStats.
  EXPECT_EQ(cache.size(), stats.total_cubes);
  EXPECT_EQ(cache.bytes_used(), stats.encoded_bytes);
}

TEST_F(CubeCacheTest, LeftoverBytesFallToDaily) {
  auto index = BuildIndex(60);
  IndexStorageStats stats = index->StorageStats();
  CacheOptions options;
  // Budget covers the whole index, but theta hands half of it to yearly
  // cubes — and none exist. Only if the unused yearly (and surplus
  // weekly/monthly) bytes fall through to daily can everything load.
  options.byte_budget = stats.encoded_bytes;
  options.theta = 0.5;
  options.alpha = 0.2;
  options.beta = 0.2;
  options.gamma = 0.1;
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  EXPECT_EQ(cache.size(), stats.total_cubes);
}

TEST_F(CubeCacheTest, FindCountsHitsAndMisses) {
  auto index = BuildIndex(30);
  CatalogSnapshot snapshot = index->Snapshot();
  CacheOptions options;
  // Exactly the 10 newest dailies fit (every daily here encodes to the
  // same size: one 1-byte-varint cell).
  options.byte_budget = BytesForLatest(snapshot, Level::kDaily, 10);
  options.policy = CachePolicy::kAllDaily;
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());

  EXPECT_NE(cache.Find(CubeKey::Daily(Date::FromYmd(2021, 1, 30))), nullptr);
  EXPECT_EQ(cache.Find(CubeKey::Daily(Date::FromYmd(2021, 1, 1))), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(CubeCacheTest, CachedCubesHaveCorrectContents) {
  auto index = BuildIndex(30);
  CacheOptions options;
  options.byte_budget = CacheOptions::BytesForCubes(5, TinySchema());
  options.policy = CachePolicy::kAllDaily;
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  std::shared_ptr<const DataCube> cube =
      cache.Find(CubeKey::Daily(Date::FromYmd(2021, 1, 30)));
  ASSERT_NE(cube, nullptr);
  EXPECT_EQ(cube->Total(), 30u);  // day 30's cube value
}

TEST_F(CubeCacheTest, StaticPolicyIgnoresInsert) {
  auto index = BuildIndex(10);
  CacheOptions options;
  options.byte_budget = CacheOptions::BytesForCubes(2, TinySchema());
  options.policy = CachePolicy::kRasedRecency;
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  size_t before = cache.size();
  DataCube cube(TinySchema());
  cache.Insert(CubeKey::Daily(Date::FromYmd(2021, 1, 1)), cube);
  EXPECT_EQ(cache.size(), before);
}

TEST_F(CubeCacheTest, LruAdmitsAndEvictsByBytes) {
  DataCube cube(TinySchema());
  CacheOptions options;
  // Room for exactly two of this cube's encoded images.
  options.byte_budget = 2 * EncodedBytes(cube);
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);

  CubeKey k1 = CubeKey::Daily(Date::FromYmd(2021, 1, 1));
  CubeKey k2 = CubeKey::Daily(Date::FromYmd(2021, 1, 2));
  CubeKey k3 = CubeKey::Daily(Date::FromYmd(2021, 1, 3));
  cache.Insert(k1, cube);
  cache.Insert(k2, cube);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes_used(), options.byte_budget);
  // Touch k1 so k2 is the LRU victim.
  EXPECT_NE(cache.Find(k1), nullptr);
  cache.Insert(k3, cube);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains(k1));
  EXPECT_FALSE(cache.Contains(k2));
  EXPECT_TRUE(cache.Contains(k3));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.bytes_used(), options.byte_budget);
}

TEST_F(CubeCacheTest, LruEvictsMultipleSmallEntriesForOneLarge) {
  DataCube sparse(TinySchema());
  sparse.Add(0, 0, 0, 0, 1);
  DataCube dense(TinySchema());
  for (uint32_t c = 0; c < TinySchema().num_cells(); ++c) {
    dense.Add((c / 128) % 3, (c / 16) % 8, (c / 4) % 4, c % 4, 1000000 + c);
  }
  const uint64_t sparse_bytes = EncodedBytes(sparse);
  const uint64_t dense_bytes = EncodedBytes(dense);
  ASSERT_GT(dense_bytes, 3 * sparse_bytes);

  CacheOptions options;
  options.byte_budget = dense_bytes + sparse_bytes;
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);
  for (int i = 0; i < 4; ++i) {
    cache.Insert(CubeKey::Daily(Date::FromYmd(2021, 1, 1 + i)),
                 DataCube(sparse));
  }
  ASSERT_EQ(cache.size(), 4u);
  // One large admission must displace as many small victims as its size
  // requires, never overshooting the budget.
  cache.Insert(CubeKey::Daily(Date::FromYmd(2021, 2, 1)), DataCube(dense));
  EXPECT_TRUE(cache.Contains(CubeKey::Daily(Date::FromYmd(2021, 2, 1))));
  EXPECT_LE(cache.bytes_used(), options.byte_budget);
  EXPECT_LT(cache.size(), 5u);
}

TEST_F(CubeCacheTest, LruNeverAdmitsCubeLargerThanBudget) {
  DataCube cube(TinySchema());
  cube.Add(0, 0, 0, 0, 5);
  CacheOptions options;
  options.byte_budget = EncodedBytes(cube) - 1;
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);
  cache.Insert(CubeKey::Daily(Date::FromYmd(2021, 1, 1)), cube);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST_F(CubeCacheTest, SizedInsertChargesCallerBytes) {
  CacheOptions options;
  options.byte_budget = 1000;
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);
  DataCube cube(TinySchema());
  // The sized overload trusts the caller's (catalog) length instead of
  // re-encoding; the charge must be exactly what was passed.
  cache.Insert(CubeKey::Daily(Date::FromYmd(2021, 1, 1)), kInvalidPageId,
               640, DataCube(cube));
  EXPECT_EQ(cache.bytes_used(), 640u);
  cache.Insert(CubeKey::Daily(Date::FromYmd(2021, 1, 2)), kInvalidPageId,
               1001, DataCube(cube));  // over budget: rejected outright
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes_used(), 640u);
}

TEST_F(CubeCacheTest, MoveInsertAdmitsWithoutCopy) {
  CacheOptions options;
  options.byte_budget = CacheOptions::BytesForCubes(4, TinySchema());
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);

  DataCube cube(TinySchema());
  cube.Add(1, 1, 1, 1, 7);
  const uint64_t* cells_before = cube.cells().data();
  CubeKey key = CubeKey::Daily(Date::FromYmd(2021, 1, 1));
  cache.Insert(key, std::move(cube));

  // The cached entry adopted the original cell storage (no deep copy).
  auto found = cache.Find(key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->cells().data(), cells_before);
  EXPECT_EQ(found->Get(1, 1, 1, 1), 7u);
}

TEST_F(CubeCacheTest, MoveInsertIgnoredUnderStaticPolicies) {
  CacheOptions options;
  options.byte_budget = CacheOptions::BytesForCubes(4, TinySchema());
  options.policy = CachePolicy::kRasedRecency;
  CubeCache cache(options);
  EXPECT_FALSE(cache.AdmitsOnQuery());

  DataCube cube(TinySchema());
  CubeKey key = CubeKey::Daily(Date::FromYmd(2021, 1, 1));
  cache.Insert(key, std::move(cube));
  EXPECT_EQ(cache.size(), 0u);

  CacheOptions lru = options;
  lru.policy = CachePolicy::kLru;
  EXPECT_TRUE(CubeCache(lru).AdmitsOnQuery());
}

TEST_F(CubeCacheTest, MoveInsertRefreshesExistingEntry) {
  CacheOptions options;
  options.byte_budget = CacheOptions::BytesForCubes(2, TinySchema());
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);
  CubeKey key = CubeKey::Daily(Date::FromYmd(2021, 1, 1));

  DataCube v1(TinySchema());
  v1.Add(0, 0, 0, 0, 1);
  cache.Insert(key, std::move(v1));
  DataCube v2(TinySchema());
  v2.Add(0, 0, 0, 0, 2);
  uint64_t v2_bytes = 0;
  {
    DataCube probe(TinySchema());
    probe.Add(0, 0, 0, 0, 2);
    v2_bytes = EncodedBytes(probe);
  }
  cache.Insert(key, std::move(v2));

  EXPECT_EQ(cache.size(), 1u);
  // A refresh replaces the old charge rather than stacking on top of it.
  EXPECT_EQ(cache.bytes_used(), v2_bytes);
  auto found = cache.Find(key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->Get(0, 0, 0, 0), 2u);
}

TEST_F(CubeCacheTest, LruWarmIsNoOp) {
  auto index = BuildIndex(10);
  CacheOptions options;
  options.byte_budget = CacheOptions::BytesForCubes(5, TinySchema());
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(CubeCacheTest, BytesForCubes) {
  CubeSchema schema = TinySchema();
  // Per-cube allotment is the dense image plus the blob header — the
  // adaptive encoder's worst case — so N inserts always fit.
  EXPECT_EQ(CacheOptions::BytesForCubes(10, schema),
            10 * (schema.cube_bytes() + CubeBlobHeader::kBytes));
  EXPECT_EQ(CacheOptions::BytesForCubes(0, schema), 0u);
}

TEST_F(CubeCacheTest, ClearEmptiesEverything) {
  auto index = BuildIndex(10);
  CacheOptions options;
  options.byte_budget = CacheOptions::BytesForCubes(5, TinySchema());
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  EXPECT_GT(cache.size(), 0u);
  EXPECT_GT(cache.bytes_used(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST_F(CubeCacheTest, InvalidateRangeReleasesBytes) {
  auto index = BuildIndex(20);
  IndexStorageStats stats = index->StorageStats();
  CacheOptions options;
  options.byte_budget = stats.encoded_bytes * 2;
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  uint64_t before = cache.bytes_used();
  ASSERT_GT(before, 0u);
  cache.InvalidateRange(
      DateRange(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 10)));
  EXPECT_LT(cache.bytes_used(), before);
  EXPECT_EQ(cache.Find(CubeKey::Daily(Date::FromYmd(2021, 1, 5))), nullptr);
}

}  // namespace
}  // namespace rased
