#include "cache/cube_cache.h"

#include <gtest/gtest.h>

#include "io/env.h"

namespace rased {
namespace {

CubeSchema TinySchema() { return CubeSchema{3, 8, 4, 4}; }

class CubeCacheTest : public ::testing::Test {
 protected:
  // Builds an index covering `days` days from 2021-01-01.
  std::unique_ptr<TemporalIndex> BuildIndex(int days) {
    TemporalIndexOptions options;
    options.schema = TinySchema();
    options.num_levels = 4;
    options.dir =
        env::JoinPath(dir_.path(), "index-" + std::to_string(counter_++));
    options.device = DeviceModel::None();
    auto index = TemporalIndex::Create(options);
    EXPECT_TRUE(index.ok());
    Date d = Date::FromYmd(2021, 1, 1);
    for (int i = 0; i < days; ++i) {
      DataCube cube(TinySchema());
      cube.Add(0, 0, 0, 0, static_cast<uint64_t>(i + 1));
      EXPECT_TRUE(index.value()->AppendDay(d, cube).ok());
      d = d.next();
    }
    return std::move(index).value();
  }

  TempDir dir_{"cache-test"};
  int counter_ = 0;
};

TEST_F(CubeCacheTest, RecencyPreloadSplitsByLevel) {
  auto index = BuildIndex(90);  // 90 daily, 12 weekly, 2 monthly (Jan, Feb)
  CacheOptions options;
  options.num_slots = 40;
  options.policy = CachePolicy::kRasedRecency;
  // alpha .4 beta .35 gamma .2 theta .05
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  EXPECT_EQ(cache.size(), 40u);

  // The most recent daily/weekly/monthly cubes must be resident.
  EXPECT_TRUE(cache.Contains(CubeKey::Daily(Date::FromYmd(2021, 3, 31))));
  EXPECT_TRUE(cache.Contains(CubeKey::Weekly(Date::FromYmd(2021, 3, 22))));
  EXPECT_TRUE(cache.Contains(CubeKey::Monthly(Date::FromYmd(2021, 2, 1))));
}

TEST_F(CubeCacheTest, LeftoverSlotsFallToDaily) {
  auto index = BuildIndex(60);
  CacheOptions options;
  options.num_slots = 30;
  options.theta = 0.5;  // wants 15 yearly cubes; none exist
  options.alpha = 0.2;
  options.beta = 0.2;
  options.gamma = 0.1;
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  EXPECT_EQ(cache.size(), 30u);  // filled from daily instead
}

TEST_F(CubeCacheTest, FindCountsHitsAndMisses) {
  auto index = BuildIndex(30);
  CacheOptions options;
  options.num_slots = 10;
  options.policy = CachePolicy::kAllDaily;
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());

  EXPECT_NE(cache.Find(CubeKey::Daily(Date::FromYmd(2021, 1, 30))), nullptr);
  EXPECT_EQ(cache.Find(CubeKey::Daily(Date::FromYmd(2021, 1, 1))), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(CubeCacheTest, CachedCubesHaveCorrectContents) {
  auto index = BuildIndex(30);
  CacheOptions options;
  options.num_slots = 5;
  options.policy = CachePolicy::kAllDaily;
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  std::shared_ptr<const DataCube> cube =
      cache.Find(CubeKey::Daily(Date::FromYmd(2021, 1, 30)));
  ASSERT_NE(cube, nullptr);
  EXPECT_EQ(cube->Total(), 30u);  // day 30's cube value
}

TEST_F(CubeCacheTest, StaticPolicyIgnoresInsert) {
  auto index = BuildIndex(10);
  CacheOptions options;
  options.num_slots = 2;
  options.policy = CachePolicy::kRasedRecency;
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  size_t before = cache.size();
  DataCube cube(TinySchema());
  cache.Insert(CubeKey::Daily(Date::FromYmd(2021, 1, 1)), cube);
  EXPECT_EQ(cache.size(), before);
}

TEST_F(CubeCacheTest, LruAdmitsAndEvicts) {
  CacheOptions options;
  options.num_slots = 2;
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);
  DataCube cube(TinySchema());

  CubeKey k1 = CubeKey::Daily(Date::FromYmd(2021, 1, 1));
  CubeKey k2 = CubeKey::Daily(Date::FromYmd(2021, 1, 2));
  CubeKey k3 = CubeKey::Daily(Date::FromYmd(2021, 1, 3));
  cache.Insert(k1, cube);
  cache.Insert(k2, cube);
  EXPECT_EQ(cache.size(), 2u);
  // Touch k1 so k2 is the LRU victim.
  EXPECT_NE(cache.Find(k1), nullptr);
  cache.Insert(k3, cube);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains(k1));
  EXPECT_FALSE(cache.Contains(k2));
  EXPECT_TRUE(cache.Contains(k3));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST_F(CubeCacheTest, MoveInsertAdmitsWithoutCopy) {
  CacheOptions options;
  options.num_slots = 4;
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);

  DataCube cube(TinySchema());
  cube.Add(1, 1, 1, 1, 7);
  const uint64_t* cells_before = cube.cells().data();
  CubeKey key = CubeKey::Daily(Date::FromYmd(2021, 1, 1));
  cache.Insert(key, std::move(cube));

  // The cached entry adopted the original cell storage (no deep copy).
  auto found = cache.Find(key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->cells().data(), cells_before);
  EXPECT_EQ(found->Get(1, 1, 1, 1), 7u);
}

TEST_F(CubeCacheTest, MoveInsertIgnoredUnderStaticPolicies) {
  CacheOptions options;
  options.num_slots = 4;
  options.policy = CachePolicy::kRasedRecency;
  CubeCache cache(options);
  EXPECT_FALSE(cache.AdmitsOnQuery());

  DataCube cube(TinySchema());
  CubeKey key = CubeKey::Daily(Date::FromYmd(2021, 1, 1));
  cache.Insert(key, std::move(cube));
  EXPECT_EQ(cache.size(), 0u);

  CacheOptions lru = options;
  lru.policy = CachePolicy::kLru;
  EXPECT_TRUE(CubeCache(lru).AdmitsOnQuery());
}

TEST_F(CubeCacheTest, MoveInsertRefreshesExistingEntry) {
  CacheOptions options;
  options.num_slots = 2;
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);
  CubeKey key = CubeKey::Daily(Date::FromYmd(2021, 1, 1));

  DataCube v1(TinySchema());
  v1.Add(0, 0, 0, 0, 1);
  cache.Insert(key, std::move(v1));
  DataCube v2(TinySchema());
  v2.Add(0, 0, 0, 0, 2);
  cache.Insert(key, std::move(v2));

  EXPECT_EQ(cache.size(), 1u);
  auto found = cache.Find(key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->Get(0, 0, 0, 0), 2u);
}

TEST_F(CubeCacheTest, LruWarmIsNoOp) {
  auto index = BuildIndex(10);
  CacheOptions options;
  options.num_slots = 5;
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(CubeCacheTest, SlotsForBytes) {
  CubeSchema schema = TinySchema();
  EXPECT_EQ(CacheOptions::SlotsForBytes(10 * schema.cube_bytes(), schema),
            10u);
  EXPECT_EQ(CacheOptions::SlotsForBytes(schema.cube_bytes() - 1, schema), 0u);
}

TEST_F(CubeCacheTest, ClearEmptiesEverything) {
  auto index = BuildIndex(10);
  CacheOptions options;
  options.num_slots = 5;
  CubeCache cache(options);
  ASSERT_TRUE(cache.Warm(index.get()).ok());
  EXPECT_GT(cache.size(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace rased
