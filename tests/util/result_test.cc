#include "util/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  RASED_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  RASED_ASSIGN_OR_RETURN(int w, ParsePositive(v + 1));
  *out = w;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnDeclaresVariables) {
  int out = 0;
  ASSERT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 6);
  EXPECT_TRUE(UseAssignOrReturn(-1, &out).IsInvalidArgument());
}

TEST(ResultTest, CopyableResult) {
  Result<std::string> a = std::string("x");
  Result<std::string> b = a;
  EXPECT_EQ(a.value(), "x");
  EXPECT_EQ(b.value(), "x");
}

}  // namespace
}  // namespace rased
