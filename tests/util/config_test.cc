#include "util/config.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "io/env.h"

namespace rased {
namespace {

TEST(ConfigTest, SetAndGet) {
  Config c;
  c.Set("name", "rased");
  c.Set("slots", "512");
  c.Set("alpha", "0.4");
  c.Set("verbose", "true");
  EXPECT_EQ(c.GetString("name", ""), "rased");
  EXPECT_EQ(c.GetInt("slots", 0), 512);
  EXPECT_DOUBLE_EQ(c.GetDouble("alpha", 0.0), 0.4);
  EXPECT_TRUE(c.GetBool("verbose", false));
  EXPECT_TRUE(c.Has("name"));
  EXPECT_FALSE(c.Has("missing"));
}

TEST(ConfigTest, DefaultsWhenAbsent) {
  Config c;
  EXPECT_EQ(c.GetString("k", "dflt"), "dflt");
  EXPECT_EQ(c.GetInt("k", 7), 7);
  EXPECT_DOUBLE_EQ(c.GetDouble("k", 1.5), 1.5);
  EXPECT_FALSE(c.GetBool("k", false));
  EXPECT_TRUE(c.GetBool("k", true));
}

TEST(ConfigTest, BoolSpellings) {
  Config c;
  for (const char* yes : {"1", "true", "yes", "on", "TRUE", "Yes"}) {
    c.Set("b", yes);
    EXPECT_TRUE(c.GetBool("b", false)) << yes;
  }
  for (const char* no : {"0", "false", "off", "no"}) {
    c.Set("b", no);
    EXPECT_FALSE(c.GetBool("b", true)) << no;
  }
}

TEST(ConfigTest, ParseArgs) {
  Config c;
  const char* argv[] = {"prog", "cache_slots=128", "mode=flat"};
  ASSERT_TRUE(c.ParseArgs(3, argv).ok());
  EXPECT_EQ(c.GetInt("cache_slots", 0), 128);
  EXPECT_EQ(c.GetString("mode", ""), "flat");
}

TEST(ConfigTest, ParseArgsRejectsBareWords) {
  Config c;
  const char* argv[] = {"prog", "oops"};
  EXPECT_TRUE(c.ParseArgs(2, argv).IsInvalidArgument());
}

TEST(ConfigTest, LoadFile) {
  TempDir dir("config-test");
  ASSERT_TRUE(dir.valid());
  std::string path = env::JoinPath(dir.path(), "test.conf");
  ASSERT_TRUE(env::WriteFile(path,
                             "# comment\n"
                             "key = value\n"
                             "\n"
                             "num=3\n")
                  .ok());
  Config c;
  ASSERT_TRUE(c.LoadFile(path).ok());
  EXPECT_EQ(c.GetString("key", ""), "value");
  EXPECT_EQ(c.GetInt("num", 0), 3);
}

TEST(ConfigTest, LoadFileRejectsMalformedLine) {
  TempDir dir("config-test");
  std::string path = env::JoinPath(dir.path(), "bad.conf");
  ASSERT_TRUE(env::WriteFile(path, "no equals sign\n").ok());
  Config c;
  EXPECT_TRUE(c.LoadFile(path).IsInvalidArgument());
}

TEST(ConfigTest, LoadFileMissing) {
  Config c;
  EXPECT_TRUE(c.LoadFile("/nonexistent/rased.conf").IsIOError());
}

TEST(ConfigTest, EnvironmentOverride) {
  ::setenv("RASED_TEST_ONLY_KEY", "from-env", 1);
  Config c;
  EXPECT_EQ(c.GetString("test_only_key", ""), "from-env");
  EXPECT_TRUE(c.Has("test_only_key"));
  // Explicit Set beats the environment.
  c.Set("test_only_key", "explicit");
  EXPECT_EQ(c.GetString("test_only_key", ""), "explicit");
  ::unsetenv("RASED_TEST_ONLY_KEY");
}

}  // namespace
}  // namespace rased
