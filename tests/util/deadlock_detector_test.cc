#include "util/thread_annotations.h"

#include <thread>

#include <gtest/gtest.h>

namespace rased {
namespace {

// The detector keys lock-order edges on construction site, so these tests
// name each mutex by a distinct source line. gtest_discover_tests runs
// every TEST in its own process, which keeps the global order graph of
// one test from leaking into another.

TEST(DeadlockDetectorTest, ConsistentOrderPasses) {
  Mutex first;
  Mutex second;
  {
    MutexLock hold_first(&first);
    MutexLock hold_second(&second);
  }
  // The same order from another thread re-walks the recorded edge and
  // must stay silent.
  std::thread other([&] {
    MutexLock hold_first(&first);
    MutexLock hold_second(&second);
  });
  other.join();
}

TEST(DeadlockDetectorTest, SameSiteReacquisitionPasses) {
  // Two locks from one construction site (a per-shard pattern): ordering
  // between same-site instances is not a cycle.
  for (int i = 0; i < 2; ++i) {
    Mutex shard;
    MutexLock hold(&shard);
  }
}

#ifdef RASED_DEADLOCK_DETECTOR

// The inversion bodies live in plain functions, NOT inside EXPECT_DEATH:
// a statement written in a macro argument expands entirely at the macro
// invocation's line, which would give both mutexes the same construction
// site and turn the cycle into an ignored self-edge.

void RunAbbaInversion() {
  // Thread one takes a then b, thread two takes b then a — the classic
  // ABBA inversion. Both acquisitions succeed in sequence (the threads
  // never overlap), so only the order graph can see the deadlock. The
  // detector must abort before the second thread can ever block.
  Mutex a;
  Mutex b;
  std::thread t1([&] {
    MutexLock hold_a(&a);
    MutexLock hold_b(&b);
  });
  t1.join();
  std::thread t2([&] {
    MutexLock hold_b(&b);
    MutexLock hold_a(&a);
  });
  t2.join();
}

TEST(DeadlockDetectorDeathTest, LockOrderInversionAborts) {
  EXPECT_DEATH(RunAbbaInversion(), "lock-order cycle detected");
}

void RunSharedInversion() {
  // Reader locks order-track like writer locks: an inversion through a
  // SharedMutex read side still aborts.
  SharedMutex catalog;
  Mutex tail;
  std::thread t1([&] {
    ReaderMutexLock hold_catalog(&catalog);
    MutexLock hold_tail(&tail);
  });
  t1.join();
  std::thread t2([&] {
    MutexLock hold_tail(&tail);
    ReaderMutexLock hold_catalog(&catalog);
  });
  t2.join();
}

TEST(DeadlockDetectorDeathTest, SharedAcquisitionsJoinTheGraph) {
  EXPECT_DEATH(RunSharedInversion(), "lock-order cycle detected");
}

#else  // !RASED_DEADLOCK_DETECTOR

TEST(DeadlockDetectorDeathTest, LockOrderInversionAborts) {
  GTEST_SKIP() << "RASED_DEADLOCK_DETECTOR is off in this build "
                  "(release without sanitizers)";
}

#endif  // RASED_DEADLOCK_DETECTOR

}  // namespace
}  // namespace rased
