// Compile-time enforcement check for the [[nodiscard]] audit on Status and
// Result<T> (see DESIGN.md "Correctness tooling").
//
// This file is compiled twice:
//   1. As part of rased_tests, WITHOUT RASED_EXPECT_NODISCARD_ERROR: only
//      the well-behaved code below is seen, proving the file itself is
//      valid C++.
//   2. By the `nodiscard_enforcement_compile_fails` ctest entry, WITH
//      -DRASED_EXPECT_NODISCARD_ERROR -Werror=unused-result: the guarded
//      block discards a Status and a Result, and the test asserts that the
//      compiler REJECTS it (WILL_FAIL). If someone strips [[nodiscard]]
//      from Status or Result, that test starts passing-to-compile and the
//      suite goes red.

#include <utility>

#include "util/result.h"
#include "util/status.h"

namespace rased {
namespace nodiscard_enforcement {

inline Status MakeStatus() { return Status::Internal("probe"); }
inline Result<int> MakeResult() { return Result<int>(42); }

// Well-behaved consumers: every returned Status/Result is inspected or
// explicitly voided. This must always compile.
inline int ConsumesEverything() {
  Status s = MakeStatus();
  int total = s.ok() ? 1 : 0;
  Result<int> r = MakeResult();
  if (r.ok()) total += std::move(r).value();
  (void)MakeStatus();  // deliberate discard must stay spellable
  return total;
}

#ifdef RASED_EXPECT_NODISCARD_ERROR
// Deliberate violations. With -Werror=unused-result these two lines MUST
// fail to compile; the ctest entry depends on it.
inline void DiscardsSilently() {
  MakeStatus();  // discarded Status
  MakeResult();  // discarded Result<int>
}
#endif

}  // namespace nodiscard_enforcement
}  // namespace rased
