#include "util/status.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing cube").message(), "missing cube");
}

TEST(StatusTest, ErrorStatusIsNotOk) {
  Status s = Status::IOError("disk gone");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "IOError: disk gone");
}

TEST(StatusTest, ToStringWithoutMessage) {
  EXPECT_EQ(Status::Corruption("").ToString(), "Corruption");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::IOError("inner"); };
  auto outer = [&]() -> Status {
    RASED_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsIOError());

  auto succeeds = [] { return Status::OK(); };
  auto outer_ok = [&]() -> Status {
    RASED_RETURN_IF_ERROR(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_TRUE(outer_ok().IsAlreadyExists());
}

}  // namespace
}  // namespace rased
