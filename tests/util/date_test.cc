#include "util/date.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(DateTest, EpochIsJan1st1970) {
  Date d;
  EXPECT_EQ(d.year(), 1970);
  EXPECT_EQ(d.month(), 1);
  EXPECT_EQ(d.day(), 1);
  EXPECT_EQ(d.days_since_epoch(), 0);
}

TEST(DateTest, FromYmdRoundTrips) {
  Date d = Date::FromYmd(2021, 7, 15);
  EXPECT_EQ(d.year(), 2021);
  EXPECT_EQ(d.month(), 7);
  EXPECT_EQ(d.day(), 15);
  EXPECT_EQ(d.ToString(), "2021-07-15");
}

TEST(DateTest, KnownDayCounts) {
  // Verified against `date -d @... +%F`.
  EXPECT_EQ(Date::FromYmd(2000, 1, 1).days_since_epoch(), 10957);
  EXPECT_EQ(Date::FromYmd(2021, 12, 31).days_since_epoch(), 18992);
  EXPECT_EQ(Date::FromYmd(1969, 12, 31).days_since_epoch(), -1);
}

TEST(DateTest, ParseValid) {
  auto d = Date::Parse("2006-01-01");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), Date::FromYmd(2006, 1, 1));
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Date::Parse("").ok());
  EXPECT_FALSE(Date::Parse("2020").ok());
  EXPECT_FALSE(Date::Parse("2020-13-01").ok());
  EXPECT_FALSE(Date::Parse("2020-02-30").ok());
  EXPECT_FALSE(Date::Parse("not-a-date").ok());
  EXPECT_FALSE(Date::Parse("2020-02-10x").ok());
}

TEST(DateTest, ParseAcceptsLeapDay) {
  EXPECT_TRUE(Date::Parse("2020-02-29").ok());
  EXPECT_FALSE(Date::Parse("2021-02-29").ok());
  EXPECT_TRUE(Date::Parse("2000-02-29").ok());   // 400-year leap
  EXPECT_FALSE(Date::Parse("1900-02-29").ok());  // 100-year non-leap
}

TEST(DateTest, WeekdayMatchesKnownDates) {
  EXPECT_EQ(Date::FromYmd(1970, 1, 1).weekday(), 3);   // Thursday
  EXPECT_EQ(Date::FromYmd(2021, 7, 5).weekday(), 0);   // Monday
  EXPECT_EQ(Date::FromYmd(2021, 7, 11).weekday(), 6);  // Sunday
}

TEST(DateTest, DaysInMonth) {
  EXPECT_EQ(Date::FromYmd(2021, 1, 1).days_in_month(), 31);
  EXPECT_EQ(Date::FromYmd(2021, 2, 1).days_in_month(), 28);
  EXPECT_EQ(Date::FromYmd(2020, 2, 1).days_in_month(), 29);
  EXPECT_EQ(Date::FromYmd(2021, 4, 1).days_in_month(), 30);
}

TEST(DateTest, MonthAndYearBoundaries) {
  Date d = Date::FromYmd(2021, 2, 28);
  EXPECT_TRUE(d.is_month_end());
  EXPECT_FALSE(d.is_year_end());
  EXPECT_TRUE(Date::FromYmd(2021, 12, 31).is_year_end());
  EXPECT_TRUE(Date::FromYmd(2021, 3, 1).is_month_start());
  EXPECT_TRUE(Date::FromYmd(2021, 1, 1).is_year_start());
}

TEST(DateTest, PaperWeekStructure) {
  // Weeks are clipped to months: days 1-7, 8-14, 15-21, 22-28; days 29-31
  // are stragglers with no week.
  EXPECT_EQ(Date::FromYmd(2021, 5, 1).week_of_month(), 0);
  EXPECT_EQ(Date::FromYmd(2021, 5, 7).week_of_month(), 0);
  EXPECT_EQ(Date::FromYmd(2021, 5, 8).week_of_month(), 1);
  EXPECT_EQ(Date::FromYmd(2021, 5, 28).week_of_month(), 3);
  EXPECT_EQ(Date::FromYmd(2021, 5, 29).week_of_month(), -1);
  EXPECT_EQ(Date::FromYmd(2021, 5, 31).week_of_month(), -1);

  EXPECT_TRUE(Date::FromYmd(2021, 5, 7).is_week_end());
  EXPECT_TRUE(Date::FromYmd(2021, 5, 28).is_week_end());
  EXPECT_FALSE(Date::FromYmd(2021, 5, 29).is_week_end());
  EXPECT_FALSE(Date::FromYmd(2021, 5, 6).is_week_end());

  EXPECT_EQ(Date::FromYmd(2021, 5, 10).week_start(),
            Date::FromYmd(2021, 5, 8));
  EXPECT_EQ(Date::FromYmd(2021, 5, 10).week_end(),
            Date::FromYmd(2021, 5, 14));
}

TEST(DateTest, EveryMonthHasExactlyFourWeeksPlusStragglers) {
  // Property: for all months in 2004..2030, exactly 28 days belong to
  // weeks 0..3 and days_in_month()-28 days are stragglers.
  for (int year = 2004; year <= 2030; ++year) {
    for (int month = 1; month <= 12; ++month) {
      Date first = Date::FromYmd(year, month, 1);
      int in_weeks = 0, stragglers = 0;
      for (int day = 1; day <= first.days_in_month(); ++day) {
        Date d = Date::FromYmd(year, month, day);
        if (d.week_of_month() >= 0) {
          ++in_weeks;
        } else {
          ++stragglers;
        }
      }
      EXPECT_EQ(in_weeks, 28) << year << "-" << month;
      EXPECT_EQ(stragglers, first.days_in_month() - 28);
    }
  }
}

TEST(DateTest, RoundTripAllDaysOver60Years) {
  // Property: days-since-epoch -> y/m/d -> days-since-epoch is identity.
  Date start = Date::FromYmd(1990, 1, 1);
  Date end = Date::FromYmd(2050, 12, 31);
  int32_t prev_day = start.days_since_epoch() - 1;
  for (Date d = start; d <= end; d = d.next()) {
    EXPECT_EQ(d.days_since_epoch(), prev_day + 1);
    Date back = Date::FromYmd(d.year(), d.month(), d.day());
    ASSERT_EQ(back, d) << d.ToString();
    prev_day = d.days_since_epoch();
  }
}

TEST(DateTest, AddMonthsClampsDay) {
  EXPECT_EQ(Date::FromYmd(2021, 1, 31).AddMonths(1),
            Date::FromYmd(2021, 2, 28));
  EXPECT_EQ(Date::FromYmd(2020, 1, 31).AddMonths(1),
            Date::FromYmd(2020, 2, 29));
  EXPECT_EQ(Date::FromYmd(2021, 5, 15).AddMonths(13),
            Date::FromYmd(2022, 6, 15));
  EXPECT_EQ(Date::FromYmd(2021, 3, 15).AddMonths(-3),
            Date::FromYmd(2020, 12, 15));
}

TEST(DateTest, AddYears) {
  EXPECT_EQ(Date::FromYmd(2020, 2, 29).AddYears(1),
            Date::FromYmd(2021, 2, 28));
  EXPECT_EQ(Date::FromYmd(2006, 1, 1).AddYears(15),
            Date::FromYmd(2021, 1, 1));
}

TEST(DateTest, Comparisons) {
  Date a = Date::FromYmd(2021, 1, 1);
  Date b = Date::FromYmd(2021, 1, 2);
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(b - a, 1);
  EXPECT_EQ(a - b, -1);
}

TEST(DateRangeTest, DefaultIsEmpty) {
  DateRange r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.num_days(), 0);
}

TEST(DateRangeTest, ContainsAndOverlaps) {
  DateRange r(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 12, 31));
  EXPECT_TRUE(r.Contains(Date::FromYmd(2021, 6, 15)));
  EXPECT_TRUE(r.Contains(r.first));
  EXPECT_TRUE(r.Contains(r.last));
  EXPECT_FALSE(r.Contains(Date::FromYmd(2022, 1, 1)));

  DateRange inner(Date::FromYmd(2021, 3, 1), Date::FromYmd(2021, 3, 31));
  EXPECT_TRUE(r.Contains(inner));
  EXPECT_FALSE(inner.Contains(r));

  DateRange next_year(Date::FromYmd(2022, 1, 1), Date::FromYmd(2022, 2, 1));
  EXPECT_FALSE(r.Overlaps(next_year));
  DateRange straddle(Date::FromYmd(2021, 12, 1), Date::FromYmd(2022, 2, 1));
  EXPECT_TRUE(r.Overlaps(straddle));
}

TEST(DateRangeTest, Intersect) {
  DateRange a(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 6, 30));
  DateRange b(Date::FromYmd(2021, 4, 1), Date::FromYmd(2021, 12, 31));
  DateRange i = a.Intersect(b);
  EXPECT_EQ(i.first, Date::FromYmd(2021, 4, 1));
  EXPECT_EQ(i.last, Date::FromYmd(2021, 6, 30));

  DateRange disjoint(Date::FromYmd(2022, 1, 1), Date::FromYmd(2022, 1, 2));
  EXPECT_TRUE(a.Intersect(disjoint).empty());
}

TEST(DateRangeTest, NumDays) {
  DateRange r(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 1, 1));
  EXPECT_EQ(r.num_days(), 1);
  DateRange year(Date::FromYmd(2020, 1, 1), Date::FromYmd(2020, 12, 31));
  EXPECT_EQ(year.num_days(), 366);  // leap year
}

}  // namespace
}  // namespace rased
