#include "util/random.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double p = static_cast<double>(hits) / n;
  EXPECT_NEAR(p, 0.3, 0.02);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
  // Property: a Poisson sample's mean and variance both approximate the
  // requested mean, across the small-mean (Knuth) and large-mean (normal
  // approximation) regimes.
  double mean = GetParam();
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = static_cast<double>(rng.Poisson(mean));
    sum += v;
    sq += v * v;
  }
  double sample_mean = sum / n;
  double sample_var = sq / n - sample_mean * sample_mean;
  EXPECT_NEAR(sample_mean, mean, std::max(0.05, mean * 0.05));
  EXPECT_NEAR(sample_var, mean, std::max(0.1, mean * 0.12));
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(0.1, 0.5, 2.0, 10.0, 63.0, 100.0,
                                           1000.0));

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Poisson(0.0), 0u);
    EXPECT_EQ(rng.Poisson(-1.0), 0u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(29);
  const int n = 20000;
  std::vector<int> counts(100, 0);
  for (int i = 0; i < n; ++i) {
    uint64_t r = rng.Zipf(100, 0.9);
    ASSERT_LT(r, 100u);
    ++counts[r];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], n / 20);  // rank 0 clearly dominant
  EXPECT_GT(counts[10], counts[90]);
}

TEST(RngTest, ZipfSingletonAlwaysZero) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Zipf(1, 1.0), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rased
