#include "util/str_util.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(SplitTest, BasicSplit) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyInputGivesOneEmptyField) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, RemovesWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%05.1f", 3.14), "003.1");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_str(1000, 'a');
  EXPECT_EQ(StrFormat("%s", long_str.c_str()).size(), 1000u);
}

TEST(ParseIntTest, ValidAndInvalid) {
  EXPECT_EQ(ParseInt("42").value_or(0), 42);
  EXPECT_EQ(ParseInt("-17").value_or(0), -17);
  EXPECT_EQ(ParseInt("  99  ").value_or(0), 99);  // trimmed
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("x12").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
}

TEST(ParseUintTest, RejectsNegative) {
  EXPECT_EQ(ParseUint("18446744073709551615").value_or(0),
            18446744073709551615ull);
  EXPECT_FALSE(ParseUint("-1").ok());
  EXPECT_FALSE(ParseUint("").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value_or(0), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value_or(0), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5junk").ok());
}

TEST(WithThousandsSepTest, FormatsPaperStyle) {
  // The paper's Figure 3 renders counts like 9,142,858.
  EXPECT_EQ(WithThousandsSep(9142858), "9,142,858");
  EXPECT_EQ(WithThousandsSep(0), "0");
  EXPECT_EQ(WithThousandsSep(999), "999");
  EXPECT_EQ(WithThousandsSep(1000), "1,000");
  EXPECT_EQ(WithThousandsSep(1234567890123ull), "1,234,567,890,123");
}

TEST(AsciiLowerTest, LowersAsciiOnly) {
  EXPECT_EQ(AsciiLower("HeLLo-42"), "hello-42");
  EXPECT_EQ(AsciiLower(""), "");
}

}  // namespace
}  // namespace rased
