#include "index/cube_builder.h"

#include <gtest/gtest.h>

namespace rased {
namespace {

class CubeBuilderTest : public ::testing::Test {
 protected:
  CubeBuilderTest() : schema_(CubeSchema::PaperScale()), world_(305) {}

  UpdateRecord RecordIn(const char* country, UpdateType ut = UpdateType::kNew,
                        ElementType et = ElementType::kWay,
                        RoadTypeId rt = 5) {
    ZoneId zone = world_.FindByName(country).value();
    LatLon p = world_.zone(zone).bounds.Center();
    UpdateRecord r;
    r.element_type = et;
    r.date = Date::FromYmd(2021, 1, 1);
    r.country = zone;
    r.lat = p.lat;
    r.lon = p.lon;
    r.road_type = rt;
    r.update_type = ut;
    r.changeset_id = 1;
    return r;
  }

  CubeSchema schema_;
  WorldMap world_;
};

TEST_F(CubeBuilderTest, CountryAndContinentIncremented) {
  CubeBuilder builder(schema_, &world_);
  DataCube cube(schema_);
  builder.AddRecord(RecordIn("Germany"), &cube);

  ZoneId germany = world_.FindByName("Germany").value();
  ZoneId europe = world_.FindByName("Europe").value();
  uint32_t way = static_cast<uint32_t>(ElementType::kWay);
  uint32_t nw = static_cast<uint32_t>(UpdateType::kNew);
  EXPECT_EQ(cube.Get(way, germany, 5, nw), 1u);
  EXPECT_EQ(cube.Get(way, europe, 5, nw), 1u);
  EXPECT_EQ(cube.Total(), 2u);
}

TEST_F(CubeBuilderTest, UsaIncludesStateCell) {
  CubeBuilder builder(schema_, &world_);
  DataCube cube(schema_);
  builder.AddRecord(RecordIn("United States"), &cube);
  // Country + continent + one state = 3 increments.
  EXPECT_EQ(cube.Total(), 3u);
}

TEST_F(CubeBuilderTest, UnknownCountryGoesToUnknownBucket) {
  CubeBuilder builder(schema_, &world_);
  DataCube cube(schema_);
  UpdateRecord r = RecordIn("Germany");
  r.country = kZoneUnknown;
  builder.AddRecord(r, &cube);
  uint32_t way = static_cast<uint32_t>(ElementType::kWay);
  uint32_t nw = static_cast<uint32_t>(UpdateType::kNew);
  EXPECT_EQ(cube.Get(way, kZoneUnknown, 5, nw), 1u);
  EXPECT_EQ(cube.Total(), 1u);
}

TEST_F(CubeBuilderTest, OversizedRoadTypeCollapsesToOther) {
  CubeBuilder builder(schema_, &world_);
  DataCube cube(schema_);
  UpdateRecord r = RecordIn("France");
  r.road_type = 60000;  // beyond the 150-wide dimension
  builder.AddRecord(r, &cube);
  ZoneId france = world_.FindByName("France").value();
  uint32_t way = static_cast<uint32_t>(ElementType::kWay);
  uint32_t nw = static_cast<uint32_t>(UpdateType::kNew);
  EXPECT_EQ(cube.Get(way, france, 1, nw), 1u);  // slot 1 = "other"
}

TEST_F(CubeBuilderTest, BuildCubeAggregatesAllRecords) {
  CubeBuilder builder(schema_, &world_);
  std::vector<UpdateRecord> records = {
      RecordIn("India"), RecordIn("India", UpdateType::kDelete),
      RecordIn("Qatar")};
  DataCube cube = builder.BuildCube(records);
  ZoneId india = world_.FindByName("India").value();
  CubeSlice slice;
  slice.countries = {india};
  EXPECT_EQ(cube.SumSlice(slice), 2u);
}

TEST_F(CubeBuilderTest, BuildDailyCubesGroupsByDate) {
  CubeBuilder builder(schema_, &world_);
  UpdateRecord day1 = RecordIn("Kenya");
  UpdateRecord day2 = RecordIn("Kenya");
  day2.date = day1.date.next();
  auto cubes = builder.BuildDailyCubes({day1, day2, day2});
  ASSERT_EQ(cubes.size(), 2u);
  EXPECT_EQ(cubes.at(day1.date).Total(), 2u);   // country + continent
  EXPECT_EQ(cubes.at(day2.date).Total(), 4u);
}

using CubeBuilderDeathTest = CubeBuilderTest;

TEST_F(CubeBuilderDeathTest, RejectsMismatchedWorld) {
  WorldMap small(64);
  EXPECT_DEATH(CubeBuilder(schema_, &small), "zones");
}

}  // namespace
}  // namespace rased
