#include "index/temporal_index.h"

#include <gtest/gtest.h>

#include "io/env.h"
#include "util/random.h"

namespace rased {
namespace {

CubeSchema TinySchema() { return CubeSchema{3, 8, 4, 4}; }

DataCube CubeWithTotal(const CubeSchema& schema, uint64_t value) {
  DataCube cube(schema);
  cube.Add(0, 0, 0, 0, value);
  return cube;
}

class TemporalIndexTest : public ::testing::Test {
 protected:
  TemporalIndexOptions Options(int levels = 4) {
    TemporalIndexOptions options;
    options.schema = TinySchema();
    options.num_levels = levels;
    options.dir = env::JoinPath(dir_.path(), "index-" +
                                                 std::to_string(counter_++));
    options.device = DeviceModel::None();
    return options;
  }

  TempDir dir_{"tindex-test"};
  int counter_ = 0;
};

TEST_F(TemporalIndexTest, CreateAndAppendOneDay) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  Date day = Date::FromYmd(2021, 3, 1);
  ASSERT_TRUE(index.value()->AppendDay(day, CubeWithTotal(TinySchema(), 5))
                  .ok());
  EXPECT_TRUE(index.value()->Contains(CubeKey::Daily(day)));
  auto cube = index.value()->ReadCube(CubeKey::Daily(day));
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube.value().Total(), 5u);
  EXPECT_EQ(index.value()->coverage(), DateRange(day, day));
}

TEST_F(TemporalIndexTest, RejectsOutOfOrderDays) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Date day = Date::FromYmd(2021, 3, 1);
  ASSERT_TRUE(index.value()->AppendDay(day, DataCube(TinySchema())).ok());
  EXPECT_TRUE(index.value()
                  ->AppendDay(day.AddDays(2), DataCube(TinySchema()))
                  .IsInvalidArgument());
  EXPECT_TRUE(
      index.value()->AppendDay(day, DataCube(TinySchema())).IsInvalidArgument());
}

TEST_F(TemporalIndexTest, RejectsSchemaMismatch) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  DataCube wrong(CubeSchema{3, 9, 4, 4});
  EXPECT_TRUE(index.value()
                  ->AppendDay(Date::FromYmd(2021, 1, 1), wrong)
                  .IsInvalidArgument());
}

TEST_F(TemporalIndexTest, WeeklyRollupAtDay7) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Date start = Date::FromYmd(2021, 3, 1);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(index.value()
                    ->AppendDay(start.AddDays(i),
                                CubeWithTotal(TinySchema(), 10))
                    .ok());
  }
  CubeKey weekly = CubeKey::Weekly(start);
  ASSERT_TRUE(index.value()->Contains(weekly));
  auto cube = index.value()->ReadCube(weekly);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube.value().Total(), 70u);
}

TEST_F(TemporalIndexTest, NoWeeklyWhenFlat) {
  auto index = TemporalIndex::Create(Options(/*levels=*/1));
  ASSERT_TRUE(index.ok());
  Date start = Date::FromYmd(2021, 3, 1);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(index.value()
                    ->AppendDay(start.AddDays(i), DataCube(TinySchema()))
                    .ok());
  }
  EXPECT_FALSE(index.value()->Contains(CubeKey::Weekly(start)));
}

TEST_F(TemporalIndexTest, FullMonthBuildsAllLevels) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Date start = Date::FromYmd(2021, 1, 1);
  for (int i = 0; i < 31; ++i) {
    ASSERT_TRUE(index.value()
                    ->AppendDay(start.AddDays(i),
                                CubeWithTotal(TinySchema(), 1))
                    .ok());
  }
  CubeKey monthly = CubeKey::Monthly(start);
  ASSERT_TRUE(index.value()->Contains(monthly));
  auto cube = index.value()->ReadCube(monthly);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube.value().Total(), 31u);

  IndexStorageStats stats = index.value()->StorageStats();
  EXPECT_EQ(stats.cubes_per_level[0], 31u);
  EXPECT_EQ(stats.cubes_per_level[1], 4u);
  EXPECT_EQ(stats.cubes_per_level[2], 1u);
  EXPECT_EQ(stats.cubes_per_level[3], 0u);
  EXPECT_EQ(stats.total_cubes, 36u);
  EXPECT_GT(stats.file_bytes, 0u);
}

TEST_F(TemporalIndexTest, YearRollup) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Date start = Date::FromYmd(2021, 1, 1);
  Date end = Date::FromYmd(2021, 12, 31);
  for (Date d = start; d <= end; d = d.next()) {
    ASSERT_TRUE(index.value()
                    ->AppendDay(d, CubeWithTotal(TinySchema(), 2))
                    .ok());
  }
  CubeKey yearly = CubeKey::Yearly(start);
  ASSERT_TRUE(index.value()->Contains(yearly));
  auto cube = index.value()->ReadCube(yearly);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube.value().Total(), 2u * 365);

  IndexStorageStats stats = index.value()->StorageStats();
  EXPECT_EQ(stats.cubes_per_level[0], 365u);
  EXPECT_EQ(stats.cubes_per_level[1], 48u);
  EXPECT_EQ(stats.cubes_per_level[2], 12u);
  EXPECT_EQ(stats.cubes_per_level[3], 1u);
}

TEST_F(TemporalIndexTest, RollupIoCountsMatchPaper) {
  // Section VI-A: one write for a plain day; up to 8 I/Os at week end,
  // and 13 at year end.
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Pager* pager = index.value()->pager();
  Date start = Date::FromYmd(2021, 1, 1);
  Date d = start;
  // Days 1-6: one page allocation + one write each the first time; the
  // first write allocates, so expect 2 page writes for a fresh day (alloc
  // zero-fill + payload write) and no reads.
  for (int i = 0; i < 6; ++i) {
    pager->ResetStats();
    ASSERT_TRUE(index.value()
                    ->AppendDay(d, CubeWithTotal(TinySchema(), 1))
                    .ok());
    EXPECT_EQ(pager->stats().page_reads, 0u) << "day " << i;
    d = d.next();
  }
  // Day 7 (week end): reads the six previous dailies.
  pager->ResetStats();
  ASSERT_TRUE(index.value()->AppendDay(d, CubeWithTotal(TinySchema(), 1)).ok());
  EXPECT_EQ(pager->stats().page_reads, 6u);
  d = d.next();

  // Finish January; day 31 is month end with 3 straggler days (29,30,31):
  // monthly reads 4 weeklies minus the in-memory one... day 31 is not a
  // week end, so the month rollup reads 4 weekly + 2 straggler dailies.
  while (d.day() != 31) {
    ASSERT_TRUE(
        index.value()->AppendDay(d, CubeWithTotal(TinySchema(), 1)).ok());
    d = d.next();
  }
  pager->ResetStats();
  ASSERT_TRUE(index.value()->AppendDay(d, CubeWithTotal(TinySchema(), 1)).ok());
  EXPECT_EQ(pager->stats().page_reads, 6u);  // 4 weekly + 2 daily stragglers
}

TEST_F(TemporalIndexTest, PersistsAcrossReopen) {
  TemporalIndexOptions options = Options();
  Date day = Date::FromYmd(2021, 6, 1);
  {
    auto index = TemporalIndex::Create(options);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(index.value()
                    ->AppendDay(day, CubeWithTotal(TinySchema(), 42))
                    .ok());
  }
  auto reopened = TemporalIndex::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->coverage(), DateRange(day, day));
  auto cube = reopened.value()->ReadCube(CubeKey::Daily(day));
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube.value().Total(), 42u);
  // Appending continues where it left off.
  ASSERT_TRUE(reopened.value()
                  ->AppendDay(day.next(), DataCube(TinySchema()))
                  .ok());
}

TEST_F(TemporalIndexTest, OpenRejectsMismatchedOptions) {
  TemporalIndexOptions options = Options();
  { ASSERT_TRUE(TemporalIndex::Create(options).ok()); }
  TemporalIndexOptions wrong_levels = options;
  wrong_levels.num_levels = 2;
  EXPECT_FALSE(TemporalIndex::Open(wrong_levels).ok());
  TemporalIndexOptions wrong_schema = options;
  wrong_schema.schema.num_countries = 99;
  EXPECT_FALSE(TemporalIndex::Open(wrong_schema).ok());
}

TEST_F(TemporalIndexTest, CreateRejectsExisting) {
  TemporalIndexOptions options = Options();
  ASSERT_TRUE(TemporalIndex::Create(options).ok());
  EXPECT_TRUE(TemporalIndex::Create(options).status().IsAlreadyExists());
}

TEST_F(TemporalIndexTest, ReadMissingCube) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index.value()
                  ->ReadCube(CubeKey::Daily(Date::FromYmd(2021, 1, 1)))
                  .status()
                  .IsNotFound());
}

TEST_F(TemporalIndexTest, ExistingKeysAndLatestKeys) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Date start = Date::FromYmd(2021, 2, 1);
  for (int i = 0; i < 28; ++i) {
    ASSERT_TRUE(index.value()
                    ->AppendDay(start.AddDays(i), DataCube(TinySchema()))
                    .ok());
  }
  DateRange all(start, start.AddDays(27));
  EXPECT_EQ(index.value()->ExistingKeys(Level::kDaily, all).size(), 28u);
  EXPECT_EQ(index.value()->ExistingKeys(Level::kWeekly, all).size(), 4u);
  EXPECT_EQ(index.value()->ExistingKeys(Level::kMonthly, all).size(), 1u);

  auto latest = index.value()->LatestKeys(Level::kDaily, 5);
  ASSERT_EQ(latest.size(), 5u);
  EXPECT_EQ(latest.back().start, start.AddDays(27));
  EXPECT_EQ(latest.front().start, start.AddDays(23));
}

TEST_F(TemporalIndexTest, RebuildMonthReplacesProvisionalData) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Date start = Date::FromYmd(2021, 4, 1);
  // Daily (provisional) data: everything in update-type slot 2.
  for (int i = 0; i < 30; ++i) {
    DataCube cube(TinySchema());
    cube.Add(0, 1, 0, 2, 10);
    ASSERT_TRUE(index.value()->AppendDay(start.AddDays(i), cube).ok());
  }
  // Monthly rebuild: reclassified into slots 1..3.
  std::vector<DataCube> rebuilt;
  for (int i = 0; i < 30; ++i) {
    DataCube cube(TinySchema());
    cube.Add(0, 1, 0, 1, 2);
    cube.Add(0, 1, 0, 2, 5);
    cube.Add(0, 1, 0, 3, 3);
    rebuilt.push_back(std::move(cube));
  }
  ASSERT_TRUE(index.value()->RebuildMonth(start, rebuilt).ok());

  auto daily = index.value()->ReadCube(CubeKey::Daily(start.AddDays(10)));
  ASSERT_TRUE(daily.ok());
  EXPECT_EQ(daily.value().Get(0, 1, 0, 1), 2u);
  EXPECT_EQ(daily.value().Get(0, 1, 0, 2), 5u);

  auto monthly = index.value()->ReadCube(CubeKey::Monthly(start));
  ASSERT_TRUE(monthly.ok());
  EXPECT_EQ(monthly.value().Total(), 30u * 10);
  EXPECT_EQ(monthly.value().Get(0, 1, 0, 3), 30u * 3);

  auto weekly = index.value()->ReadCube(CubeKey::Weekly(start));
  ASSERT_TRUE(weekly.ok());
  EXPECT_EQ(weekly.value().Total(), 7u * 10);
}

TEST_F(TemporalIndexTest, RebuildMonthValidatesInput) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Date april = Date::FromYmd(2021, 4, 1);
  std::vector<DataCube> cubes(30, DataCube(TinySchema()));
  // Month not covered yet.
  EXPECT_TRUE(index.value()->RebuildMonth(april, cubes).IsInvalidArgument());
  // Not a month start.
  EXPECT_TRUE(index.value()
                  ->RebuildMonth(Date::FromYmd(2021, 4, 2), cubes)
                  .IsInvalidArgument());
  // Wrong cube count.
  for (Date d = april; d <= april.month_end(); d = d.next()) {
    ASSERT_TRUE(index.value()->AppendDay(d, DataCube(TinySchema())).ok());
  }
  std::vector<DataCube> too_few(29, DataCube(TinySchema()));
  EXPECT_TRUE(index.value()->RebuildMonth(april, too_few).IsInvalidArgument());
}

TEST_F(TemporalIndexTest, RebuildMonthRefreshesClosedYear) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Date start = Date::FromYmd(2021, 1, 1);
  for (Date d = start; d <= Date::FromYmd(2021, 12, 31); d = d.next()) {
    ASSERT_TRUE(index.value()
                    ->AppendDay(d, CubeWithTotal(TinySchema(), 1))
                    .ok());
  }
  std::vector<DataCube> june(30, CubeWithTotal(TinySchema(), 100));
  ASSERT_TRUE(index.value()->RebuildMonth(Date::FromYmd(2021, 6, 1), june).ok());
  auto yearly = index.value()->ReadCube(CubeKey::Yearly(start));
  ASSERT_TRUE(yearly.ok());
  EXPECT_EQ(yearly.value().Total(), 365u - 30 + 30 * 100);
}

TEST_F(TemporalIndexTest, LeftoverCatalogTempFileIsHarmless) {
  // The catalog is saved via write-to-temp + atomic rename; a crash can
  // leave a stale catalog.tmp behind, which must not confuse Open.
  TemporalIndexOptions options = Options();
  Date day = Date::FromYmd(2021, 6, 1);
  {
    auto index = TemporalIndex::Create(options);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(index.value()
                    ->AppendDay(day, CubeWithTotal(TinySchema(), 9))
                    .ok());
  }
  ASSERT_TRUE(env::WriteFile(env::JoinPath(options.dir, "catalog.tmp"),
                             "garbage from a crashed save")
                  .ok());
  auto reopened = TemporalIndex::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->ReadCube(CubeKey::Daily(day)).value().Total(),
            9u);
}

TEST_F(TemporalIndexTest, ReadCubesReturnsBatchInKeyOrder) {
  TemporalIndexOptions options = Options();
  options.device = DeviceModel{1000, 0, 0.0};
  auto index = TemporalIndex::Create(options);
  ASSERT_TRUE(index.ok());
  Date start = Date::FromYmd(2021, 3, 1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        index.value()
            ->AppendDay(start.AddDays(i),
                        CubeWithTotal(TinySchema(), static_cast<uint64_t>(i + 1)))
            .ok());
  }

  // Request out of chronological order; the batch preserves input order.
  std::vector<CubeKey> keys{CubeKey::Daily(start.AddDays(4)),
                            CubeKey::Daily(start.AddDays(0)),
                            CubeKey::Daily(start.AddDays(5)),
                            CubeKey::Daily(start.AddDays(6))};
  IoStats io;
  auto batch = index.value()->ReadCubes(keys, &io);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), keys.size());
  EXPECT_EQ(batch.value().Decode(0).value().Total(), 5u);
  EXPECT_EQ(batch.value().Decode(1).value().Total(), 1u);
  EXPECT_EQ(batch.value().Decode(2).value().Total(), 6u);
  EXPECT_EQ(batch.value().Decode(3).value().Total(), 7u);

  // Transfers match the serial path; days 4,5,6 sit on adjacent pages so
  // coalescing shows fewer device ops than pages.
  EXPECT_EQ(io.page_reads, 4u);
  EXPECT_LT(io.read_ops, io.page_reads);
}

TEST_F(TemporalIndexTest, ReadCubesMatchesSerialReadCube) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Date start = Date::FromYmd(2021, 3, 1);
  Rng rng(23);
  for (int i = 0; i < 14; ++i) {
    DataCube cube(TinySchema());
    for (int j = 0; j < 30; ++j) {
      cube.Add(rng.Uniform(3), rng.Uniform(8), rng.Uniform(4),
               rng.Uniform(4), rng.Uniform(9));
    }
    ASSERT_TRUE(index.value()->AppendDay(start.AddDays(i), cube).ok());
  }

  std::vector<CubeKey> keys;
  for (int i = 0; i < 14; i += 2) {
    keys.push_back(CubeKey::Daily(start.AddDays(i)));
  }
  keys.push_back(CubeKey::Weekly(start));
  auto batch = index.value()->ReadCubes(keys);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto serial = index.value()->ReadCube(keys[i]);
    ASSERT_TRUE(serial.ok());
    auto decoded = batch.value().Decode(i);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value(), serial.value()) << i;
  }
}

TEST_F(TemporalIndexTest, ReadCubesFailsBeforeIoOnMissingKey) {
  TemporalIndexOptions options = Options();
  options.device = DeviceModel{1000, 0, 0.0};
  auto index = TemporalIndex::Create(options);
  ASSERT_TRUE(index.ok());
  Date day = Date::FromYmd(2021, 3, 1);
  ASSERT_TRUE(
      index.value()->AppendDay(day, CubeWithTotal(TinySchema(), 1)).ok());

  std::vector<CubeKey> keys{CubeKey::Daily(day),
                            CubeKey::Daily(day.AddDays(30))};
  IoStats io;
  auto batch = index.value()->ReadCubes(keys, &io);
  EXPECT_TRUE(batch.status().IsNotFound());
  // Missing keys are resolved before any device time is charged.
  EXPECT_EQ(io, IoStats{});
}

TEST_F(TemporalIndexTest, ReadCubesEmptyBatch) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  auto batch = index.value()->ReadCubes({});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value().size(), 0u);
}

TEST_F(TemporalIndexTest, IndexStartingMidMonthStillRollsUp) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  // Start on the 20th; the month-end rollup must cope with missing
  // children.
  Date start = Date::FromYmd(2021, 5, 20);
  for (Date d = start; d <= Date::FromYmd(2021, 5, 31); d = d.next()) {
    ASSERT_TRUE(index.value()
                    ->AppendDay(d, CubeWithTotal(TinySchema(), 1))
                    .ok());
  }
  auto monthly = index.value()->ReadCube(CubeKey::Monthly(start));
  ASSERT_TRUE(monthly.ok());
  EXPECT_EQ(monthly.value().Total(), 12u);  // 20th..31st
}

// ---- MVCC: epoch-versioned catalog publication (DESIGN.md section 10) ----

TEST_F(TemporalIndexTest, EpochAdvancesOncePerPublication) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value()->epoch(), 1u);
  Date start = Date::FromYmd(2021, 4, 1);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(index.value()
                    ->AppendDay(start.AddDays(i), CubeWithTotal(TinySchema(), 1))
                    .ok());
    EXPECT_EQ(index.value()->epoch(), 2u + static_cast<uint64_t>(i));
  }
  // A month rebuild — many cubes replaced — is still one publication.
  std::vector<DataCube> rebuilt(30, CubeWithTotal(TinySchema(), 2));
  ASSERT_TRUE(index.value()->RebuildMonth(start, rebuilt).ok());
  EXPECT_EQ(index.value()->epoch(), 32u);
}

TEST_F(TemporalIndexTest, PinnedSnapshotIsImmutableAcrossPublications) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Date start = Date::FromYmd(2021, 3, 1);
  ASSERT_TRUE(
      index.value()->AppendDay(start, CubeWithTotal(TinySchema(), 5)).ok());

  CatalogSnapshot pinned = index.value()->Snapshot();
  const uint64_t pinned_epoch = pinned.epoch();
  const std::optional<PageId> pinned_page = pinned.PageOf(CubeKey::Daily(start));
  ASSERT_TRUE(pinned_page.has_value());

  // Six more appends complete the week: new daily keys plus a weekly
  // rollup, each its own publication.
  for (int i = 1; i < 7; ++i) {
    ASSERT_TRUE(index.value()
                    ->AppendDay(start.AddDays(i), CubeWithTotal(TinySchema(), 5))
                    .ok());
  }

  // The pinned version is frozen: same epoch, same coverage, same page
  // mapping, and none of the later days or rollups exist in it.
  EXPECT_EQ(pinned.epoch(), pinned_epoch);
  EXPECT_EQ(pinned.coverage(), DateRange(start, start));
  EXPECT_EQ(pinned.PageOf(CubeKey::Daily(start)), pinned_page);
  EXPECT_FALSE(pinned.Contains(CubeKey::Daily(start.AddDays(1))));
  EXPECT_FALSE(pinned.Contains(CubeKey::Weekly(start)));
  auto via_pinned = index.value()->ReadCube(pinned, CubeKey::Daily(start));
  ASSERT_TRUE(via_pinned.ok());
  EXPECT_EQ(via_pinned.value().Total(), 5u);

  // A fresh snapshot sees everything at once.
  CatalogSnapshot fresh = index.value()->Snapshot();
  EXPECT_EQ(fresh.epoch(), pinned_epoch + 6);
  EXPECT_EQ(fresh.coverage(), DateRange(start, start.AddDays(6)));
  EXPECT_TRUE(fresh.Contains(CubeKey::Weekly(start)));
}

TEST_F(TemporalIndexTest, RetiredVersionsDrainOnlyAfterReadersRelease) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Date start = Date::FromYmd(2021, 3, 1);
  ASSERT_TRUE(
      index.value()->AppendDay(start, CubeWithTotal(TinySchema(), 1)).ok());

  // A pinned reader holds the retirement queue's front: every later
  // publication stacks another retired version behind it.
  {
    CatalogSnapshot pinned = index.value()->Snapshot();
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE(index.value()
                      ->AppendDay(start.AddDays(i), CubeWithTotal(TinySchema(), 1))
                      .ok());
    }
    EXPECT_GE(index.value()->retired_versions(), 3u);
    EXPECT_GT(pinned.epoch(), 0u);  // keep the pin alive to here
  }

  // Reader drained: the next publication reclaims the whole backlog.
  // (Reclamation runs inside publication, so at rest the count may
  // legitimately hold the most recent retirement.)
  ASSERT_TRUE(index.value()
                  ->AppendDay(start.AddDays(4), CubeWithTotal(TinySchema(), 1))
                  .ok());
  EXPECT_LE(index.value()->retired_versions(), 1u);
}

TEST_F(TemporalIndexTest, RebuildMonthReusesReclaimedPages) {
  auto index = TemporalIndex::Create(Options());
  ASSERT_TRUE(index.ok());
  Date start = Date::FromYmd(2021, 4, 1);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(index.value()
                    ->AppendDay(start.AddDays(i), CubeWithTotal(TinySchema(), 1))
                    .ok());
  }
  std::vector<DataCube> rebuilt(30, CubeWithTotal(TinySchema(), 2));

  // Rebuild #1 stages a full replacement month on fresh pages and
  // retires the old ones. Rebuild #2's publication reclaims them into
  // the pager's free pool; rebuild #3 then stages entirely from the
  // pool, so the file stops growing.
  ASSERT_TRUE(index.value()->RebuildMonth(start, rebuilt).ok());
  ASSERT_TRUE(index.value()->RebuildMonth(start, rebuilt).ok());
  const uint64_t pages_after_two = index.value()->pager()->num_pages();
  ASSERT_TRUE(index.value()->RebuildMonth(start, rebuilt).ok());
  EXPECT_EQ(index.value()->pager()->num_pages(), pages_after_two);

  // The rebuilt data is still correct after all the page recycling.
  auto monthly = index.value()->ReadCube(CubeKey::Monthly(start));
  ASSERT_TRUE(monthly.ok());
  EXPECT_EQ(monthly.value().Total(), 60u);
}

}  // namespace
}  // namespace rased
