#include <gtest/gtest.h>

#include "index/temporal_index.h"
#include "io/env.h"
#include "util/random.h"

namespace rased {
namespace {

// Whole-index consistency property: after months of randomized daily
// maintenance (and randomized monthly rebuilds), every rollup cube read
// back from disk equals the sum of its children read back from disk, and
// every level's grand total equals the daily grand total.

CubeSchema TinySchema() { return CubeSchema{3, 8, 4, 4}; }

DataCube RandomCube(Rng& rng, double density = 0.2) {
  DataCube cube(TinySchema());
  int cells = static_cast<int>(TinySchema().num_cells() * density);
  for (int i = 0; i < cells; ++i) {
    cube.Add(rng.Uniform(3), rng.Uniform(8), rng.Uniform(4), rng.Uniform(4),
             1 + rng.Uniform(50));
  }
  return cube;
}

class IndexConsistencyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  TempDir dir_{"index-consistency"};
};

TEST_P(IndexConsistencyTest, RollupsEqualChildSumsAfterRandomHistory) {
  Rng rng(GetParam());
  TemporalIndexOptions options;
  options.schema = TinySchema();
  options.num_levels = 4;
  options.dir = env::JoinPath(dir_.path(), "idx");
  options.device = DeviceModel::None();
  auto index = TemporalIndex::Create(options);
  ASSERT_TRUE(index.ok());

  // Four months of daily maintenance.
  Date start = Date::FromYmd(2021, 1, 1);
  Date end = Date::FromYmd(2021, 4, 30);
  for (Date d = start; d <= end; d = d.next()) {
    ASSERT_TRUE(index.value()->AppendDay(d, RandomCube(rng)).ok());
  }

  // One or two random monthly rebuilds on top.
  for (int month : {1 + static_cast<int>(rng.Uniform(4)),
                    1 + static_cast<int>(rng.Uniform(4))}) {
    Date month_start = Date::FromYmd(2021, month, 1);
    std::vector<DataCube> cubes;
    for (int i = 0; i < month_start.days_in_month(); ++i) {
      cubes.push_back(RandomCube(rng, 0.1));
    }
    ASSERT_TRUE(index.value()->RebuildMonth(month_start, cubes).ok());
  }

  // Verify: every non-daily cube equals the sum of its children on disk.
  DateRange covered(start, end);
  for (Level level : {Level::kWeekly, Level::kMonthly}) {
    for (const CubeKey& key : index.value()->ExistingKeys(level, covered)) {
      auto parent = index.value()->ReadCube(key);
      ASSERT_TRUE(parent.ok()) << key.ToString();
      DataCube sum(TinySchema());
      for (const CubeKey& child : key.Children()) {
        auto cube = index.value()->ReadCube(child);
        ASSERT_TRUE(cube.ok()) << child.ToString();
        ASSERT_TRUE(sum.Merge(cube.value()).ok());
      }
      EXPECT_EQ(parent.value(), sum) << key.ToString();
    }
  }

  // Grand totals agree across levels for a fully covered span.
  DateRange q1(Date::FromYmd(2021, 1, 1), Date::FromYmd(2021, 3, 31));
  uint64_t daily_total = 0, weekly_total = 0, monthly_total = 0;
  for (const CubeKey& key : index.value()->ExistingKeys(Level::kDaily, q1)) {
    daily_total += index.value()->ReadCube(key).value().Total();
  }
  for (const CubeKey& key :
       index.value()->ExistingKeys(Level::kMonthly, q1)) {
    monthly_total += index.value()->ReadCube(key).value().Total();
  }
  // Weekly cubes cover only days 1..28 of each month; add the stragglers.
  for (const CubeKey& key : index.value()->ExistingKeys(Level::kWeekly, q1)) {
    weekly_total += index.value()->ReadCube(key).value().Total();
  }
  for (Date d = q1.first; d <= q1.last; d = d.next()) {
    if (d.week_of_month() < 0) {
      weekly_total += index.value()->ReadCube(CubeKey::Daily(d)).value().Total();
    }
  }
  EXPECT_EQ(monthly_total, daily_total);
  EXPECT_EQ(weekly_total, daily_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexConsistencyTest,
                         ::testing::Values(1, 99, 2026));

}  // namespace
}  // namespace rased
