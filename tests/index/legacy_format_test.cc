// Seed-format (v1) compatibility: indexes written before adaptive cube
// compression — v1 page-file header, one dense page per cube, 4-field
// catalog lines — must open, read, and query correctly, and keep
// accepting new (v2, encoded) appends side by side with the old pages.
//
// The fixture hand-writes the seed files byte for byte rather than going
// through any current writer, so this test keeps failing loudly if the
// current code ever stops understanding the old format.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "cube/cube_codec.h"
#include "index/temporal_index.h"
#include "io/crc32c.h"
#include "io/env.h"
#include "io/page_file.h"
#include "util/str_util.h"

namespace rased {
namespace {

CubeSchema TinySchema() { return CubeSchema{3, 8, 4, 4}; }  // 3072-byte cubes

DataCube DayCube(const CubeSchema& schema, int day_ordinal) {
  DataCube cube(schema);
  cube.Add(0, 0, 0, 0, static_cast<uint64_t>(day_ordinal));
  cube.Add(1, static_cast<uint32_t>(day_ordinal % schema.num_countries), 2, 1,
           7);
  return cube;
}

void AppendBytes(std::string* out, const void* data, size_t n) {
  out->append(reinterpret_cast<const char*>(data), n);
}

/// Writes a seed-format index: v1 page file with page_size =
/// cube_bytes + 4 (one dense cube per page, as the pre-compression writer
/// laid them out) and a catalog of 4-field cube lines.
void WriteSeedIndex(const std::string& dir, const CubeSchema& schema,
                    Date first, int days) {
  ASSERT_TRUE(env::CreateDirs(dir).ok());
  const size_t page_size = schema.cube_bytes() + PageFile::kChecksumBytes;

  std::string file;
  // Page 0: the 32-byte v1 header, zero-padded to page_size.
  unsigned char header[32] = {0};
  const uint32_t magic = PageFile::kMagic;
  const uint32_t version = 1;  // seed format
  const uint64_t page_size64 = page_size;
  const uint64_t num_pages = static_cast<uint64_t>(days);
  std::memcpy(header + 0, &magic, 4);
  std::memcpy(header + 4, &version, 4);
  std::memcpy(header + 8, &page_size64, 8);
  std::memcpy(header + 16, &num_pages, 8);
  const uint32_t header_crc = Crc32c(header, 24);
  std::memcpy(header + 24, &header_crc, 4);
  AppendBytes(&file, header, sizeof(header));
  file.append(page_size - sizeof(header), '\0');

  // Pages 1..days: raw dense images, checksummed like any page.
  std::string catalog = "rased-catalog v1\n";
  catalog += StrFormat("schema %u %u %u %u\n", schema.num_element_types,
                       schema.num_countries, schema.num_road_types,
                       schema.num_update_types);
  catalog += "levels 4\n";
  catalog += StrFormat("first_day %d\n", first.days_since_epoch());
  catalog += StrFormat("last_day %d\n",
                       first.AddDays(days - 1).days_since_epoch());
  Date d = first;
  for (int i = 0; i < days; ++i, d = d.next()) {
    std::vector<unsigned char> page(page_size, 0);
    DayCube(schema, i + 1).SerializeTo(page.data());
    const uint32_t crc = Crc32c(page.data(), page_size - 4);
    std::memcpy(page.data() + page_size - 4, &crc, 4);
    AppendBytes(&file, page.data(), page.size());
    catalog += StrFormat("cube 0 %d %d\n", d.days_since_epoch(), i + 1);
  }

  ASSERT_TRUE(
      env::WriteFile(env::JoinPath(dir, "cubes.pages"), file).ok());
  ASSERT_TRUE(env::WriteFile(env::JoinPath(dir, "catalog"), catalog).ok());
}

class LegacyFormatTest : public ::testing::Test {
 protected:
  std::unique_ptr<TemporalIndex> OpenSeed(const std::string& name, int days) {
    const std::string dir = env::JoinPath(dir_.path(), name);
    WriteSeedIndex(dir, TinySchema(), Date::FromYmd(2021, 1, 1), days);
    TemporalIndexOptions options;
    options.schema = TinySchema();
    options.num_levels = 4;
    options.dir = dir;
    options.device = DeviceModel::None();
    auto index = TemporalIndex::Open(options);
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    return index.ok() ? std::move(index).value() : nullptr;
  }

  TempDir dir_{"legacy-format-test"};
};

TEST_F(LegacyFormatTest, SeedIndexOpensAndReadsCorrectly) {
  auto index = OpenSeed("seed", 5);
  ASSERT_NE(index, nullptr);
  CatalogSnapshot snapshot = index->Snapshot();
  EXPECT_EQ(snapshot.coverage().num_days(), 5);

  for (int i = 0; i < 5; ++i) {
    const Date d = Date::FromYmd(2021, 1, 1).AddDays(i);
    auto cube = index->ReadCube(snapshot, CubeKey::Daily(d));
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();
    EXPECT_EQ(cube.value(), DayCube(TinySchema(), i + 1));
  }

  // Legacy entries carry dense-image accounting in the catalog.
  auto loc = snapshot.LocOf(CubeKey::Daily(Date::FromYmd(2021, 1, 3)));
  ASSERT_TRUE(loc.has_value());
  EXPECT_TRUE(loc->legacy);
  EXPECT_EQ(loc->encoding, CubeEncoding::kDenseRaw);
  EXPECT_EQ(loc->blob_bytes, TinySchema().cube_bytes());
  EXPECT_EQ(loc->num_pages, 1u);
}

TEST_F(LegacyFormatTest, BatchedReadSpansLegacyCubes) {
  auto index = OpenSeed("batched", 4);
  ASSERT_NE(index, nullptr);
  std::vector<CubeKey> keys;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(CubeKey::Daily(Date::FromYmd(2021, 1, 1).AddDays(i)));
  }
  auto batch = index->ReadCubes(keys);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(batch.value().encoding(static_cast<size_t>(i)),
              CubeEncoding::kDenseRaw);
    auto cube = batch.value().Decode(static_cast<size_t>(i));
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();
    EXPECT_EQ(cube.value(), DayCube(TinySchema(), i + 1));
  }
}

TEST_F(LegacyFormatTest, AppendsEncodedCubesNextToSeedPages) {
  auto index = OpenSeed("append", 3);
  ASSERT_NE(index, nullptr);

  // New appends write v2 encoded blobs into the legacy page geometry.
  Date d = Date::FromYmd(2021, 1, 4);
  for (int i = 3; i < 6; ++i, d = d.next()) {
    ASSERT_TRUE(index->AppendDay(d, DayCube(TinySchema(), i + 1)).ok());
  }
  CatalogSnapshot snapshot = index->Snapshot();
  auto new_loc = snapshot.LocOf(CubeKey::Daily(Date::FromYmd(2021, 1, 5)));
  ASSERT_TRUE(new_loc.has_value());
  EXPECT_FALSE(new_loc->legacy);
  EXPECT_LT(new_loc->blob_bytes, TinySchema().cube_bytes());

  // Reopen: seed entries round-trip in 4-field form, new ones in 7-field
  // form, and every cube still reads back exactly.
  const std::string dir = index->options().dir;
  TemporalIndexOptions options = index->options();
  ASSERT_TRUE(index->Sync().ok());
  index.reset();
  auto reopened = TemporalIndex::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  CatalogSnapshot snap2 = reopened.value()->Snapshot();
  for (int i = 0; i < 6; ++i) {
    const Date day = Date::FromYmd(2021, 1, 1).AddDays(i);
    auto cube = reopened.value()->ReadCube(snap2, CubeKey::Daily(day));
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();
    EXPECT_EQ(cube.value(), DayCube(TinySchema(), i + 1));
    auto loc = snap2.LocOf(CubeKey::Daily(day));
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(loc->legacy, i < 3);
  }

  // The weekly rollup built from mixed legacy + encoded children agrees
  // with the sum of its days.
  auto weekly =
      reopened.value()->ReadCube(snap2, CubeKey::Weekly(Date::FromYmd(2021, 1, 4)));
  if (weekly.ok()) {
    uint64_t want = 0;
    for (int i = 3; i < 6; ++i) want += DayCube(TinySchema(), i + 1).Total();
    EXPECT_EQ(weekly.value().Total(), want);
  }
}

TEST_F(LegacyFormatTest, StorageStatsChargeLegacyDenseBytes) {
  auto index = OpenSeed("stats", 4);
  ASSERT_NE(index, nullptr);
  IndexStorageStats stats = index->StorageStats();
  EXPECT_EQ(stats.total_cubes, 4u);
  EXPECT_EQ(stats.encoded_bytes, 4 * TinySchema().cube_bytes());
}

}  // namespace
}  // namespace rased
