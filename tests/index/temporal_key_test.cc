#include "index/temporal_key.h"

#include <set>

#include <gtest/gtest.h>

namespace rased {
namespace {

TEST(CubeKeyTest, DailyRange) {
  CubeKey key = CubeKey::Daily(Date::FromYmd(2021, 5, 10));
  EXPECT_EQ(key.range(), DateRange(Date::FromYmd(2021, 5, 10),
                                   Date::FromYmd(2021, 5, 10)));
  EXPECT_TRUE(key.Children().empty());
}

TEST(CubeKeyTest, WeeklyCanonicalizesToWeekStart) {
  CubeKey key = CubeKey::Weekly(Date::FromYmd(2021, 5, 10));  // week 1: 8-14
  EXPECT_EQ(key.start, Date::FromYmd(2021, 5, 8));
  EXPECT_EQ(key.range(), DateRange(Date::FromYmd(2021, 5, 8),
                                   Date::FromYmd(2021, 5, 14)));
  auto children = key.Children();
  ASSERT_EQ(children.size(), 7u);
  EXPECT_EQ(children.front(), CubeKey::Daily(Date::FromYmd(2021, 5, 8)));
  EXPECT_EQ(children.back(), CubeKey::Daily(Date::FromYmd(2021, 5, 14)));
}

TEST(CubeKeyTest, MonthlyChildrenAreFourWeeksPlusStragglers) {
  CubeKey may = CubeKey::Monthly(Date::FromYmd(2021, 5, 20));
  auto children = may.Children();
  // May has 31 days: 4 weeks + 3 straggler dailies.
  ASSERT_EQ(children.size(), 7u);
  int weekly = 0, daily = 0;
  for (const CubeKey& c : children) {
    if (c.level == Level::kWeekly) ++weekly;
    if (c.level == Level::kDaily) ++daily;
  }
  EXPECT_EQ(weekly, 4);
  EXPECT_EQ(daily, 3);

  CubeKey feb = CubeKey::Monthly(Date::FromYmd(2021, 2, 10));
  EXPECT_EQ(feb.Children().size(), 4u);  // 28 days: exactly 4 weeks

  CubeKey feb_leap = CubeKey::Monthly(Date::FromYmd(2020, 2, 10));
  EXPECT_EQ(feb_leap.Children().size(), 5u);  // 29 days: 4 weeks + 1 day
}

TEST(CubeKeyTest, YearlyChildrenAreTwelveMonths) {
  CubeKey year = CubeKey::Yearly(Date::FromYmd(2021, 7, 4));
  EXPECT_EQ(year.start, Date::FromYmd(2021, 1, 1));
  auto children = year.Children();
  ASSERT_EQ(children.size(), 12u);
  for (int m = 0; m < 12; ++m) {
    EXPECT_EQ(children[m].level, Level::kMonthly);
    EXPECT_EQ(children[m].start, Date::FromYmd(2021, m + 1, 1));
  }
}

TEST(CubeKeyTest, ChildrenPartitionParentRangeProperty) {
  // Property: for every level, the children's ranges tile the parent's
  // range exactly (no gaps, no overlaps).
  for (int month = 1; month <= 12; ++month) {
    for (Level level : {Level::kWeekly, Level::kMonthly, Level::kYearly}) {
      CubeKey parent{level, level == Level::kWeekly
                                ? Date::FromYmd(2021, month, 8)
                                : level == Level::kMonthly
                                      ? Date::FromYmd(2021, month, 1)
                                      : Date::FromYmd(2021, 1, 1)};
      std::set<int32_t> covered;
      for (const CubeKey& child : parent.Children()) {
        DateRange r = child.range();
        for (Date d = r.first; d <= r.last; d = d.next()) {
          EXPECT_TRUE(covered.insert(d.days_since_epoch()).second)
              << "overlap at " << d.ToString();
        }
      }
      DateRange pr = parent.range();
      EXPECT_EQ(covered.size(), static_cast<size_t>(pr.num_days()));
      EXPECT_EQ(*covered.begin(), pr.first.days_since_epoch());
      EXPECT_EQ(*covered.rbegin(), pr.last.days_since_epoch());
      if (level == Level::kYearly) break;  // month loop irrelevant
    }
  }
}

TEST(CubeKeyTest, OrderingAndHash) {
  CubeKey a = CubeKey::Daily(Date::FromYmd(2021, 1, 1));
  CubeKey b = CubeKey::Weekly(Date::FromYmd(2021, 1, 1));
  CubeKey c = CubeKey::Daily(Date::FromYmd(2021, 1, 2));
  EXPECT_TRUE(a < b);  // same start, finer level first
  EXPECT_TRUE(b < c);
  CubeKeyHash hash;
  EXPECT_NE(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));
  EXPECT_EQ(hash(a), hash(CubeKey::Daily(Date::FromYmd(2021, 1, 1))));
}

TEST(KeysCoveredByTest, DailyEnumeratesEveryDay) {
  DateRange r(Date::FromYmd(2021, 1, 30), Date::FromYmd(2021, 2, 2));
  auto keys = KeysCoveredBy(Level::kDaily, r);
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys[0].start, Date::FromYmd(2021, 1, 30));
  EXPECT_EQ(keys[3].start, Date::FromYmd(2021, 2, 2));
}

TEST(KeysCoveredByTest, WeeklyOnlyFullyContainedWeeks) {
  // Jan 5 .. Jan 20 contains weeks 8-14 and nothing else fully.
  DateRange r(Date::FromYmd(2021, 1, 5), Date::FromYmd(2021, 1, 20));
  auto keys = KeysCoveredBy(Level::kWeekly, r);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].start, Date::FromYmd(2021, 1, 8));
}

TEST(KeysCoveredByTest, MonthlyAndYearly) {
  DateRange r(Date::FromYmd(2020, 12, 15), Date::FromYmd(2022, 2, 15));
  auto months = KeysCoveredBy(Level::kMonthly, r);
  EXPECT_EQ(months.size(), 13u);  // Jan 2021 .. Jan 2022
  auto years = KeysCoveredBy(Level::kYearly, r);
  ASSERT_EQ(years.size(), 1u);
  EXPECT_EQ(years[0].start, Date::FromYmd(2021, 1, 1));
}

TEST(KeysCoveredByTest, EmptyRange) {
  EXPECT_TRUE(KeysCoveredBy(Level::kDaily, DateRange()).empty());
  EXPECT_TRUE(KeysCoveredBy(Level::kYearly, DateRange()).empty());
}

TEST(LevelTest, Names) {
  EXPECT_EQ(LevelName(Level::kDaily), "daily");
  EXPECT_EQ(LevelName(Level::kWeekly), "weekly");
  EXPECT_EQ(LevelName(Level::kMonthly), "monthly");
  EXPECT_EQ(LevelName(Level::kYearly), "yearly");
}

}  // namespace
}  // namespace rased
