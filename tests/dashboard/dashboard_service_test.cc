#include "dashboard/dashboard_service.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace rased {
namespace {

std::string Fetch(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class DashboardServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("dashboard-test");
    rased_ =
        testing_helpers::MakePopulatedRased(
            env::JoinPath(dir_->path(), "rased"))
            .release();
    ASSERT_NE(rased_, nullptr);
    service_ = new DashboardService(rased_);
    ASSERT_TRUE(service_->Start(0).ok());
  }

  static void TearDownTestSuite() {
    service_->Stop();
    delete service_;
    delete rased_;
    delete dir_;
    service_ = nullptr;
    rased_ = nullptr;
    dir_ = nullptr;
  }

  static TempDir* dir_;
  static Rased* rased_;
  static DashboardService* service_;
};

TempDir* DashboardServiceTest::dir_ = nullptr;
Rased* DashboardServiceTest::rased_ = nullptr;
DashboardService* DashboardServiceTest::service_ = nullptr;

TEST_F(DashboardServiceTest, IndexPageServed) {
  std::string response = Fetch(service_->port(), "/");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("RASED"), std::string::npos);
  EXPECT_NE(response.find("text/html"), std::string::npos);
}

TEST_F(DashboardServiceTest, QueryEndpointReturnsJson) {
  std::string response = Fetch(
      service_->port(),
      "/api/query?from=2021-01-01&to=2021-01-31&group=country");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"rows\""), std::string::npos);
  EXPECT_NE(response.find("\"count\""), std::string::npos);
  EXPECT_NE(response.find("\"stats\""), std::string::npos);
}

TEST_F(DashboardServiceTest, QueryWithCountryFilter) {
  std::string response =
      Fetch(service_->port(),
            "/api/query?countries=Germany&group=country&format=json");
  EXPECT_NE(response.find("\"country\":\"Germany\""), std::string::npos);
  // Only one row: Germany itself.
  EXPECT_EQ(response.find("\"country\":\"France\""), std::string::npos);
}

TEST_F(DashboardServiceTest, TableAndBarFormats) {
  std::string table = Fetch(
      service_->port(), "/api/query?group=country&format=table");
  EXPECT_NE(table.find("text/plain"), std::string::npos);
  EXPECT_NE(table.find("count"), std::string::npos);

  std::string bar =
      Fetch(service_->port(), "/api/query?group=country&format=bar");
  EXPECT_NE(bar.find('#'), std::string::npos);
}

TEST_F(DashboardServiceTest, TimeseriesFormat) {
  std::string response = Fetch(
      service_->port(),
      "/api/query?from=2021-01-01&to=2021-02-28&countries=Germany,France"
      "&group=country,date&percentage=1&format=timeseries");
  EXPECT_NE(response.find("Germany"), std::string::npos);
  EXPECT_NE(response.find("France"), std::string::npos);
}

TEST_F(DashboardServiceTest, SqlEndpointRunsPaperQueries) {
  // URL-encoded: SELECT Country, COUNT(*) FROM UpdateList WHERE Date
  // BETWEEN 2021-01-01 AND 2021-02-28 GROUP BY Country
  std::string response = Fetch(
      service_->port(),
      "/api/sql?q=SELECT%20Country,%20COUNT(*)%20FROM%20UpdateList%20WHERE"
      "%20Date%20BETWEEN%202021-01-01%20AND%202021-02-28%20GROUP%20BY"
      "%20Country&format=json");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"country\""), std::string::npos);
  EXPECT_NE(response.find("\"count\""), std::string::npos);
}

TEST_F(DashboardServiceTest, SqlEndpointRejectsBadSql) {
  std::string response =
      Fetch(service_->port(), "/api/sql?q=DROP%20TABLE%20UpdateList");
  EXPECT_NE(response.find("400"), std::string::npos);
  EXPECT_NE(Fetch(service_->port(), "/api/sql").find("400"),
            std::string::npos);
}

TEST_F(DashboardServiceTest, UnknownCountryIs400) {
  std::string response =
      Fetch(service_->port(), "/api/query?countries=Narnia");
  EXPECT_NE(response.find("400"), std::string::npos);
  EXPECT_NE(response.find("error"), std::string::npos);
}

TEST_F(DashboardServiceTest, BadDateIs400) {
  std::string response = Fetch(service_->port(), "/api/query?from=yesterday");
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST_F(DashboardServiceTest, UnknownGroupDimensionIs400) {
  std::string response = Fetch(service_->port(), "/api/query?group=color");
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST_F(DashboardServiceTest, ZonesEndpoint) {
  std::string response = Fetch(service_->port(), "/api/zones");
  EXPECT_NE(response.find("\"United States\""), std::string::npos);
  EXPECT_NE(response.find("\"continent\""), std::string::npos);
  EXPECT_NE(response.find("road_network_size"), std::string::npos);
}

TEST_F(DashboardServiceTest, StatsEndpoint) {
  std::string response = Fetch(service_->port(), "/api/stats");
  EXPECT_NE(response.find("\"daily_cubes\":59"), std::string::npos);
  EXPECT_NE(response.find("\"monthly_cubes\":2"), std::string::npos);
  EXPECT_NE(response.find("\"cache\""), std::string::npos);
}

TEST_F(DashboardServiceTest, SampleByChangeset) {
  // Grab any changeset id from the warehouse via a box sample.
  auto samples =
      rased_->SampleInBox(BoundingBox{-90, -180, 90, 180}, 1);
  ASSERT_TRUE(samples.ok());
  ASSERT_FALSE(samples.value().empty());
  uint64_t cs = samples.value()[0].changeset_id;
  std::string response = Fetch(service_->port(),
                               "/api/sample?changeset=" + std::to_string(cs));
  EXPECT_NE(response.find("\"samples\""), std::string::npos);
  EXPECT_NE(response.find(std::to_string(cs)), std::string::npos);
}

TEST_F(DashboardServiceTest, SampleByBox) {
  std::string response = Fetch(
      service_->port(),
      "/api/sample?min_lat=-90&min_lon=-180&max_lat=90&max_lon=180&n=5");
  EXPECT_NE(response.find("\"samples\""), std::string::npos);
  EXPECT_NE(response.find("\"lat\""), std::string::npos);
}

TEST_F(DashboardServiceTest, SampleWithoutParamsIs400) {
  std::string response = Fetch(service_->port(), "/api/sample");
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST_F(DashboardServiceTest, ConcurrentQueriesAreSerializedSafely) {
  // Several clients hammer /api/query at once; the service's mutex must
  // keep the shared Rased instance consistent and every response valid.
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([this, &ok] {
      for (int i = 0; i < 5; ++i) {
        std::string response = Fetch(
            service_->port(),
            "/api/query?from=2021-01-01&to=2021-02-28&group=country");
        if (response.find("\"rows\"") != std::string::npos) ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), 20);
}

TEST_F(DashboardServiceTest, ParseQueryParamsDirectly) {
  HttpRequest request;
  request.params["from"] = "2021-01-05";
  request.params["to"] = "2021-01-20";
  request.params["countries"] = "Germany, France";
  request.params["element_types"] = "way,node";
  request.params["update_types"] = "new,geometry";
  request.params["group"] = "country,update_type";
  auto query = service_->ParseQueryParams(request);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query.value().countries.size(), 2u);
  EXPECT_EQ(query.value().element_types.size(), 2u);
  EXPECT_EQ(query.value().update_types.size(), 2u);
  EXPECT_TRUE(query.value().group_country);
  EXPECT_TRUE(query.value().group_update_type);
  EXPECT_FALSE(query.value().group_date);
  EXPECT_EQ(query.value().range.num_days(), 16);
}

}  // namespace
}  // namespace rased
