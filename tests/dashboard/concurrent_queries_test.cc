// Hammers DashboardService and the shared-state components beneath it from
// many threads at once. These tests exist to give TSan and the clang
// thread-safety annotations something real to chew on: every lock added in
// the correctness-tooling pass (DashboardService::rased_mu_, CubeCache::mu_,
// TemporalIndex::mu_, HttpServer::mu_) is contended here.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dashboard/dashboard_service.h"
#include "test_helpers.h"

namespace rased {
namespace {

std::string Fetch(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class ConcurrentQueriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("concurrent-queries-test");
    rased_ = testing_helpers::MakePopulatedRased(
                 env::JoinPath(dir_->path(), "rased"))
                 .release();
    ASSERT_NE(rased_, nullptr);
    service_ = new DashboardService(rased_);
    ASSERT_TRUE(service_->Start(0).ok());
  }

  static void TearDownTestSuite() {
    service_->Stop();
    delete service_;
    delete rased_;
    delete dir_;
    service_ = nullptr;
    rased_ = nullptr;
    dir_ = nullptr;
  }

  static TempDir* dir_;
  static Rased* rased_;
  static DashboardService* service_;
};

TempDir* ConcurrentQueriesTest::dir_ = nullptr;
Rased* ConcurrentQueriesTest::rased_ = nullptr;
DashboardService* ConcurrentQueriesTest::service_ = nullptr;

// N worker threads, each firing a mix of every dashboard endpoint. All
// responses must be well-formed 200s/400s — no torn bodies, no crashes —
// and the total served must match what we sent.
TEST_F(ConcurrentQueriesTest, MixedEndpointsFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 25;
  const std::string targets[] = {
      "/api/query?from=2021-01-01&to=2021-02-28&group=country",
      "/api/query?group=country,update_type&percentage=1",
      "/api/query?group=date&format=timeseries",
      "/api/sql?q=SELECT%20Country,%20COUNT(*)%20FROM%20UpdateList%20"
      "GROUP%20BY%20Country",
      "/api/stats",
      "/api/zones",
      "/api/query?from=bogus",  // parse error path, must 400 not crash
  };
  constexpr size_t kNumTargets = sizeof(targets) / sizeof(targets[0]);

  std::atomic<int> ok{0};
  std::atomic<int> client_error{0};
  std::atomic<int> malformed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string& target =
            targets[static_cast<size_t>(t + i) % kNumTargets];
        std::string response = Fetch(service_->port(), target);
        if (response.find("200 OK") != std::string::npos) {
          ++ok;
        } else if (response.find("400 Bad Request") != std::string::npos) {
          ++client_error;
        } else {
          ++malformed;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(malformed.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(client_error.load(), 0);  // the bogus-date target
  EXPECT_EQ(ok.load() + client_error.load(),
            kThreads * kRequestsPerThread);
}

// Identical concurrent queries must all see the same answer: the cache and
// executor may not corrupt shared state under contention.
TEST_F(ConcurrentQueriesTest, ConcurrentIdenticalQueriesAgree) {
  constexpr int kThreads = 6;
  const std::string target =
      "/api/query?from=2021-01-01&to=2021-02-28&group=country&format=csv";
  std::string expected = Fetch(service_->port(), target);
  ASSERT_NE(expected.find("200 OK"), std::string::npos);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        if (Fetch(service_->port(), target) != expected) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Drives CubeCache directly from many threads under the LRU policy:
// readers hold shared_ptrs across concurrent evictions and must never see
// a dangling cube. This is the cache's documented threading contract.
TEST_F(ConcurrentQueriesTest, CubeCacheParallelFindInsertInvalidate) {
  CacheOptions options;
  options.num_slots = 4;  // tiny, to force constant eviction
  options.policy = CachePolicy::kLru;
  CubeCache cache(options);
  CubeSchema schema = CubeSchema::BenchScale();

  constexpr int kThreads = 8;
  constexpr int kDays = 16;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        Date day = Date::FromYmd(2021, 1, 1 + (t + i) % kDays);
        CubeKey key = CubeKey::Daily(day);
        std::shared_ptr<const DataCube> hit = cache.Find(key);
        if (hit != nullptr) {
          // The cube must stay readable even if another thread evicts it
          // right now.
          if (hit->Total() != static_cast<uint64_t>(day.day())) {
            failed.store(true);
          }
        } else {
          DataCube cube(schema);
          cube.Add(0, 0, 0, 0, static_cast<uint64_t>(day.day()));
          cache.Insert(key, cube);
        }
        if (i % 64 == 0) {
          cache.InvalidateRange(
              DateRange(Date::FromYmd(2021, 1, 1),
                        Date::FromYmd(2021, 1, kDays)));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  CacheStats stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(cache.size(), options.num_slots);
}

// Index metadata lookups are internally synchronized; hammer them while a
// stats endpoint (which also walks the catalog) runs over HTTP.
TEST_F(ConcurrentQueriesTest, IndexMetadataReadsRaceStatsEndpoint) {
  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<bool> empty_coverage{false};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      TemporalIndex* index = rased_->index();
      while (!stop.load()) {
        DateRange coverage = index->coverage();
        if (coverage.empty()) {
          empty_coverage.store(true);
          break;
        }
        index->Contains(CubeKey::Daily(coverage.first));
        index->ExistingKeys(Level::kWeekly, coverage);
        index->LatestKeys(Level::kDaily, 4);
        index->StorageStats();
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    std::string response = Fetch(service_->port(), "/api/stats");
    EXPECT_NE(response.find("200 OK"), std::string::npos);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(empty_coverage.load());
}

}  // namespace
}  // namespace rased
